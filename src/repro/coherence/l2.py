"""Shared L2 model.

The L2 is inclusive and logically distributed: the slice holding a line is
the line's home tile, co-located with its directory entry, so fetching from
L2 during directory processing costs only the L2 data latency.  Capacity is
modeled as infinite with a one-time DRAM charge on first touch (cold miss):
the paper's benchmarks have working sets far smaller than the aggregate L2
(256 KB x tiles), so L2 capacity misses play no role in its results.
"""

from __future__ import annotations

from ..config import MachineConfig
from ..trace import TraceBus


class SharedL2:
    """Latency/energy model of the shared L2 + memory controller."""

    __slots__ = ("tag_latency", "data_latency", "dram_latency",
                 "trace", "_seen")

    def __init__(self, config: MachineConfig, trace: TraceBus) -> None:
        self.tag_latency = config.l2_tag_latency
        self.data_latency = config.l2_data_latency
        self.dram_latency = config.dram_latency
        self.trace = trace
        self._seen: set[int] = set()

    def lookup_latency(self) -> int:
        """Tag check performed on every directory access."""
        return self.tag_latency

    def fetch_latency(self, line: int) -> int:
        """Latency to produce the line's data at the home tile."""
        if line in self._seen:
            self.trace.l2_access(line, dram=False)
            return self.data_latency
        self._seen.add(line)
        self.trace.l2_access(line, dram=True)
        return self.data_latency + self.dram_latency

    def mark_warm(self, line: int) -> None:
        """Mark a line as on-chip without a DRAM charge (used for freshly
        allocated lines that a warm allocator pool would already hold)."""
        self._seen.add(line)

    def writeback(self, line: int) -> None:
        """Account a dirty writeback into the L2 slice."""
        self.trace.writeback(line)
        self._seen.add(line)

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self) -> dict:
        return {"seen": sorted(self._seen)}

    def load_state(self, state: dict) -> None:
        self._seen = set(state["seen"])
