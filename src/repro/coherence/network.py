"""2-D mesh on-chip network latency model.

Tiles are laid out row-major on the smallest square mesh that holds all
cores; message latency is ``base + hop_latency * manhattan_distance`` plus a
serialization term for data-carrying messages.  The network is contention-
free (Graphite's default analytical model is similarly simple); coherence
*protocol* queuing -- the effect the paper studies -- is modeled exactly, at
the directory and at leased cores.
"""

from __future__ import annotations

from typing import Any, Callable

from ..config import NetworkConfig
from ..engine import Simulator
from ..trace import TraceBus
from .messages import MessageKind


class MeshNetwork:
    """Computes message latencies, traces traffic, and schedules delivery."""

    __slots__ = ("config", "num_tiles", "sim", "trace", "faults", "dim",
                 "_hops", "_lat", "_ctl", "_data")

    #: True on :class:`~repro.coherence.links.LinkedNetwork` only; gates
    #: checkpoint state, result extras, and the core batch-fold check.
    contended = False
    #: Messages inside the network's queues/resources.  Always 0 here (a
    #: class attribute, so the fold-gate read is free on the default
    #: contention-free model); LinkedNetwork shadows it per instance.
    _pending = 0

    def __init__(self, config: NetworkConfig, num_tiles: int,
                 sim: Simulator, trace: TraceBus, faults=None) -> None:
        self.config = config
        self.num_tiles = num_tiles
        self.sim = sim
        self.trace = trace
        #: Optional :class:`~repro.faults.FaultPlan`; when set, each send
        #: may suffer extra (seeded) latency at the hop-latency point.
        self.faults = faults
        self.dim = 1
        while self.dim * self.dim < num_tiles:
            self.dim += 1
        # Precomputed hop distance table (num_tiles is small, <= 64ish).
        self._hops = [
            [self._manhattan(a, b) for b in range(num_tiles)]
            for a in range(num_tiles)
        ]
        # Control-message latency per (src, dst); data-carrying kinds add
        # the fixed serialization term on top.
        self._lat = [
            [config.base_latency + config.hop_latency * h for h in row]
            for row in self._hops
        ]
        # Fused (latency, hops) rows -- one control, one data-carrying --
        # so the send hot path does a single table walk per message.
        self._ctl = [
            [(lat, h) for lat, h in zip(lrow, hrow)]
            for lrow, hrow in zip(self._lat, self._hops)
        ]
        self._data = [
            [(lat + config.data_latency, h) for lat, h in zip(lrow, hrow)]
            for lrow, hrow in zip(self._lat, self._hops)
        ]

    def _coords(self, tile: int) -> tuple[int, int]:
        return tile % self.dim, tile // self.dim

    def _manhattan(self, a: int, b: int) -> int:
        ax, ay = self._coords(a)
        bx, by = self._coords(b)
        return abs(ax - bx) + abs(ay - by)

    def hops(self, src: int, dst: int) -> int:
        return self._hops[src][dst]

    def latency(self, src: int, dst: int, kind: MessageKind) -> int:
        lat = self._lat[src][dst]
        if kind.carries:
            lat += self.config.data_latency
        return lat

    def send(self, src: int, dst: int, kind: MessageKind,
             fn: Callable[..., Any], *args: Any) -> None:
        """Trace one ``kind`` message from tile ``src`` to ``dst`` and
        schedule ``fn(*args)`` at its delivery time."""
        carries = kind.carries
        lat, hops = (self._data if carries else self._ctl)[src][dst]
        if self.faults is not None:
            extra = self.faults.net_extra()
            if extra:
                lat += extra
                self.trace.fault_injected("net_jitter", dst, extra)
        self.trace.message(src, dst, kind.val, hops, carries)
        sim = self.sim
        sim.queue.schedule(sim.now + lat, fn, *args)

    def grant_delivery(self, src: int, dst: int, kind: MessageKind,
                       fetch_cycles: int, fn: Callable[..., Any],
                       *args: Any) -> None:
        """Perform a directory grant's L2/memory fetch (``fetch_cycles``)
        and then send the response message.  Here the fetch is a pure
        delay -- the scheduled event is exactly the ``send`` call the
        directory used to schedule itself, so behaviour and checkpoint
        encoding are unchanged; :class:`~repro.coherence.links.
        LinkedNetwork` overrides this to serialize the fetch through the
        home tile's memory port."""
        sim = self.sim
        sim.queue.schedule(sim.now + fetch_cycles, self.send,
                           src, dst, kind, fn, *args)
