"""Per-core memory unit: L1 access path, probe handling, lease hooks.

This is the component the paper modifies ("we extended the L1 cache
controller logic (at the cores) to implement memory leases. As such, the
directory did not have to be modified in any way").  The baseline access
path is a plain MSI L1 controller; the lease extension intercepts incoming
probes via the attached :class:`~repro.lease.manager.LeaseManager`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..config import MachineConfig
from ..engine import Simulator
from ..errors import ProtocolError
from ..mem import AddressMap
from ..trace import TraceBus
from .cache import L1Cache
from .directory import Directory, Request
from .messages import MessageKind
from .states import LineState

if TYPE_CHECKING:  # pragma: no cover
    from ..lease.manager import LeaseManager


class Probe:
    """An invalidate/downgrade probe delivered to a core.

    A pure data descriptor: the probed core answers through
    :meth:`~repro.coherence.directory.Directory.probe_reply` (exactly once,
    when it actually services the probe, possibly after a lease delay),
    which routes the DATA/ACK back to the home tile of ``req``'s line.
    """

    __slots__ = ("line", "kind", "requester_is_lease", "req", "target_core")

    def __init__(self, line: int, kind: MessageKind,
                 requester_is_lease: bool, req: Request,
                 target_core: int) -> None:
        self.line = line
        self.kind = kind
        self.requester_is_lease = requester_is_lease
        self.req = req
        self.target_core = target_core

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Probe {self.kind.value} line={self.line}>"


class _Outstanding:
    """The core's single in-flight coherence request."""

    __slots__ = ("req", "granted", "deferred_probe", "callback")

    def __init__(self, req: Request, callback: Callable[[], None]) -> None:
        self.req = req
        self.granted = False
        self.deferred_probe: Probe | None = None
        self.callback = callback


_LI = int(LineState.I)
_LS = int(LineState.S)
_LE = int(LineState.E)
_LM = int(LineState.M)


class MemUnit:
    """L1 controller for one core."""

    __slots__ = ("core_id", "config", "amap", "directory", "sim", "trace",
                 "l1", "lease_mgr", "_outstanding", "_line_shift",
                 "_l1_latency", "_probe_pending")

    def __init__(self, core_id: int, config: MachineConfig,
                 amap: AddressMap, directory: Directory,
                 sim: Simulator, trace: TraceBus) -> None:
        self.core_id = core_id
        self.config = config
        self.amap = amap
        self.directory = directory
        self.sim = sim
        self.trace = trace
        self.l1 = L1Cache(config.l1_num_sets, config.l1_assoc, trace,
                          core_id)
        #: Attached by the Machine after construction.
        self.lease_mgr: "LeaseManager | None" = None
        self._outstanding: _Outstanding | None = None
        #: True only inside :meth:`complete_request` while a deferred probe
        #: is waiting to be applied after the commit callback.  The core's
        #: batch-advance must not fold instructions in that window: the
        #: event-per-instruction schedule interposes the probe's
        #: invalidation before the *next* dispatch event, which synchronous
        #: folding would otherwise read past.  Never set between events,
        #: so checkpoints need not serialize it.
        self._probe_pending = False
        # Hot-path constants (the access path runs once per instruction).
        self._line_shift = config.line_size.bit_length() - 1
        self._l1_latency = config.l1_latency

    # -- the access path --------------------------------------------------

    def access(self, need_exclusive: bool, addr: int, *, is_lease: bool,
               callback: Callable[[], None]) -> None:
        """Bring the line of ``addr`` into S (read) or M (exclusive) state
        and invoke ``callback`` when the access may commit.

        The callback fires at least ``l1_latency`` cycles in the future
        (never synchronously), so callers cannot recurse unboundedly.
        """
        if self._outstanding is not None:
            raise ProtocolError(
                f"core {self.core_id}: second outstanding access (in-order "
                "cores have exactly one)")
        line = addr >> self._line_shift
        l1 = self.l1
        st = l1.state_of(line)
        if st >= _LE or (st == _LS and not need_exclusive):
            if need_exclusive and st == _LE:
                # MESI silent upgrade: first write to an exclusive-clean
                # line dirties it without any coherence traffic.
                l1.set_state(line, LineState.M)
                self.trace.mesi_upgrade(self.core_id, line)
            self.trace.l1_hit(self.core_id, line)
            l1.touch(line)
            sim = self.sim
            sim.queue.schedule(sim.now + self._l1_latency, callback)
            return
        self.trace.l1_miss(self.core_id, line)
        kind = MessageKind.GETX if need_exclusive else MessageKind.GETS
        req = Request(kind, line, self.core_id, is_lease, callback)
        self._outstanding = _Outstanding(req, callback)
        self.directory.issue(req)

    # -- grant path (called by the directory) --------------------------------

    def fill_granted(self, req: Request, state: LineState) -> None:
        """Synchronous L1 tag update at directory grant time."""
        out = self._outstanding
        if out is None or out.req is not req:
            raise ProtocolError(
                f"core {self.core_id}: grant for unknown request {req}")
        victim = self.l1.fill(req.line, state)
        if victim is not None:
            vline, vstate = victim
            kind = (MessageKind.PUTM if vstate == LineState.M
                    else MessageKind.PUTS)
            self.directory.issue_eviction(kind, vline, self.core_id)
        out.granted = True

    def complete_request(self, req: Request) -> None:
        """Data message arrived: commit the waiting access, then service any
        probe that landed between grant and completion."""
        out = self._outstanding
        if out is None or out.req is not req:
            raise ProtocolError(
                f"core {self.core_id}: completion for unknown request {req}")
        self._outstanding = None
        if out.deferred_probe is not None:
            self._probe_pending = True
            try:
                out.callback()
            finally:
                self._probe_pending = False
            self._route_probe(out.deferred_probe)
        else:
            out.callback()

    # -- probe path ----------------------------------------------------------

    def handle_probe(self, probe: Probe) -> None:
        """A probe arrived from the directory."""
        out = self._outstanding
        if out is not None and out.req.line == probe.line and out.granted:
            # Ownership was granted but the waiting access has not committed
            # yet; a real core completes that access before the probe.
            if out.deferred_probe is not None:
                raise ProtocolError(
                    f"core {self.core_id}: two probes deferred on line "
                    f"{probe.line}")
            out.deferred_probe = probe
            self.trace.probe_deferred(self.core_id, probe.line)
            return
        self._route_probe(probe)

    def _route_probe(self, probe: Probe) -> None:
        """Consult the lease table, then either queue or apply the probe."""
        if self.lease_mgr is not None and self.lease_mgr.try_queue_probe(probe):
            return
        self.apply_probe(probe)

    def apply_probe(self, probe: Probe) -> None:
        """Service a probe now: downgrade/invalidate the L1 line, reply."""
        st = self.l1.state_of(probe.line)
        if st == _LI:
            self.trace.probe_serviced(self.core_id, probe.line,
                                      probe.kind.val, stale=True,
                                      data=False)
            self.directory.probe_reply(probe, False)
            return
        if probe.kind is MessageKind.INV:
            self.l1.invalidate(probe.line)
            # Only a dirty line's ack carries data back home.
            self.trace.probe_serviced(self.core_id, probe.line,
                                      probe.kind.val, stale=False,
                                      data=st == _LM)
            self.directory.probe_reply(probe, st == _LM)
        elif probe.kind is MessageKind.DOWNGRADE:
            if st >= _LE:
                self.l1.set_state(probe.line, LineState.S)
                self.trace.probe_serviced(self.core_id, probe.line,
                                          probe.kind.val, stale=False,
                                          data=st == _LM)
                self.directory.probe_reply(probe, st == _LM)
            else:
                self.trace.probe_serviced(self.core_id, probe.line,
                                          probe.kind.val, stale=True,
                                          data=False)
                self.directory.probe_reply(probe, False)
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unexpected probe kind {probe.kind}")

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self, codec) -> dict:
        """The outstanding slot (pooled: its Request is shared with the
        directory) -- the L1 serializes separately."""
        return {"outstanding": codec.encode(self._outstanding),
                "l1": self.l1.state_dict()}

    def load_state(self, state: dict, codec) -> None:
        self._outstanding = codec.decode(state["outstanding"])
        self.l1.load_state(state["l1"])

    # -- introspection -------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._outstanding is not None

    @property
    def deferred_probe_line(self) -> int | None:
        """Line of the probe deferred behind the outstanding access, if any
        (used by the continuous invariant checker for Proposition 1)."""
        out = self._outstanding
        if out is not None and out.deferred_probe is not None:
            return out.deferred_probe.line
        return None
