"""Coherence message kinds (for accounting; delivery is by the network)."""

from __future__ import annotations

from enum import Enum


class MessageKind(Enum):
    """Coherence message types exchanged between cores and the directory."""

    GETS = "GetS"          # core -> dir: read request
    GETX = "GetX"          # core -> dir: ownership request
    INV = "Inv"            # dir -> core: invalidate probe
    DOWNGRADE = "Down"     # dir -> core: downgrade-to-shared probe
    ACK = "Ack"            # core -> dir: probe acknowledgement
    DATA = "Data"          # dir -> core: grant with line payload
    PUTM = "PutM"          # core -> dir: dirty eviction (writeback)
    PUTS = "PutS"          # core -> dir: clean shared eviction notice
    NACK = "Nack"          # dir -> core: retry later (fault injection)

    #: Kinds that carry a cache-line data payload.
    @property
    def carries_data(self) -> bool:
        return self in (MessageKind.DATA, MessageKind.PUTM)


# ``Enum.value`` and property access go through descriptors
# (``DynamicClassAttribute.__get__``), which shows up prominently in hot-loop
# profiles: the network consults the kind of every message it delivers.  Cache
# both as plain instance attributes on each member; ``.val``/``.carries`` are
# ordinary attribute loads with no descriptor call.
for _m in MessageKind:
    _m.val = _m.value
    _m.carries = _m in (MessageKind.DATA, MessageKind.PUTM)
del _m
