"""Directory controller with per-line FIFO request queues.

Each cache line has an independent directory entry with its own FIFO queue
of pending requests, and at most one transaction per line is in flight at a
time.  This matches Graphite ("the directory structure in Graphite
implements a separate request queue per cache line") and the paper's
Assumption 1, and yields Proposition 1: at any time at most one request per
line is queued at a core -- the one currently being serviced -- while all
others wait in the line's directory queue.

Transaction flow (MSI):

* ``GetS``  -- MODIFIED: downgrade probe to owner, writeback, grant S.
             SHARED/UNCACHED: fetch from L2 (DRAM on cold miss), grant S.
* ``GetX``  -- MODIFIED: invalidate probe to owner, grant M.
             SHARED: invalidate all other sharers, collect acks, grant M
             (no data fetch if the requester was itself a sharer: upgrade).
             UNCACHED: fetch, grant M.
* ``PutM``/``PutS`` -- eviction notices; applied only if still accurate
             (the core may have re-acquired the line since: stale notices
             are dropped harmlessly because data lives in the backing
             store, not in the caches).

The requester's L1 tags are updated synchronously at grant time (so the
directory's sharer/owner bookkeeping and the L1 states never disagree), but
the requesting *thread* resumes only when the data message arrives at its
tile.  Probes arriving in that window are deferred by the core's
:class:`~repro.coherence.memunit.MemUnit` until the pending access commits,
modeling a real core completing the waiting access before servicing probes.

Storage layout
--------------

Per-line directory state lives in flat arrays indexed by line id --
``_st`` (DirState as int), ``_owner`` (-1 = none), ``_sharers`` (bitmask of
core ids), ``_busy`` (bytearray) -- with per-line FIFO queues allocated
lazily in ``_queues`` only for lines that ever see contention.  The hot
transaction paths index the arrays directly; :class:`DirEntry` survives as
a *view* over one line's columns for introspection, invariant checking and
checkpointing.  Sharer iteration walks the bitmask in ascending bit order,
which is exactly the canonical sorted order the probe fan-out requires.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from ..engine import Simulator
from ..errors import ProtocolError
from ..mem import AddressMap
from ..trace import TraceBus
from .l2 import SharedL2
from .messages import MessageKind
from .network import MeshNetwork
from .states import DirState, LineState

if TYPE_CHECKING:  # pragma: no cover
    from .memunit import MemUnit

_DU = int(DirState.UNCACHED)
_DS = int(DirState.SHARED)
_DM = int(DirState.MODIFIED)
_LI = int(LineState.I)


class Request:
    """One coherence request from a core, queued per line at the directory."""

    __slots__ = ("kind", "line", "core_id", "is_lease", "callback",
                 "had_shared", "probe_carried_data", "attempts",
                 "probe_stage", "pending_acks")

    def __init__(self, kind: MessageKind, line: int, core_id: int,
                 is_lease: bool, callback: Callable[[], None]) -> None:
        self.kind = kind
        self.line = line
        self.core_id = core_id
        self.is_lease = is_lease
        self.callback = callback
        #: Requester held the line in S when issuing (upgrade; no data).
        self.had_shared = False
        #: The owner's probe reply carried dirty data (writeback needed).
        self.probe_carried_data = False
        #: Times this request was NACKed by fault injection (see _arrive).
        self.attempts = 0
        #: Which transaction step the outstanding probe(s) belong to
        #: ("gets_owner" | "getx_owner" | "inv_sharers"); kept as data so
        #: in-flight requests serialize without pickling continuations.
        self.probe_stage: str | None = None
        #: Remaining invalidation acks in the "inv_sharers" stage.
        self.pending_acks = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Req {self.kind.value} line={self.line} core={self.core_id}"
                f"{' lease' if self.is_lease else ''}>")


class _Eviction:
    """A PutM/PutS eviction notice travelling to the directory."""

    __slots__ = ("kind", "line", "core_id")

    def __init__(self, kind: MessageKind, line: int, core_id: int) -> None:
        self.kind = kind
        self.line = line
        self.core_id = core_id


def _mask_to_sorted(mask: int) -> list[int]:
    """Decompose a sharer bitmask into an ascending core-id list."""
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


class DirEntry:
    """Read/write view over one line's columns in the directory arrays.

    Kept for introspection (tests, the invariant tracer, checkpointing);
    the transaction hot paths index the flat arrays directly.
    """

    __slots__ = ("_d", "line")

    def __init__(self, directory: "Directory", line: int) -> None:
        self._d = directory
        self.line = line

    @property
    def state(self) -> DirState:
        d = self._d
        return DirState(d._st[self.line]) if self.line < d._n \
            else DirState.UNCACHED

    @state.setter
    def state(self, value: DirState) -> None:
        self._d._ensure(self.line)
        self._d._st[self.line] = int(value)

    @property
    def owner(self) -> int | None:
        d = self._d
        if self.line >= d._n:
            return None
        o = d._owner[self.line]
        return None if o < 0 else o

    @owner.setter
    def owner(self, value: int | None) -> None:
        self._d._ensure(self.line)
        self._d._owner[self.line] = -1 if value is None else value

    @property
    def sharers(self) -> set[int]:
        d = self._d
        mask = d._sharers[self.line] if self.line < d._n else 0
        return set(_mask_to_sorted(mask))

    @property
    def busy(self) -> bool:
        d = self._d
        return bool(d._busy[self.line]) if self.line < d._n else False

    @property
    def queue(self) -> deque:
        q = self._d._queues.get(self.line)
        return q if q is not None else deque()


class Directory:
    """The (logically distributed) MSI directory."""

    __slots__ = ("amap", "network", "l2", "sim", "trace", "mesi", "faults",
                 "mem_units", "_ntiles", "_n", "_st", "_owner", "_sharers",
                 "_busy", "_queues", "_probe_cls")

    def __init__(self, amap: AddressMap, network: MeshNetwork,
                 l2: SharedL2, sim: Simulator, trace: TraceBus,
                 *, mesi: bool = False, faults=None) -> None:
        self.amap = amap
        self.network = network
        self.l2 = l2
        self.sim = sim
        self.trace = trace
        #: Grant exclusive-clean (E) on read misses to uncached lines.
        self.mesi = mesi
        #: Optional :class:`~repro.faults.FaultPlan`; when set, arriving
        #: requests may be NACKed and retried with exponential backoff.
        self.faults = faults
        self._ntiles = amap.num_tiles
        # Flat per-line columns (see module docstring).
        self._n = 0
        self._st: list[int] = []
        self._owner: list[int] = []
        self._sharers: list[int] = []
        self._busy = bytearray()
        self._queues: dict[int, deque] = {}
        #: Wired by the Machine after cores are built.
        self.mem_units: list["MemUnit"] = []
        # Cache the Probe class once: the import cycle with .memunit only
        # bites at module load time, and a per-probe local import shows up
        # in hot-loop profiles as import-machinery overhead.
        from .memunit import Probe
        self._probe_cls = Probe

    def _ensure(self, line: int) -> None:
        n = self._n
        if line >= n:
            grow = line + 1 - n
            self._st.extend([_DU] * grow)
            self._owner.extend([-1] * grow)
            self._sharers.extend([0] * grow)
            self._busy.extend(b"\x00" * grow)
            self._n = line + 1

    @property
    def entries(self) -> dict[int, DirEntry]:
        """Views over every line the directory has ever tracked (tests and
        the invariant tracer iterate this; built on demand)."""
        return {line: DirEntry(self, line) for line in range(self._n)}

    def _entry(self, line: int) -> DirEntry:
        self._ensure(line)
        return DirEntry(self, line)

    # -- ingress ---------------------------------------------------------

    def issue(self, req: Request) -> None:
        """Send ``req`` from its core to the line's home tile."""
        self.trace.req_issued(req.core_id, req.line, req.kind.val,
                              req.is_lease)
        self.network.send(req.core_id, req.line % self._ntiles, req.kind,
                          self._arrive, req)

    def issue_eviction(self, kind: MessageKind, line: int,
                       core_id: int) -> None:
        """Send a PutM/PutS notice from ``core_id`` to the home tile."""
        self.trace.eviction_issued(core_id, line, kind.val)
        ev = _Eviction(kind, line, core_id)
        self.network.send(core_id, line % self._ntiles, kind,
                          self._arrive, ev)

    def _arrive(self, req) -> None:
        # Fault injection: NACK the arrival before it touches the entry
        # (so no directory state needs undoing).  Evictions are never
        # NACKed -- they carry no response path to retry from.
        if self.faults is not None and type(req) is not _Eviction \
                and self.faults.should_nack(req.attempts):
            req.attempts += 1
            self.trace.dir_nack(req.core_id, req.line, req.attempts)
            delay = self.faults.retry_delay(req.attempts)
            self.trace.retry_scheduled(req.core_id, req.line,
                                       req.attempts, delay)
            self.network.send(req.line % self._ntiles, req.core_id,
                              MessageKind.NACK, self._retry_after, req, delay)
            return
        line = req.line
        if line >= self._n:
            self._ensure(line)
        if self._busy[line]:
            q = self._queues.get(line)
            if q is None:
                q = self._queues[line] = deque()
            q.append(req)
            self.trace.req_queued(req.core_id, line, len(q))
            return
        self._start(req)

    def _retry_after(self, req: Request, delay: int) -> None:
        """NACK arrived back at the requesting core: back off, re-issue.
        The *same* Request object travels again, so the MemUnit's
        outstanding-access bookkeeping still matches on completion."""
        self.sim.after(delay, self.issue, req)

    def _start(self, req) -> None:
        self._busy[req.line] = 1
        sim = self.sim
        if type(req) is _Eviction:
            # Evictions carry no response; apply after the tag lookup.
            sim.queue.schedule(sim.now + self.l2.lookup_latency(),
                               self._apply_eviction, req)
        else:
            sim.queue.schedule(sim.now + self.l2.lookup_latency(),
                               self._process, req)

    def _finish(self, line: int) -> None:
        self._busy[line] = 0
        q = self._queues.get(line)
        if q:
            self._start(q.popleft())

    # -- evictions --------------------------------------------------------

    def _apply_eviction(self, ev: _Eviction) -> None:
        line = ev.line
        core_l1 = self.mem_units[ev.core_id].l1
        # Drop stale notices: only apply if the core still does not hold the
        # line (it may have re-acquired it since evicting).
        applied = core_l1.state_of(line) == _LI
        self.trace.eviction_applied(ev.core_id, line, applied)
        if applied:
            if ev.kind is MessageKind.PUTM:
                if self._st[line] == _DM and self._owner[line] == ev.core_id:
                    self.l2.writeback(line)
                    self._st[line] = _DU
                    self._owner[line] = -1
            else:  # PUTS (clean drop: a shared copy, or an E line in MESI)
                if self._st[line] == _DM and self._owner[line] == ev.core_id:
                    self._st[line] = _DU
                    self._owner[line] = -1
                else:
                    mask = self._sharers[line] & ~(1 << ev.core_id)
                    self._sharers[line] = mask
                    if self._st[line] == _DS and not mask:
                        self._st[line] = _DU
        self._finish(line)

    # -- main transactions ---------------------------------------------------

    def _process(self, req: Request) -> None:
        if req.kind is MessageKind.GETS:
            self._process_gets(req)
        elif req.kind is MessageKind.GETX:
            self._process_getx(req)
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unexpected request kind {req.kind}")

    def _process_gets(self, req: Request) -> None:
        line = req.line
        st = self._st[line]
        owner = self._owner[line]
        if st == _DM and owner != req.core_id:
            self._send_probe(owner, req, MessageKind.DOWNGRADE,
                             "gets_owner")
        elif st == _DU and self.mesi:
            # MESI: a read miss to an uncached line is granted
            # exclusive-clean, enabling later silent E->M upgrades.
            self._grant(req, LineState.E, fetch=True)
        else:
            # SHARED, or (stale) owner==requester: serve from L2.
            self._grant(req, LineState.S, fetch=True)

    def _gets_owner_replied(self, req: Request) -> None:
        """Owner acknowledged the downgrade (now holds S; data written back
        if the line was dirty)."""
        line = req.line
        owner = self._owner[line]
        if req.probe_carried_data:
            self.l2.writeback(line)
        self._st[line] = _DS
        self._owner[line] = -1
        if owner >= 0:
            self._sharers[line] |= 1 << owner
        self._grant(req, LineState.S, fetch=False)

    def _process_getx(self, req: Request) -> None:
        line = req.line
        st = self._st[line]
        owner = self._owner[line]
        if st == _DM and owner != req.core_id:
            self._send_probe(owner, req, MessageKind.INV,
                             "getx_owner")
        elif st == _DS:
            # Probe fan-out walks the sharer mask in ascending bit order:
            # the canonical (sorted) order, independent of how the mask was
            # rebuilt -- a checkpoint restore must not reorder probes.
            mask = self._sharers[line]
            bit = 1 << req.core_id
            req.had_shared = bool(mask & bit)
            others = mask & ~bit
            if others:
                self._inv_sharers(req, others)
            else:
                self._grant(req, LineState.M, fetch=not req.had_shared)
        else:
            # UNCACHED or stale owner==requester.
            self._grant(req, LineState.M, fetch=st == _DU)

    def _getx_owner_replied(self, req: Request) -> None:
        """Owner acknowledged the invalidation (dirty data came back)."""
        line = req.line
        if req.probe_carried_data:
            self.l2.writeback(line)
        self._owner[line] = -1
        self._st[line] = _DU
        self._grant(req, LineState.M, fetch=False)

    def _inv_sharers(self, req: Request, mask: int) -> None:
        req.pending_acks = mask.bit_count()
        while mask:
            low = mask & -mask
            self._send_probe(low.bit_length() - 1, req,
                             MessageKind.INV, "inv_sharers")
            mask ^= low

    # -- probes ------------------------------------------------------------

    def _send_probe(self, target_core: int, req: Request,
                    kind: MessageKind, stage: str) -> None:
        """Forward a probe to ``target_core``; when the core's reply
        arrives back at the home tile, :meth:`_probe_done` continues the
        transaction step named by ``stage``."""
        self.trace.probe_sent(target_core, req.line, kind.val)
        req.probe_stage = stage
        probe = self._probe_cls(line=req.line, kind=kind,
                                requester_is_lease=req.is_lease, req=req,
                                target_core=target_core)
        self.network.send(req.line % self._ntiles, target_core, kind,
                          self.mem_units[target_core].handle_probe, probe)

    def probe_reply(self, probe, carries_data: bool) -> None:
        """The probed core serviced ``probe``: route the DATA/ACK reply
        back to the home tile (called by the core's memory unit, exactly
        once per probe, possibly after a lease delay)."""
        req = probe.req
        req.probe_carried_data = carries_data
        kind_back = MessageKind.DATA if carries_data else MessageKind.ACK
        self.network.send(probe.target_core, req.line % self._ntiles,
                          kind_back, self._probe_done, req)

    def _probe_done(self, req: Request) -> None:
        """A probe reply arrived at the home tile: resume the transaction
        step recorded in ``req.probe_stage``."""
        stage = req.probe_stage
        if stage == "gets_owner":
            self._gets_owner_replied(req)
        elif stage == "getx_owner":
            self._getx_owner_replied(req)
        elif stage == "inv_sharers":
            req.pending_acks -= 1
            if req.pending_acks == 0:
                line = req.line
                self._sharers[line] = 0
                self._st[line] = _DU
                self._grant(req, LineState.M, fetch=not req.had_shared)
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"probe reply with no stage on {req}")

    # -- grant ---------------------------------------------------------------

    def _grant(self, req: Request, state: LineState, *, fetch: bool) -> None:
        line = req.line
        if state is LineState.M or state is LineState.E:
            # E and M are merged at the directory: one exclusive owner.
            self._st[line] = _DM
            self._owner[line] = req.core_id
            self._sharers[line] = 0
        else:
            self._st[line] = _DS
            self._owner[line] = -1
            self._sharers[line] |= 1 << req.core_id
        # L1 tags update now so directory and caches never disagree...
        unit = self.mem_units[req.core_id]
        unit.fill_granted(req, state)
        self.trace.req_granted(req.core_id, line, state.name, fetch)
        # ...but the thread resumes when the data message arrives.  The
        # fetch goes through the network's grant seam: a pure delay on the
        # contention-free model (the scheduled event is exactly the send
        # this code used to schedule itself), a serialized memory-port
        # occupancy on a contended one.
        lat = self.l2.fetch_latency(line) if fetch else 0
        kind = MessageKind.ACK if req.had_shared else MessageKind.DATA
        self.network.grant_delivery(line % self._ntiles, req.core_id, kind,
                                    lat, unit.complete_request, req)
        self._finish(line)

    # -- warm allocation -------------------------------------------------------

    def preinstall_owned(self, line: int, core_id: int) -> None:
        """Install a *fresh* line directly into ``core_id``'s L1 in M state
        (no traffic).  Models a freshly allocated object that the allocating
        core's local pool already holds.  Only valid for lines that have
        never entered coherence circulation."""
        self._ensure(line)
        if self._busy[line] or self._queues.get(line) \
                or self._st[line] != _DU:
            raise ProtocolError(
                f"preinstall_owned on circulating line {line}")
        self._st[line] = _DM
        self._owner[line] = core_id
        unit = self.mem_units[core_id]
        victim = unit.l1.fill(line, LineState.M)
        if victim is not None:
            vline, vstate = victim
            kind = (MessageKind.PUTM if vstate == LineState.M
                    else MessageKind.PUTS)
            self.issue_eviction(kind, vline, core_id)
        self.l2.mark_warm(line)

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self, codec) -> dict:
        """Every line holding non-default state, with its per-line FIFO
        queue.  Sharer sets encode sorted (the codec's canonical set form);
        the queue's Request / _Eviction objects go through the identity
        pool so the same object referenced from the event queue stays the
        same object."""
        entries = []
        for line in range(self._n):
            st = self._st[line]
            owner = self._owner[line]
            mask = self._sharers[line]
            busy = bool(self._busy[line])
            q = self._queues.get(line)
            if not (st or mask or busy or q or owner >= 0):
                continue
            entries.append(
                [line, {"state": DirState(st).name,
                        "owner": None if owner < 0 else owner,
                        "sharers": _mask_to_sorted(mask),
                        "busy": busy,
                        "queue": [codec.encode(r) for r in (q or ())]}])
        return {"entries": entries}

    def load_state(self, state: dict, codec) -> None:
        self._n = 0
        self._st = []
        self._owner = []
        self._sharers = []
        self._busy = bytearray()
        self._queues = {}
        for line, es in state["entries"]:
            self._ensure(line)
            self._st[line] = int(DirState[es["state"]])
            owner = es["owner"]
            self._owner[line] = -1 if owner is None else owner
            mask = 0
            for c in es["sharers"]:
                mask |= 1 << c
            self._sharers[line] = mask
            self._busy[line] = 1 if es["busy"] else 0
            if es["queue"]:
                self._queues[line] = deque(
                    codec.decode(r) for r in es["queue"])

    # -- introspection (used by tests) ----------------------------------------

    def state_of(self, line: int) -> DirState:
        return DirState(self._st[line]) if line < self._n \
            else DirState.UNCACHED

    def owner_of(self, line: int) -> int | None:
        if line >= self._n:
            return None
        o = self._owner[line]
        return None if o < 0 else o

    def sharers_of(self, line: int) -> frozenset[int]:
        mask = self._sharers[line] if line < self._n else 0
        return frozenset(_mask_to_sorted(mask))

    def check_invariants(self) -> None:
        """Assert directory/L1 agreement (exact, thanks to synchronous tag
        updates).  Called by tests after quiescence."""
        for line in range(self._n):
            self.check_line(line)

    def check_line(self, line: int, e: DirEntry | None = None) -> None:
        """Assert directory/L1 agreement for one *settled* line (no busy
        transaction, no in-flight eviction notice).  The continuous
        :class:`~repro.trace.invariants.InvariantTracer` calls this per
        line so it can exclude lines with in-flight activity."""
        st_d = self._st[line] if line < self._n else _DU
        if st_d == _DM:
            owner = self._owner[line]
            if owner < 0:
                raise ProtocolError(f"line {line}: MODIFIED, no owner")
            st = self.mem_units[owner].l1.state_of(line)
            if st != LineState.M and st != LineState.E:
                raise ProtocolError(
                    f"line {line}: dir says owner {owner} but L1 is "
                    f"{LineState(st).name}")
            for u in self.mem_units:
                if u.core_id != owner and \
                        u.l1.state_of(line) != LineState.I:
                    raise ProtocolError(
                        f"line {line}: core {u.core_id} holds "
                        f"{LineState(u.l1.state_of(line)).name} "
                        "while MODIFIED")
        elif st_d == _DS:
            mask = self._sharers[line]
            for u in self.mem_units:
                st = u.l1.state_of(line)
                if st == LineState.M or st == LineState.E:
                    raise ProtocolError(
                        f"line {line}: core {u.core_id} holds "
                        f"{LineState(st).name} while dir says SHARED")
                if st == LineState.S and not (mask >> u.core_id) & 1:
                    raise ProtocolError(
                        f"line {line}: core {u.core_id} holds S but is "
                        "not a recorded sharer")
        else:
            for u in self.mem_units:
                if u.l1.state_of(line) != LineState.I:
                    raise ProtocolError(
                        f"line {line}: core {u.core_id} holds "
                        f"{LineState(u.l1.state_of(line)).name} "
                        "while UNCACHED")
