"""Directory controller with per-line FIFO request queues.

Each cache line has an independent directory entry with its own FIFO queue
of pending requests, and at most one transaction per line is in flight at a
time.  This matches Graphite ("the directory structure in Graphite
implements a separate request queue per cache line") and the paper's
Assumption 1, and yields Proposition 1: at any time at most one request per
line is queued at a core -- the one currently being serviced -- while all
others wait in the line's directory queue.

Transaction flow (MSI):

* ``GetS``  -- MODIFIED: downgrade probe to owner, writeback, grant S.
             SHARED/UNCACHED: fetch from L2 (DRAM on cold miss), grant S.
* ``GetX``  -- MODIFIED: invalidate probe to owner, grant M.
             SHARED: invalidate all other sharers, collect acks, grant M
             (no data fetch if the requester was itself a sharer: upgrade).
             UNCACHED: fetch, grant M.
* ``PutM``/``PutS`` -- eviction notices; applied only if still accurate
             (the core may have re-acquired the line since: stale notices
             are dropped harmlessly because data lives in the backing
             store, not in the caches).

The requester's L1 tags are updated synchronously at grant time (so the
directory's sharer/owner bookkeeping and the L1 states never disagree), but
the requesting *thread* resumes only when the data message arrives at its
tile.  Probes arriving in that window are deferred by the core's
:class:`~repro.coherence.memunit.MemUnit` until the pending access commits,
modeling a real core completing the waiting access before servicing probes.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from ..engine import Simulator
from ..errors import ProtocolError
from ..mem import AddressMap
from ..trace import TraceBus
from .l2 import SharedL2
from .messages import MessageKind
from .network import MeshNetwork
from .states import DirState, LineState

if TYPE_CHECKING:  # pragma: no cover
    from .memunit import MemUnit


class Request:
    """One coherence request from a core, queued per line at the directory."""

    __slots__ = ("kind", "line", "core_id", "is_lease", "callback",
                 "had_shared", "probe_carried_data", "attempts",
                 "probe_stage", "pending_acks")

    def __init__(self, kind: MessageKind, line: int, core_id: int,
                 is_lease: bool, callback: Callable[[], None]) -> None:
        self.kind = kind
        self.line = line
        self.core_id = core_id
        self.is_lease = is_lease
        self.callback = callback
        #: Requester held the line in S when issuing (upgrade; no data).
        self.had_shared = False
        #: The owner's probe reply carried dirty data (writeback needed).
        self.probe_carried_data = False
        #: Times this request was NACKed by fault injection (see _arrive).
        self.attempts = 0
        #: Which transaction step the outstanding probe(s) belong to
        #: ("gets_owner" | "getx_owner" | "inv_sharers"); kept as data so
        #: in-flight requests serialize without pickling continuations.
        self.probe_stage: str | None = None
        #: Remaining invalidation acks in the "inv_sharers" stage.
        self.pending_acks = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Req {self.kind.value} line={self.line} core={self.core_id}"
                f"{' lease' if self.is_lease else ''}>")


class _Eviction:
    """A PutM/PutS eviction notice travelling to the directory."""

    __slots__ = ("kind", "line", "core_id")

    def __init__(self, kind: MessageKind, line: int, core_id: int) -> None:
        self.kind = kind
        self.line = line
        self.core_id = core_id


class DirEntry:
    __slots__ = ("state", "owner", "sharers", "busy", "queue")

    def __init__(self) -> None:
        self.state = DirState.UNCACHED
        self.owner: int | None = None
        self.sharers: set[int] = set()
        self.busy = False
        self.queue: deque = deque()


class Directory:
    """The (logically distributed) MSI directory."""

    def __init__(self, amap: AddressMap, network: MeshNetwork,
                 l2: SharedL2, sim: Simulator, trace: TraceBus,
                 *, mesi: bool = False, faults=None) -> None:
        self.amap = amap
        self.network = network
        self.l2 = l2
        self.sim = sim
        self.trace = trace
        #: Grant exclusive-clean (E) on read misses to uncached lines.
        self.mesi = mesi
        #: Optional :class:`~repro.faults.FaultPlan`; when set, arriving
        #: requests may be NACKed and retried with exponential backoff.
        self.faults = faults
        self.entries: dict[int, DirEntry] = {}
        #: Wired by the Machine after cores are built.
        self.mem_units: list["MemUnit"] = []

    def _entry(self, line: int) -> DirEntry:
        e = self.entries.get(line)
        if e is None:
            e = self.entries[line] = DirEntry()
        return e

    # -- ingress ---------------------------------------------------------

    def issue(self, req: Request) -> None:
        """Send ``req`` from its core to the line's home tile."""
        self.trace.req_issued(req.core_id, req.line, req.kind.value,
                                  req.is_lease)
        home = self.amap.home_tile(req.line)
        self.network.send(req.core_id, home, req.kind, self._arrive, req)

    def issue_eviction(self, kind: MessageKind, line: int,
                       core_id: int) -> None:
        """Send a PutM/PutS notice from ``core_id`` to the home tile."""
        self.trace.eviction_issued(core_id, line, kind.value)
        home = self.amap.home_tile(line)
        ev = _Eviction(kind, line, core_id)
        self.network.send(core_id, home, kind, self._arrive, ev)

    def _arrive(self, req) -> None:
        # Fault injection: NACK the arrival before it touches the entry
        # (so no directory state needs undoing).  Evictions are never
        # NACKed -- they carry no response path to retry from.
        if self.faults is not None and not isinstance(req, _Eviction) \
                and self.faults.should_nack(req.attempts):
            req.attempts += 1
            self.trace.dir_nack(req.core_id, req.line, req.attempts)
            delay = self.faults.retry_delay(req.attempts)
            self.trace.retry_scheduled(req.core_id, req.line,
                                       req.attempts, delay)
            home = self.amap.home_tile(req.line)
            self.network.send(home, req.core_id, MessageKind.NACK,
                              self._retry_after, req, delay)
            return
        e = self._entry(req.line)
        if e.busy:
            e.queue.append(req)
            self.trace.req_queued(req.core_id, req.line, len(e.queue))
            return
        self._start(req)

    def _retry_after(self, req: Request, delay: int) -> None:
        """NACK arrived back at the requesting core: back off, re-issue.
        The *same* Request object travels again, so the MemUnit's
        outstanding-access bookkeeping still matches on completion."""
        self.sim.after(delay, self.issue, req)

    def _start(self, req) -> None:
        e = self._entry(req.line)
        e.busy = True
        if isinstance(req, _Eviction):
            # Evictions carry no response; apply after the tag lookup.
            self.sim.after(self.l2.lookup_latency(),
                           self._apply_eviction, req)
        else:
            self.sim.after(self.l2.lookup_latency(), self._process, req)

    def _finish(self, line: int) -> None:
        e = self._entry(line)
        e.busy = False
        if e.queue:
            self._start(e.queue.popleft())

    # -- evictions --------------------------------------------------------

    def _apply_eviction(self, ev: _Eviction) -> None:
        e = self._entry(ev.line)
        core_l1 = self.mem_units[ev.core_id].l1
        # Drop stale notices: only apply if the core still does not hold the
        # line (it may have re-acquired it since evicting).
        applied = core_l1.state_of(ev.line) == LineState.I
        self.trace.eviction_applied(ev.core_id, ev.line, applied)
        if applied:
            if ev.kind is MessageKind.PUTM:
                if e.state == DirState.MODIFIED and e.owner == ev.core_id:
                    self.l2.writeback(ev.line)
                    e.state = DirState.UNCACHED
                    e.owner = None
            else:  # PUTS (clean drop: a shared copy, or an E line in MESI)
                if e.state == DirState.MODIFIED and e.owner == ev.core_id:
                    e.state = DirState.UNCACHED
                    e.owner = None
                else:
                    e.sharers.discard(ev.core_id)
                    if e.state == DirState.SHARED and not e.sharers:
                        e.state = DirState.UNCACHED
        self._finish(ev.line)

    # -- main transactions ---------------------------------------------------

    def _process(self, req: Request) -> None:
        e = self._entry(req.line)
        if req.kind is MessageKind.GETS:
            self._process_gets(req, e)
        elif req.kind is MessageKind.GETX:
            self._process_getx(req, e)
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unexpected request kind {req.kind}")

    def _process_gets(self, req: Request, e: DirEntry) -> None:
        if e.state == DirState.MODIFIED and e.owner != req.core_id:
            owner = e.owner
            assert owner is not None
            self._send_probe(owner, req, MessageKind.DOWNGRADE,
                             "gets_owner")
        elif e.state == DirState.UNCACHED and self.mesi:
            # MESI: a read miss to an uncached line is granted
            # exclusive-clean, enabling later silent E->M upgrades.
            self._grant(req, LineState.E, fetch=True)
        else:
            # SHARED, or (stale) owner==requester: serve from L2.
            self._grant(req, LineState.S, fetch=True)

    def _gets_owner_replied(self, req: Request) -> None:
        """Owner acknowledged the downgrade (now holds S; data written back
        if the line was dirty)."""
        e = self._entry(req.line)
        owner = e.owner
        if req.probe_carried_data:
            self.l2.writeback(req.line)
        e.state = DirState.SHARED
        e.owner = None
        if owner is not None:
            e.sharers.add(owner)
        self._grant(req, LineState.S, fetch=False)

    def _process_getx(self, req: Request, e: DirEntry) -> None:
        if e.state == DirState.MODIFIED and e.owner != req.core_id:
            owner = e.owner
            assert owner is not None
            self._send_probe(owner, req, MessageKind.INV,
                             "getx_owner")
        elif e.state == DirState.SHARED:
            # Canonical (sorted) sharer order: probe fan-out must not
            # depend on set-internal iteration order, or a checkpoint
            # restore could legally rebuild the set with a different
            # order and diverge from the straight-through run.
            targets = [c for c in sorted(e.sharers) if c != req.core_id]
            req.had_shared = req.core_id in e.sharers
            if targets:
                self._inv_sharers(req, targets)
            else:
                self._grant(req, LineState.M, fetch=not req.had_shared)
        else:
            # UNCACHED or stale owner==requester.
            self._grant(req, LineState.M, fetch=e.state == DirState.UNCACHED)

    def _getx_owner_replied(self, req: Request) -> None:
        """Owner acknowledged the invalidation (dirty data came back)."""
        if req.probe_carried_data:
            self.l2.writeback(req.line)
        e = self._entry(req.line)
        e.owner = None
        e.state = DirState.UNCACHED
        self._grant(req, LineState.M, fetch=False)

    def _inv_sharers(self, req: Request, targets: list[int]) -> None:
        req.pending_acks = len(targets)
        for core in targets:
            self._send_probe(core, req, MessageKind.INV, "inv_sharers")

    # -- probes ------------------------------------------------------------

    def _send_probe(self, target_core: int, req: Request,
                    kind: MessageKind, stage: str) -> None:
        """Forward a probe to ``target_core``; when the core's reply
        arrives back at the home tile, :meth:`_probe_done` continues the
        transaction step named by ``stage``."""
        from .memunit import Probe  # local import to avoid cycle

        self.trace.probe_sent(target_core, req.line, kind.value)
        home = self.amap.home_tile(req.line)
        req.probe_stage = stage
        probe = Probe(line=req.line, kind=kind,
                      requester_is_lease=req.is_lease, req=req,
                      target_core=target_core)
        self.network.send(home, target_core, kind,
                          self.mem_units[target_core].handle_probe, probe)

    def probe_reply(self, probe, carries_data: bool) -> None:
        """The probed core serviced ``probe``: route the DATA/ACK reply
        back to the home tile (called by the core's memory unit, exactly
        once per probe, possibly after a lease delay)."""
        req = probe.req
        req.probe_carried_data = carries_data
        kind_back = MessageKind.DATA if carries_data else MessageKind.ACK
        home = self.amap.home_tile(req.line)
        self.network.send(probe.target_core, home, kind_back,
                          self._probe_done, req)

    def _probe_done(self, req: Request) -> None:
        """A probe reply arrived at the home tile: resume the transaction
        step recorded in ``req.probe_stage``."""
        stage = req.probe_stage
        if stage == "gets_owner":
            self._gets_owner_replied(req)
        elif stage == "getx_owner":
            self._getx_owner_replied(req)
        elif stage == "inv_sharers":
            req.pending_acks -= 1
            if req.pending_acks == 0:
                e = self._entry(req.line)
                e.sharers.clear()
                e.state = DirState.UNCACHED
                self._grant(req, LineState.M, fetch=not req.had_shared)
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"probe reply with no stage on {req}")

    # -- grant ---------------------------------------------------------------

    def _grant(self, req: Request, state: LineState, *, fetch: bool) -> None:
        e = self._entry(req.line)
        if state == LineState.M or state == LineState.E:
            # E and M are merged at the directory: one exclusive owner.
            e.state = DirState.MODIFIED
            e.owner = req.core_id
            e.sharers.clear()
        else:
            e.state = DirState.SHARED
            e.owner = None
            e.sharers.add(req.core_id)
        # L1 tags update now so directory and caches never disagree...
        unit = self.mem_units[req.core_id]
        unit.fill_granted(req, state)
        self.trace.req_granted(req.core_id, req.line, state.name, fetch)
        # ...but the thread resumes when the data message arrives.
        lat = self.l2.fetch_latency(req.line) if fetch else 0
        home = self.amap.home_tile(req.line)
        kind = MessageKind.ACK if req.had_shared else MessageKind.DATA
        self.sim.after(lat, self.network.send, home, req.core_id, kind,
                       unit.complete_request, req)
        self._finish(req.line)

    # -- warm allocation -------------------------------------------------------

    def preinstall_owned(self, line: int, core_id: int) -> None:
        """Install a *fresh* line directly into ``core_id``'s L1 in M state
        (no traffic).  Models a freshly allocated object that the allocating
        core's local pool already holds.  Only valid for lines that have
        never entered coherence circulation."""
        e = self._entry(line)
        if e.busy or e.queue or e.state != DirState.UNCACHED:
            raise ProtocolError(
                f"preinstall_owned on circulating line {line}")
        e.state = DirState.MODIFIED
        e.owner = core_id
        unit = self.mem_units[core_id]
        victim = unit.l1.fill(line, LineState.M)
        if victim is not None:
            vline, vstate = victim
            kind = (MessageKind.PUTM if vstate == LineState.M
                    else MessageKind.PUTS)
            self.issue_eviction(kind, vline, core_id)
        self.l2.mark_warm(line)

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self, codec) -> dict:
        """Every entry with its per-line FIFO queue.  Sharer sets encode
        sorted (the codec's canonical set form); the queue's Request /
        _Eviction objects go through the identity pool so the same object
        referenced from the event queue stays the same object."""
        return {"entries": [
            [line, {"state": e.state.name,
                    "owner": e.owner,
                    "sharers": sorted(e.sharers),
                    "busy": e.busy,
                    "queue": [codec.encode(r) for r in e.queue]}]
            for line, e in self.entries.items()
        ]}

    def load_state(self, state: dict, codec) -> None:
        self.entries = {}
        for line, es in state["entries"]:
            e = DirEntry()
            e.state = DirState[es["state"]]
            e.owner = es["owner"]
            e.sharers = set(es["sharers"])
            e.busy = es["busy"]
            e.queue = deque(codec.decode(r) for r in es["queue"])
            self.entries[line] = e

    # -- introspection (used by tests) ----------------------------------------

    def state_of(self, line: int) -> DirState:
        return self._entry(line).state

    def owner_of(self, line: int) -> int | None:
        return self._entry(line).owner

    def sharers_of(self, line: int) -> frozenset[int]:
        return frozenset(self._entry(line).sharers)

    def check_invariants(self) -> None:
        """Assert directory/L1 agreement (exact, thanks to synchronous tag
        updates).  Called by tests after quiescence."""
        for line, e in self.entries.items():
            self.check_line(line, e)

    def check_line(self, line: int, e: DirEntry | None = None) -> None:
        """Assert directory/L1 agreement for one *settled* line (no busy
        transaction, no in-flight eviction notice).  The continuous
        :class:`~repro.trace.invariants.InvariantTracer` calls this per
        line so it can exclude lines with in-flight activity."""
        if e is None:
            e = self._entry(line)
        if e.state == DirState.MODIFIED:
            if e.owner is None:
                raise ProtocolError(f"line {line}: MODIFIED, no owner")
            st = self.mem_units[e.owner].l1.state_of(line)
            if st != LineState.M and st != LineState.E:
                raise ProtocolError(
                    f"line {line}: dir says owner {e.owner} but L1 is "
                    f"{st.name}")
            for u in self.mem_units:
                if u.core_id != e.owner and \
                        u.l1.state_of(line) != LineState.I:
                    raise ProtocolError(
                        f"line {line}: core {u.core_id} holds "
                        f"{u.l1.state_of(line).name} while MODIFIED")
        elif e.state == DirState.SHARED:
            for u in self.mem_units:
                st = u.l1.state_of(line)
                if st == LineState.M or st == LineState.E:
                    raise ProtocolError(
                        f"line {line}: core {u.core_id} holds "
                        f"{st.name} while dir says SHARED")
                if st == LineState.S and u.core_id not in e.sharers:
                    raise ProtocolError(
                        f"line {line}: core {u.core_id} holds S but is "
                        "not a recorded sharer")
        else:
            for u in self.mem_units:
                if u.l1.state_of(line) != LineState.I:
                    raise ProtocolError(
                        f"line {line}: core {u.core_id} holds "
                        f"{u.l1.state_of(line).name} while UNCACHED")
