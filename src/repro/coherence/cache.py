"""Set-associative private L1 cache model (tags + state only).

Data values live in the global backing store (see :mod:`repro.mem.memory`);
the cache tracks presence and MSI state for timing and statistics.  Leased
lines (and lines holding a queued probe) are *pinned*: the hardware proposal
keeps them in the load buffer, so they are never silently evicted.  If every
way of a set is pinned the set temporarily over-fills (counted), mirroring
the separate load-buffer capacity.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import ProtocolError
from ..trace import TraceBus
from .states import LineState


class L1Cache:
    """LRU, set-associative tag store for one core."""

    __slots__ = ("num_sets", "assoc", "_sets", "_pinned", "trace", "core_id")

    def __init__(self, num_sets: int, assoc: int, trace: TraceBus,
                 core_id: int = 0) -> None:
        self.num_sets = num_sets
        self.assoc = assoc
        # One OrderedDict per set: line -> LineState, LRU order (front=old).
        self._sets: list[OrderedDict[int, LineState]] = [
            OrderedDict() for _ in range(num_sets)
        ]
        # line -> pin refcount.  A line may be pinned more than once (a
        # granted lease AND a queued probe each hold a reference); the
        # refcount catches unbalanced unpins that a plain set would
        # silently absorb.
        self._pinned: dict[int, int] = {}
        self.trace = trace
        self.core_id = core_id

    def _set_of(self, line: int) -> OrderedDict[int, LineState]:
        return self._sets[line % self.num_sets]

    # -- queries ------------------------------------------------------------

    def state_of(self, line: int) -> LineState:
        return self._set_of(line).get(line, LineState.I)

    def touch(self, line: int) -> None:
        """Mark ``line`` most-recently-used."""
        s = self._set_of(line)
        if line in s:
            s.move_to_end(line)

    def resident_lines(self) -> list[int]:
        return [line for s in self._sets for line in s]

    # -- pinning (leases) -----------------------------------------------------

    def pin(self, line: int) -> None:
        """Take one pin reference on ``line`` (lease grant, queued probe)."""
        self._pinned[line] = self._pinned.get(line, 0) + 1

    def unpin(self, line: int) -> None:
        """Drop one pin reference; underflow is a protocol bug, not a
        no-op (it would mean some release path double-counted)."""
        n = self._pinned.get(line, 0)
        if n <= 0:
            raise ProtocolError(
                f"core {self.core_id}: unpin underflow on line {line}")
        if n == 1:
            del self._pinned[line]
        else:
            self._pinned[line] = n - 1

    def is_pinned(self, line: int) -> bool:
        return line in self._pinned

    def pin_count(self, line: int) -> int:
        return self._pinned.get(line, 0)

    def pinned_lines(self) -> dict[int, int]:
        """Copy of the line -> refcount map (invariant checker)."""
        return dict(self._pinned)

    # -- mutation -------------------------------------------------------------

    def set_state(self, line: int, state: LineState) -> None:
        """Change the state of a *resident* line (downgrade/upgrade)."""
        s = self._set_of(line)
        if line not in s:
            raise ProtocolError(f"set_state on non-resident line {line}")
        if state == LineState.I:
            raise ProtocolError("use invalidate() to drop a line")
        s[line] = state

    def invalidate(self, line: int) -> None:
        """Drop a line (probe-induced; not an eviction).  Clears every
        pin reference: invalidation only reaches a pinned line once the
        lease machinery has let the probe through."""
        self._set_of(line).pop(line, None)
        self._pinned.pop(line, None)

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self) -> dict:
        """Per-set (line, state) pairs in LRU order plus pin refcounts.
        LRU order is behavioral state: victim choice depends on it."""
        return {
            "sets": [[[line, st.name] for line, st in s.items()]
                     for s in self._sets],
            "pinned": [[line, n] for line, n in self._pinned.items()],
        }

    def load_state(self, state: dict) -> None:
        self._sets = [
            OrderedDict((line, LineState[st]) for line, st in pairs)
            for pairs in state["sets"]
        ]
        self._pinned = {line: n for line, n in state["pinned"]}

    def fill(self, line: int, state: LineState
             ) -> tuple[int, LineState] | None:
        """Insert ``line`` in ``state``; returns the evicted victim
        ``(line, state)`` if one had to be displaced, else None.

        If the line is already resident this is an upgrade in place (no
        eviction).  The victim is the least-recently-used unpinned way.
        """
        s = self._set_of(line)
        if line in s:
            s[line] = state
            s.move_to_end(line)
            return None
        victim = None
        if len(s) >= self.assoc:
            for cand in s:  # LRU order: oldest first
                if cand not in self._pinned:
                    victim = (cand, s[cand])
                    break
            if victim is not None:
                del s[victim[0]]
                self.trace.l1_evicted(self.core_id, victim[0],
                                          overflow=False)
            else:
                # Every way pinned by leases/queued probes: over-fill.
                self.trace.l1_evicted(self.core_id, line, overflow=True)
        s[line] = state
        return victim
