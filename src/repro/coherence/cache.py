"""Set-associative private L1 cache model (tags + state only).

Data values live in the global backing store (see :mod:`repro.mem.memory`);
the cache tracks presence and MSI state for timing and statistics.  Leased
lines (and lines holding a queued probe) are *pinned*: the hardware proposal
keeps them in the load buffer, so they are never silently evicted.  If every
way of a set is pinned the set temporarily over-fills (counted), mirroring
the separate load-buffer capacity.

Storage layout: line states live in one flat array indexed by line id
(``_st``, ints; 0 = invalid/not-resident), so the hottest query --
``state_of`` on every access and probe -- is a bare list index.  The
per-set OrderedDicts keep only LRU order and residency (``line -> None``);
victim selection and checkpoint round-trips read states back through the
flat array.  ``state_of`` returns the raw int, which compares equal to the
:class:`LineState` IntEnum members.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import ProtocolError
from ..trace import TraceBus
from .states import LineState

_LI = int(LineState.I)


class L1Cache:
    """LRU, set-associative tag store for one core."""

    __slots__ = ("num_sets", "assoc", "_sets", "_st", "_pinned", "trace",
                 "core_id")

    def __init__(self, num_sets: int, assoc: int, trace: TraceBus,
                 core_id: int = 0) -> None:
        self.num_sets = num_sets
        self.assoc = assoc
        # One OrderedDict per set: line -> None, LRU order (front=old).
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(num_sets)
        ]
        # Flat per-line state column; grown on demand (see module docstring).
        self._st: list[int] = []
        # line -> pin refcount.  A line may be pinned more than once (a
        # granted lease AND a queued probe each hold a reference); the
        # refcount catches unbalanced unpins that a plain set would
        # silently absorb.
        self._pinned: dict[int, int] = {}
        self.trace = trace
        self.core_id = core_id

    def _set_of(self, line: int) -> OrderedDict[int, None]:
        return self._sets[line % self.num_sets]

    def _ensure(self, line: int) -> None:
        st = self._st
        if line >= len(st):
            st.extend([_LI] * (line + 1 - len(st)))

    # -- queries ------------------------------------------------------------

    def state_of(self, line: int) -> int:
        """Current state of ``line`` as an int comparing equal to
        :class:`LineState` members (``LineState.I`` when not resident)."""
        st = self._st
        return st[line] if line < len(st) else _LI

    def touch(self, line: int) -> None:
        """Mark ``line`` most-recently-used."""
        s = self._sets[line % self.num_sets]
        if line in s:
            s.move_to_end(line)

    def resident_lines(self) -> list[int]:
        return [line for s in self._sets for line in s]

    # -- pinning (leases) -----------------------------------------------------

    def pin(self, line: int) -> None:
        """Take one pin reference on ``line`` (lease grant, queued probe)."""
        self._pinned[line] = self._pinned.get(line, 0) + 1

    def unpin(self, line: int) -> None:
        """Drop one pin reference; underflow is a protocol bug, not a
        no-op (it would mean some release path double-counted)."""
        n = self._pinned.get(line, 0)
        if n <= 0:
            raise ProtocolError(
                f"core {self.core_id}: unpin underflow on line {line}")
        if n == 1:
            del self._pinned[line]
        else:
            self._pinned[line] = n - 1

    def is_pinned(self, line: int) -> bool:
        return line in self._pinned

    def pin_count(self, line: int) -> int:
        return self._pinned.get(line, 0)

    def pinned_lines(self) -> dict[int, int]:
        """Copy of the line -> refcount map (invariant checker)."""
        return dict(self._pinned)

    # -- mutation -------------------------------------------------------------

    def set_state(self, line: int, state: LineState) -> None:
        """Change the state of a *resident* line (downgrade/upgrade)."""
        if line not in self._sets[line % self.num_sets]:
            raise ProtocolError(f"set_state on non-resident line {line}")
        if state == LineState.I:
            raise ProtocolError("use invalidate() to drop a line")
        self._st[line] = int(state)

    def invalidate(self, line: int) -> None:
        """Drop a line (probe-induced; not an eviction).  Clears every
        pin reference: invalidation only reaches a pinned line once the
        lease machinery has let the probe through."""
        s = self._sets[line % self.num_sets]
        if s.pop(line, 0) is None:     # was resident (stored value is None)
            self._st[line] = _LI
        self._pinned.pop(line, None)

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self) -> dict:
        """Per-set (line, state) pairs in LRU order plus pin refcounts.
        LRU order is behavioral state: victim choice depends on it."""
        st = self._st
        return {
            "sets": [[[line, LineState(st[line]).name] for line in s]
                     for s in self._sets],
            "pinned": [[line, n] for line, n in self._pinned.items()],
        }

    def load_state(self, state: dict) -> None:
        self._sets = [OrderedDict() for _ in state["sets"]]
        self._st = []
        for s, pairs in zip(self._sets, state["sets"]):
            for line, name in pairs:
                s[line] = None
                self._ensure(line)
                self._st[line] = int(LineState[name])
        self._pinned = {line: n for line, n in state["pinned"]}

    def fill(self, line: int, state: LineState
             ) -> tuple[int, LineState] | None:
        """Insert ``line`` in ``state``; returns the evicted victim
        ``(line, state)`` if one had to be displaced, else None.

        If the line is already resident this is an upgrade in place (no
        eviction).  The victim is the least-recently-used unpinned way.
        """
        s = self._sets[line % self.num_sets]
        self._ensure(line)
        if line in s:
            self._st[line] = int(state)
            s.move_to_end(line)
            return None
        victim = None
        if len(s) >= self.assoc:
            pinned = self._pinned
            for cand in s:  # LRU order: oldest first
                if cand not in pinned:
                    victim = (cand, LineState(self._st[cand]))
                    break
            if victim is not None:
                del s[victim[0]]
                self._st[victim[0]] = _LI
                self.trace.l1_evicted(self.core_id, victim[0],
                                      overflow=False)
            else:
                # Every way pinned by leases/queued probes: over-fill.
                self.trace.l1_evicted(self.core_id, line, overflow=True)
        s[line] = None
        self._st[line] = int(state)
        return victim
