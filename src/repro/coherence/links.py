"""Contended interconnect: finite-bandwidth links, arbitration, ports.

:class:`~repro.coherence.network.MeshNetwork` is a pure latency
calculator: every message is scheduled independently, so the network
itself can never saturate.  This module models the interconnect as a set
of *serialized resources*:

* one **egress link** per tile (``link:`` clause) with a finite bandwidth
  in cycles per flit -- control messages are one flit, data-carrying
  messages ``flits`` flits -- and a bounded egress queue;
* one **intake port** per tile (``port:dir=N``) serializing delivery into
  the directory slice / core at N cycles per message;
* one **memory-controller port** per tile (``port:mem=N``) serializing L2
  fetches performed while granting directory requests.

Messages that find a resource busy wait in per-flow queues (flow 0 =
control, flow 1 = data) and a pluggable :class:`Arbiter` picks which flow
is served next: :class:`FifoArbiter` (global arrival order),
:class:`WrrArbiter` (weighted round-robin between the flows) or
:class:`PriorityArbiter` (control before data).  A full bounded queue
never drops: the offer is retried after a deterministic backoff.

The spec grammar mirrors ``--faults`` (``;``-separated ``name:k=v,...``
clauses)::

    link:bw=2,queue=16,flits=4;arb:wrr,weights=2:1;port:dir=2,mem=4

An empty spec (or the literal ``infinite``) builds no queues at all:
:func:`build_network` returns the plain contention-free
:class:`MeshNetwork` and behaviour is bit-identical to a build without
this module.  Everything here is deterministic: all waiting is resolved
through the simulator's ``(time, seq)`` event order, and per-link RNG
never exists (the only randomness, ``link_degrade``, comes from the
seeded fault plan at build time).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from ..config import NetworkConfig
from ..engine import Simulator
from ..errors import ConfigError
from ..trace import TraceBus
from .messages import MessageKind
from .network import MeshNetwork

__all__ = ["NetSpec", "parse_network_spec", "build_network",
           "Arbiter", "FifoArbiter", "WrrArbiter", "PriorityArbiter",
           "Link", "LinkedNetwork"]

#: Flow classes every contended resource arbitrates between.
CONTROL, DATA = 0, 1
NUM_FLOWS = 2

#: Valid ``arb:`` policies.
ARBITERS = ("fifo", "wrr", "priority")

#: Data-carrying messages occupy this many flits unless ``flits=`` says
#: otherwise (one cache line split into link-width chunks).
DEFAULT_DATA_FLITS = 4


# ---------------------------------------------------------------------------
# Spec grammar
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class NetSpec:
    """Parsed, validated ``--network`` parameters.

    ``empty`` specs build no queues; see :func:`build_network`.
    """

    #: the original spec string, verbatim (travels inside NetworkConfig).
    raw: str = ""
    #: cycles per flit on each egress link; 0 = infinite bandwidth.
    link_bw: int = 0
    #: bounded egress-queue capacity per link; 0 = unbounded.
    link_queue: int = 0
    #: flits per data-carrying message (control messages are 1 flit).
    data_flits: int = DEFAULT_DATA_FLITS
    #: arbitration policy for every contended resource.
    arbiter: str = "fifo"
    #: WRR weights as (control, data) grant credits per round.
    wrr_weights: tuple[int, int] = (2, 1)
    #: cycles per message at each tile's directory/core intake port;
    #: 0 = no intake serialization.
    dir_port: int = 0
    #: cycles of controller overhead per serialized L2 fetch; 0 = fetches
    #: do not serialize.
    mem_port: int = 0
    #: bounded queue capacity per port; 0 = unbounded.
    port_queue: int = 0

    @property
    def empty(self) -> bool:
        """True when no resource is finite -> plain MeshNetwork."""
        return (self.link_bw == 0 and self.dir_port == 0
                and self.mem_port == 0)


def _net_int(clause: str, key: str, value: str, *, min_val: int = 0) -> int:
    try:
        n = int(value)
    except ValueError:
        raise ConfigError(
            f"network spec: {clause}: {key} must be an int, got {value!r}")
    if n < min_val:
        raise ConfigError(
            f"network spec: {clause}: {key}={n} must be >= {min_val}")
    return n


def _net_params(clause: str, body: str, allowed: tuple[str, ...]) -> dict:
    params: dict[str, str] = {}
    for part in body.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ConfigError(
                f"network spec: {clause}: expected key=value, got {part!r}")
        key, _, value = part.partition("=")
        key = key.strip()
        if key not in allowed:
            raise ConfigError(
                f"network spec: {clause}: unknown parameter {key!r} "
                f"(allowed: {', '.join(allowed)})")
        if key in params:
            raise ConfigError(f"network spec: {clause}: duplicate {key!r}")
        params[key] = value.strip()
    return params


def parse_network_spec(spec: str) -> NetSpec:
    """Parse a ``--network`` spec string.  Empty/whitespace and the
    literal ``infinite`` yield an empty spec (``NetSpec.empty`` is true ->
    the plain contention-free mesh is built and behaviour is bit-identical
    to a build without the links module)."""
    spec = (spec or "").strip()
    if spec.lower() == "infinite":
        spec = ""
    fields: dict = {"raw": spec}
    seen: set[str] = set()
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        name, _, body = clause.partition(":")
        name = name.strip()
        body = body.strip()
        if name in seen:
            raise ConfigError(f"network spec: duplicate clause {name!r}")
        seen.add(name)
        if name == "link":
            params = _net_params(clause, body, ("bw", "queue", "flits"))
            if "bw" not in params:
                raise ConfigError(
                    f"network spec: {clause}: needs bw=<cycles per flit>")
            fields["link_bw"] = _net_int(clause, "bw", params["bw"],
                                         min_val=1)
            if "queue" in params:
                fields["link_queue"] = _net_int(
                    clause, "queue", params["queue"], min_val=1)
            if "flits" in params:
                fields["data_flits"] = _net_int(
                    clause, "flits", params["flits"], min_val=1)
        elif name == "arb":
            policy, _, rest = body.partition(",")
            policy = policy.strip()
            if policy not in ARBITERS:
                raise ConfigError(
                    f"network spec: {clause}: unknown arbiter {policy!r} "
                    f"(known: {', '.join(ARBITERS)})")
            fields["arbiter"] = policy
            params = _net_params(clause, rest, ("weights",))
            if "weights" in params:
                if policy != "wrr":
                    raise ConfigError(
                        f"network spec: {clause}: weights= only applies "
                        "to arb:wrr")
                parts = params["weights"].split(":")
                if len(parts) != NUM_FLOWS:
                    raise ConfigError(
                        f"network spec: {clause}: weights must be "
                        f"<control>:<data>, got {params['weights']!r}")
                fields["wrr_weights"] = tuple(
                    _net_int(clause, "weights", p, min_val=1)
                    for p in parts)
        elif name == "port":
            params = _net_params(clause, body, ("dir", "mem", "queue"))
            if not params:
                raise ConfigError(
                    f"network spec: {clause}: needs dir=<cycles> and/or "
                    "mem=<cycles>")
            if "dir" in params:
                fields["dir_port"] = _net_int(clause, "dir", params["dir"],
                                              min_val=1)
            if "mem" in params:
                fields["mem_port"] = _net_int(clause, "mem", params["mem"],
                                              min_val=1)
            if "queue" in params:
                fields["port_queue"] = _net_int(
                    clause, "queue", params["queue"], min_val=1)
        else:
            raise ConfigError(
                f"network spec: unknown clause {name!r} "
                f"(known: link, arb, port)")
    return NetSpec(**fields)


# ---------------------------------------------------------------------------
# Arbiters
# ---------------------------------------------------------------------------

class Arbiter:
    """Picks which flow a free resource serves next.

    ``pick(queues)`` receives the per-flow deques (items are tuples whose
    first element is the per-resource enqueue sequence number) and returns
    the flow index to serve, or -1 when every queue is empty.  Arbiters
    must be deterministic and allocation-free; stateful arbiters override
    ``state_dict``/``load_state`` so checkpoints roundtrip.
    """

    kind = "base"

    def pick(self, queues) -> int:
        raise NotImplementedError

    def state_dict(self) -> dict:
        return {}

    def load_state(self, state: dict) -> None:
        pass


class FifoArbiter(Arbiter):
    """Global arrival order: the head with the smallest enqueue seq wins."""

    kind = "fifo"

    def pick(self, queues) -> int:
        best = -1
        best_seq = None
        for flow, q in enumerate(queues):
            if q and (best_seq is None or q[0][0] < best_seq):
                best = flow
                best_seq = q[0][0]
        return best


class PriorityArbiter(Arbiter):
    """Strict priority: control messages always beat data payloads."""

    kind = "priority"

    def pick(self, queues) -> int:
        for flow, q in enumerate(queues):
            if q:
                return flow
        return -1


class WrrArbiter(Arbiter):
    """Weighted round-robin over the flows.

    The current flow is served until its per-round credit is spent or its
    queue drains, then the rotor moves on (credits refill on entry).  Over
    a long backlog on every flow, grants approach the weight ratio.
    """

    kind = "wrr"

    __slots__ = ("weights", "_flow", "_credit")

    def __init__(self, weights: tuple[int, ...] = (2, 1)) -> None:
        self.weights = tuple(weights)
        self._flow = 0
        self._credit = self.weights[0]

    def pick(self, queues) -> int:
        n = len(queues)
        for _ in range(2 * n):
            if queues[self._flow] and self._credit > 0:
                self._credit -= 1
                return self._flow
            self._flow = (self._flow + 1) % n
            self._credit = self.weights[self._flow]
        return -1

    def state_dict(self) -> dict:
        return {"flow": self._flow, "credit": self._credit}

    def load_state(self, state: dict) -> None:
        self._flow = state["flow"]
        self._credit = state["credit"]


def make_arbiter(spec: NetSpec) -> Arbiter:
    """One fresh arbiter instance (WRR carries rotor state) per resource."""
    if spec.arbiter == "wrr":
        return WrrArbiter(spec.wrr_weights)
    if spec.arbiter == "priority":
        return PriorityArbiter()
    return FifoArbiter()


# ---------------------------------------------------------------------------
# The serialized resource
# ---------------------------------------------------------------------------

#: Roles decide which trace events a resource emits.
ROLE_LINK, ROLE_PORT = "link", "port"


class Link:
    """One serialized resource: an egress link or an intake/memory port.

    Holds per-flow queues and the in-service item; all scheduling and
    event emission happens in :class:`LinkedNetwork` so the engine only
    ever sees network-level callables (which the checkpoint codec
    registers by name).
    """

    __slots__ = ("rid", "label", "role", "cycles", "cap", "arbiter",
                 "queues", "serving", "busy_cycles", "seq")

    def __init__(self, rid: int, label: str, role: str, cycles: int,
                 cap: int, arbiter: Arbiter) -> None:
        self.rid = rid
        self.label = label
        self.role = role
        #: cycles per flit (links) / base cycles per message (ports).
        self.cycles = cycles
        #: bounded queue capacity across flows; 0 = unbounded.
        self.cap = cap
        self.arbiter = arbiter
        self.queues = tuple(deque() for _ in range(NUM_FLOWS))
        #: the item currently in service, or None when idle.
        self.serving: tuple | None = None
        #: total cycles spent serving (per-link utilization numerator).
        self.busy_cycles = 0
        #: per-resource enqueue sequence (feeds FIFO arbitration).
        self.seq = 0

    @property
    def depth(self) -> int:
        return sum(len(q) for q in self.queues)

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self, codec) -> dict:
        return {
            "seq": self.seq,
            "busy_cycles": self.busy_cycles,
            "serving": codec.encode(self.serving),
            "queues": [codec.encode(list(q)) for q in self.queues],
            "arb": self.arbiter.state_dict(),
        }

    def load_state(self, state: dict, codec) -> None:
        self.seq = state["seq"]
        self.busy_cycles = state["busy_cycles"]
        self.serving = codec.decode(state["serving"])
        for q, items in zip(self.queues, state["queues"]):
            q.clear()
            q.extend(codec.decode(items))
        self.arbiter.load_state(state["arb"])


# ---------------------------------------------------------------------------
# The contended network
# ---------------------------------------------------------------------------

class LinkedNetwork(MeshNetwork):
    """MeshNetwork with finite-bandwidth links and serialized ports.

    The routing latency tables are inherited unchanged; on top of them a
    message now (1) waits for and occupies its source tile's egress link
    for ``flits * bw`` cycles, (2) traverses the route (the inherited
    analytic latency), and (3) waits for and occupies the destination
    tile's intake port before the delivery callback runs.  Directory
    grants additionally serialize their L2 fetch through the home tile's
    memory port (see :meth:`grant_delivery`).

    ``_pending`` counts messages somewhere inside the network (queued, in
    service, or between resources); the core batch-fold gate treats a
    non-zero value like a pending probe, exactly as it must: folding past
    a queued message could commit an instruction that the message's
    delivery would have interposed on.
    """

    contended = True

    __slots__ = ("spec", "_pending", "_data_flits", "_egress", "_ports",
                 "_mem", "_resources")

    def __init__(self, config: NetworkConfig, num_tiles: int,
                 sim: Simulator, trace: TraceBus, faults=None,
                 spec: NetSpec | None = None) -> None:
        super().__init__(config, num_tiles, sim, trace, faults=faults)
        self.spec = spec if spec is not None else parse_network_spec(
            getattr(config, "spec", ""))
        self._pending = 0
        self._data_flits = self.spec.data_flits
        self._resources: list[Link] = []

        def build(role: str, name: str, cycles: int, cap: int):
            group = []
            for tile in range(num_tiles):
                link = Link(len(self._resources), f"{name}{tile}", role,
                            cycles, cap, make_arbiter(self.spec))
                self._resources.append(link)
                group.append(link)
            return group

        s = self.spec
        self._egress = (build(ROLE_LINK, "link", s.link_bw, s.link_queue)
                        if s.link_bw else None)
        self._ports = (build(ROLE_PORT, "dir", s.dir_port, s.port_queue)
                       if s.dir_port else None)
        self._mem = (build(ROLE_PORT, "mem", s.mem_port, s.port_queue)
                     if s.mem_port else None)
        # Seeded per-link degradation (repro.faults link_degrade hook):
        # consulted once per resource in deterministic build order, so the
        # same seed + spec degrades the same links on every run.
        if faults is not None and faults.spec.link_degrade_p > 0.0:
            factor = faults.spec.link_degrade_factor
            shrink = faults.spec.link_degrade_queue
            for link in self._resources:
                if not faults.link_degrade_hit():
                    continue
                link.cycles *= factor
                if shrink:
                    link.cap = (min(link.cap, shrink) if link.cap
                                else shrink)
                trace.fault_injected("link_degrade", link.rid, factor)

    # -- the send path -------------------------------------------------------

    def send(self, src: int, dst: int, kind: MessageKind,
             fn: Callable[..., Any], *args: Any) -> None:
        """Trace one message and route it through the contended path:
        egress link at ``src`` -> mesh route -> intake port at ``dst``."""
        carries = kind.carries
        lat, hops = (self._data if carries else self._ctl)[src][dst]
        if self.faults is not None:
            extra = self.faults.net_extra()
            if extra:
                lat += extra
                self.trace.fault_injected("net_jitter", dst, extra)
        self.trace.message(src, dst, kind.val, hops, carries)
        self._pending += 1
        flow = DATA if carries else CONTROL
        flits = self._data_flits if carries else 1
        if self._egress is not None:
            link = self._egress[src]
            self._offer(link, flow, flits, flits * link.cycles,
                        self._route, (dst, flow, flits, lat, fn, args))
        else:
            sim = self.sim
            sim.queue.schedule(sim.now + lat, self._enter_port,
                               dst, flow, flits, fn, args)

    def grant_delivery(self, src: int, dst: int, kind: MessageKind,
                       fetch_cycles: int, fn: Callable[..., Any],
                       *args: Any) -> None:
        """Serialize a directory grant's L2 fetch through the home tile's
        memory port, then send the response message normally."""
        if self._mem is None:
            super().grant_delivery(src, dst, kind, fetch_cycles, fn, *args)
            return
        port = self._mem[src]
        self._pending += 1
        flow = DATA if kind.carries else CONTROL
        self._offer(port, flow, 1, port.cycles + fetch_cycles,
                    self._mem_done, (src, dst, kind, fn, args))

    # -- resource mechanics --------------------------------------------------

    def _offer(self, link: Link, flow: int, flits: int, service: int,
               fn: Callable[..., Any], args: tuple,
               arrival: int | None = None) -> None:
        """Enqueue one item on ``link`` and serve it when its turn comes.
        A full bounded queue backpressures: the offer is retried after a
        deterministic delay, preserving the original arrival stamp so the
        extra wait still lands in the stall accounting."""
        now = self.sim.now
        if arrival is None:
            arrival = now
        if (link.cap and link.serving is not None
                and link.depth >= link.cap):
            self.sim.queue.schedule(
                now + max(1, link.cycles), self._retry,
                link.rid, flow, flits, service, fn, args, arrival)
            return
        if link.serving is not None or link.depth:
            if link.role == ROLE_LINK:
                self.trace.link_queued(link.rid, flow, link.depth + 1)
            else:
                self.trace.port_busy(link.rid, link.depth + 1)
        link.queues[flow].append(
            (link.seq, arrival, flow, flits, service, fn, args))
        link.seq += 1
        self._pump(link)

    def _retry(self, rid: int, flow: int, flits: int, service: int,
               fn: Callable[..., Any], args: tuple, arrival: int) -> None:
        self._offer(self._resources[rid], flow, flits, service, fn, args,
                    arrival)

    def _pump(self, link: Link) -> None:
        if link.serving is not None:
            return
        flow = link.arbiter.pick(link.queues)
        if flow < 0:
            return
        item = link.queues[flow].popleft()
        now = self.sim.now
        if link.role == ROLE_LINK:
            # waited = grant time - first-offer time (includes any
            # bounded-queue backpressure retries).
            self.trace.link_granted(link.rid, flow, item[3], now - item[1])
        link.serving = item
        service = item[4]
        link.busy_cycles += service
        self.sim.queue.schedule(now + service, self._service_done, link.rid)

    def _service_done(self, rid: int) -> None:
        link = self._resources[rid]
        item = link.serving
        link.serving = None
        item[5](*item[6])
        self._pump(link)

    # -- continuations (registered with the checkpoint codec by name) -------

    def _route(self, dst: int, flow: int, flits: int, lat: int,
               fn: Callable[..., Any], args: tuple) -> None:
        """Egress service finished: traverse the route, then enter the
        destination's intake port (or deliver directly without one)."""
        sim = self.sim
        if self._ports is not None:
            sim.queue.schedule(sim.now + lat, self._enter_port,
                               dst, flow, flits, fn, args)
        else:
            sim.queue.schedule(sim.now + lat, self._deliver, fn, args)

    def _enter_port(self, dst: int, flow: int, flits: int,
                    fn: Callable[..., Any], args: tuple) -> None:
        if self._ports is None:
            self._deliver(fn, args)
            return
        port = self._ports[dst]
        self._offer(port, flow, flits, port.cycles, self._deliver,
                    (fn, args))

    def _deliver(self, fn: Callable[..., Any], args: tuple) -> None:
        self._pending -= 1
        fn(*args)

    def _mem_done(self, src: int, dst: int, kind: MessageKind,
                  fn: Callable[..., Any], args: tuple) -> None:
        self._pending -= 1
        self.send(src, dst, kind, fn, *args)

    # -- reporting -----------------------------------------------------------

    def utilization(self) -> dict[str, float]:
        """Per-role mean busy fraction over the run so far (0..1)."""
        now = self.sim.now
        if not now:
            return {}
        out: dict[str, list[int]] = {}
        for link in self._resources:
            role = "link" if link.role == ROLE_LINK else link.label.rstrip(
                "0123456789")
            out.setdefault(role, []).append(link.busy_cycles)
        return {role: sum(vals) / (len(vals) * now)
                for role, vals in out.items()}

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self, codec) -> dict:
        return {
            "pending": self._pending,
            "resources": [r.state_dict(codec) for r in self._resources],
        }

    def load_state(self, state: dict, codec) -> None:
        self._pending = state["pending"]
        for link, st in zip(self._resources, state["resources"]):
            link.load_state(st, codec)


def build_network(config: NetworkConfig, num_tiles: int, sim: Simulator,
                  trace: TraceBus, faults=None) -> MeshNetwork:
    """Build the network the config's spec asks for: the plain
    contention-free :class:`MeshNetwork` for an empty/``infinite`` spec
    (bit-identical to the pre-links model -- no queues exist at all), or a
    :class:`LinkedNetwork` when any resource is finite."""
    spec = parse_network_spec(getattr(config, "spec", ""))
    if spec.empty:
        return MeshNetwork(config, num_tiles, sim, trace, faults=faults)
    return LinkedNetwork(config, num_tiles, sim, trace, faults=faults,
                         spec=spec)
