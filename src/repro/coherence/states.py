"""Coherence state enums (MSI)."""

from __future__ import annotations

from enum import IntEnum


class LineState(IntEnum):
    """State of a line in a private L1 cache.

    The E (exclusive-clean) state exists only when the machine runs the
    MESI protocol (Section 8: "Lease/Release also applies to MESI and
    MOESI-type protocols, with the same semantics"); under MSI a read miss
    on an uncached line is granted S.  At the directory E and M are merged
    (both mean "one owner, nobody else"), so only the L1 side and the
    dirty/clean accounting differ.
    """

    I = 0   # invalid / not present
    S = 1   # shared, read-only
    E = 2   # exclusive, clean (MESI only)
    M = 3   # modified (exclusive, dirty)


class DirState(IntEnum):
    """State of a line at the directory."""

    UNCACHED = 0
    SHARED = 1
    MODIFIED = 2
