"""Directory-based MSI cache-coherence substrate (Graphite-style).

Private per-core L1 caches, a shared L2 (one slice per tile, at the line's
home tile), and a directory with one FIFO request queue per cache line.
Probes to cores are where the Lease/Release mechanism hooks in: a core
holding a valid lease on a line queues incoming probes until voluntary
release or expiry (see :mod:`repro.lease`).
"""

from .states import DirState, LineState
from .messages import MessageKind
from .network import MeshNetwork
from .cache import L1Cache
from .l2 import SharedL2
from .directory import Directory, Request
from .memunit import MemUnit, Probe

__all__ = [
    "DirState", "LineState", "MessageKind", "MeshNetwork", "L1Cache",
    "SharedL2", "Directory", "Request", "MemUnit", "Probe",
]
