"""repro -- reproduction of *Lease/Release: Architectural Support for
Scaling Contended Data Structures* (PPoPP 2016).

The package provides:

* a deterministic discrete-event simulator of a tiled multicore with a
  directory-based MSI coherence protocol (:mod:`repro.coherence`) -- the
  Graphite-equivalent substrate;
* the Lease/Release mechanism of the paper (:mod:`repro.lease`), hooked
  into the per-core L1 controllers;
* the paper's workloads: classic concurrent data structures
  (:mod:`repro.structures`), locks (:mod:`repro.sync`), a TL2-style STM
  (:mod:`repro.stm`) and applications (:mod:`repro.apps`);
* a benchmark harness regenerating every figure of the paper
  (:mod:`repro.harness`).

Quickstart::

    from repro import Machine, MachineConfig
    from repro.structures import TreiberStack

    m = Machine(MachineConfig(num_cores=8, seed=42))
    stack = TreiberStack(m, use_lease=True)
    for i in range(8):
        m.add_thread(stack.update_worker, ops=200)
    m.run()
    print(m.result("stack").mops_per_sec)
"""

from .config import (EnergyConfig, LeaseConfig, MachineConfig, NetworkConfig,
                     WORD_SIZE)
from .core import (CAS, Ctx, Fence, FetchAdd, Lease, Load, Machine,
                   MultiLease, Release, ReleaseAll, Store, Swap, TestAndSet,
                   ThreadHandle, Work)
from .errors import (AllocationError, ConfigError, LeaseError, ProtocolError,
                     ReproError, SimulationError, SimulationTimeout)
from .faults import FaultPlan, FaultSpec, build_plan, parse_fault_spec
from .stats import Counters, EnergyModel, RunResult
from .trace import (ContentionHeatmap, CountersTracer, InvariantTracer,
                    JsonlTracer, NullTracer, RingBufferTracer, TraceBus,
                    TraceEvent, Tracer)

__version__ = "1.1.0"

__all__ = [
    "MachineConfig", "LeaseConfig", "NetworkConfig", "EnergyConfig",
    "WORD_SIZE",
    "Machine", "Ctx", "ThreadHandle",
    "Load", "Store", "CAS", "FetchAdd", "Swap", "TestAndSet", "Work",
    "Fence", "Lease", "Release", "MultiLease", "ReleaseAll",
    "Counters", "EnergyModel", "RunResult",
    "TraceEvent", "Tracer", "NullTracer", "TraceBus", "CountersTracer",
    "RingBufferTracer", "JsonlTracer", "ContentionHeatmap",
    "InvariantTracer",
    "ReproError", "ConfigError", "SimulationError", "SimulationTimeout",
    "ProtocolError", "LeaseError", "AllocationError",
    "FaultSpec", "FaultPlan", "parse_fault_spec", "build_plan",
    "__version__",
]
