"""Exception hierarchy for the repro simulator.

Every error raised by the package derives from :class:`ReproError` so that
callers can catch simulator failures without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid machine / lease / network configuration was supplied."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent state (protocol invariant
    violation, double-resume of a thread, etc.).  These always indicate a
    bug in the simulator or in a workload, never a transient condition."""


class SimulationTimeout(ReproError):
    """The simulation exceeded its cycle or event budget.

    Carries diagnostic context so that a hung workload (e.g. a livelocked
    spin loop) can be debugged from the exception alone.
    """

    def __init__(self, message: str, *, cycle: int | None = None,
                 events: int | None = None,
                 running_threads: int | None = None) -> None:
        super().__init__(message)
        self.cycle = cycle
        self.events = events
        self.running_threads = running_threads


class ProtocolError(SimulationError):
    """A cache-coherence protocol invariant was violated."""


class LeaseError(ReproError):
    """Invalid use of the Lease/Release API (e.g. mixing single and
    multi-location leases, which the paper forbids in Section 4)."""


class AllocationError(ReproError):
    """The simulated memory allocator ran out of address space or was
    asked for an impossible allocation."""


class CheckpointError(ReproError):
    """A checkpoint could not be saved or restored (unregistered callable,
    unsupported value, corrupt file, ...)."""


class CheckpointMismatch(CheckpointError):
    """A checkpoint was refused because it was taken under a different
    configuration (machine config, fault spec, builder, or schema) than
    the machine it is being restored into."""
