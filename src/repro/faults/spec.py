"""Fault-spec grammar: parse ``--faults`` strings into a frozen spec.

A spec is a ``;``-separated list of fault clauses, each ``name`` or
``name:params`` with ``,``-separated parameters::

    net_jitter:p=0.01,max=200;dir_nack:p=0.005;timer_skew:±8;slow_core:3@10x

Clauses
-------

``net_jitter:p=<prob>,max=<cycles>``
    Each network message independently suffers an extra latency of
    1..max cycles with probability ``p``.

``dir_nack:p=<prob>[,retries=<n>]``
    Each directory request arrival is NACKed with probability ``p`` and
    retried after randomized exponential backoff; a request is never
    NACKed more than ``retries`` times (default 8) so forward progress
    is guaranteed.

``timer_skew:±<cycles>`` (also accepts ``<cycles>`` or ``max=<cycles>``)
    Each lease expiry timer is skewed by a uniform draw from
    ``[-cycles, +cycles]``, clamped so the effective duration stays in
    ``[1, max_lease_time]`` (preserving the Proposition-1 bound).

``slow_core:<core>@<mult>x[,<core>@<mult>x...]``
    The named cores retire instructions ``mult``x slower (straggler
    cores / IPC throttling).

``link_degrade:p=<prob>[,factor=<mult>][,queue=<cap>]``
    Each contended-interconnect resource (egress link, directory port,
    memory port; see :mod:`repro.coherence.links`) is independently
    degraded with probability ``p`` at machine build time: its
    cycles-per-flit cost is multiplied by ``factor`` (default 4) and,
    when ``queue`` is given, its bounded queue is shrunk to at most
    ``queue`` entries.  Only meaningful together with a non-empty
    ``--network`` spec; on the contention-free model there are no link
    resources to degrade, so the clause is a no-op.

The parse is strict: unknown clause names, malformed parameters, and
out-of-range values raise :class:`~repro.errors.ConfigError` so a typo'd
``--faults`` flag fails fast instead of silently injecting nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError

__all__ = ["FaultSpec", "parse_fault_spec"]

#: NACK cap when a ``dir_nack`` clause does not name one: a request is
#: retried at most this many times before it is allowed through, so a
#: high ``p`` cannot livelock the directory.
DEFAULT_NACK_RETRIES = 8


@dataclass(frozen=True)
class FaultSpec:
    """Parsed, validated fault parameters (the *what*; the seeded
    :class:`~repro.faults.plan.FaultPlan` is the *when*)."""

    #: the original spec string, verbatim (travels inside MachineConfig
    #: and repro-check files so plans can be rebuilt anywhere).
    raw: str = ""
    net_jitter_p: float = 0.0
    net_jitter_max: int = 0
    dir_nack_p: float = 0.0
    dir_nack_retries: int = DEFAULT_NACK_RETRIES
    timer_skew: int = 0
    #: ((core_id, multiplier), ...) sorted by core id.
    slow_cores: tuple[tuple[int, int], ...] = field(default_factory=tuple)
    link_degrade_p: float = 0.0
    link_degrade_factor: int = 4
    #: 0 = leave each degraded resource's queue capacity untouched.
    link_degrade_queue: int = 0

    @property
    def empty(self) -> bool:
        return (self.net_jitter_p == 0.0 and self.dir_nack_p == 0.0
                and self.timer_skew == 0 and not self.slow_cores
                and self.link_degrade_p == 0.0)


def _parse_prob(clause: str, key: str, value: str) -> float:
    try:
        p = float(value)
    except ValueError:
        raise ConfigError(
            f"fault spec: {clause}: {key} must be a float, got {value!r}")
    if not 0.0 <= p <= 1.0:
        raise ConfigError(
            f"fault spec: {clause}: {key}={p} out of range [0, 1]")
    return p


def _parse_int(clause: str, key: str, value: str, *, min_val: int = 0) -> int:
    try:
        n = int(value)
    except ValueError:
        raise ConfigError(
            f"fault spec: {clause}: {key} must be an int, got {value!r}")
    if n < min_val:
        raise ConfigError(
            f"fault spec: {clause}: {key}={n} must be >= {min_val}")
    return n


def _parse_params(clause: str, body: str, allowed: tuple[str, ...]) -> dict:
    params: dict[str, str] = {}
    for part in body.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ConfigError(
                f"fault spec: {clause}: expected key=value, got {part!r}")
        key, _, value = part.partition("=")
        key = key.strip()
        if key not in allowed:
            raise ConfigError(
                f"fault spec: {clause}: unknown parameter {key!r} "
                f"(allowed: {', '.join(allowed)})")
        if key in params:
            raise ConfigError(f"fault spec: {clause}: duplicate {key!r}")
        params[key] = value.strip()
    return params


def _parse_slow_cores(clause: str, body: str) -> tuple[tuple[int, int], ...]:
    cores: dict[int, int] = {}
    for part in body.split(","):
        part = part.strip()
        if not part:
            continue
        if "@" not in part:
            raise ConfigError(
                f"fault spec: {clause}: expected <core>@<mult>x, "
                f"got {part!r}")
        core_s, _, mult_s = part.partition("@")
        core = _parse_int(clause, "core", core_s.strip(), min_val=0)
        mult_s = mult_s.strip()
        if mult_s.lower().endswith("x"):
            mult_s = mult_s[:-1]
        mult = _parse_int(clause, "multiplier", mult_s, min_val=1)
        if core in cores:
            raise ConfigError(f"fault spec: {clause}: core {core} "
                              f"listed twice")
        cores[core] = mult
    return tuple(sorted(cores.items()))


def parse_fault_spec(spec: str) -> FaultSpec:
    """Parse a ``--faults`` spec string.  An empty/whitespace string
    yields an empty spec (``FaultSpec.empty`` is true -> no plan is
    installed and behaviour is bit-identical to a fault-free build)."""
    spec = (spec or "").strip()
    fields: dict = {"raw": spec}
    seen: set[str] = set()
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        name, _, body = clause.partition(":")
        name = name.strip()
        body = body.strip()
        if name in seen:
            raise ConfigError(f"fault spec: duplicate clause {name!r}")
        seen.add(name)
        if name == "net_jitter":
            params = _parse_params(clause, body, ("p", "max"))
            if "p" not in params or "max" not in params:
                raise ConfigError(
                    f"fault spec: {clause}: needs p=<prob>,max=<cycles>")
            fields["net_jitter_p"] = _parse_prob(clause, "p", params["p"])
            fields["net_jitter_max"] = _parse_int(
                clause, "max", params["max"], min_val=1)
        elif name == "dir_nack":
            params = _parse_params(clause, body, ("p", "retries"))
            if "p" not in params:
                raise ConfigError(f"fault spec: {clause}: needs p=<prob>")
            fields["dir_nack_p"] = _parse_prob(clause, "p", params["p"])
            if "retries" in params:
                fields["dir_nack_retries"] = _parse_int(
                    clause, "retries", params["retries"], min_val=1)
        elif name == "timer_skew":
            value = body
            if value.lower().startswith("max="):
                value = value[4:]
            # accept the spec-string idiom "±8" as well as plain "8"
            value = value.lstrip("±").lstrip("+").strip()
            if not value:
                raise ConfigError(
                    f"fault spec: {clause}: needs a skew bound in cycles")
            fields["timer_skew"] = _parse_int(clause, "skew", value,
                                              min_val=0)
        elif name == "slow_core":
            if not body:
                raise ConfigError(
                    f"fault spec: {clause}: needs <core>@<mult>x entries")
            fields["slow_cores"] = _parse_slow_cores(clause, body)
        elif name == "link_degrade":
            params = _parse_params(clause, body, ("p", "factor", "queue"))
            if "p" not in params:
                raise ConfigError(f"fault spec: {clause}: needs p=<prob>")
            fields["link_degrade_p"] = _parse_prob(clause, "p", params["p"])
            if "factor" in params:
                fields["link_degrade_factor"] = _parse_int(
                    clause, "factor", params["factor"], min_val=2)
            if "queue" in params:
                fields["link_degrade_queue"] = _parse_int(
                    clause, "queue", params["queue"], min_val=1)
        else:
            raise ConfigError(
                f"fault spec: unknown clause {name!r} (known: net_jitter, "
                f"dir_nack, timer_skew, slow_core, link_degrade)")
    return FaultSpec(**fields)
