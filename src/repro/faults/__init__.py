"""Deterministic, seed-reproducible fault injection (DESIGN §11).

``parse_fault_spec`` turns a ``--faults`` string into a frozen
:class:`FaultSpec`; ``build_plan`` seeds a :class:`FaultPlan` whose
per-hook ``random.Random`` streams drive latency jitter, directory
NACKs, lease-timer skew, and straggler cores -- byte-identically per
``(seed, spec)`` pair.
"""

from .plan import FaultPlan, build_plan
from .spec import FaultSpec, parse_fault_spec

__all__ = ["FaultSpec", "FaultPlan", "parse_fault_spec", "build_plan"]
