"""Seeded fault plans: deterministic *when* for a parsed *what*.

A :class:`FaultPlan` owns one dedicated ``random.Random`` stream **per
hook site** (network jitter, directory NACK, NACK-retry backoff, timer
skew), each seeded from ``f"{seed}:{hook}"``.  String seeding goes
through SHA-512, so the streams are stable across platforms and
``PYTHONHASHSEED`` values, and independent of each other: enabling one
fault kind never perturbs another kind's draw sequence, and the machine's
own workload RNGs are untouched.  Same ``(seed, spec)`` -> byte-identical
run, serial or under ``--jobs``, which is what makes fault campaigns
replayable through the existing ``repro-check/1`` files.

The hooks are pull-based: the network, directory, and lease manager ask
the plan ("extra latency for this message?", "NACK this arrival?") at
their injection points.  A machine with no plan (``fault_spec == ""``)
skips every hook entirely -- zero draws, zero behaviour change.
"""

from __future__ import annotations

import random

from .spec import FaultSpec, parse_fault_spec

__all__ = ["FaultPlan", "build_plan"]

#: backoff window for NACK retries (cycles), built lazily -- importing
#: repro.sync at module load would close an import cycle through
#: repro.core.machine.  Matches the software contention-management
#: baseline's defaults closely enough to exercise the same retry
#: dynamics the paper's Section 7 compares against.
_nack_backoff = None


def _backoff():
    global _nack_backoff
    if _nack_backoff is None:
        from ..sync.backoff import ExponentialBackoff
        _nack_backoff = ExponentialBackoff(min_delay=16, max_delay=2048)
    return _nack_backoff


class FaultPlan:
    """Deterministic fault schedule for one machine run."""

    __slots__ = ("spec", "seed", "_net_rng", "_nack_rng", "_retry_rng",
                 "_skew_rng", "_link_rng", "_core_scale")

    def __init__(self, spec: FaultSpec, seed: int) -> None:
        self.spec = spec
        self.seed = seed
        self._net_rng = random.Random(f"{seed}:net_jitter")
        self._nack_rng = random.Random(f"{seed}:dir_nack")
        self._retry_rng = random.Random(f"{seed}:nack_retry")
        self._skew_rng = random.Random(f"{seed}:timer_skew")
        self._link_rng = random.Random(f"{seed}:link_degrade")
        self._core_scale = dict(spec.slow_cores)

    # -- network hop latency ------------------------------------------------

    def net_extra(self) -> int:
        """Extra cycles to add to one message's latency (0 = no fault)."""
        spec = self.spec
        if spec.net_jitter_p <= 0.0:
            return 0
        if self._net_rng.random() >= spec.net_jitter_p:
            return 0
        return self._net_rng.randint(1, spec.net_jitter_max)

    # -- directory request queue --------------------------------------------

    def should_nack(self, attempts: int) -> bool:
        """NACK a directory arrival?  ``attempts`` = NACKs already taken
        by this request; capped so a request always gets through."""
        spec = self.spec
        if spec.dir_nack_p <= 0.0 or attempts >= spec.dir_nack_retries:
            return False
        return self._nack_rng.random() < spec.dir_nack_p

    def retry_delay(self, attempt: int) -> int:
        """Backoff before re-issuing a NACKed request (attempt >= 1)."""
        return _backoff().delay(self._retry_rng, attempt - 1)

    # -- lease expiry timer -------------------------------------------------

    def timer_skew(self) -> int:
        """Signed skew (cycles) for one lease expiry timer; the caller
        clamps the effective duration into ``[1, max_lease_time]``."""
        bound = self.spec.timer_skew
        if bound <= 0:
            return 0
        return self._skew_rng.randint(-bound, bound)

    # -- contended-interconnect resources (repro.coherence.links) -----------

    def link_degrade_hit(self) -> bool:
        """Degrade the next interconnect resource?  Consulted once per
        link/port in deterministic build order, build time only."""
        spec = self.spec
        if spec.link_degrade_p <= 0.0:
            return False
        return self._link_rng.random() < spec.link_degrade_p

    # -- per-core IPC throttling --------------------------------------------

    def core_scale(self, core_id: int) -> int:
        """Retire-latency multiplier for ``core_id`` (1 = full speed)."""
        return self._core_scale.get(core_id, 1)

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self) -> dict:
        """The four per-hook RNG streams (spec/seed are config, rebuilt
        from the machine's own config at restore)."""
        from ..state.codec import encode_rng

        out = {name: encode_rng(getattr(self, f"_{name}_rng"))
               for name in ("net", "nack", "retry", "skew")}
        if self.spec.link_degrade_p > 0.0:
            # Conditional so pre-link checkpoints stay loadable and the
            # common case keeps its exact serialized shape.
            out["link"] = encode_rng(self._link_rng)
        return out

    def load_state(self, state: dict) -> None:
        from ..state.codec import decode_rng

        for name in ("net", "nack", "retry", "skew"):
            decode_rng(getattr(self, f"_{name}_rng"), state[name])
        if "link" in state:
            decode_rng(self._link_rng, state["link"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, spec={self.spec.raw!r})"


def build_plan(fault_spec: str, seed: int) -> FaultPlan | None:
    """Parse ``fault_spec`` and return a seeded plan, or ``None`` when
    the spec is empty (the fault-free fast path: no hooks consulted)."""
    spec = parse_fault_spec(fault_spec)
    if spec.empty:
        return None
    return FaultPlan(spec, seed)
