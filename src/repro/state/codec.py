"""Snapshot codec: the machine's object graph <-> a JSON-safe tree.

Three problems make a naive ``pickle`` unusable here:

1. **Closures.**  Event-queue callbacks and stored continuations are bound
   methods of live components (``core._resume``, ``directory._probe_done``,
   ...).  The codec encodes each as a *function descriptor* -- a stable
   path like ``["lease", 3, "_on_grant"]`` -- resolved against the fresh
   machine at restore time.  Only callables registered for the machine can
   be encoded; anything else is a hard :class:`CheckpointError` rather
   than a silently wrong restore.

2. **Identity.**  In-flight protocol objects are *shared*: the same
   ``Request`` is referenced by a directory queue, the requesting core's
   outstanding slot, and possibly a probe in the event queue; the lease
   manager removes ``LeaseEntry`` objects by identity.  The codec keeps an
   id-keyed pool -- first encounter serializes the object's slots, later
   encounters emit a back-reference -- and restores in two phases (blank
   instances first, fields second) so cycles and shared references
   round-trip exactly.

3. **JSON's type poverty.**  Tuples, sets, enums, and int-keyed dicts do
   not survive ``json.dump``.  Containers are wrapped in small tagged
   lists (``["tuple", [...]]`` etc.); sets serialize *sorted* so the tree
   is canonical.  The same tree therefore works both in memory (shrinker
   prefix checkpoints, warm starts) and on disk (``repro-ckpt/1``).
"""

from __future__ import annotations

import enum
import random
from typing import TYPE_CHECKING, Any

from ..errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover
    from ..core.machine import Machine


# ---------------------------------------------------------------------------
# RNG state helpers (used by every component owning a random.Random)
# ---------------------------------------------------------------------------

def encode_rng(rng: random.Random) -> list:
    """``random.Random`` state as a JSON-safe list."""
    version, internal, gauss = rng.getstate()
    return [version, list(internal), gauss]


def decode_rng(rng: random.Random, data: list) -> None:
    """Restore a state produced by :func:`encode_rng` into ``rng``."""
    version, internal, gauss = data
    rng.setstate((version, tuple(internal), gauss))


# ---------------------------------------------------------------------------
# The codec
# ---------------------------------------------------------------------------

def _pooled_classes() -> dict[str, type]:
    """The classes whose instances are identity-pooled.  Imported lazily:
    the codec sits below every layer it serializes."""
    from ..coherence.directory import Request, _Eviction
    from ..coherence.memunit import Probe, _Outstanding
    from ..lease.manager import _PendingAcquire
    from ..lease.table import LeaseEntry, LeaseGroup

    return {cls.__name__: cls for cls in
            (Request, _Eviction, Probe, _Outstanding, _PendingAcquire,
             LeaseEntry, LeaseGroup)}


def _enum_classes() -> dict[str, type]:
    from ..coherence.messages import MessageKind
    from ..coherence.states import DirState, LineState

    return {cls.__name__: cls for cls in (MessageKind, LineState, DirState)}


def _instr_classes() -> dict[str, type]:
    """Instruction classes (a batch-advanced core schedules its pre-pulled
    instruction as an event argument)."""
    from ..core import isa

    return {cls.__name__: cls for cls in
            (isa.Work, isa.Load, isa.Store, isa.CAS, isa.FetchAdd, isa.Swap,
             isa.TestAndSet, isa.Fence, isa.Lease, isa.Release,
             isa.MultiLease, isa.ReleaseAll)}


class SnapshotCodec:
    """One encode/decode session against one machine.

    Build a fresh codec per ``state_dict()`` / ``load_state()`` call: the
    pool and the event map are per-snapshot state.
    """

    def __init__(self, machine: "Machine | None" = None) -> None:
        from ..core.isa import Instr
        from ..engine.event_queue import Event

        self._event_cls = Event
        self._instr_base = Instr
        self._pool_classes = _pooled_classes()
        self._enums = _enum_classes()
        self._instrs = _instr_classes()
        # -- identity pool (encode side) --
        self._pool_index: dict[int, int] = {}
        self._pool_fields: list = []
        # -- identity pool (decode side) --
        self._pool_items: list = []
        self._pending_fields: list = []
        #: seq -> Event, set once the queue is rebuilt (decode side).
        self._event_map: dict[int, Any] | None = None
        # -- function-descriptor registry --
        self._fn_by_desc: dict[tuple, Any] = {}
        self._desc_by_key: dict[Any, tuple] = {}
        if machine is not None:
            self.register_machine(machine)

    # -- callable registry ---------------------------------------------------

    @staticmethod
    def _key(fn: Any) -> Any:
        owner = getattr(fn, "__self__", None)
        if owner is not None:
            return (id(owner), fn.__name__)
        return id(fn)

    def _register(self, desc: tuple, fn: Any) -> None:
        self._fn_by_desc[desc] = fn
        self._desc_by_key[self._key(fn)] = desc

    def register_machine(self, machine: "Machine",
                         prefix: tuple = ()) -> None:
        """Register every callable of ``machine`` that can legally appear
        in the event queue or in a stored continuation slot.  ``prefix``
        namespaces the descriptors -- a multi-node cluster registers node
        ``n`` under ``("node", n)`` so descriptors stay unambiguous across
        machines sharing one event queue."""
        p = tuple(prefix)
        for i, core in enumerate(machine.cores):
            for name in ("_resume", "_lease_done", "_dispatch_batched",
                         "_retire_batched"):
                self._register(p + ("core", i, name), getattr(core, name))
            self._register(p + ("core_commit", i), core._commit_cb)
            for name in ("complete_request", "handle_probe"):
                self._register(p + ("memunit", i, name),
                               getattr(core.memunit, name))
            for name in ("_on_grant", "_expire", "_sw_acquire_step"):
                self._register(p + ("lease", i, name),
                               getattr(core.lease_mgr, name))
        d = machine.directory
        for name in ("_arrive", "_process", "_apply_eviction",
                     "_retry_after", "_probe_done", "issue"):
            self._register(p + ("dir", name), getattr(d, name))
        net = machine.network
        self._register(p + ("net", "send"), net.send)
        # Contended-network continuations (repro.coherence.links): the
        # guard keeps the plain MeshNetwork's registry byte-for-byte what
        # it always was, so default-spec checkpoints are unchanged.
        for name in ("grant_delivery", "_service_done", "_retry", "_route",
                     "_enter_port", "_deliver", "_mem_done"):
            if hasattr(net, name):
                self._register(p + ("net", name), getattr(net, name))

    def encode_fn(self, fn: Any) -> list:
        desc = self._desc_by_key.get(self._key(fn))
        if desc is None:
            raise CheckpointError(
                f"cannot checkpoint unregistered callable {fn!r}; every "
                "scheduled continuation must be a registered component "
                "method (see SnapshotCodec.register_machine)")
        return list(desc)

    def decode_fn(self, desc: list) -> Any:
        fn = self._fn_by_desc.get(tuple(desc))
        if fn is None:
            raise CheckpointError(f"unknown function descriptor {desc!r}")
        return fn

    # -- values --------------------------------------------------------------

    def encode(self, v: Any) -> Any:
        """Encode an arbitrary (supported) value into the JSON-safe tree."""
        if v is None or type(v) in (bool, int, float, str):
            return v
        t = type(v)
        if t is tuple:
            return ["tuple", [self.encode(x) for x in v]]
        if t is list:
            return ["list", [self.encode(x) for x in v]]
        if t is set or t is frozenset:
            return ["set", [self.encode(x) for x in sorted(v)]]
        if t is dict:
            return ["dict", [[self.encode(k), self.encode(x)]
                             for k, x in v.items()]]
        if isinstance(v, enum.Enum):
            return ["enum", t.__name__, v.name]
        if t is self._event_cls:
            return ["event", v.seq]
        if isinstance(v, self._instr_base):
            return ["instr", t.__name__,
                    [[slot, self.encode(getattr(v, slot))]
                     for slot in t.__slots__]]
        if t.__name__ in self._pool_classes and \
                self._pool_classes[t.__name__] is t:
            return self._pool_ref(v)
        if callable(v):
            return ["fn", self.encode_fn(v)]
        raise CheckpointError(
            f"cannot checkpoint value of type {t.__name__}: {v!r}")

    def decode(self, v: Any) -> Any:
        if not isinstance(v, (list, tuple)):
            return v
        tag = v[0]
        if tag == "tuple":
            return tuple(self.decode(x) for x in v[1])
        if tag == "list":
            return [self.decode(x) for x in v[1]]
        if tag == "set":
            return {self.decode(x) for x in v[1]}
        if tag == "dict":
            return {self.decode(k): self.decode(x) for k, x in v[1]}
        if tag == "enum":
            return self._enums[v[1]][v[2]]
        if tag == "event":
            if self._event_map is None:
                raise CheckpointError(
                    "event reference decoded before the queue was rebuilt")
            return self._event_map[v[1]]
        if tag == "instr":
            cls = self._instrs[v[1]]
            obj = object.__new__(cls)
            for slot, enc in v[2]:
                setattr(obj, slot, self.decode(enc))
            return obj
        if tag == "obj":
            return self._pool_items[v[1]]
        if tag == "fn":
            return self.decode_fn(v[1])
        raise CheckpointError(f"unknown codec tag {tag!r}")

    # -- the identity pool ---------------------------------------------------

    def _pool_ref(self, v: Any) -> list:
        idx = self._pool_index.get(id(v))
        if idx is None:
            idx = len(self._pool_fields)
            self._pool_index[id(v)] = idx
            # Reserve the slot before recursing: fields may reference this
            # very object (e.g. a Probe whose Request is mid-encode).
            self._pool_fields.append(None)
            cls = type(v)
            self._pool_fields[idx] = [
                cls.__name__,
                [[slot, self.encode(getattr(v, slot))]
                 for slot in cls.__slots__],
            ]
        return ["obj", idx]

    def dump_pool(self) -> list:
        """The encoded pool; store this *after* everything else has been
        encoded (encoding appends entries)."""
        return self._pool_fields

    def load_pool(self, data: list) -> None:
        """Phase 1 of restore: materialize blank instances so references
        can resolve before any field is filled."""
        self._pool_items = []
        self._pending_fields = []
        for cls_name, fields in data:
            cls = self._pool_classes.get(cls_name)
            if cls is None:
                raise CheckpointError(f"unknown pooled class {cls_name!r}")
            self._pool_items.append(object.__new__(cls))
            self._pending_fields.append(fields)

    def set_event_map(self, event_map: dict[int, Any]) -> None:
        """Install the seq -> Event map of the rebuilt queue (enables
        ``["event", seq]`` decoding, e.g. lease expiry timers)."""
        self._event_map = event_map

    def fill_pool(self) -> None:
        """Phase 2 of restore: decode every pooled object's fields (call
        after :meth:`set_event_map`)."""
        for obj, fields in zip(self._pool_items, self._pending_fields):
            for slot, enc in fields:
                setattr(obj, slot, self.decode(enc))
