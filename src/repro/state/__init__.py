"""Versioned checkpoint/restore for the whole simulated machine.

Every stateful component exposes ``state_dict()`` / ``load_state()``;
:class:`~repro.state.codec.SnapshotCodec` turns the object graph --
in-flight requests, probes, lease entries, scheduled events, bound-method
continuations -- into a JSON-safe tree and back, preserving object
*identity* (the lease bookkeeping removes entries by identity, so a
restore that duplicated a shared ``LeaseEntry`` would corrupt it).

The on-disk container is the ``repro-ckpt/1`` format
(:mod:`repro.state.checkpoint`): the state tree plus the full machine
config, fault spec and builder descriptor, with a hard refusal to restore
into a machine built differently.  :mod:`repro.state.hooks` is the small
seam the CLI uses to thread periodic checkpointing / resume / warm-start
through the workload drivers without changing their signatures.
"""

from .codec import SnapshotCodec, encode_rng, decode_rng
from .checkpoint import (CKPT_FORMAT, CKPT_SCHEMA, save_checkpoint,
                         load_checkpoint, restore_checkpoint,
                         verify_compatible, checkpoint_cell_key)
from .periodic import CheckpointPolicy

__all__ = ["SnapshotCodec", "encode_rng", "decode_rng", "CKPT_FORMAT",
           "CKPT_SCHEMA", "save_checkpoint", "load_checkpoint",
           "restore_checkpoint", "verify_compatible",
           "checkpoint_cell_key", "CheckpointPolicy"]
