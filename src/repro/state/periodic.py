"""Periodic checkpointing / resume / warm-start as a driver run-hook.

:class:`CheckpointPolicy` implements the CLI's ``--checkpoint-every N``,
``--resume CKPT`` and ``--warm-start`` flags.  The CLI installs one
instance as :data:`repro.state.hooks.run_hook` for the duration of a
sweep; every workload driver then routes its ``machine.run()`` through
:meth:`CheckpointPolicy.__call__`, which

1. restores the machine from ``--resume``'s document when it matches the
   current cell (a hard :class:`~repro.errors.CheckpointMismatch` from a
   different *schema* still propagates; a different config/cell just means
   "not this cell" in a multi-cell sweep and is skipped -- the CLI errors
   out if no cell consumed the resume file),
2. otherwise, under ``--warm-start``, scans the checkpoint directory for
   the newest checkpoint whose filename key matches this exact
   (config, cell) pair and restores it, so re-running a sweep resumes
   every cell from its last saved prefix instead of cycle 0, and
3. runs the machine in ``--checkpoint-every``-cycle slices, saving a
   ``repro-ckpt/1`` file after each slice.

Checkpoint filenames are ``ckpt_<key>_c<cycle>.json`` where ``<key>`` is
:func:`~repro.state.checkpoint.checkpoint_cell_key` -- a hash of the
machine config plus the sweep-cell descriptor, so two cells never read
each other's files and a config change orphans (rather than corrupts)
old checkpoints.
"""

from __future__ import annotations

import os
import re
from typing import TYPE_CHECKING, Optional

from ..errors import CheckpointError, CheckpointMismatch
from .checkpoint import (CKPT_SCHEMA, checkpoint_cell_key, load_checkpoint,
                         restore_checkpoint, save_checkpoint)

if TYPE_CHECKING:  # pragma: no cover
    from ..core.machine import Machine

__all__ = ["CheckpointPolicy"]


class CheckpointPolicy:
    """Run-hook that slices ``machine.run()`` into checkpointed segments
    and restores from resume/warm-start documents.  One instance serves a
    whole sweep; it accumulates what it saved and restored for the CLI's
    summary."""

    def __init__(self, *, every: Optional[int] = None,
                 directory: str = "checkpoints",
                 resume_path: Optional[str] = None,
                 warm_start: bool = False) -> None:
        if every is not None and every <= 0:
            raise CheckpointError(
                f"checkpoint interval must be positive, got {every}")
        self.every = every
        self.directory = directory
        self.resume_path = resume_path
        self.resume_doc = (load_checkpoint(resume_path)
                          if resume_path is not None else None)
        self.warm_start = warm_start
        #: checkpoint files written, in order.
        self.saved: list[str] = []
        #: (label, cycle) for every successful restore.
        self.restored: list[tuple[str, int]] = []
        #: whether some cell consumed the --resume document.
        self.resume_consumed = False
        #: the last config/cell mismatch message, for the CLI's hard
        #: refusal when --resume matched no cell at all.
        self.last_mismatch: Optional[str] = None

    # -- the run hook --------------------------------------------------------

    def __call__(self, machine: "Machine") -> None:
        from . import hooks

        cell = hooks.cell
        machine.enable_checkpointing()
        restored = self._try_resume(machine, cell)
        if not restored and self.warm_start:
            self._try_warm_start(machine, cell)
        if not self.every:
            machine.run()
            return
        key = checkpoint_cell_key(machine.config, cell)
        while machine._live_threads > 0:
            machine.run(until=machine.now + self.every)
            if machine._live_threads == 0:
                break
            path = os.path.join(
                self.directory, f"ckpt_{key}_c{machine.now}.json")
            save_checkpoint(machine, path, cell=cell)
            self.saved.append(path)
        machine.run()    # drain any post-quiescence bookkeeping events

    # -- restore sources -----------------------------------------------------

    def _try_resume(self, machine: "Machine", cell: Optional[dict]) -> bool:
        if self.resume_doc is None or self.resume_consumed:
            return False
        doc = self.resume_doc
        try:
            cycle = restore_checkpoint(machine, doc, cell=cell)
        except CheckpointMismatch as err:
            if doc.get("schema") != CKPT_SCHEMA:
                raise    # a wrong-schema file can never match a later cell
            # In a multi-cell sweep only one cell matches the resume
            # file; the others run from scratch.  The CLI raises if the
            # sweep finishes without any cell consuming the document.
            self.last_mismatch = str(err)
            return False
        self.resume_consumed = True
        self.restored.append((self.resume_path or "<resume>", cycle))
        return True

    def _try_warm_start(self, machine: "Machine",
                        cell: Optional[dict]) -> bool:
        found = self._newest_for(machine, cell)
        if found is None:
            return False
        path, doc = found
        try:
            cycle = restore_checkpoint(machine, doc, cell=cell)
        except CheckpointMismatch as err:
            # A stale file whose name key collides but whose content
            # disagrees: warm start is opportunistic, so skip it.
            self.last_mismatch = str(err)
            return False
        self.restored.append((path, cycle))
        return True

    def _newest_for(self, machine: "Machine", cell: Optional[dict]
                    ) -> Optional[tuple[str, dict]]:
        """The highest-cycle checkpoint file named for this exact
        (config, cell) key, or None."""
        key = checkpoint_cell_key(machine.config, cell)
        pattern = re.compile(rf"ckpt_{re.escape(key)}_c(\d+)\.json$")
        try:
            names = os.listdir(self.directory)
        except OSError:
            return None
        best: Optional[tuple[int, str]] = None
        for name in names:
            m = pattern.fullmatch(name)
            if m is not None:
                cycle = int(m.group(1))
                if best is None or cycle > best[0]:
                    best = (cycle, name)
        if best is None:
            return None
        path = os.path.join(self.directory, best[1])
        return path, load_checkpoint(path)
