"""The ``repro-ckpt/1`` on-disk checkpoint container.

A checkpoint file embeds everything needed to refuse a bad restore:

* ``format`` / ``schema`` -- container and state-tree versions;
* ``config`` -- the full :class:`~repro.config.MachineConfig` (including
  the fault spec and seed) the machine was built with;
* ``cell`` -- an optional builder descriptor (driver name, thread count,
  kwargs) identifying *how* the machine was populated.  Two machines with
  identical configs but different workloads (e.g. the ``base`` and
  ``backoff`` variants of a sweep) are **not** interchangeable: restoring
  replays the resume log into the fresh machine's generators, and a
  different workload would replay the wrong program.  The cell descriptor
  is what catches that.
* ``state`` -- the machine state tree (see :meth:`Machine.state_dict`).

Restores are all-or-nothing: any mismatch raises
:class:`~repro.errors.CheckpointMismatch` before a single field is
touched.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import TYPE_CHECKING, Any

from ..errors import CheckpointError, CheckpointMismatch

if TYPE_CHECKING:  # pragma: no cover
    from ..core.machine import Machine

#: On-disk container format tag.
CKPT_FORMAT = "repro-ckpt/1"

#: State-tree schema version (bumped when component state shapes change).
CKPT_SCHEMA = 1


def config_fingerprint(config: Any) -> dict:
    """The config as a canonical JSON-safe dict (tuples normalized to
    lists so an in-memory config compares equal to a round-tripped one).

    The run-loop ``engine`` choice is excluded: both engines produce
    bit-identical machine state, so a checkpoint taken under one engine
    restores under the other."""
    d = dataclasses.asdict(config)
    d.pop("engine", None)
    return json.loads(json.dumps(d, sort_keys=True))


def checkpoint_cell_key(config: Any, cell: dict | None) -> str:
    """Short stable hash naming the (config, cell) a checkpoint belongs
    to -- used for checkpoint filenames and warm-start lookup."""
    blob = json.dumps({"config": config_fingerprint(config),
                       "cell": cell}, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def build_document(machine: "Machine", *, cell: dict | None = None) -> dict:
    """Snapshot ``machine`` into a ``repro-ckpt/1`` document."""
    cfg = machine.config
    return {
        "format": CKPT_FORMAT,
        "schema": CKPT_SCHEMA,
        "config": config_fingerprint(cfg),
        "fault_spec": cfg.fault_spec,
        "seed": cfg.seed,
        "cell": cell,
        "cycle": machine.sim.now,
        "state": machine.state_dict(),
    }


def save_checkpoint(machine: "Machine", path: str, *,
                    cell: dict | None = None) -> dict:
    """Write a checkpoint of ``machine`` to ``path``; returns the
    document (whose ``state`` can also be restored in memory)."""
    doc = build_document(machine, cell=cell)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(doc, f, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)
    return doc


def load_checkpoint(path: str) -> dict:
    """Read and structurally validate a ``repro-ckpt/1`` file."""
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"{path}: not a checkpoint file ({exc})")
    if not isinstance(doc, dict) or doc.get("format") != CKPT_FORMAT:
        raise CheckpointError(
            f"{path}: unsupported checkpoint format "
            f"{doc.get('format') if isinstance(doc, dict) else None!r} "
            f"(expected {CKPT_FORMAT})")
    for key in ("schema", "config", "cycle", "state"):
        if key not in doc:
            raise CheckpointError(f"{path}: missing checkpoint key {key!r}")
    return doc


def verify_compatible(machine: "Machine", doc: dict, *,
                      cell: dict | None = None) -> None:
    """Refuse (raise :class:`CheckpointMismatch`) unless ``doc`` was taken
    from a machine built exactly like ``machine``."""
    if doc.get("schema") != CKPT_SCHEMA:
        raise CheckpointMismatch(
            f"checkpoint schema {doc.get('schema')!r} != {CKPT_SCHEMA} "
            "(state-tree layout changed; re-record the checkpoint)")
    have = config_fingerprint(machine.config)
    if doc["config"] != have:
        diff = sorted(k for k in set(have) | set(doc["config"])
                      if have.get(k) != doc["config"].get(k))
        raise CheckpointMismatch(
            "checkpoint config does not match this machine "
            f"(differs in: {', '.join(diff) or 'structure'}); refusing to "
            "restore")
    if cell is not None and doc.get("cell") is not None \
            and doc["cell"] != cell:
        raise CheckpointMismatch(
            f"checkpoint was taken for cell {doc['cell']!r}, not "
            f"{cell!r}; same config but a different workload cannot be "
            "restored (the resume log would replay the wrong program)")


def restore_checkpoint(machine: "Machine", doc: dict, *,
                       cell: dict | None = None) -> int:
    """Verify compatibility, then restore ``doc`` into ``machine``.
    Returns the checkpoint's cycle."""
    verify_compatible(machine, doc, cell=cell)
    machine.load_state(doc["state"])
    return doc["cycle"]
