"""Run-hook seam between the CLI and the workload drivers.

The drivers in :mod:`repro.workloads.driver` build a machine, add threads
and call ``machine.run()``.  Checkpointing (periodic saves, resume,
warm-start) needs to wrap that run without changing thirteen driver
signatures, so the drivers consult this module: when :data:`run_hook` is
set, they call ``run_hook(machine)`` instead of ``machine.run()``.

:data:`cell` is set by the sweep harness just before each cell runs and
describes *which* bench/variant/thread-count is executing -- the hook uses
it to name checkpoints and to match warm-start candidates (configs alone
cannot distinguish two variants that differ only in workload kwargs).

Both globals are process-local and default to ``None``/off; parallel
sweeps (``jobs > 1``) run cells in worker processes where the hook is
never installed, so checkpointed runs must be serial (the CLI enforces
this).
"""

from __future__ import annotations

from typing import Callable, Optional

#: When set, drivers call ``run_hook(machine)`` instead of ``machine.run()``.
run_hook: Optional[Callable] = None

#: Descriptor of the sweep cell currently executing:
#: ``{"bench": name, "num_threads": n, "kwargs": {...}}`` or None.
cell: Optional[dict] = None
