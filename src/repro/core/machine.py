"""The Machine: top-level façade assembling the whole simulated multicore.

Typical use::

    from repro import Machine, MachineConfig

    m = Machine(MachineConfig(num_cores=16))
    stack = TreiberStack(m, use_lease=True)
    for _ in range(16):
        m.add_thread(stack_worker, stack, ops=100)
    m.run()
    print(m.result("stack").throughput_ops_per_sec)
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from ..config import MachineConfig, WORD_SIZE
from ..coherence.directory import Directory
from ..coherence.l2 import SharedL2
from ..coherence.network import MeshNetwork
from ..engine import Simulator
from ..errors import SimulationError
from ..faults import build_plan
from ..mem import AddressMap, Allocator, Memory
from ..stats import EnergyModel, RunResult
from ..trace import CountersTracer, TraceBus, Tracer
from .core import Core
from .thread import Ctx, ThreadHandle


class Machine:
    """A simulated tiled multicore with Lease/Release support."""

    def __init__(self, config: MachineConfig | None = None, *,
                 schedule_strategy=None) -> None:
        self.config = config or MachineConfig()
        cfg = self.config
        #: Optional schedule-perturbation strategy (see repro.check.perturb)
        #: reordering same-timestamp events; None keeps the default
        #: deterministic order.
        self.schedule_strategy = schedule_strategy
        self.sim = Simulator(seed=cfg.seed, max_cycles=cfg.max_cycles,
                             max_events=cfg.max_events,
                             strategy=schedule_strategy)
        #: The instrumentation bus every layer emits trace events into.
        #: The default CountersTracer sink derives the classic flat
        #: counters; attach_tracer() adds further observers.
        self._counters_sink = CountersTracer()
        self.trace = TraceBus(clock=lambda: self.sim.now,
                              sinks=(self._counters_sink,))
        self.counters = self._counters_sink.counters
        self.amap = AddressMap(cfg.line_size, cfg.num_cores)
        self.memory = Memory()
        self.alloc = Allocator(self.amap)
        #: Seeded fault plan (repro.faults), or None for the fault-free
        #: default (no hooks consulted; bit-identical to a plan-less build).
        self.faults = build_plan(cfg.fault_spec, cfg.seed)
        self.network = MeshNetwork(cfg.network, cfg.num_cores, self.sim,
                                   self.trace, faults=self.faults)
        self.l2 = SharedL2(cfg, self.trace)
        self.directory = Directory(self.amap, self.network, self.l2,
                                   self.sim, self.trace,
                                   mesi=cfg.protocol == "mesi",
                                   faults=self.faults)
        self.cores = [Core(i, self) for i in range(cfg.num_cores)]
        if self.faults is not None:
            # Announce each straggler core once (the per-instruction
            # slowdown itself is folded into retire latencies).
            for core_id, mult in self.faults.spec.slow_cores:
                self.trace.fault_injected("slow_core", core_id, mult)
        self.directory.mem_units = [c.memunit for c in self.cores]
        self.energy_model = EnergyModel(cfg.energy, cfg.num_cores)
        self.threads: list[ThreadHandle] = []
        self._live_threads = 0
        self.sim.quiescent = lambda: self._live_threads == 0
        self._ran = False

    # -- instrumentation -----------------------------------------------------

    def attach_tracer(self, sink: Tracer) -> Tracer:
        """Attach a trace sink to this machine's bus.  The sink's ``bind``
        hook receives the machine (sinks that inspect state -- invariant
        checker, heatmap -- wire themselves there).  Returns the sink."""
        sink.bind(self)
        return self.trace.attach(sink)

    def detach_tracer(self, sink: Tracer) -> None:
        self.trace.detach(sink)

    # -- memory helpers ----------------------------------------------------

    def alloc_var(self, init: Any = 0, *, label: str | None = None) -> int:
        """Allocate one shared variable on its own cache line (the paper's
        false-sharing-free layout) and initialize it without traffic.
        ``label`` names the allocation in traces/heatmaps."""
        addr = self.alloc.alloc_line(label=label)
        self.memory.write(addr, init)
        return addr

    def alloc_struct(self, fields: list[Any], *,
                     label: str | None = None) -> int:
        """Allocate consecutive words (one line-aligned block) initialized
        to ``fields``; returns the base address."""
        base = self.alloc.alloc_words(len(fields), label=label)
        for i, v in enumerate(fields):
            self.memory.write(base + i * WORD_SIZE, v)
        return base

    def write_init(self, addr: int, value: Any) -> None:
        """Initialize memory directly (no simulated traffic).  Only valid
        before the address has entered coherence circulation."""
        self.memory.write(addr, value)

    def peek(self, addr: int) -> Any:
        """Read the backing store without simulating an access."""
        return self.memory.read(addr)

    # -- threads ------------------------------------------------------------

    def add_thread(self, body: Callable[..., Generator], *args: Any,
                   name: str | None = None, core: int | None = None,
                   **kwargs: Any) -> ThreadHandle:
        """Create a thread running ``body(ctx, *args, **kwargs)`` on the
        next free core (or ``core``).  One thread per core."""
        if core is None:
            core = next((c.core_id for c in self.cores if c.idle), None)
            if core is None:
                raise SimulationError(
                    f"all {self.config.num_cores} cores busy; the model "
                    "runs one thread per core (add cores or fewer threads)")
        elif not self.cores[core].idle:
            raise SimulationError(f"core {core} already has a thread")
        tid = len(self.threads)
        handle = ThreadHandle(tid, core, name or body.__name__)
        ctx = Ctx(self, tid, core)
        gen = body(ctx, *args, **kwargs)
        if not isinstance(gen, Generator):
            raise SimulationError(
                f"thread body {body.__name__} must be a generator function")
        self.threads.append(handle)
        self._live_threads += 1
        self.cores[core].start_thread(gen, handle)
        return handle

    def _thread_finished(self, handle: ThreadHandle) -> None:
        self._live_threads -= 1

    # -- running -----------------------------------------------------------

    def run(self, until: int | None = None) -> int:
        """Run until all threads finish (or ``until`` cycles).  Returns the
        final simulation time in cycles."""
        self._ran = True
        return self.sim.run(until=until)

    @property
    def now(self) -> int:
        return self.sim.now

    # -- results ------------------------------------------------------------

    def result(self, name: str = "run", *,
               extra: dict[str, Any] | None = None) -> RunResult:
        """Summarize the whole run into a :class:`RunResult`."""
        k = self.counters
        cycles = max(1, self.sim.now)
        ops = k.ops_completed
        throughput = ops * self.config.clock_hz / cycles
        return RunResult(
            name=name,
            num_threads=len(self.threads),
            cycles=self.sim.now,
            ops=ops,
            throughput_ops_per_sec=throughput,
            energy_nj_per_op=self.energy_model.nj_per_op(k, cycles),
            messages_per_op=k.messages / max(1, ops),
            l1_misses_per_op=k.l1_misses / max(1, ops),
            cas_failure_rate=k.cas_failures / max(1, k.cas_attempts),
            extra=extra or {},
            counters=k.snapshot(),
        )

    def check_coherence_invariants(self) -> None:
        """Verify directory/L1 agreement (tests call this at quiescence)."""
        self.directory.check_invariants()
