"""The Machine: top-level façade assembling the whole simulated multicore.

Typical use::

    from repro import Machine, MachineConfig

    m = Machine(MachineConfig(num_cores=16))
    stack = TreiberStack(m, use_lease=True)
    for _ in range(16):
        m.add_thread(stack_worker, stack, ops=100)
    m.run()
    print(m.result("stack").throughput_ops_per_sec)
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from ..config import MachineConfig, WORD_SIZE
from ..coherence.directory import Directory
from ..coherence.l2 import SharedL2
from ..coherence.links import build_network
from ..engine import Simulator
from ..errors import CheckpointError, CheckpointMismatch, SimulationError
from ..faults import build_plan
from ..mem import AddressMap, Allocator, Memory
from ..stats import EnergyModel, RunResult
from ..trace import CountersTracer, TraceBus, Tracer
from .core import Core
from .thread import Ctx, ThreadHandle


class _ReplayCursor:
    """Read position over a restored resume log.

    While :meth:`Machine.load_state` replays the log to re-materialize the
    thread generators, :class:`~repro.core.thread.Ctx` pops its recorded
    ``alloc``/``peek`` results from here (instead of re-touching the
    allocator/memory, whose state is installed after the replay); the
    machine itself pops the ``send``/``throw`` entries that drive the
    generators.  Both advance the same position, because the log is one
    global-order sequence.
    """

    __slots__ = ("entries", "pos")

    def __init__(self, entries: list) -> None:
        self.entries = entries
        self.pos = 0

    def next_entry(self):
        return self.entries[self.pos] if self.pos < len(self.entries) else None

    def take(self, kind: str, tid: int) -> Any:
        entry = self.next_entry()
        if entry is None or entry[0] != kind or entry[1] != tid:
            raise CheckpointError(
                f"resume-log divergence: thread {tid} asked for a {kind!r} "
                f"result but the log has {entry!r}; the restored machine "
                "is not running the checkpointed workload")
        self.pos += 1
        return entry[2]


class Machine:
    """A simulated tiled multicore with Lease/Release support."""

    def __init__(self, config: MachineConfig | None = None, *,
                 schedule_strategy=None, sim: Simulator | None = None) -> None:
        self.config = config or MachineConfig()
        cfg = self.config
        #: Optional schedule-perturbation strategy (see repro.check.perturb)
        #: reordering same-timestamp events; None keeps the default
        #: deterministic order.
        self.schedule_strategy = schedule_strategy
        if sim is None:
            self.sim = Simulator(seed=cfg.seed, max_cycles=cfg.max_cycles,
                                 max_events=cfg.max_events,
                                 strategy=schedule_strategy,
                                 engine=cfg.engine)
            self._owns_sim = True
        else:
            # A member of a multi-node cluster: all machines share one
            # simulated clock/event queue owned by the cluster, which also
            # owns the quiescence predicate and any schedule strategy.
            if schedule_strategy is not None:
                raise SimulationError(
                    "a shared simulator already owns the schedule; install "
                    "the strategy on the cluster, not on a member machine")
            self.sim = sim
            self._owns_sim = False
        #: The instrumentation bus every layer emits trace events into.
        #: The default CountersTracer sink derives the classic flat
        #: counters; attach_tracer() adds further observers.
        self._counters_sink = CountersTracer()
        self.trace = TraceBus(clock=lambda: self.sim.now,
                              sinks=(self._counters_sink,))
        self.counters = self._counters_sink.counters
        self.amap = AddressMap(cfg.line_size, cfg.num_cores)
        self.memory = Memory()
        self.alloc = Allocator(self.amap)
        #: Seeded fault plan (repro.faults), or None for the fault-free
        #: default (no hooks consulted; bit-identical to a plan-less build).
        self.faults = build_plan(cfg.fault_spec, cfg.seed)
        #: Plain contention-free MeshNetwork for an empty network spec
        #: (bit-identical to the pre-links model), LinkedNetwork otherwise.
        self.network = build_network(cfg.network, cfg.num_cores, self.sim,
                                     self.trace, faults=self.faults)
        self.l2 = SharedL2(cfg, self.trace)
        self.directory = Directory(self.amap, self.network, self.l2,
                                   self.sim, self.trace,
                                   mesi=cfg.protocol == "mesi",
                                   faults=self.faults)
        self.cores = [Core(i, self) for i in range(cfg.num_cores)]
        if self.faults is not None:
            # Announce each straggler core once (the per-instruction
            # slowdown itself is folded into retire latencies).
            for core_id, mult in self.faults.spec.slow_cores:
                self.trace.fault_injected("slow_core", core_id, mult)
        self.directory.mem_units = [c.memunit for c in self.cores]
        self.energy_model = EnergyModel(cfg.energy, cfg.num_cores)
        self.threads: list[ThreadHandle] = []
        self._ctxs: list[Ctx] = []
        self._live_threads = 0
        if self._owns_sim:
            self.sim.quiescent = lambda: self._live_threads == 0
            # The machine's quiescence predicate only flips on thread start
            # and finish, and both paths notify -- so the run loop can skip
            # the per-event poll entirely (on either engine).
            self.sim.use_quiescence_notify()
        #: True while core batch-advance is allowed (fast engine + every
        #: trace sink folds events order-insensitively); recomputed at each
        #: run() since sinks may be attached between runs.
        self._batch_ok = False
        self._ran = False
        #: Checkpoint support (repro.state).  When recording is enabled,
        #: every generator interaction is appended to this global-order
        #: resume log so a restore can re-materialize the generators by
        #: replay; None (the default) records nothing and costs nothing.
        self._replay_log: list | None = None
        #: Cursor over a restored resume log while a replay is in progress
        #: (Ctx pops alloc/peek results from it instead of touching the
        #: allocator/memory, whose state is installed after the replay).
        self._replay_cursor = None

    # -- instrumentation -----------------------------------------------------

    def attach_tracer(self, sink: Tracer) -> Tracer:
        """Attach a trace sink to this machine's bus.  The sink's ``bind``
        hook receives the machine (sinks that inspect state -- invariant
        checker, heatmap -- wire themselves there).  Returns the sink."""
        sink.bind(self)
        return self.trace.attach(sink)

    def detach_tracer(self, sink: Tracer) -> None:
        self.trace.detach(sink)

    # -- memory helpers ----------------------------------------------------

    def alloc_var(self, init: Any = 0, *, label: str | None = None) -> int:
        """Allocate one shared variable on its own cache line (the paper's
        false-sharing-free layout) and initialize it without traffic.
        ``label`` names the allocation in traces/heatmaps."""
        addr = self.alloc.alloc_line(label=label)
        self.memory.write(addr, init)
        return addr

    def alloc_struct(self, fields: list[Any], *,
                     label: str | None = None) -> int:
        """Allocate consecutive words (one line-aligned block) initialized
        to ``fields``; returns the base address."""
        base = self.alloc.alloc_words(len(fields), label=label)
        for i, v in enumerate(fields):
            self.memory.write(base + i * WORD_SIZE, v)
        return base

    def write_init(self, addr: int, value: Any) -> None:
        """Initialize memory directly (no simulated traffic).  Only valid
        before the address has entered coherence circulation."""
        self.memory.write(addr, value)

    def peek(self, addr: int) -> Any:
        """Read the backing store without simulating an access."""
        return self.memory.read(addr)

    # -- threads ------------------------------------------------------------

    def add_thread(self, body: Callable[..., Generator], *args: Any,
                   name: str | None = None, core: int | None = None,
                   **kwargs: Any) -> ThreadHandle:
        """Create a thread running ``body(ctx, *args, **kwargs)`` on the
        next free core (or ``core``).  One thread per core."""
        if core is None:
            core = next((c.core_id for c in self.cores if c.idle), None)
            if core is None:
                raise SimulationError(
                    f"all {self.config.num_cores} cores busy; the model "
                    "runs one thread per core (add cores or fewer threads)")
        elif not self.cores[core].idle:
            raise SimulationError(f"core {core} already has a thread")
        tid = len(self.threads)
        handle = ThreadHandle(tid, core, name or body.__name__)
        ctx = Ctx(self, tid, core)
        gen = body(ctx, *args, **kwargs)
        if not isinstance(gen, Generator):
            raise SimulationError(
                f"thread body {body.__name__} must be a generator function")
        self.threads.append(handle)
        self._ctxs.append(ctx)
        self._live_threads += 1
        self.sim.quiesce_dirty = True
        self.cores[core].start_thread(gen, handle)
        return handle

    def _thread_finished(self, handle: ThreadHandle) -> None:
        self._live_threads -= 1
        self.sim.quiesce_dirty = True

    @property
    def idle_cores(self) -> int:
        """Cores without a live thread (one thread per core, so this is
        ``num_cores`` exactly when the machine is quiescent)."""
        return len(self.cores) - self._live_threads

    # -- running -----------------------------------------------------------

    def run(self, until: int | None = None) -> int:
        """Run until all threads finish (or ``until`` cycles).  Returns the
        final simulation time in cycles."""
        self._ran = True
        self._batch_ok = (self.sim.engine == "fast"
                          and all(getattr(s, "folds_unordered", False)
                                  for s in self.trace.sinks))
        return self.sim.run(until=until)

    @property
    def now(self) -> int:
        return self.sim.now

    @property
    def engine(self) -> str:
        """The engine actually in effect (``"compat"`` whenever a schedule
        strategy is installed, regardless of the configured engine)."""
        return self.sim.engine

    # -- checkpointing (repro.state) ----------------------------------------

    #: State-tree schema; bumped whenever a component's state shape changes.
    STATE_SCHEMA = 1

    def enable_checkpointing(self) -> None:
        """Start recording the generator resume log, which is what allows
        this machine to be snapshotted later.  Must be called before the
        first :meth:`run` -- the log has to cover every generator
        interaction from cycle 0.  Idempotent."""
        if self._replay_log is not None:
            return
        if self._ran:
            raise SimulationError(
                "enable_checkpointing() must be called before the machine "
                "first runs: the resume log must start at cycle 0")
        self._replay_log = []

    def state_dict(self) -> dict:
        """Serialize the complete machine state as a JSON-safe tree.

        Thread generators cannot be serialized directly; instead the
        recorded resume log is saved, and :meth:`load_state` re-drives
        fresh generators through it.  Everything else -- clock, RNG
        streams, event queue, caches, directory, leases, counters, fault
        plan, perturbation strategy -- is captured field-for-field, so a
        restored run is bit-identical to one that never stopped.
        """
        from ..state.codec import SnapshotCodec

        codec = SnapshotCodec(self)
        state = {
            "schema": self.STATE_SCHEMA,
            "sim": self.sim.state_dict(),
            "queue": self.sim.queue.state_dict(codec),
        }
        state.update(self.component_state(codec))
        if self.schedule_strategy is not None and \
                hasattr(self.schedule_strategy, "state_dict"):
            state["strategy"] = self.schedule_strategy.state_dict()
        # The pool must be dumped last: encoding above appends to it.
        state["pool"] = codec.dump_pool()
        self.trace.checkpoint_saved(self.sim.now, len(self._replay_log))
        return state

    def component_state(self, codec) -> dict:
        """The machine-local half of :meth:`state_dict`: every component
        this machine *owns* (memory, caches, cores, leases, sinks, thread
        bookkeeping, fault plan) encoded through ``codec``.  The shared
        half -- clock, event queue, strategy, pool -- is serialized by
        whoever owns the simulator (this machine for a solo run, the
        cluster for a multi-node run)."""
        from ..state.codec import encode_rng

        if self._replay_log is None:
            raise CheckpointError(
                "machine is not checkpointable: call enable_checkpointing() "
                "before run()")
        state = {
            "memory": self.memory.state_dict(codec),
            "alloc": self.alloc.state_dict(),
            "l2": self.l2.state_dict(),
            "directory": self.directory.state_dict(codec),
            "cores": [c.state_dict(codec) for c in self.cores],
            "sinks": [[type(s).__name__,
                       s.state_dict(codec) if hasattr(s, "state_dict")
                       else None]
                      for s in self.trace.sinks],
            "threads": [{"done": h.done, "result": codec.encode(h.result)}
                        for h in self.threads],
            "ctx_rngs": [encode_rng(c.rng) for c in self._ctxs],
            "live_threads": self._live_threads,
            "ran": self._ran,
            "replay_log": [[kind, tid, codec.encode(value), t]
                           for kind, tid, value, t in self._replay_log],
        }
        if self.faults is not None:
            state["faults"] = self.faults.state_dict()
        if self.network.contended:
            # Key only exists for contended builds, so default-spec
            # checkpoints keep their exact pre-links shape.
            state["network"] = self.network.state_dict(codec)
        return state

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` tree into this freshly built
        machine.

        The machine must have been constructed with the same config and
        populated with the same threads as the checkpointed one (the
        on-disk container in :mod:`repro.state.checkpoint` verifies this
        before calling here).  Restore replays the resume log into the
        fresh generators with the trace bus muted, then installs every
        component's saved state on top.
        """
        from ..state.codec import SnapshotCodec

        if state.get("schema") != self.STATE_SCHEMA:
            raise CheckpointMismatch(
                f"state schema {state.get('schema')!r} != "
                f"{self.STATE_SCHEMA} supported by this build")
        self.check_compatible(state)
        codec = SnapshotCodec(self)
        codec.load_pool(state["pool"])
        entries = self.replay_resume_log(state["replay_log"], codec)
        # -- rebuild the event queue, then resolve shared objects -----------
        event_map = self.sim.queue.load_state(state["queue"], codec)
        codec.set_event_map(event_map)
        codec.fill_pool()
        self.sim.load_state(state["sim"])
        if "strategy" in state and self.schedule_strategy is not None and \
                hasattr(self.schedule_strategy, "load_state"):
            self.schedule_strategy.load_state(state["strategy"])
        self.install_component_state(state, codec, entries)

    def check_compatible(self, state: dict) -> None:
        """Raise unless this freshly built machine matches the checkpointed
        one closely enough that a restore can possibly succeed."""
        if self._ran:
            raise CheckpointError(
                "load_state() requires a freshly built machine: this one "
                "has already run")
        if len(state["threads"]) != len(self.threads):
            raise CheckpointMismatch(
                f"checkpoint has {len(state['threads'])} threads, machine "
                f"has {len(self.threads)}: not the same workload")
        if ("faults" in state) != (self.faults is not None):
            raise CheckpointMismatch(
                "checkpoint and machine disagree about fault injection "
                "(different fault_spec?)")
        if ("network" in state) != self.network.contended:
            raise CheckpointMismatch(
                "checkpoint and machine disagree about interconnect "
                "contention (different network spec?)")

    def replay_resume_log(self, enc_entries: list, codec) -> list:
        """Replay the recorded resume log into this machine's fresh thread
        generators, re-materializing their frames.  Mutes the trace bus
        (sinks already saw these events in the original run; their state is
        installed from the snapshot afterwards) -- the bus stays muted
        until :meth:`install_component_state` unmutes it.  Returns the
        decoded entries for the caller to hand back to install."""
        from ..errors import LeaseError

        self.trace.mute()
        entries = [(kind, tid, codec.decode(enc), t)
                   for kind, tid, enc, t in enc_entries]
        cursor = _ReplayCursor(entries)
        self._replay_cursor = cursor
        self._replay_log = None
        try:
            while (entry := cursor.next_entry()) is not None:
                kind, tid, value, t = entry
                if kind not in ("send", "throw"):
                    raise CheckpointError(
                        f"stray {kind!r} entry in resume log: no thread "
                        "consumed it during replay")
                cursor.pos += 1
                core = self.cores[self.threads[tid].core_id]
                gen = core._gen
                if gen is None:
                    raise CheckpointError(
                        f"resume log drives thread {tid} past its end")
                # The body may read the clock (ctx.machine.now) mid-run;
                # replay it under the cycle it originally saw.
                self.sim.now = t
                try:
                    if kind == "send":
                        gen.send(value)
                    else:
                        gen.throw(LeaseError(value))
                except StopIteration:
                    core._gen = None
                    core._handle = None
        finally:
            self._replay_cursor = None
        if cursor.pos != len(entries):
            raise CheckpointError(
                "resume log not fully consumed: restored workload diverged "
                "from the checkpointed one")
        return entries

    def install_component_state(self, state: dict, codec,
                                entries: list) -> None:
        """Install every machine-local component's saved state (the
        :meth:`component_state` half) on top of the replayed generators,
        then unmute the bus.  The caller has already rebuilt the event
        queue and filled the codec pool."""
        from ..state.codec import decode_rng

        self.memory.load_state(state["memory"], codec)
        self.alloc.load_state(state["alloc"])
        self.l2.load_state(state["l2"])
        self.directory.load_state(state["directory"], codec)
        for core, cs in zip(self.cores, state["cores"]):
            core.load_state(cs, codec)
        sinks = self.trace.sinks
        if len(state["sinks"]) != len(sinks):
            raise CheckpointMismatch(
                f"checkpoint has {len(state['sinks'])} trace sinks, machine "
                f"has {len(sinks)}")
        for sink, (cls_name, ss) in zip(sinks, state["sinks"]):
            if type(sink).__name__ != cls_name:
                raise CheckpointMismatch(
                    f"trace sink mismatch: checkpoint saved {cls_name}, "
                    f"machine has {type(sink).__name__}")
            if ss is not None and hasattr(sink, "load_state"):
                sink.load_state(ss, codec)
        if self.faults is not None:
            self.faults.load_state(state["faults"])
        if self.network.contended:
            self.network.load_state(state["network"], codec)
        for handle, ts in zip(self.threads, state["threads"]):
            handle.done = ts["done"]
            handle.result = codec.decode(ts["result"])
            core = self.cores[handle.core_id]
            if handle.done and core._handle is not None:
                raise CheckpointError(
                    f"thread {handle.tid} is done in the checkpoint but its "
                    "replayed generator never finished")
        for ctx, r in zip(self._ctxs, state["ctx_rngs"]):
            decode_rng(ctx.rng, r)
        self._live_threads = state["live_threads"]
        self._ran = state["ran"]
        # Recording continues from the replayed history, so a machine
        # restored from cycle T can itself be checkpointed at T' > T.
        self._replay_log = entries
        self.trace.unmute()
        self.trace.checkpoint_restored(self.sim.now, len(self.threads))

    # -- results ------------------------------------------------------------

    def result(self, name: str = "run", *,
               extra: dict[str, Any] | None = None) -> RunResult:
        """Summarize the whole run into a :class:`RunResult`."""
        k = self.counters
        cycles = max(1, self.sim.now)
        ops = k.ops_completed
        throughput = ops * self.config.clock_hz / cycles
        if self.network.contended:
            extra = dict(extra or {})
            util = self.network.utilization()
            extra.setdefault("link_util_pct",
                             round(100 * util.get("link", 0.0), 2))
            extra.setdefault("link_flits", k.link_flits)
            extra.setdefault("link_stall_cycles", k.link_stall_cycles)
            extra.setdefault("port_stalls", k.port_stalls)
        return RunResult(
            name=name,
            num_threads=len(self.threads),
            cycles=self.sim.now,
            ops=ops,
            throughput_ops_per_sec=throughput,
            energy_nj_per_op=self.energy_model.nj_per_op(k, cycles),
            messages_per_op=k.messages / max(1, ops),
            l1_misses_per_op=k.l1_misses / max(1, ops),
            cas_failure_rate=k.cas_failures / max(1, k.cas_attempts),
            extra=extra or {},
            counters=k.snapshot(),
        )

    def check_coherence_invariants(self) -> None:
        """Verify directory/L1 agreement (tests call this at quiescence)."""
        self.directory.check_invariants()
