"""In-order core model.

Each core runs exactly one simulated thread (the paper's experiments use one
thread per core/tile).  The core pulls instructions from the thread
generator, executes them against its memory unit / lease manager, and
resumes the generator with the result.  Every instruction takes at least one
cycle, and every continuation goes through the event queue, so generator
resumption never recurses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..errors import SimulationError
from . import isa
from .thread import ThreadHandle

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine


class _CommitCallback:
    """Callable shim around :meth:`Core._commit` with no ``core_id``.

    The L1-hit commit continuation was historically a plain closure, so
    :func:`~repro.check.perturb.owner_core` resolved it to *no* owner and
    perturbation strategies left it at priority 0.  A bound ``Core`` method
    would suddenly carry a ``core_id`` and reshuffle every explored
    schedule; this shim keeps the owner anonymous while staying a named,
    serializable object (checkpoints encode it as the core's commit slot).
    """

    __slots__ = ("core",)

    def __init__(self, core: "Core") -> None:
        self.core = core

    def __call__(self) -> None:
        self.core._commit()


class Core:
    """One in-order core: generator driver + memory unit + lease manager."""

    def __init__(self, core_id: int, machine: "Machine") -> None:
        from ..coherence.memunit import MemUnit
        from ..lease.manager import LeaseManager

        self.core_id = core_id
        self.machine = machine
        self.sim = machine.sim
        self.trace = machine.trace
        self.memory = machine.memory
        self.memunit = MemUnit(core_id, machine.config, machine.amap,
                               machine.directory, machine.sim,
                               machine.trace)
        self.lease_mgr = LeaseManager(core_id, machine.config.lease,
                                      machine.amap, self.memunit,
                                      machine.sim, machine.trace,
                                      faults=machine.faults)
        self.memunit.lease_mgr = self.lease_mgr
        self._gen: Generator | None = None
        self._handle: ThreadHandle | None = None
        #: The in-flight memory op as a serializable descriptor (checkpoints
        #: re-materialize it instead of pickling a closure).
        self._pending_op: tuple | None = None
        self._commit_cb = _CommitCallback(self)
        self._leases_enabled = machine.config.lease.enabled
        #: Fault-injected IPC throttle: retire latencies are multiplied by
        #: this factor (1 on a healthy core).
        self._work_scale = (machine.faults.core_scale(core_id)
                            if machine.faults is not None else 1)

    @property
    def idle(self) -> bool:
        return self._gen is None

    def start_thread(self, gen: Generator, handle: ThreadHandle) -> None:
        if self._gen is not None:
            raise SimulationError(
                f"core {self.core_id} already runs thread "
                f"{self._handle.tid if self._handle else '?'}")
        self._gen = gen
        self._handle = handle
        self.sim.after(0, self._resume, None)

    # -- generator driving ------------------------------------------------

    def _resume(self, value: Any) -> None:
        gen = self._gen
        if gen is None:  # pragma: no cover - defensive
            raise SimulationError(f"core {self.core_id}: resume with no thread")
        from ..errors import LeaseError

        send: Any = ("send", value)
        while True:
            log = self.machine._replay_log
            try:
                if send[0] == "send":
                    if log is not None:
                        log.append(("send", self._handle.tid, send[1],
                                    self.sim.now))
                    instr = gen.send(send[1])
                else:
                    if log is not None:
                        log.append(("throw", self._handle.tid,
                                    str(send[1]), self.sim.now))
                    instr = gen.throw(send[1])
            except StopIteration as stop:
                handle = self._handle
                assert handle is not None
                handle.done = True
                handle.result = stop.value
                self._gen = None
                self._handle = None
                self.machine._thread_finished(handle)
                return
            try:
                self._dispatch(instr)
                return
            except LeaseError as fault:
                # Synchronous instruction faults (e.g. mixing single and
                # multi-location leases) are delivered into the thread, so
                # workload code can catch them like an exception.
                send = ("throw", fault)

    # -- instruction execution ------------------------------------------------

    def _dispatch(self, instr: isa.Instr) -> None:
        t = type(instr)
        scale = self._work_scale
        if t is isa.Work:
            self.sim.after(max(1, instr.cycles) * scale, self._resume, None)
        elif t is isa.Load:
            self._pending_op = ("load", instr.addr)
            self.memunit.access(False, instr.addr, is_lease=False,
                                callback=self._commit_cb)
        elif t is isa.Store:
            self._pending_op = ("store", instr.addr, instr.value)
            self.memunit.access(True, instr.addr, is_lease=False,
                                callback=self._commit_cb)
        elif t is isa.CAS:
            self._pending_op = ("cas", instr.addr, instr.expected, instr.new)
            self.memunit.access(True, instr.addr, is_lease=False,
                                callback=self._commit_cb)
        elif t is isa.FetchAdd:
            self._pending_op = ("fetch_add", instr.addr, instr.delta)
            self.memunit.access(True, instr.addr, is_lease=False,
                                callback=self._commit_cb)
        elif t is isa.Swap:
            self._pending_op = ("swap", instr.addr, instr.value)
            self.memunit.access(True, instr.addr, is_lease=False,
                                callback=self._commit_cb)
        elif t is isa.TestAndSet:
            self._pending_op = ("swap", instr.addr, 1)
            self.memunit.access(True, instr.addr, is_lease=False,
                                callback=self._commit_cb)
        elif t is isa.Fence:
            self.sim.after(scale, self._resume, None)
        elif t is isa.Lease:
            if not self._leases_enabled:
                self.sim.after(0, self._resume, None)
            else:
                # The grant callback may fire synchronously (line already
                # leased / already owned); always resume via the event queue
                # so consecutive lease instructions cannot recurse.
                self.lease_mgr.lease(instr.addr, instr.time,
                                     self._lease_done, site=instr.site)
        elif t is isa.Release:
            if not self._leases_enabled:
                self.sim.after(0, self._resume, False)
            else:
                voluntary = self.lease_mgr.release(instr.addr)
                self.sim.after(scale, self._resume, voluntary)
        elif t is isa.MultiLease:
            if not self._leases_enabled:
                self.sim.after(0, self._resume, None)
            else:
                self.lease_mgr.multilease(instr.addrs, instr.time,
                                          self._lease_done)
        elif t is isa.ReleaseAll:
            if not self._leases_enabled:
                self.sim.after(0, self._resume, None)
            else:
                self.lease_mgr.release_all()
                self.sim.after(scale, self._resume, None)
        else:
            raise SimulationError(
                f"core {self.core_id}: thread yielded non-instruction "
                f"{instr!r}")

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self, codec) -> dict:
        """The core's own state beyond the generator (which the machine
        re-materializes by replaying the resume log): the in-flight memory
        op plus the memory unit and lease manager."""
        return {
            "pending_op": codec.encode(self._pending_op),
            "memunit": self.memunit.state_dict(codec),
            "lease": self.lease_mgr.state_dict(codec),
        }

    def load_state(self, state: dict, codec) -> None:
        self._pending_op = codec.decode(state["pending_op"])
        self.memunit.load_state(state["memunit"], codec)
        self.lease_mgr.load_state(state["lease"], codec)

    # -- memory-op commit point (runs at the access-completion instant) ------

    def _lease_done(self) -> None:
        """Retirement continuation of Lease/MultiLease instructions."""
        self.sim.after(0, self._resume, None)

    def _commit(self) -> None:
        op = self._pending_op
        self._pending_op = None
        kind = op[0]
        if kind == "load":
            self._resume(self.memory.read(op[1]))
        elif kind == "store":
            self.memory.write(op[1], op[2])
            self._resume(None)
        elif kind == "cas":
            ok = self.memory.cas(op[1], op[2], op[3])
            self.trace.cas(self.core_id, op[1], ok)
            self._resume(ok)
        elif kind == "fetch_add":
            self._resume(self.memory.fetch_add(op[1], op[2]))
        else:  # swap (also serves TestAndSet)
            self._resume(self.memory.swap(op[1], op[2]))
