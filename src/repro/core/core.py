"""In-order core model.

Each core runs exactly one simulated thread (the paper's experiments use one
thread per core/tile).  The core pulls instructions from the thread
generator, executes them against its memory unit / lease manager, and
resumes the generator with the result.  Every instruction takes at least one
cycle, and every continuation goes through the event queue, so generator
resumption never recurses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..errors import SimulationError
from . import isa
from .thread import ThreadHandle

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine


class Core:
    """One in-order core: generator driver + memory unit + lease manager."""

    def __init__(self, core_id: int, machine: "Machine") -> None:
        from ..coherence.memunit import MemUnit
        from ..lease.manager import LeaseManager

        self.core_id = core_id
        self.machine = machine
        self.sim = machine.sim
        self.trace = machine.trace
        self.memory = machine.memory
        self.memunit = MemUnit(core_id, machine.config, machine.amap,
                               machine.directory, machine.sim,
                               machine.trace)
        self.lease_mgr = LeaseManager(core_id, machine.config.lease,
                                      machine.amap, self.memunit,
                                      machine.sim, machine.trace,
                                      faults=machine.faults)
        self.memunit.lease_mgr = self.lease_mgr
        self._gen: Generator | None = None
        self._handle: ThreadHandle | None = None
        self._leases_enabled = machine.config.lease.enabled
        #: Fault-injected IPC throttle: retire latencies are multiplied by
        #: this factor (1 on a healthy core).
        self._work_scale = (machine.faults.core_scale(core_id)
                            if machine.faults is not None else 1)

    @property
    def idle(self) -> bool:
        return self._gen is None

    def start_thread(self, gen: Generator, handle: ThreadHandle) -> None:
        if self._gen is not None:
            raise SimulationError(
                f"core {self.core_id} already runs thread "
                f"{self._handle.tid if self._handle else '?'}")
        self._gen = gen
        self._handle = handle
        self.sim.after(0, self._resume, None)

    # -- generator driving ------------------------------------------------

    def _resume(self, value: Any) -> None:
        gen = self._gen
        if gen is None:  # pragma: no cover - defensive
            raise SimulationError(f"core {self.core_id}: resume with no thread")
        from ..errors import LeaseError

        send: Any = ("send", value)
        while True:
            try:
                if send[0] == "send":
                    instr = gen.send(send[1])
                else:
                    instr = gen.throw(send[1])
            except StopIteration as stop:
                handle = self._handle
                assert handle is not None
                handle.done = True
                handle.result = stop.value
                self._gen = None
                self._handle = None
                self.machine._thread_finished(handle)
                return
            try:
                self._dispatch(instr)
                return
            except LeaseError as fault:
                # Synchronous instruction faults (e.g. mixing single and
                # multi-location leases) are delivered into the thread, so
                # workload code can catch them like an exception.
                send = ("throw", fault)

    # -- instruction execution ------------------------------------------------

    def _dispatch(self, instr: isa.Instr) -> None:
        t = type(instr)
        scale = self._work_scale
        if t is isa.Work:
            self.sim.after(max(1, instr.cycles) * scale, self._resume, None)
        elif t is isa.Load:
            self.memunit.access(False, instr.addr, is_lease=False,
                                callback=lambda: self._do_load(instr.addr))
        elif t is isa.Store:
            self.memunit.access(
                True, instr.addr, is_lease=False,
                callback=lambda: self._do_store(instr.addr, instr.value))
        elif t is isa.CAS:
            self.memunit.access(True, instr.addr, is_lease=False,
                                callback=lambda: self._do_cas(instr))
        elif t is isa.FetchAdd:
            self.memunit.access(
                True, instr.addr, is_lease=False,
                callback=lambda: self._do_rmw(
                    self.memory.fetch_add, instr.addr, instr.delta))
        elif t is isa.Swap:
            self.memunit.access(
                True, instr.addr, is_lease=False,
                callback=lambda: self._do_rmw(
                    self.memory.swap, instr.addr, instr.value))
        elif t is isa.TestAndSet:
            self.memunit.access(
                True, instr.addr, is_lease=False,
                callback=lambda: self._do_rmw(
                    self.memory.swap, instr.addr, 1))
        elif t is isa.Fence:
            self.sim.after(scale, self._resume, None)
        elif t is isa.Lease:
            if not self._leases_enabled:
                self.sim.after(0, self._resume, None)
            else:
                # The grant callback may fire synchronously (line already
                # leased / already owned); always resume via the event queue
                # so consecutive lease instructions cannot recurse.
                self.lease_mgr.lease(
                    instr.addr, instr.time,
                    lambda: self.sim.after(0, self._resume, None),
                    site=instr.site)
        elif t is isa.Release:
            if not self._leases_enabled:
                self.sim.after(0, self._resume, False)
            else:
                voluntary = self.lease_mgr.release(instr.addr)
                self.sim.after(scale, self._resume, voluntary)
        elif t is isa.MultiLease:
            if not self._leases_enabled:
                self.sim.after(0, self._resume, None)
            else:
                self.lease_mgr.multilease(
                    instr.addrs, instr.time,
                    lambda: self.sim.after(0, self._resume, None))
        elif t is isa.ReleaseAll:
            if not self._leases_enabled:
                self.sim.after(0, self._resume, None)
            else:
                self.lease_mgr.release_all()
                self.sim.after(scale, self._resume, None)
        else:
            raise SimulationError(
                f"core {self.core_id}: thread yielded non-instruction "
                f"{instr!r}")

    # -- memory-op commit points (run at access-completion instants) ---------

    def _do_load(self, addr: int) -> None:
        self._resume(self.memory.read(addr))

    def _do_store(self, addr: int, value: Any) -> None:
        self.memory.write(addr, value)
        self._resume(None)

    def _do_cas(self, instr: isa.CAS) -> None:
        ok = self.memory.cas(instr.addr, instr.expected, instr.new)
        self.trace.cas(self.core_id, instr.addr, ok)
        self._resume(ok)

    def _do_rmw(self, fn, addr: int, operand: Any) -> None:
        self._resume(fn(addr, operand))
