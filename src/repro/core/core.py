"""In-order core model.

Each core runs exactly one simulated thread (the paper's experiments use one
thread per core/tile).  The core pulls instructions from the thread
generator, executes them against its memory unit / lease manager, and
resumes the generator with the result.  Every instruction takes at least one
cycle, and every continuation goes through the event queue, so generator
resumption never recurses.

Batch advance (the fast engine)
-------------------------------

A core in a *steady state* -- spin-retry backoff, fence-separated compute,
any run of ``Work``/``Fence`` yields, and memory instructions that hit in
the local L1 without a MESI upgrade -- touches no shared state between its
coherence-visible instructions, so the fast engine folds the whole run into
one analytic advance: :meth:`Core._advance_batch` pulls the generator
synchronously with the simulation clock *virtualized* to each instruction's
retire cycle (every clock read, trace stamp and replay-log entry matches the
event-per-instruction schedule exactly) and schedules a single event at the
next coherence-visible cycle.  Each early pull is gated on the event queue
holding nothing at or before that cycle, and every elided resume event
burns a queue seq and an ``events_processed`` tick, so the folded schedule
is *bit-identical* to the event-per-instruction one (see
:meth:`Core._advance_batch`).  The machine additionally only enables
batching (``machine._batch_ok``) on the fast engine when every attached
sink folds events order-insensitively -- redundant under the identity
argument, but it keeps exotic sinks on the maximally conservative path.

One subtlety the queue gate cannot see: a miss completion may carry a
*deferred probe* that the memory unit applies only after the commit
callback returns (matching the event-per-instruction interleaving, where
the probe lands before the next dispatch event).  While that probe is
pending the core's L1 state is stale, so every fold entry point also
checks ``MemUnit._probe_pending`` and takes the evented path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..coherence.states import LineState
from ..errors import LeaseError, SimulationError, SimulationTimeout
from . import isa
from .thread import ThreadHandle

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

_LS = int(LineState.S)
_LE = int(LineState.E)

#: The memory instructions the batch path can fold on an L1 hit.
_MEM_CLASSES = frozenset((isa.Load, isa.Store, isa.CAS, isa.FetchAdd,
                          isa.Swap, isa.TestAndSet))


def _mem_op(instr: isa.Instr, t: type) -> tuple:
    """The serializable pending-op descriptor for a memory instruction
    (the same tuples :meth:`Core._dispatch` has always built)."""
    if t is isa.Load:
        return ("load", instr.addr)
    if t is isa.Store:
        return ("store", instr.addr, instr.value)
    if t is isa.CAS:
        return ("cas", instr.addr, instr.expected, instr.new)
    if t is isa.FetchAdd:
        return ("fetch_add", instr.addr, instr.delta)
    if t is isa.TestAndSet:
        return ("swap", instr.addr, 1)
    return ("swap", instr.addr, instr.value)  # Swap


class _CommitCallback:
    """Callable shim around :meth:`Core._commit` with no ``core_id``.

    The L1-hit commit continuation was historically a plain closure, so
    :func:`~repro.check.perturb.owner_core` resolved it to *no* owner and
    perturbation strategies left it at priority 0.  A bound ``Core`` method
    would suddenly carry a ``core_id`` and reshuffle every explored
    schedule; this shim keeps the owner anonymous while staying a named,
    serializable object (checkpoints encode it as the core's commit slot).
    """

    __slots__ = ("core",)

    def __init__(self, core: "Core") -> None:
        self.core = core

    def __call__(self) -> None:
        self.core._commit()


class Core:
    """One in-order core: generator driver + memory unit + lease manager."""

    __slots__ = ("core_id", "machine", "sim", "trace", "memory", "memunit",
                 "lease_mgr", "_network", "_gen", "_handle", "_pending_op",
                 "_pending_retire", "_commit_cb", "_leases_enabled",
                 "_work_scale")

    def __init__(self, core_id: int, machine: "Machine") -> None:
        from ..coherence.memunit import MemUnit
        from ..lease.manager import LeaseManager

        self.core_id = core_id
        self.machine = machine
        self.sim = machine.sim
        self.trace = machine.trace
        self.memory = machine.memory
        #: For the batch-fold gate: a contended network holds messages in
        #: link/port queues (``_pending > 0``) whose delivery events are
        #: not all materialized yet, so folding past them is unsafe.  On
        #: the default contention-free mesh ``_pending`` is a class
        #: attribute pinned to 0, so the gate read costs one attribute hop.
        self._network = machine.network
        self.memunit = MemUnit(core_id, machine.config, machine.amap,
                               machine.directory, machine.sim,
                               machine.trace)
        self.lease_mgr = LeaseManager(core_id, machine.config.lease,
                                      machine.amap, self.memunit,
                                      machine.sim, machine.trace,
                                      faults=machine.faults)
        self.memunit.lease_mgr = self.lease_mgr
        self._gen: Generator | None = None
        self._handle: ThreadHandle | None = None
        #: The in-flight memory op as a serializable descriptor (checkpoints
        #: re-materialize it instead of pickling a closure).
        self._pending_op: tuple | None = None
        #: Set while a batched thread has run to exhaustion at a virtual
        #: cycle that has not arrived yet: ``(result,)`` until the scheduled
        #: :meth:`_retire_batched` performs the bookkeeping at that cycle.
        self._pending_retire: tuple | None = None
        self._commit_cb = _CommitCallback(self)
        self._leases_enabled = machine.config.lease.enabled
        #: Fault-injected IPC throttle: retire latencies are multiplied by
        #: this factor (1 on a healthy core).
        self._work_scale = (machine.faults.core_scale(core_id)
                            if machine.faults is not None else 1)

    @property
    def idle(self) -> bool:
        return self._gen is None

    def start_thread(self, gen: Generator, handle: ThreadHandle) -> None:
        if self._gen is not None:
            raise SimulationError(
                f"core {self.core_id} already runs thread "
                f"{self._handle.tid if self._handle else '?'}")
        self._gen = gen
        self._handle = handle
        self.sim.after(0, self._resume, None)

    # -- generator driving ------------------------------------------------

    def _resume(self, value: Any) -> None:
        self._step(("send", value))

    def _step(self, send: tuple) -> None:
        gen = self._gen
        if gen is None:  # pragma: no cover - defensive
            raise SimulationError(f"core {self.core_id}: resume with no thread")
        log = self.machine._replay_log
        while True:
            try:
                if send[0] == "send":
                    if log is not None:
                        log.append(("send", self._handle.tid, send[1],
                                    self.sim.now))
                    instr = gen.send(send[1])
                else:
                    if log is not None:
                        log.append(("throw", self._handle.tid,
                                    str(send[1]), self.sim.now))
                    instr = gen.throw(send[1])
            except StopIteration as stop:
                handle = self._handle
                assert handle is not None
                handle.done = True
                handle.result = stop.value
                self._gen = None
                self._handle = None
                self.machine._thread_finished(handle)
                return
            try:
                self._dispatch(instr)
                return
            except LeaseError as fault:
                # Synchronous instruction faults (e.g. mixing single and
                # multi-location leases) are delivered into the thread, so
                # workload code can catch them like an exception.
                send = ("throw", fault)

    # -- batch advance (fast engine; see module docstring) -----------------

    def _l1_hit_op(self, instr: isa.Instr, t: type) -> tuple | None:
        """On an L1 hit, replicate :meth:`MemUnit.access`'s hit-path side
        effects at the current (possibly virtualized) cycle and return the
        pending-commit descriptor; ``None`` on a miss (the caller then
        takes the classic event-per-step path)."""
        mu = self.memunit
        line = instr.addr >> mu._line_shift
        l1 = mu.l1
        st = l1.state_of(line)
        need_x = t is not isa.Load
        if not (st >= _LE or (st == _LS and not need_x)):
            return None
        if need_x and st == _LE:
            # MESI silent upgrade, exactly as MemUnit.access does it.
            l1.set_state(line, LineState.M)
            self.trace.mesi_upgrade(self.core_id, line)
        self.trace.l1_hit(self.core_id, line)
        l1.touch(line)
        return _mem_op(instr, t)

    def _advance_batch(self, v: int, op: tuple | None = None) -> None:
        """Pull the generator through consecutive *steady-state* yields --
        ``Work``, ``Fence``, and L1-hit memory ops -- with the clock
        virtualized to each retire cycle ``v``, then schedule the next
        coherence-visible step (or retirement) at its exact cycle.  ``op``
        is a pending-commit descriptor whose hit-path dispatch already ran
        (at ``v - l1_latency``); its commit is the first step folded here.

        Two guards make this *bit-identical* to the event-per-step
        schedule, not merely equivalent:

        * Each early pull is gated on the queue holding no foreign event at
          or before its cycle.  Then nothing can possibly run between here
          and ``v`` -- pending events all lie strictly beyond ``v`` and
          events cannot be scheduled into the past, so no descendant can
          enter the window either -- which means the body observes exactly
          the machine state it would have observed at ``v``, even if it
          reads shared state directly (and the L1 state a hit check reads
          cannot change under us).  When the gate fails, the core schedules
          the classic per-event continuation instead (compat's exact event
          -- a resume, or the pending op's commit -- with the same seq).
        * Every elided intermediate event burns one queue seq and one
          ``events_processed`` tick (with the run loop's budget checks),
          so the global insertion counter -- the same-timestamp
          tie-breaker -- and the event count stay in lockstep with the
          compat schedule for all later events.
        """
        sim = self.sim
        queue = sim.queue
        # Fast-fail prologue: on dense workloads a foreign event almost
        # always lands before ``v``, so check the gate before paying for
        # the loop's locals.  ``_times[0]`` is an O(1) lower bound on
        # peek_time (cancelled-only or fully-consumed head buckets make it
        # conservative -- peek_time then gives the exact answer and, as a
        # side effect, reclaims those buckets so later O(1) checks are
        # exact).
        times = queue._times
        if times and times[0] <= v:
            nt = queue.peek_time()
            if nt is not None and nt <= v:
                # A foreign event runs before our next step: stop pulling
                # and materialize the classic continuation.
                if op is not None:
                    self._pending_op = op
                    queue.schedule(v, self._commit_cb)
                else:
                    queue.schedule(v, self._resume, None)
                return
        base = sim.now
        gen = self._gen
        log = self.machine._replay_log
        scale = self._work_scale
        tid = self._handle.tid
        memory = self.memory
        trace = self.trace
        l1_latency = self.memunit._l1_latency
        work_cls = isa.Work
        fence_cls = isa.Fence
        mem_classes = _MEM_CLASSES
        max_cycles = sim.max_cycles
        max_events = sim.max_events
        try:
            while True:
                sim.now = v
                if op is not None:
                    # The commit half of a folded L1 hit, exactly as
                    # _commit performs it at this cycle.
                    kind = op[0]
                    if kind == "load":
                        result = memory.read(op[1])
                    elif kind == "store":
                        memory.write(op[1], op[2])
                        result = None
                    elif kind == "cas":
                        result = memory.cas(op[1], op[2], op[3])
                        trace.cas(self.core_id, op[1], result)
                    elif kind == "fetch_add":
                        result = memory.fetch_add(op[1], op[2])
                    else:  # swap (also serves TestAndSet)
                        result = memory.swap(op[1], op[2])
                    op = None
                else:
                    result = None
                if log is not None:
                    log.append(("send", tid, result, v))
                try:
                    instr = gen.send(result)
                except StopIteration as stop:
                    self._pending_retire = (stop.value,)
                    queue.schedule(v, self._retire_batched)
                    return
                t = type(instr)
                if t is work_cls:
                    nv = v + max(1, instr.cycles) * scale
                elif t is fence_cls:
                    nv = v + scale
                elif t in mem_classes:
                    op = self._l1_hit_op(instr, t)
                    if op is None:
                        queue.schedule(v, self._dispatch_batched, instr)
                        return
                    nv = v + l1_latency
                else:
                    queue.schedule(v, self._dispatch_batched, instr)
                    return
                # The event compat would have processed at ``v`` was
                # elided; mirror the run loop's accounting exactly -- seq,
                # event count and both safety budgets.
                if v > max_cycles:
                    raise SimulationTimeout(
                        f"simulation exceeded max_cycles={max_cycles}",
                        cycle=v, events=sim.events_processed)
                nev = sim.events_processed + 1
                sim.events_processed = nev
                if nev > max_events:
                    raise SimulationTimeout(
                        f"simulation exceeded max_events={max_events}"
                        " (livelocked workload?)",
                        cycle=v, events=nev)
                queue._seq += 1
                v = nv
                # Same gate as the prologue, re-evaluated for the next
                # step's cycle.
                if times and times[0] <= v:
                    nt = queue.peek_time()
                    if nt is not None and nt <= v:
                        if op is not None:
                            self._pending_op = op
                            queue.schedule(v, self._commit_cb)
                        else:
                            queue.schedule(v, self._resume, None)
                        return
        finally:
            sim.now = base

    def _dispatch_batched(self, instr: isa.Instr) -> None:
        """Dispatch an instruction pulled ahead of time by a batch advance
        (fires at the instruction's exact issue cycle)."""
        try:
            self._dispatch(instr)
        except LeaseError as fault:
            self._step(("throw", fault))

    def _retire_batched(self) -> None:
        """Thread retirement scheduled by a batch advance that ran the
        generator to exhaustion at a then-future cycle."""
        handle = self._handle
        assert handle is not None and self._pending_retire is not None
        handle.done = True
        handle.result = self._pending_retire[0]
        self._pending_retire = None
        self._gen = None
        self._handle = None
        self.machine._thread_finished(handle)

    # -- instruction execution ------------------------------------------------

    def _dispatch(self, instr: isa.Instr) -> None:
        t = type(instr)
        scale = self._work_scale
        if t is isa.Work:
            d = max(1, instr.cycles) * scale
            if self.machine._batch_ok and not self.memunit._probe_pending \
                    and not self._network._pending:
                self._advance_batch(self.sim.now + d)
            else:
                sim = self.sim
                sim.queue.schedule(sim.now + d, self._resume, None)
        elif t in _MEM_CLASSES:
            if self.machine._batch_ok and not self.memunit._probe_pending \
                    and not self._network._pending:
                op = self._l1_hit_op(instr, t)
                if op is not None:
                    # The hit-path dispatch just ran; fold the commit (and
                    # whatever steady-state run follows it) into a batch.
                    self._advance_batch(self.sim.now + self.memunit._l1_latency,
                                        op)
                    return
            self._pending_op = _mem_op(instr, t)
            self.memunit.access(t is not isa.Load, instr.addr, is_lease=False,
                                callback=self._commit_cb)
        elif t is isa.Fence:
            if self.machine._batch_ok and not self.memunit._probe_pending \
                    and not self._network._pending:
                self._advance_batch(self.sim.now + scale)
            else:
                self.sim.after(scale, self._resume, None)
        elif t is isa.Lease:
            if not self._leases_enabled:
                self.sim.after(0, self._resume, None)
            else:
                # The grant callback may fire synchronously (line already
                # leased / already owned); always resume via the event queue
                # so consecutive lease instructions cannot recurse.
                self.lease_mgr.lease(instr.addr, instr.time,
                                     self._lease_done, site=instr.site)
        elif t is isa.Release:
            if not self._leases_enabled:
                self.sim.after(0, self._resume, False)
            else:
                voluntary = self.lease_mgr.release(instr.addr)
                self.sim.after(scale, self._resume, voluntary)
        elif t is isa.MultiLease:
            if not self._leases_enabled:
                self.sim.after(0, self._resume, None)
            else:
                self.lease_mgr.multilease(instr.addrs, instr.time,
                                          self._lease_done)
        elif t is isa.ReleaseAll:
            if not self._leases_enabled:
                self.sim.after(0, self._resume, None)
            else:
                self.lease_mgr.release_all()
                self.sim.after(scale, self._resume, None)
        else:
            raise SimulationError(
                f"core {self.core_id}: thread yielded non-instruction "
                f"{instr!r}")

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self, codec) -> dict:
        """The core's own state beyond the generator (which the machine
        re-materializes by replaying the resume log): the in-flight memory
        op plus the memory unit and lease manager."""
        return {
            "pending_op": codec.encode(self._pending_op),
            "pending_retire": codec.encode(self._pending_retire),
            "memunit": self.memunit.state_dict(codec),
            "lease": self.lease_mgr.state_dict(codec),
        }

    def load_state(self, state: dict, codec) -> None:
        self._pending_op = codec.decode(state["pending_op"])
        # Absent in pre-fast-engine checkpoints (additive, schema 1).
        self._pending_retire = codec.decode(state.get("pending_retire"))
        self.memunit.load_state(state["memunit"], codec)
        self.lease_mgr.load_state(state["lease"], codec)

    # -- memory-op commit point (runs at the access-completion instant) ------

    def _lease_done(self) -> None:
        """Retirement continuation of Lease/MultiLease instructions."""
        self.sim.after(0, self._resume, None)

    def _commit(self) -> None:
        op = self._pending_op
        self._pending_op = None
        kind = op[0]
        if kind == "load":
            self._resume(self.memory.read(op[1]))
        elif kind == "store":
            self.memory.write(op[1], op[2])
            self._resume(None)
        elif kind == "cas":
            ok = self.memory.cas(op[1], op[2], op[3])
            self.trace.cas(self.core_id, op[1], ok)
            self._resume(ok)
        elif kind == "fetch_add":
            self._resume(self.memory.fetch_add(op[1], op[2]))
        else:  # swap (also serves TestAndSet)
            self._resume(self.memory.swap(op[1], op[2]))
