"""Thread context and handle.

A simulated thread is a Python generator produced by calling a *thread body*
function with a :class:`Ctx` (plus user arguments).  The body yields
instruction objects (see :mod:`repro.core.isa`) and receives each
instruction's result; helper subroutines compose with ``yield from``.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Iterable

from ..config import WORD_SIZE
from ..trace.events import TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from ..trace.bus import TraceBus
    from .machine import Machine


class Ctx:
    """Per-thread context handed to every thread body.

    Provides the thread id / core id, a deterministic per-thread RNG, and
    zero-traffic initialization helpers that model a thread-local allocator
    pool (fresh, uncached lines are initialized without coherence traffic;
    the first *shared* access to them is still a cold miss).
    """

    __slots__ = ("machine", "tid", "core_id", "rng")

    def __init__(self, machine: "Machine", tid: int, core_id: int) -> None:
        self.machine = machine
        self.tid = tid
        self.core_id = core_id
        self.rng = random.Random((machine.config.seed << 20) ^ (tid + 1))

    # -- instrumentation ---------------------------------------------------

    @property
    def trace(self) -> "TraceBus":
        """The machine's instrumentation bus (per-type emit slots live
        here: ``ctx.trace.lock_attempt(ctx.core_id)`` and friends)."""
        return self.machine.trace

    def emit(self, event: TraceEvent) -> None:
        """Emit a trace event onto the machine's instrumentation bus."""
        self.machine.trace.emit(event)

    def note_op(self, op: str | None = None, args: tuple = (),
                result: Any = None, start: int | None = None) -> None:
        """Record one completed data-structure operation by this thread.

        ``op``/``args``/``result`` describe the operation for history-based
        checking (see :mod:`repro.check`); ``start`` is the invocation
        cycle (capture ``ctx.machine.now`` before issuing the operation).
        The response cycle is stamped by the trace bus at emit time.
        Emission is pure observation -- it never schedules events, so
        recording histories cannot perturb the simulation.
        """
        self.machine.trace.op_completed(
            self.core_id, self.tid, op, args, result,
            self.machine.sim.now if start is None else start)

    # -- allocation ------------------------------------------------------

    def alloc_words(self, nwords: int, init: Iterable[Any] | None = None,
                    *, line_aligned: bool = True,
                    label: str | None = None) -> int:
        """Allocate ``nwords`` words, optionally writing initial values
        directly to the backing store (no simulated traffic)."""
        m = self.machine
        if m._replay_cursor is not None:
            # Checkpoint restore: the thread body is being replayed to
            # re-materialize its generator.  Return the recorded base with
            # NO side effects -- allocator/memory state is installed from
            # the snapshot after the replay.
            return m._replay_cursor.take("alloc", self.tid)
        base = m.alloc.alloc_words(nwords, line_aligned=line_aligned,
                                   label=label)
        if init is not None:
            for i, v in enumerate(init):
                m.memory.write(base + i * WORD_SIZE, v)
        if m._replay_log is not None:
            m._replay_log.append(("alloc", self.tid, base, m.sim.now))
        return base

    def alloc_line(self, *, label: str | None = None) -> int:
        m = self.machine
        if m._replay_cursor is not None:
            return m._replay_cursor.take("alloc", self.tid)
        base = m.alloc.alloc_line(label=label)
        if m._replay_log is not None:
            m._replay_log.append(("alloc", self.tid, base, m.sim.now))
        return base

    def alloc_cached(self, nwords: int, init: Iterable[Any] | None = None,
                     *, label: str | None = None) -> int:
        """Like :meth:`alloc_words`, but additionally installs the fresh
        line(s) into this core's L1 in exclusive state, as a warm per-core
        allocator pool would.  The object's first *remote* access still
        costs a full coherence transfer."""
        base = self.alloc_words(nwords, init, label=label)
        if self.machine._replay_cursor is not None:
            # The preinstall's L1/L2/directory effects live in the
            # installed snapshot; re-running it here would also schedule
            # eviction events into the freshly restored queue.
            return base
        amap = self.machine.amap
        first = amap.line_of(base)
        last = amap.line_of(base + (nwords - 1) * WORD_SIZE)
        directory = self.machine.directory
        for line in range(first, last + 1):
            directory.preinstall_owned(line, self.core_id)
        return base

    # -- direct (non-simulated) memory peeks for assertions/debugging ------

    def peek(self, addr: int) -> Any:
        """Read the backing store without simulating an access.  For test
        assertions only -- workload logic must use ``yield Load(addr)``."""
        m = self.machine
        if m._replay_cursor is not None:
            # Replay: memory holds the snapshot's *final* state only after
            # restore; return what this peek saw the first time.
            return m._replay_cursor.take("peek", self.tid)
        value = m.memory.read(addr)
        if m._replay_log is not None:
            m._replay_log.append(("peek", self.tid, value, m.sim.now))
        return value


class ThreadHandle:
    """Handle to one simulated thread."""

    __slots__ = ("tid", "core_id", "name", "done", "result")

    def __init__(self, tid: int, core_id: int, name: str) -> None:
        self.tid = tid
        self.core_id = core_id
        self.name = name
        self.done = False
        #: Value returned by the thread body (via ``return``), if any.
        self.result: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "running"
        return f"<Thread {self.tid} ({self.name}) on core {self.core_id}: {state}>"
