"""Instruction set of the simulated cores.

Workload code is written as Python generators that ``yield`` instruction
objects; the core executes each instruction against the memory hierarchy and
resumes the generator with the instruction's result:

=============================  =========================================
Instruction                    Result sent back to the generator
=============================  =========================================
``Work(cycles)``               None (pure compute delay)
``Load(addr)``                 the loaded value
``Store(addr, value)``         None
``CAS(addr, expected, new)``   bool -- True iff the swap happened
``FetchAdd(addr, delta)``      the previous value
``Swap(addr, value)``          the previous value
``TestAndSet(addr)``           the previous value (word set to 1)
``Fence()``                    None (1-cycle ordering point)
``Lease(addr, time)``          None (retires when ownership is held)
``Release(addr)``              bool -- True iff voluntarily released
``MultiLease(addrs, time)``    None (retires when the group is held)
``ReleaseAll()``               None
=============================  =========================================

With leases disabled in the machine config, the four lease instructions are
zero-cost no-ops, so the *same* workload code serves as the baseline
("classic") implementation -- exactly how the paper runs its comparisons.
"""

from __future__ import annotations

from typing import Any


class Instr:
    """Base class for all instructions."""

    __slots__ = ()


class Work(Instr):
    """Local computation for ``cycles`` core cycles (no memory traffic)."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int) -> None:
        self.cycles = cycles


class Load(Instr):
    """Read the word at ``addr``; resumes with the loaded value."""

    __slots__ = ("addr",)

    def __init__(self, addr: int) -> None:
        self.addr = addr


class Store(Instr):
    """Write ``value`` to the word at ``addr``."""

    __slots__ = ("addr", "value")

    def __init__(self, addr: int, value: Any) -> None:
        self.addr = addr
        self.value = value


class CAS(Instr):
    """Compare-and-swap: atomically install ``new`` iff ``*addr == expected``."""

    __slots__ = ("addr", "expected", "new")

    def __init__(self, addr: int, expected: Any, new: Any) -> None:
        self.addr = addr
        self.expected = expected
        self.new = new


class FetchAdd(Instr):
    """Atomic fetch-and-add; resumes with the previous value."""

    __slots__ = ("addr", "delta")

    def __init__(self, addr: int, delta: Any = 1) -> None:
        self.addr = addr
        self.delta = delta


class Swap(Instr):
    """Atomic exchange."""

    __slots__ = ("addr", "value")

    def __init__(self, addr: int, value: Any) -> None:
        self.addr = addr
        self.value = value


class TestAndSet(Instr):
    """Atomic test-and-set: writes 1, returns the previous value."""

    __slots__ = ("addr",)
    #: Keep pytest from collecting this class as a test ("Test" prefix).
    __test__ = False

    def __init__(self, addr: int) -> None:
        self.addr = addr


class Fence(Instr):
    """Memory fence.  The simulated machine is strongly ordered, so this is
    a 1-cycle ordering point only (the paper gives Release fence semantics;
    see Section 5 "Out of Order Execution")."""

    __slots__ = ()


class Lease(Instr):
    """``Lease(addr, time)`` -- Algorithm 1.

    ``site`` identifies the static program location of the lease (the
    paper's speculative mechanism tracks the lease's program counter); it
    feeds the optional involuntary-release predictor of Section 5 and is
    ignored when the predictor is disabled.
    """

    __slots__ = ("addr", "time", "site")

    def __init__(self, addr: int, time: int = 1 << 62,
                 site: str | None = None) -> None:
        self.addr = addr
        self.time = time
        self.site = site


class Release(Instr):
    """``Release(addr)`` -- Algorithm 1.  Result: voluntary flag."""

    __slots__ = ("addr",)

    def __init__(self, addr: int) -> None:
        self.addr = addr


class MultiLease(Instr):
    """``MultiLease(num, time, addr1, addr2, ...)`` -- Algorithm 2."""

    __slots__ = ("addrs", "time")

    def __init__(self, addrs: tuple[int, ...] | list[int],
                 time: int = 1 << 62) -> None:
        self.addrs = tuple(addrs)
        self.time = time


class ReleaseAll(Instr):
    """``ReleaseAll()`` -- Algorithm 2."""

    __slots__ = ()
