"""Core model: instruction set, in-order cores, and the Machine façade."""

from .isa import (
    CAS, Fence, FetchAdd, Instr, Lease, Load, MultiLease, Release,
    ReleaseAll, Store, Swap, TestAndSet, Work,
)
from .thread import Ctx, ThreadHandle
from .core import Core
from .machine import Machine

__all__ = [
    "Instr", "Work", "Load", "Store", "CAS", "FetchAdd", "Swap",
    "TestAndSet", "Fence", "Lease", "Release", "MultiLease", "ReleaseAll",
    "Ctx", "ThreadHandle", "Core", "Machine",
]
