"""Statistics: event counters, energy model, latency histograms, run
reports."""

from .counters import Counters
from .energy import EnergyModel
from .latency import LatencyHistogram
from .report import RunResult, format_table

__all__ = ["Counters", "EnergyModel", "LatencyHistogram", "RunResult",
           "format_table"]
