"""Statistics: event counters, energy model, run reports."""

from .counters import Counters
from .energy import EnergyModel
from .report import RunResult

__all__ = ["Counters", "EnergyModel", "RunResult"]
