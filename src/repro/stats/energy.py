"""Event-based energy model.

The paper reports energy per operation and notes (Section 7) that the
energy results are correlated with coherence messages and cache misses; this
model therefore derives total energy directly from the machine's counters:

    E = E_L1 * l1_accesses + E_L2 * l2_accesses + E_DRAM * dram_accesses
      + E_msg * messages + E_hop * hops + E_data * data_messages
      + E_static * num_cores * cycles

The static term models leakage/clock power; it penalizes low-throughput
(long-running) executions just as real energy measurements do.
"""

from __future__ import annotations

from ..config import EnergyConfig
from .counters import Counters


class EnergyModel:
    """Computes total and per-operation energy from counters."""

    def __init__(self, config: EnergyConfig, num_cores: int) -> None:
        self.config = config
        self.num_cores = num_cores

    def total_nj(self, counters: Counters, cycles: int) -> float:
        c, k = self.config, counters
        dynamic = (
            c.l1_access_nj * (k.l1_hits + k.l1_misses)
            + c.l2_access_nj * k.l2_accesses
            + c.dram_access_nj * k.dram_accesses
            + c.message_nj * k.messages
            + c.hop_nj * k.hops
            + c.data_message_nj * k.data_messages
        )
        static = c.static_nj_per_core_cycle * self.num_cores * cycles
        return dynamic + static

    def total_nj_from_delta(self, delta: dict[str, int], cycles: int) -> float:
        c = self.config
        dynamic = (
            c.l1_access_nj * (delta["l1_hits"] + delta["l1_misses"])
            + c.l2_access_nj * delta["l2_accesses"]
            + c.dram_access_nj * delta["dram_accesses"]
            + c.message_nj * delta["messages"]
            + c.hop_nj * delta["hops"]
            + c.data_message_nj * delta["data_messages"]
        )
        static = c.static_nj_per_core_cycle * self.num_cores * cycles
        return dynamic + static

    def nj_per_op(self, counters: Counters, cycles: int) -> float:
        ops = max(1, counters.ops_completed)
        return self.total_nj(counters, cycles) / ops
