"""Global event counters.

One :class:`Counters` instance per machine.  Hot-path code increments plain
integer attributes (cheapest possible bookkeeping); aggregation happens only
in reports.  ``snapshot()``/``delta()`` support measurement windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class Counters:
    # -- caches --------------------------------------------------------
    l1_hits: int = 0
    l1_misses: int = 0
    l1_evictions: int = 0
    l1_eviction_overflows: int = 0   # all ways pinned; set over-filled
    l2_accesses: int = 0
    dram_accesses: int = 0

    # -- coherence traffic ----------------------------------------------
    messages: int = 0                # all coherence messages
    data_messages: int = 0           # messages carrying a line payload
    hops: int = 0                    # total mesh hops traversed
    gets_requests: int = 0
    getx_requests: int = 0
    invalidations_sent: int = 0
    downgrades_sent: int = 0
    stale_probes: int = 0            # probe reached a core that evicted
    probes_deferred_mid_access: int = 0  # landed between grant and commit
    writebacks: int = 0
    mesi_silent_upgrades: int = 0    # E -> M on first write (MESI only)
    dir_queued_requests: int = 0     # arrived while line transaction busy
    dir_max_queue_depth: int = 0

    # -- interconnect resources (repro.coherence.links; all stay 0 on the
    # -- default contention-free network) -----------------------------------
    link_msgs: int = 0               # messages granted a finite link
    link_flits: int = 0              # flits serialized over finite links
    link_queued: int = 0             # messages that found their link busy
    link_stall_cycles: int = 0       # total cycles spent in link queues
    port_stalls: int = 0             # messages/fetches that found a port busy

    # -- leases ----------------------------------------------------------
    leases_requested: int = 0
    leases_granted: int = 0
    leases_noop_already_held: int = 0
    releases_voluntary: int = 0
    releases_involuntary: int = 0    # timer expiry
    releases_broken_by_priority: int = 0  # regular request broke the lease
    releases_fifo_eviction: int = 0  # lease table full, oldest evicted
    probes_queued_at_core: int = 0
    multilease_calls: int = 0
    multilease_ignored: int = 0      # would exceed MAX_NUM_LEASES
    leases_ignored_by_predictor: int = 0   # Section 5 speculative skip

    # -- fault injection -----------------------------------------------------
    faults_injected: int = 0         # net_jitter / timer_skew / slow_core
    dir_nacks: int = 0               # fault-injected directory NACKs
    dir_retries: int = 0             # NACKed requests scheduled for retry

    # -- synchronization / workload -----------------------------------------
    cas_attempts: int = 0
    cas_failures: int = 0
    lock_acquire_attempts: int = 0
    lock_acquire_failures: int = 0
    stm_commits: int = 0
    stm_aborts: int = 0
    ops_completed: int = 0           # data-structure operations (driver)

    # -- open-loop traffic (repro.traffic) ----------------------------------
    traffic_admitted: int = 0        # arrivals that entered a lane queue
    traffic_shed: int = 0            # arrivals dropped at a full queue

    # -- checkpointing (repro.state) ----------------------------------------
    checkpoints_saved: int = 0
    checkpoints_restored: int = 0

    # -- cluster (repro.cluster): inter-node traffic + PaxosLease -----------
    node_msgs_sent: int = 0
    node_msgs_dropped: int = 0       # loss stream or partition
    node_msgs_duplicated: int = 0
    paxos_rounds: int = 0            # prepare phases opened (incl. renewals)
    cluster_leases_acquired: int = 0
    cluster_leases_expired: int = 0
    cluster_leases_released: int = 0
    cluster_guard_denied: int = 0    # intra-node lease refused (not owner)

    per_core_ops: dict[int, int] = field(default_factory=dict)

    #: Excluded from snapshot()/delta(): a restored run has taken/restored
    #: checkpoints a straight-through run has not, and RunResult counters
    #: must stay bit-identical between the two.
    _SNAPSHOT_EXCLUDE = frozenset({"checkpoints_saved",
                                   "checkpoints_restored"})

    # -----------------------------------------------------------------------

    def note_op(self, core_id: int) -> None:
        """Record one completed data-structure operation by ``core_id``."""
        self.ops_completed += 1
        self.per_core_ops[core_id] = self.per_core_ops.get(core_id, 0) + 1

    def snapshot(self) -> dict[str, int]:
        """Copy of all scalar counters (for measurement windows)."""
        out = {}
        for f in fields(self):
            if f.name in self._SNAPSHOT_EXCLUDE:
                continue
            v = getattr(self, f.name)
            if isinstance(v, int):
                out[f.name] = v
        return out

    def delta(self, since: dict[str, int]) -> dict[str, int]:
        """Scalar counter increments since ``since`` (a snapshot)."""
        now = self.snapshot()
        return {k: now[k] - since.get(k, 0) for k in now}

    def reset(self) -> None:
        for f in fields(self):
            v = getattr(self, f.name)
            if isinstance(v, int):
                setattr(self, f.name, 0)
        self.per_core_ops.clear()

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self) -> dict:
        """All scalar fields (checkpoint counters included: the restored
        machine should report the same totals) plus per-core ops."""
        out: dict = {}
        for f in fields(self):
            v = getattr(self, f.name)
            if isinstance(v, int):
                out[f.name] = v
        out["per_core_ops"] = [[c, n] for c, n in self.per_core_ops.items()]
        return out

    def load_state(self, state: dict) -> None:
        for f in fields(self):
            if f.name in state and isinstance(getattr(self, f.name), int):
                setattr(self, f.name, state[f.name])
        self.per_core_ops.clear()
        self.per_core_ops.update(
            {c: n for c, n in state["per_core_ops"]})
