"""Fixed-bucket log-scale latency histogram (cycle-valued).

Open-loop traffic (see :mod:`repro.traffic`) records one enqueue->complete
latency per admitted operation.  Tail percentiles are the whole point of
that exercise, so the histogram must be cheap to record into (one integer
index computation, one dict bump), mergeable across lanes/runs, and --
because the simulator's identity contracts extend to it -- **bit-exact**:
two runs that execute the same schedule produce byte-identical bucket
maps, whatever engine ran them and whether a checkpoint/restore cut the
run in half.

The bucket layout is HdrHistogram-lite: values below ``SUB_BUCKETS`` get
one exact bucket each; above that, every power-of-two octave is split
into ``SUB_BUCKETS`` linear sub-buckets, bounding the relative rounding
error of any reported percentile by ``1/SUB_BUCKETS`` (6.25%).  Buckets
are stored sparsely, so an idle histogram costs nothing and a typical
run touches a few dozen entries.

Percentiles are deterministic by construction: ``percentile(q)`` returns
the *upper bound* of the bucket where the cumulative count first reaches
``ceil(q * total)``.  No interpolation -- interpolation would reintroduce
float ordering hazards into an otherwise integer-exact pipeline.
"""

from __future__ import annotations

import math

__all__ = ["LatencyHistogram", "SUB_BUCKETS", "bucket_bounds"]

#: Linear sub-buckets per power-of-two octave; also the exact-bucket range
#: floor (values < SUB_BUCKETS each get their own bucket).  16 bounds the
#: percentile rounding error at 1/16.
SUB_BUCKETS = 16

_SUB_SHIFT = SUB_BUCKETS.bit_length() - 1     # log2(SUB_BUCKETS) = 4


def bucket_index(value: int) -> int:
    """Map a non-negative latency (cycles) to its bucket index."""
    if value < SUB_BUCKETS:
        return value if value > 0 else 0
    top = value.bit_length() - 1              # octave: value in [2^top, 2^(top+1))
    shift = top - _SUB_SHIFT                  # sub-bucket width 2^shift
    return ((top - _SUB_SHIFT + 1) << _SUB_SHIFT) + ((value >> shift)
                                                     - SUB_BUCKETS)


def bucket_bounds(index: int) -> tuple[int, int]:
    """Inclusive ``(low, high)`` value range of bucket ``index``."""
    if index < SUB_BUCKETS:
        return index, index
    group, sub = divmod(index, SUB_BUCKETS)
    shift = group - 1
    low = (SUB_BUCKETS + sub) << shift
    return low, low + (1 << shift) - 1


class LatencyHistogram:
    """Sparse log-linear histogram of integer latencies (cycle units)."""

    __slots__ = ("counts", "total", "sum", "min", "max")

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.total = 0
        self.sum = 0
        self.min: int | None = None
        self.max: int | None = None

    # -- recording ----------------------------------------------------------

    def record(self, value: int) -> None:
        """Record one latency sample (negative values clamp to 0)."""
        if value < 0:
            value = 0
        idx = bucket_index(value)
        self.counts[idx] = self.counts.get(idx, 0) + 1
        self.total += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s samples into this histogram (in place)."""
        for idx, n in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + n
        self.total += other.total
        self.sum += other.sum
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max

    # -- queries ------------------------------------------------------------

    def percentile(self, q: float) -> int | None:
        """Upper bound of the bucket holding the ``q``-quantile sample
        (``q`` in [0, 1]); None on an empty histogram."""
        if self.total == 0:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} out of range [0, 1]")
        rank = max(1, math.ceil(q * self.total))
        seen = 0
        for idx in sorted(self.counts):
            seen += self.counts[idx]
            if seen >= rank:
                high = bucket_bounds(idx)[1]
                # Never report past the true extremes: the top bucket's
                # range may overshoot the largest recorded sample.
                return min(high, self.max if self.max is not None else high)
        return self.max  # pragma: no cover - unreachable (seen == total)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def percentiles(self) -> dict[str, int]:
        """The standard tail triple (empty dict on an empty histogram)."""
        if self.total == 0:
            return {}
        return {"p50": self.percentile(0.50),
                "p99": self.percentile(0.99),
                "p999": self.percentile(0.999)}

    # -- identity / serialization -------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return (self.counts == other.counts and self.total == other.total
                and self.sum == other.sum and self.min == other.min
                and self.max == other.max)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<LatencyHistogram n={self.total} min={self.min} "
                f"max={self.max} buckets={len(self.counts)}>")

    def state_dict(self) -> dict:
        """JSON-safe snapshot: sorted bucket list keeps serialization
        byte-stable so identical histograms dump to identical JSON."""
        return {
            "counts": [[idx, self.counts[idx]]
                       for idx in sorted(self.counts)],
            "total": self.total,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def load_state(self, state: dict) -> None:
        self.counts = {int(idx): int(n) for idx, n in state["counts"]}
        self.total = int(state["total"])
        self.sum = int(state["sum"])
        self.min = state["min"]
        self.max = state["max"]

    @classmethod
    def from_state(cls, state: dict) -> "LatencyHistogram":
        h = cls()
        h.load_state(state)
        return h
