"""Run result objects: the unit of output of every benchmark."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class RunResult:
    """Summary of one simulated benchmark run.

    All "per_op" figures are normalized by completed data-structure
    operations; throughput is in operations per (simulated) second.
    """

    name: str
    num_threads: int
    cycles: int
    ops: int
    throughput_ops_per_sec: float
    energy_nj_per_op: float
    messages_per_op: float
    l1_misses_per_op: float
    cas_failure_rate: float
    extra: dict[str, Any] = field(default_factory=dict)
    #: Full scalar-counter snapshot of the run (machine-readable output,
    #: trace reconciliation).  Not shown in tables.
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def mops_per_sec(self) -> float:
        return self.throughput_ops_per_sec / 1e6

    def row(self) -> dict[str, Any]:
        """Flat dict for tabular output."""
        return {
            "name": self.name,
            "threads": self.num_threads,
            "cycles": self.cycles,
            "ops": self.ops,
            "mops_per_sec": round(self.mops_per_sec, 4),
            "nj_per_op": round(self.energy_nj_per_op, 2),
            "msgs_per_op": round(self.messages_per_op, 2),
            "l1_misses_per_op": round(self.l1_misses_per_op, 2),
            "cas_fail_rate": round(self.cas_failure_rate, 4),
            **self.extra,
        }

    def __str__(self) -> str:
        r = self.row()
        return " ".join(f"{k}={v}" for k, v in r.items())


def format_table(rows: list[dict[str, Any]]) -> str:
    """Render rows (same keys) as a fixed-width ASCII table."""
    if not rows:
        return "(no rows)"
    keys = list(rows[0].keys())
    widths = {k: max(len(str(k)), *(len(str(r.get(k, ""))) for r in rows))
              for k in keys}
    header = " | ".join(str(k).ljust(widths[k]) for k in keys)
    sep = "-+-".join("-" * widths[k] for k in keys)
    lines = [header, sep]
    for r in rows:
        lines.append(" | ".join(str(r.get(k, "")).ljust(widths[k])
                                for k in keys))
    return "\n".join(lines)
