"""Run result objects: the unit of output of every benchmark."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class RunResult:
    """Summary of one simulated benchmark run.

    All "per_op" figures are normalized by completed data-structure
    operations; throughput is in operations per (simulated) second.
    """

    name: str
    num_threads: int
    cycles: int
    ops: int
    throughput_ops_per_sec: float
    energy_nj_per_op: float
    messages_per_op: float
    l1_misses_per_op: float
    cas_failure_rate: float
    extra: dict[str, Any] = field(default_factory=dict)
    #: Full scalar-counter snapshot of the run (machine-readable output,
    #: trace reconciliation).  Not shown in tables.
    counters: dict[str, int] = field(default_factory=dict)
    #: Open-loop latency payload (None on closed-loop runs): percentiles,
    #: admitted/shed totals, the SLO verdict, and the full histogram
    #: state under ``"hist"``.  See :mod:`repro.traffic`.
    latency: dict[str, Any] | None = None

    @property
    def mops_per_sec(self) -> float:
        return self.throughput_ops_per_sec / 1e6

    def row(self) -> dict[str, Any]:
        """Flat dict for tabular output.

        ``extra`` keys may not collide with built-in columns: a benchmark
        stuffing e.g. ``ops`` into ``extra`` would silently corrupt every
        table, so collisions raise instead.
        """
        row = {
            "name": self.name,
            "threads": self.num_threads,
            "cycles": self.cycles,
            "ops": self.ops,
            "mops_per_sec": round(self.mops_per_sec, 4),
            "nj_per_op": round(self.energy_nj_per_op, 2),
            "msgs_per_op": round(self.messages_per_op, 2),
            "l1_misses_per_op": round(self.l1_misses_per_op, 2),
            "cas_fail_rate": round(self.cas_failure_rate, 4),
        }
        if self.latency is not None:
            for k in ("p50", "p99", "p999"):
                if k in self.latency:
                    row[k] = self.latency[k]
            row["shed"] = self.latency.get("shed", 0)
            row["slo"] = self.latency.get("slo", "n/a")
        clashes = sorted(set(row) & set(self.extra))
        if clashes:
            raise ValueError(
                f"RunResult.extra would shadow built-in column(s) "
                f"{', '.join(clashes)} (run {self.name!r}); rename the "
                f"extra key(s)")
        row.update(self.extra)
        return row

    def __str__(self) -> str:
        r = self.row()
        return " ".join(f"{k}={v}" for k, v in r.items())


def format_table(rows: list[dict[str, Any]]) -> str:
    """Render rows as a fixed-width ASCII table.

    Columns are the first-seen ordered union of keys across *all* rows
    (not just the first row -- a sweep mixing open-loop and closed-loop
    cells introduces latency columns partway through), with blanks where
    a row lacks a key.
    """
    if not rows:
        return "(no rows)"
    keys: list[str] = []
    seen: set[str] = set()
    for r in rows:
        for k in r:
            if k not in seen:
                seen.add(k)
                keys.append(k)
    widths = {k: max(len(str(k)), *(len(str(r.get(k, ""))) for r in rows))
              for k in keys}
    header = " | ".join(str(k).ljust(widths[k]) for k in keys)
    sep = "-+-".join("-" * widths[k] for k in keys)
    lines = [header, sep]
    for r in rows:
        lines.append(" | ".join(str(r.get(k, "")).ljust(widths[k])
                                for k in keys))
    return "\n".join(lines)
