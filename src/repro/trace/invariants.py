"""Continuous protocol checking driven by the trace stream.

``Directory.check_invariants`` verifies directory/L1 agreement at
quiescence; :class:`InvariantTracer` extends that to *every step of the
run* by re-checking after each emitted event.  Two windows make the naive
check unsound mid-run, and are excluded:

* lines with an in-flight transaction (``entry.busy`` / queued requests):
  the L1 of a probed owner is updated before the reply reaches home;
* lines with an eviction notice in flight (issued, not yet applied): the
  core's L1 already dropped the line but the directory has not heard yet.
  These are tracked from ``eviction_issued``/``eviction_applied`` events.

On top of agreement it checks the paper's Assumption 1 / Proposition 1
consequence -- at any time at most one request per line is queued at a
core (as a deferred probe or a lease-queued probe) -- and audits the L1
pin refcounts exactly: each granted live lease holds one pin reference,
each queued probe one more, and no line is pinned without a matching
lease-table entry (catching both leaks and underflows).

Violations raise :class:`~repro.errors.ProtocolError` immediately, with
the event and cycle that exposed them, so CI catches protocol regressions
at the first bad transition instead of at end-of-run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ProtocolError
from . import events as ev
from .bus import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from ..core.machine import Machine


class InvariantTracer(Tracer):
    """Checks coherence/lease invariants after every ``every``-th event."""

    def __init__(self, *, every: int = 1) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every
        self.machine: "Machine | None" = None
        self.events_seen = 0
        self.checks_run = 0
        #: line -> number of eviction notices in flight.
        self._pending_evictions: dict[int, int] = {}

    def bind(self, machine: "Machine") -> None:
        self.machine = machine
        self.events_seen = 0
        self.checks_run = 0
        self._pending_evictions.clear()

    # -- sink interface -----------------------------------------------------

    def on_event(self, event: ev.TraceEvent) -> None:
        t = type(event)
        if t is ev.EvictionIssued:
            p = self._pending_evictions
            p[event.line] = p.get(event.line, 0) + 1
        elif t is ev.EvictionApplied:
            p = self._pending_evictions
            left = p.get(event.line, 0) - 1
            if left > 0:
                p[event.line] = left
            else:
                p.pop(event.line, None)
        self.events_seen += 1
        if self.events_seen % self.every == 0:
            try:
                self.check()
            except ProtocolError as err:
                raise ProtocolError(
                    f"invariant violated at t={event.t} after "
                    f"{event.kind} event: {err}") from None

    # -- the checks ---------------------------------------------------------

    def check(self) -> None:
        """Run all checks now (also callable directly, e.g. at quiescence)."""
        m = self.machine
        if m is None:
            raise ProtocolError("InvariantTracer not bound to a machine")
        self.checks_run += 1
        d = m.directory
        pending = self._pending_evictions
        # 1. Directory/L1 agreement on every settled line.
        for line, entry in d.entries.items():
            if entry.busy or entry.queue or pending.get(line):
                continue
            d.check_line(line, entry)
        # 2. Proposition 1: at most one request queued per line at a core.
        queued: dict[int, int] = {}
        for unit in d.mem_units:
            dline = unit.deferred_probe_line
            if dline is not None:
                queued[dline] = queued.get(dline, 0) + 1
            mgr = unit.lease_mgr
            expected: dict[int, int] = {}
            if mgr is not None:
                for e in mgr.table.entries():
                    # 3. Exact pin accounting: a granted, live lease holds
                    # one pin reference on its line, and a queued probe
                    # holds one more.  Both directions are audited below.
                    if e.granted and not e.dead:
                        expected[e.line] = expected.get(e.line, 0) + 1
                    if e.queued_probe is not None:
                        expected[e.line] = expected.get(e.line, 0) + 1
                        queued[e.line] = queued.get(e.line, 0) + 1
            actual = unit.l1.pinned_lines()
            if actual != expected:
                raise ProtocolError(
                    f"core {unit.core_id}: pin refcounts diverge from the "
                    f"lease table: L1 pins {actual}, leases+queued probes "
                    f"imply {expected}")
        for line, n in queued.items():
            if n > 1:
                raise ProtocolError(
                    f"line {line}: {n} requests queued at cores "
                    "(Proposition 1 allows at most one)")
