"""The typed trace-event taxonomy.

Every observable action in the simulated machine -- coherence requests,
probes, lease transitions, cache/L2/network activity, synchronization
outcomes, completed operations -- is described by exactly one event class
below.  Hot-path code constructs an event and hands it to the machine's
:class:`~repro.trace.bus.TraceBus`; sinks (counters, JSONL writers,
heatmaps, invariant checkers) consume the stream.

Events are plain ``__slots__`` objects: cheap to construct, and
``to_dict()`` flattens them for JSONL serialization.  The ``t`` field (the
simulation cycle) is stamped by the bus at emit time, so call sites never
pass timestamps.

Taxonomy overview (``kind`` strings):

===================  ====================================================
coherence requests    ``req_issued``, ``req_queued``, ``req_granted``
probes                ``probe_sent``, ``probe_deferred``,
                      ``probe_serviced``, ``lease_probe_queued``
leases                ``lease_requested``, ``lease_noop``,
                      ``lease_ignored``, ``lease_started``,
                      ``lease_released``, ``multilease``
evictions             ``eviction_issued``, ``eviction_applied``
caches / memory       ``l1_hit``, ``l1_miss``, ``l1_evicted``,
                      ``mesi_upgrade``, ``l2_access``, ``writeback``
network               ``message``
interconnect          ``link_queued``, ``link_granted``, ``port_busy``
synchronization       ``cas``, ``lock_attempt``, ``lock_failed``, ``stm``
workload              ``op_completed``
faults                ``fault_injected``, ``dir_nack``, ``retry_scheduled``
===================  ====================================================
"""

from __future__ import annotations

from typing import Any


class TraceEvent:
    """Base class of all trace events.

    ``t`` is the simulation cycle at emit time (stamped by the bus).
    Subclasses declare their payload in ``__slots__``; ``to_dict`` walks
    the MRO so inherited fields serialize too.
    """

    __slots__ = ("t",)
    kind: str = "event"

    def __init__(self) -> None:
        self.t = 0

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind, "t": self.t}
        for cls in type(self).__mro__:
            for name in getattr(cls, "__slots__", ()):
                if name != "t":
                    out[name] = getattr(self, name)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        fields = ", ".join(f"{k}={v!r}" for k, v in self.to_dict().items()
                           if k != "kind")
        return f"<{type(self).__name__} {fields}>"


# ---------------------------------------------------------------------------
# Coherence requests (core -> directory)
# ---------------------------------------------------------------------------

class ReqIssued(TraceEvent):
    """A GetS/GetX request left a core for the line's home tile."""

    __slots__ = ("core", "line", "req", "is_lease")
    kind = "req_issued"

    def __init__(self, core: int, line: int, req: str,
                 is_lease: bool) -> None:
        super().__init__()
        self.core = core
        self.line = line
        self.req = req
        self.is_lease = is_lease


class ReqQueued(TraceEvent):
    """A request arrived at a busy directory entry and joined the line's
    FIFO queue at depth ``depth`` (the paper's per-line waiting room)."""

    __slots__ = ("core", "line", "depth")
    kind = "req_queued"

    def __init__(self, core: int, line: int, depth: int) -> None:
        super().__init__()
        self.core = core
        self.line = line
        self.depth = depth


class ReqGranted(TraceEvent):
    """The directory granted ``line`` to ``core`` in ``state``."""

    __slots__ = ("core", "line", "state", "fetch")
    kind = "req_granted"

    def __init__(self, core: int, line: int, state: str,
                 fetch: bool) -> None:
        super().__init__()
        self.core = core
        self.line = line
        self.state = state
        self.fetch = fetch


# ---------------------------------------------------------------------------
# Probes (directory -> core)
# ---------------------------------------------------------------------------

class ProbeSent(TraceEvent):
    """An invalidation/downgrade probe left the home tile for ``target``."""

    __slots__ = ("target", "line", "probe")
    kind = "probe_sent"

    def __init__(self, target: int, line: int, probe: str) -> None:
        super().__init__()
        self.target = target
        self.line = line
        self.probe = probe


class ProbeDeferred(TraceEvent):
    """A probe reached a core between grant and access commit and was
    deferred until the waiting access completes."""

    __slots__ = ("core", "line")
    kind = "probe_deferred"

    def __init__(self, core: int, line: int) -> None:
        super().__init__()
        self.core = core
        self.line = line


class ProbeServiced(TraceEvent):
    """A core serviced a probe (possibly after a lease delay).  ``stale``
    means the line was already gone; ``data`` means the reply carried a
    dirty line back home."""

    __slots__ = ("core", "line", "probe", "stale", "data")
    kind = "probe_serviced"

    def __init__(self, core: int, line: int, probe: str, stale: bool,
                 data: bool) -> None:
        super().__init__()
        self.core = core
        self.line = line
        self.probe = probe
        self.stale = stale
        self.data = data


class LeaseProbeQueued(TraceEvent):
    """A probe hit a leased line and was queued at the core (Algorithm 1's
    deferral -- the mechanism the whole paper is about)."""

    __slots__ = ("core", "line")
    kind = "lease_probe_queued"

    def __init__(self, core: int, line: int) -> None:
        super().__init__()
        self.core = core
        self.line = line


# ---------------------------------------------------------------------------
# Leases
# ---------------------------------------------------------------------------

class LeaseRequested(TraceEvent):
    """A ``Lease`` instruction reached the core's lease manager."""

    __slots__ = ("core", "line", "site")
    kind = "lease_requested"

    def __init__(self, core: int, line: int, site: str | None) -> None:
        super().__init__()
        self.core = core
        self.line = line
        self.site = site


class LeaseNoop(TraceEvent):
    """Lease on an already-leased line: no-op (no extension, footnote 1)."""

    __slots__ = ("core", "line")
    kind = "lease_noop"

    def __init__(self, core: int, line: int) -> None:
        super().__init__()
        self.core = core
        self.line = line


class LeaseIgnored(TraceEvent):
    """The Section 5 predictor skipped a lease at a misbehaving site."""

    __slots__ = ("core", "line", "site")
    kind = "lease_ignored"

    def __init__(self, core: int, line: int, site: str | None) -> None:
        super().__init__()
        self.core = core
        self.line = line
        self.site = site


class LeaseStarted(TraceEvent):
    """Ownership is held and the lease countdown started (lease acquired)."""

    __slots__ = ("core", "line", "duration")
    kind = "lease_started"

    def __init__(self, core: int, line: int, duration: int) -> None:
        super().__init__()
        self.core = core
        self.line = line
        self.duration = duration


class LeaseReleased(TraceEvent):
    """A lease ended.  ``mode`` is one of ``voluntary`` (Release/ReleaseAll),
    ``expired`` (timer ran out), ``broken`` (Section 5 prioritization), or
    ``fifo`` (table full, oldest evicted)."""

    __slots__ = ("core", "line", "mode")
    kind = "lease_released"

    MODES = ("voluntary", "expired", "broken", "fifo")

    def __init__(self, core: int, line: int, mode: str) -> None:
        super().__init__()
        self.core = core
        self.line = line
        self.mode = mode


class MultiLeaseIssued(TraceEvent):
    """A MultiLease instruction was executed over ``n`` lines; ``ignored``
    when the group would exceed MAX_NUM_LEASES."""

    __slots__ = ("core", "n", "ignored")
    kind = "multilease"

    def __init__(self, core: int, n: int, ignored: bool) -> None:
        super().__init__()
        self.core = core
        self.n = n
        self.ignored = ignored


# ---------------------------------------------------------------------------
# Evictions (core -> directory notices)
# ---------------------------------------------------------------------------

class EvictionIssued(TraceEvent):
    """A PutM/PutS notice left ``core`` for the home tile."""

    __slots__ = ("core", "line", "notice")
    kind = "eviction_issued"

    def __init__(self, core: int, line: int, notice: str) -> None:
        super().__init__()
        self.core = core
        self.line = line
        self.notice = notice


class EvictionApplied(TraceEvent):
    """The directory processed an eviction notice.  ``applied`` is False
    when the notice was stale (the core had re-acquired the line)."""

    __slots__ = ("core", "line", "applied")
    kind = "eviction_applied"

    def __init__(self, core: int, line: int, applied: bool) -> None:
        super().__init__()
        self.core = core
        self.line = line
        self.applied = applied


# ---------------------------------------------------------------------------
# Caches / memory hierarchy
# ---------------------------------------------------------------------------

class L1Hit(TraceEvent):
    __slots__ = ("core", "line")
    kind = "l1_hit"

    def __init__(self, core: int, line: int) -> None:
        super().__init__()
        self.core = core
        self.line = line


class L1Miss(TraceEvent):
    __slots__ = ("core", "line")
    kind = "l1_miss"

    def __init__(self, core: int, line: int) -> None:
        super().__init__()
        self.core = core
        self.line = line


class L1Evicted(TraceEvent):
    """A fill displaced ``line`` from ``core``'s L1.  ``overflow`` means
    every way was pinned and the set over-filled instead (the line is the
    *incoming* one in that case)."""

    __slots__ = ("core", "line", "overflow")
    kind = "l1_evicted"

    def __init__(self, core: int, line: int, overflow: bool) -> None:
        super().__init__()
        self.core = core
        self.line = line
        self.overflow = overflow


class MesiUpgrade(TraceEvent):
    """Silent E->M upgrade on first write (MESI only)."""

    __slots__ = ("core", "line")
    kind = "mesi_upgrade"

    def __init__(self, core: int, line: int) -> None:
        super().__init__()
        self.core = core
        self.line = line


class L2Access(TraceEvent):
    """An L2 data fetch at the home slice; ``dram`` on cold first touch."""

    __slots__ = ("line", "dram")
    kind = "l2_access"

    def __init__(self, line: int, dram: bool) -> None:
        super().__init__()
        self.line = line
        self.dram = dram


class Writeback(TraceEvent):
    """A dirty line was written back into its L2 slice."""

    __slots__ = ("line",)
    kind = "writeback"

    def __init__(self, line: int) -> None:
        super().__init__()
        self.line = line


# ---------------------------------------------------------------------------
# Network
# ---------------------------------------------------------------------------

class MessageSent(TraceEvent):
    """One coherence message traversed the mesh."""

    __slots__ = ("src", "dst", "msg", "hops", "data")
    kind = "message"

    def __init__(self, src: int, dst: int, msg: str, hops: int,
                 data: bool) -> None:
        super().__init__()
        self.src = src
        self.dst = dst
        self.msg = msg
        self.hops = hops
        self.data = data


# ---------------------------------------------------------------------------
# Interconnect resources (repro.coherence.links; only a contended
# ``--network`` spec emits these -- the default analytic mesh never does)
# ---------------------------------------------------------------------------

class LinkQueued(TraceEvent):
    """A message found link ``link`` busy and joined flow ``flow``'s
    egress queue at depth ``depth`` (0 = control, 1 = data)."""

    __slots__ = ("link", "flow", "depth")
    kind = "link_queued"

    def __init__(self, link: int, flow: int, depth: int) -> None:
        super().__init__()
        self.link = link
        self.flow = flow
        self.depth = depth


class LinkGranted(TraceEvent):
    """The arbiter granted link ``link`` to a message of flow ``flow``:
    it starts serializing ``flits`` flits after ``waited`` cycles of
    queueing (0 = the link was idle at offer time)."""

    __slots__ = ("link", "flow", "flits", "waited")
    kind = "link_granted"

    def __init__(self, link: int, flow: int, flits: int,
                 waited: int) -> None:
        super().__init__()
        self.link = link
        self.flow = flow
        self.flits = flits
        self.waited = waited


class PortBusy(TraceEvent):
    """A message (or serialized L2 fetch) found intake/memory port
    ``port`` busy and queued at depth ``depth``."""

    __slots__ = ("port", "depth")
    kind = "port_busy"

    def __init__(self, port: int, depth: int) -> None:
        super().__init__()
        self.port = port
        self.depth = depth


# ---------------------------------------------------------------------------
# Synchronization / workload
# ---------------------------------------------------------------------------

class CasOutcome(TraceEvent):
    """A CAS (or TAS-as-CAS) committed; ``ok`` is the success flag."""

    __slots__ = ("core", "addr", "ok")
    kind = "cas"

    def __init__(self, core: int, addr: int, ok: bool) -> None:
        super().__init__()
        self.core = core
        self.addr = addr
        self.ok = ok


class LockAttempt(TraceEvent):
    __slots__ = ("core",)
    kind = "lock_attempt"

    def __init__(self, core: int) -> None:
        super().__init__()
        self.core = core


class LockFailed(TraceEvent):
    __slots__ = ("core",)
    kind = "lock_failed"

    def __init__(self, core: int) -> None:
        super().__init__()
        self.core = core


class StmOutcome(TraceEvent):
    """A TL2 transaction attempt ended: committed or aborted."""

    __slots__ = ("core", "committed")
    kind = "stm"

    def __init__(self, core: int, committed: bool) -> None:
        super().__init__()
        self.core = core
        self.committed = committed


# ---------------------------------------------------------------------------
# Fault injection (repro.faults)
# ---------------------------------------------------------------------------

class FaultInjected(TraceEvent):
    """The fault plan fired at a hook ``site`` (``net_jitter``,
    ``timer_skew``, ``slow_core``).  ``magnitude`` is the site-specific
    size: extra latency cycles, signed skew cycles, or the slowdown
    multiplier.  (Directory NACKs get their own ``dir_nack`` event, which
    carries the retry attempt instead.)"""

    __slots__ = ("site", "core", "magnitude")
    kind = "fault_injected"

    def __init__(self, site: str, core: int, magnitude: int) -> None:
        super().__init__()
        self.site = site
        self.core = core
        self.magnitude = magnitude


class DirNack(TraceEvent):
    """The directory NACKed ``core``'s request for ``line`` on its
    ``attempt``-th try (fault-injected resource pressure)."""

    __slots__ = ("core", "line", "attempt")
    kind = "dir_nack"

    def __init__(self, core: int, line: int, attempt: int) -> None:
        super().__init__()
        self.core = core
        self.line = line
        self.attempt = attempt


class RetryScheduled(TraceEvent):
    """A NACKed request was scheduled for re-issue after ``delay`` cycles
    of randomized exponential backoff."""

    __slots__ = ("core", "line", "attempt", "delay")
    kind = "retry_scheduled"

    def __init__(self, core: int, line: int, attempt: int,
                 delay: int) -> None:
        super().__init__()
        self.core = core
        self.line = line
        self.attempt = attempt
        self.delay = delay


# ---------------------------------------------------------------------------
# Checkpoint/restore (repro.state)
# ---------------------------------------------------------------------------

class CheckpointSaved(TraceEvent):
    """The machine's state was snapshotted at ``cycle``.  ``log_entries``
    is the length of the resume log captured with it (a rough size/depth
    measure of the checkpoint)."""

    __slots__ = ("cycle", "log_entries")
    kind = "checkpoint_saved"

    def __init__(self, cycle: int, log_entries: int) -> None:
        super().__init__()
        self.cycle = cycle
        self.log_entries = log_entries


class CheckpointRestored(TraceEvent):
    """A snapshot taken at ``cycle`` was restored into this machine,
    re-materializing ``threads`` thread generators from the resume log."""

    __slots__ = ("cycle", "threads")
    kind = "checkpoint_restored"

    def __init__(self, cycle: int, threads: int) -> None:
        super().__init__()
        self.cycle = cycle
        self.threads = threads


class OpCompleted(TraceEvent):
    """One data-structure operation completed (the throughput unit).

    When the worker reports its operation (all benchmark workers do), the
    event doubles as one *history record* for the :mod:`repro.check`
    linearizability checker: ``tid``/``op``/``args``/``result`` identify
    the operation and its outcome, ``start`` is the invocation cycle and
    the bus-stamped ``t`` is the response cycle.  A bare ``OpCompleted(
    core)`` (op=None) still counts for throughput but carries no history.
    """

    __slots__ = ("core", "tid", "op", "args", "result", "start")
    kind = "op_completed"

    def __init__(self, core: int, tid: int | None = None,
                 op: str | None = None, args: tuple = (),
                 result: Any = None, start: int | None = None) -> None:
        super().__init__()
        self.core = core
        self.tid = tid
        self.op = op
        self.args = args
        self.result = result
        self.start = start


# ---------------------------------------------------------------------------
# Cluster layer (repro.cluster): inter-node messages + PaxosLease
# ---------------------------------------------------------------------------

class NodeMsgSent(TraceEvent):
    """An inter-node message left ``src`` for ``dst`` over the cluster
    network; it will be delivered ``latency`` cycles later (unless it is
    also duplicated, in which case the copy draws its own latency)."""

    __slots__ = ("src", "dst", "msg", "latency")
    kind = "node_msg"

    def __init__(self, src: int, dst: int, msg: str, latency: int) -> None:
        super().__init__()
        self.src = src
        self.dst = dst
        self.msg = msg
        self.latency = latency


class NodeMsgDropped(TraceEvent):
    """An inter-node message was lost.  ``reason`` is ``"loss"`` for the
    random per-message loss stream or ``"partition"`` when the link is
    currently cut."""

    __slots__ = ("src", "dst", "msg", "reason")
    kind = "node_msg_dropped"

    def __init__(self, src: int, dst: int, msg: str, reason: str) -> None:
        super().__init__()
        self.src = src
        self.dst = dst
        self.msg = msg
        self.reason = reason


class NodeMsgDuplicated(TraceEvent):
    """The cluster network delivered a second copy of an inter-node
    message (PaxosLease must tolerate duplicates idempotently)."""

    __slots__ = ("src", "dst", "msg")
    kind = "node_msg_dup"

    def __init__(self, src: int, dst: int, msg: str) -> None:
        super().__init__()
        self.src = src
        self.dst = dst
        self.msg = msg


class PaxosRoundStarted(TraceEvent):
    """Node ``node`` opened a PaxosLease round for ``obj`` with ballot
    ``ballot``; ``extend`` marks a renewal by the current holder."""

    __slots__ = ("node", "obj", "ballot", "extend")
    kind = "paxos_round"

    def __init__(self, node: int, obj: int, ballot: int,
                 extend: bool = False) -> None:
        super().__init__()
        self.node = node
        self.obj = obj
        self.ballot = ballot
        self.extend = extend


class ClusterLeaseAcquired(TraceEvent):
    """Node ``node`` won a majority of accepts for ``obj`` and now holds
    the cluster lease until ``expires_at`` (local clock, already shortened
    by the proposer's skew guard)."""

    __slots__ = ("node", "obj", "ballot", "expires_at")
    kind = "cluster_lease_acquired"

    def __init__(self, node: int, obj: int, ballot: int,
                 expires_at: int) -> None:
        super().__init__()
        self.node = node
        self.obj = obj
        self.ballot = ballot
        self.expires_at = expires_at


class ClusterLeaseExpired(TraceEvent):
    """Node ``node``'s cluster lease on ``obj`` ran out before a renewal
    round completed; the node stops treating itself as owner."""

    __slots__ = ("node", "obj", "ballot")
    kind = "cluster_lease_expired"

    def __init__(self, node: int, obj: int, ballot: int) -> None:
        super().__init__()
        self.node = node
        self.obj = obj
        self.ballot = ballot


class ClusterLeaseReleased(TraceEvent):
    """Node ``node`` voluntarily stopped renewing ``obj`` (interest
    dropped to zero) and discarded its still-valid cluster lease."""

    __slots__ = ("node", "obj", "ballot")
    kind = "cluster_lease_released"

    def __init__(self, node: int, obj: int, ballot: int) -> None:
        super().__init__()
        self.node = node
        self.obj = obj
        self.ballot = ballot


class ClusterGuardDenied(TraceEvent):
    """A worker on node ``node`` asked for an intra-node lease on a line
    belonging to cluster object ``obj`` while the node did not hold the
    cluster lease; the distributed manager refused the fast path."""

    __slots__ = ("node", "obj")
    kind = "cluster_guard_denied"

    def __init__(self, node: int, obj: int) -> None:
        super().__init__()
        self.node = node
        self.obj = obj


# ---------------------------------------------------------------------------
# Open-loop traffic (repro.traffic): admission-queue outcomes
# ---------------------------------------------------------------------------

class OpAdmitted(TraceEvent):
    """One open-loop arrival was admitted into core ``core``'s bounded
    queue (``depth`` is the queue depth right after admission; watching
    it grow toward the cap is the early-warning signal for shed)."""

    __slots__ = ("core", "tenant", "depth")
    kind = "op_admitted"

    def __init__(self, core: int, tenant: int = 0, depth: int = 0) -> None:
        super().__init__()
        self.core = core
        self.tenant = tenant
        self.depth = depth


class OpShed(TraceEvent):
    """One open-loop arrival found core ``core``'s admission queue full
    and was shed -- counted against the SLO's shed budget, never run."""

    __slots__ = ("core", "tenant")
    kind = "op_shed"

    def __init__(self, core: int, tenant: int = 0) -> None:
        super().__init__()
        self.core = core
        self.tenant = tenant
