"""The stock trace sinks: counters, JSONL/ring-buffer capture, heatmap.

``CountersTracer`` is what keeps the rest of the repo oblivious to the
refactor: it folds the event stream back into the flat
:class:`~repro.stats.Counters` that reports, the energy model and the test
suite consume.  Because the counters are now *derived* from the same events
a trace captures, any written trace reconciles with the run's counter
totals by construction -- :func:`reconcile` checks exactly that.

``CountersTracer`` additionally provides *fast handlers* (see
:meth:`~repro.trace.bus.Tracer.fast_handlers`): payload-level callables
that update the same counters by the same arithmetic without an event
object ever being built.  When it is the only consumer of an event type --
the default machine configuration -- the bus routes that type through
these handlers and the per-event allocation disappears from the hot loop.
Capture sinks (``JsonlTracer``, ``RingBufferTracer``) consume every type
as objects, so attaching one restores the full construct-and-fan-out path;
``ContentionHeatmap`` declares interest in just the four kinds it reads.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, TYPE_CHECKING, Any, Callable, Collection, Mapping

from ..stats import Counters
from ..stats.report import format_table
from . import events as ev
from .bus import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from ..core.machine import Machine


class CountersTracer(Tracer):
    """Rebuilds the classic flat :class:`Counters` from the event stream.

    One instance is attached to every machine by default;
    ``machine.counters`` is this sink's ``counters`` attribute, so all
    existing result/report/energy code works unchanged.
    """

    #: Pure accumulation: totals are invariant under same-cycle reordering
    #: of different cores' events, so core batch-advance may proceed.
    folds_unordered = True

    def __init__(self, counters: Counters | None = None) -> None:
        self.counters = counters or Counters()
        k = self.counters
        # type -> handler; dispatch is one dict lookup per event.
        self._handlers: dict[type, Callable[[Any], None]] = {
            ev.L1Hit: lambda e: self._bump("l1_hits"),
            ev.L1Miss: lambda e: self._bump("l1_misses"),
            ev.L1Evicted: self._on_l1_evicted,
            ev.MesiUpgrade: lambda e: self._bump("mesi_silent_upgrades"),
            ev.L2Access: self._on_l2_access,
            ev.Writeback: self._on_writeback,
            ev.MessageSent: self._on_message,
            ev.LinkQueued: lambda e: self._bump("link_queued"),
            ev.LinkGranted: self._on_link_granted,
            ev.PortBusy: lambda e: self._bump("port_stalls"),
            ev.ReqIssued: self._on_req_issued,
            ev.ReqQueued: self._on_req_queued,
            ev.ProbeSent: self._on_probe_sent,
            ev.ProbeServiced: self._on_probe_serviced,
            ev.ProbeDeferred: lambda e: self._bump(
                "probes_deferred_mid_access"),
            ev.LeaseProbeQueued: lambda e: self._bump(
                "probes_queued_at_core"),
            ev.LeaseRequested: lambda e: self._bump("leases_requested"),
            ev.LeaseNoop: lambda e: self._bump("leases_noop_already_held"),
            ev.LeaseIgnored: lambda e: self._bump(
                "leases_ignored_by_predictor"),
            ev.LeaseStarted: lambda e: self._bump("leases_granted"),
            ev.LeaseReleased: self._on_lease_released,
            ev.MultiLeaseIssued: self._on_multilease,
            ev.CasOutcome: self._on_cas,
            ev.LockAttempt: lambda e: self._bump("lock_acquire_attempts"),
            ev.LockFailed: lambda e: self._bump("lock_acquire_failures"),
            ev.StmOutcome: self._on_stm,
            ev.OpCompleted: lambda e: k.note_op(e.core),
            ev.OpAdmitted: lambda e: self._bump("traffic_admitted"),
            ev.OpShed: lambda e: self._bump("traffic_shed"),
            ev.FaultInjected: lambda e: self._bump("faults_injected"),
            ev.DirNack: lambda e: self._bump("dir_nacks"),
            ev.RetryScheduled: lambda e: self._bump("dir_retries"),
            ev.CheckpointSaved: lambda e: self._bump("checkpoints_saved"),
            ev.CheckpointRestored: lambda e: self._bump(
                "checkpoints_restored"),
            ev.NodeMsgSent: lambda e: self._bump("node_msgs_sent"),
            ev.NodeMsgDropped: lambda e: self._bump("node_msgs_dropped"),
            ev.NodeMsgDuplicated: lambda e: self._bump(
                "node_msgs_duplicated"),
            ev.PaxosRoundStarted: lambda e: self._bump("paxos_rounds"),
            ev.ClusterLeaseAcquired: lambda e: self._bump(
                "cluster_leases_acquired"),
            ev.ClusterLeaseExpired: lambda e: self._bump(
                "cluster_leases_expired"),
            ev.ClusterLeaseReleased: lambda e: self._bump(
                "cluster_leases_released"),
            ev.ClusterGuardDenied: lambda e: self._bump(
                "cluster_guard_denied"),
        }
        self._release_fields = {
            "voluntary": "releases_voluntary",
            "expired": "releases_involuntary",
            "broken": "releases_broken_by_priority",
            "fifo": "releases_fifo_eviction",
        }

    def _bump(self, field: str) -> None:
        k = self.counters
        setattr(k, field, getattr(k, field) + 1)

    # -- composite handlers -------------------------------------------------

    def _on_l1_evicted(self, e: ev.L1Evicted) -> None:
        if e.overflow:
            self.counters.l1_eviction_overflows += 1
        else:
            self.counters.l1_evictions += 1

    def _on_l2_access(self, e: ev.L2Access) -> None:
        k = self.counters
        k.l2_accesses += 1
        if e.dram:
            k.dram_accesses += 1

    def _on_writeback(self, e: ev.Writeback) -> None:
        k = self.counters
        k.l2_accesses += 1
        k.writebacks += 1

    def _on_message(self, e: ev.MessageSent) -> None:
        k = self.counters
        k.messages += 1
        k.hops += e.hops
        if e.data:
            k.data_messages += 1

    def _on_link_granted(self, e: ev.LinkGranted) -> None:
        k = self.counters
        k.link_msgs += 1
        k.link_flits += e.flits
        k.link_stall_cycles += e.waited

    def _on_req_issued(self, e: ev.ReqIssued) -> None:
        if e.req == "GetS":
            self.counters.gets_requests += 1
        else:
            self.counters.getx_requests += 1

    def _on_req_queued(self, e: ev.ReqQueued) -> None:
        k = self.counters
        k.dir_queued_requests += 1
        if e.depth > k.dir_max_queue_depth:
            k.dir_max_queue_depth = e.depth

    def _on_probe_sent(self, e: ev.ProbeSent) -> None:
        if e.probe == "Inv":
            self.counters.invalidations_sent += 1
        else:
            self.counters.downgrades_sent += 1

    def _on_probe_serviced(self, e: ev.ProbeServiced) -> None:
        if e.stale:
            self.counters.stale_probes += 1

    def _on_lease_released(self, e: ev.LeaseReleased) -> None:
        self._bump(self._release_fields[e.mode])

    def _on_multilease(self, e: ev.MultiLeaseIssued) -> None:
        k = self.counters
        k.multilease_calls += 1
        if e.ignored:
            k.multilease_ignored += 1

    def _on_cas(self, e: ev.CasOutcome) -> None:
        k = self.counters
        k.cas_attempts += 1
        if not e.ok:
            k.cas_failures += 1

    def _on_stm(self, e: ev.StmOutcome) -> None:
        if e.committed:
            self.counters.stm_commits += 1
        else:
            self.counters.stm_aborts += 1

    # -- sink interface -----------------------------------------------------

    def on_event(self, event: ev.TraceEvent) -> None:
        handler = self._handlers.get(type(event))
        if handler is not None:
            handler(event)

    def interests(self) -> Collection[type]:
        return frozenset(self._handlers)

    def fast_handlers(self) -> Mapping[type, Callable[..., None]]:
        """Payload-level counter updates, bit-identical to the event-object
        handlers above (the test suite asserts equality across both paths).
        Parameter names mirror each event constructor so keyword call sites
        work on either path."""
        k = self.counters
        release_fields = self._release_fields

        def l1_hit(core, line):
            k.l1_hits += 1

        def l1_miss(core, line):
            k.l1_misses += 1

        def l1_evicted(core, line, overflow):
            if overflow:
                k.l1_eviction_overflows += 1
            else:
                k.l1_evictions += 1

        def mesi_upgrade(core, line):
            k.mesi_silent_upgrades += 1

        def l2_access(line, dram):
            k.l2_accesses += 1
            if dram:
                k.dram_accesses += 1

        def writeback(line):
            k.l2_accesses += 1
            k.writebacks += 1

        def message(src, dst, msg, hops, data):
            k.messages += 1
            k.hops += hops
            if data:
                k.data_messages += 1

        def link_queued(link, flow, depth):
            k.link_queued += 1

        def link_granted(link, flow, flits, waited):
            k.link_msgs += 1
            k.link_flits += flits
            k.link_stall_cycles += waited

        def port_busy(port, depth):
            k.port_stalls += 1

        def req_issued(core, line, req, is_lease):
            if req == "GetS":
                k.gets_requests += 1
            else:
                k.getx_requests += 1

        def req_queued(core, line, depth):
            k.dir_queued_requests += 1
            if depth > k.dir_max_queue_depth:
                k.dir_max_queue_depth = depth

        def probe_sent(target, line, probe):
            if probe == "Inv":
                k.invalidations_sent += 1
            else:
                k.downgrades_sent += 1

        def probe_serviced(core, line, probe, stale, data):
            if stale:
                k.stale_probes += 1

        def probe_deferred(core, line):
            k.probes_deferred_mid_access += 1

        def lease_probe_queued(core, line):
            k.probes_queued_at_core += 1

        def lease_requested(core, line, site):
            k.leases_requested += 1

        def lease_noop(core, line):
            k.leases_noop_already_held += 1

        def lease_ignored(core, line, site):
            k.leases_ignored_by_predictor += 1

        def lease_started(core, line, duration):
            k.leases_granted += 1

        def lease_released(core, line, mode):
            f = release_fields[mode]
            setattr(k, f, getattr(k, f) + 1)

        def multilease(core, n, ignored):
            k.multilease_calls += 1
            if ignored:
                k.multilease_ignored += 1

        def cas(core, addr, ok):
            k.cas_attempts += 1
            if not ok:
                k.cas_failures += 1

        def lock_attempt(core):
            k.lock_acquire_attempts += 1

        def lock_failed(core):
            k.lock_acquire_failures += 1

        def stm(core, committed):
            if committed:
                k.stm_commits += 1
            else:
                k.stm_aborts += 1

        def op_completed(core, tid=None, op=None, args=(), result=None,
                         start=None):
            k.note_op(core)

        def op_admitted(core, tenant=0, depth=0):
            k.traffic_admitted += 1

        def op_shed(core, tenant=0):
            k.traffic_shed += 1

        def fault_injected(site, core, magnitude):
            k.faults_injected += 1

        def dir_nack(core, line, attempt):
            k.dir_nacks += 1

        def retry_scheduled(core, line, attempt, delay):
            k.dir_retries += 1

        def checkpoint_saved(cycle, log_entries):
            k.checkpoints_saved += 1

        def checkpoint_restored(cycle, threads):
            k.checkpoints_restored += 1

        def node_msg(src, dst, msg, latency):
            k.node_msgs_sent += 1

        def node_msg_dropped(src, dst, msg, reason):
            k.node_msgs_dropped += 1

        def node_msg_dup(src, dst, msg):
            k.node_msgs_duplicated += 1

        def paxos_round(node, obj, ballot, extend=False):
            k.paxos_rounds += 1

        def cluster_lease_acquired(node, obj, ballot, expires_at):
            k.cluster_leases_acquired += 1

        def cluster_lease_expired(node, obj, ballot):
            k.cluster_leases_expired += 1

        def cluster_lease_released(node, obj, ballot):
            k.cluster_leases_released += 1

        def cluster_guard_denied(node, obj):
            k.cluster_guard_denied += 1

        return {
            ev.L1Hit: l1_hit, ev.L1Miss: l1_miss, ev.L1Evicted: l1_evicted,
            ev.MesiUpgrade: mesi_upgrade, ev.L2Access: l2_access,
            ev.Writeback: writeback, ev.MessageSent: message,
            ev.LinkQueued: link_queued, ev.LinkGranted: link_granted,
            ev.PortBusy: port_busy,
            ev.ReqIssued: req_issued, ev.ReqQueued: req_queued,
            ev.ProbeSent: probe_sent, ev.ProbeServiced: probe_serviced,
            ev.ProbeDeferred: probe_deferred,
            ev.LeaseProbeQueued: lease_probe_queued,
            ev.LeaseRequested: lease_requested, ev.LeaseNoop: lease_noop,
            ev.LeaseIgnored: lease_ignored, ev.LeaseStarted: lease_started,
            ev.LeaseReleased: lease_released,
            ev.MultiLeaseIssued: multilease, ev.CasOutcome: cas,
            ev.LockAttempt: lock_attempt, ev.LockFailed: lock_failed,
            ev.StmOutcome: stm, ev.OpCompleted: op_completed,
            ev.OpAdmitted: op_admitted, ev.OpShed: op_shed,
            ev.FaultInjected: fault_injected, ev.DirNack: dir_nack,
            ev.RetryScheduled: retry_scheduled,
            ev.CheckpointSaved: checkpoint_saved,
            ev.CheckpointRestored: checkpoint_restored,
            ev.NodeMsgSent: node_msg,
            ev.NodeMsgDropped: node_msg_dropped,
            ev.NodeMsgDuplicated: node_msg_dup,
            ev.PaxosRoundStarted: paxos_round,
            ev.ClusterLeaseAcquired: cluster_lease_acquired,
            ev.ClusterLeaseExpired: cluster_lease_expired,
            ev.ClusterLeaseReleased: cluster_lease_released,
            ev.ClusterGuardDenied: cluster_guard_denied,
        }

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self, codec=None) -> dict:
        return self.counters.state_dict()

    def load_state(self, state: dict, codec=None) -> None:
        """Restore counter totals *in place* -- ``machine.counters`` is
        this sink's ``counters`` object and must keep its identity."""
        self.counters.load_state(state)


class RingBufferTracer(Tracer):
    """Keeps the last ``capacity`` events in memory (bounded), while
    tallying per-kind counts over the *whole* stream."""

    def __init__(self, capacity: int = 65536) -> None:
        self.buffer: deque[ev.TraceEvent] = deque(maxlen=capacity)
        self.counts: dict[str, int] = {}
        self.total = 0

    def on_event(self, event: ev.TraceEvent) -> None:
        self.buffer.append(event)
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1
        self.total += 1

    def events(self) -> list[ev.TraceEvent]:
        return list(self.buffer)

    def dump(self, fp: IO[str]) -> int:
        """Write the buffered events as JSONL; returns lines written."""
        n = 0
        for event in self.buffer:
            fp.write(json.dumps(event.to_dict(), separators=(",", ":")))
            fp.write("\n")
            n += 1
        return n


class JsonlTracer(Tracer):
    """Streams every event as one JSON line to a file (or file object).

    ``annotate(**fields)`` attaches context fields (e.g. variant name,
    thread count) to every subsequent line -- handy when one file covers a
    whole sweep.  ``max_events`` bounds the number of lines *written*;
    per-kind counts always cover the full stream so reconciliation against
    the run's counters stays exact even for truncated files.
    """

    def __init__(self, path_or_fp: str | IO[str], *,
                 max_events: int | None = None) -> None:
        if isinstance(path_or_fp, str):
            self._fp: IO[str] = open(path_or_fp, "w", encoding="utf-8")
            self._owns_fp = True
        else:
            self._fp = path_or_fp
            self._owns_fp = False
        self.max_events = max_events
        self.written = 0
        self.total = 0
        self.counts: dict[str, int] = {}
        self._extra: dict[str, Any] = {}

    def annotate(self, **fields: Any) -> None:
        """Set context fields merged into every subsequent event line."""
        self._extra = dict(fields)

    def on_event(self, event: ev.TraceEvent) -> None:
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1
        self.total += 1
        if self.max_events is not None and self.written >= self.max_events:
            return
        d = event.to_dict()
        if self._extra:
            d.update(self._extra)
        self._fp.write(json.dumps(d, separators=(",", ":")))
        self._fp.write("\n")
        self.written += 1

    def write_line(self, record: Mapping[str, Any]) -> None:
        """Write an out-of-band record (e.g. a run summary) to the file."""
        self._fp.write(json.dumps(dict(record), separators=(",", ":")))
        self._fp.write("\n")

    def close(self) -> None:
        if self._owns_fp:
            self._fp.close()
        else:
            self._fp.flush()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class _LineStats:
    __slots__ = ("queued", "max_depth", "probes", "deferrals", "lines")

    def __init__(self) -> None:
        self.queued = 0
        self.max_depth = 0
        self.probes = 0
        self.deferrals = 0
        self.lines: set[int] = set()


class ContentionHeatmap(Tracer):
    """Per-line contention statistics keyed by symbolic allocation name.

    Aggregates directory queueing (how long requests wait behind the
    single in-flight transaction per line), probe traffic, and probe
    deferrals (lease queueing + mid-access deferral) per allocation label
    (see ``Allocator.label_of``), reproducing the paper's "messages per
    op" story at individual-variable granularity.
    """

    def __init__(self) -> None:
        self._stats: dict[str, _LineStats] = {}
        self._resolve: Callable[[int], str | None] = lambda line: None

    def bind(self, machine: "Machine") -> None:
        self._resolve = machine.alloc.label_of

    def _rec(self, line: int) -> _LineStats:
        name = self._resolve(line) or f"line#{line}"
        rec = self._stats.get(name)
        if rec is None:
            rec = self._stats[name] = _LineStats()
        rec.lines.add(line)
        return rec

    def on_event(self, event: ev.TraceEvent) -> None:
        t = type(event)
        if t is ev.ReqQueued:
            rec = self._rec(event.line)
            rec.queued += 1
            if event.depth > rec.max_depth:
                rec.max_depth = event.depth
        elif t is ev.ProbeSent:
            self._rec(event.line).probes += 1
        elif t is ev.LeaseProbeQueued or t is ev.ProbeDeferred:
            self._rec(event.line).deferrals += 1

    def interests(self) -> Collection[type]:
        """Only the four contention kinds: every other event type stays on
        the bus's allocation-free fast path while a heatmap is attached."""
        return frozenset((ev.ReqQueued, ev.ProbeSent, ev.LeaseProbeQueued,
                          ev.ProbeDeferred))

    def rows(self, top: int | None = None) -> list[dict[str, Any]]:
        """Hottest allocations first (by directory queueing, then probes)."""
        ranked = sorted(self._stats.items(),
                        key=lambda kv: (kv[1].queued, kv[1].probes),
                        reverse=True)
        if top is not None:
            ranked = ranked[:top]
        return [{
            "allocation": name,
            "lines": len(rec.lines),
            "dir_queued": rec.queued,
            "max_queue_depth": rec.max_depth,
            "probes": rec.probes,
            "probe_deferrals": rec.deferrals,
        } for name, rec in ranked]

    def report(self, top: int | None = 20) -> str:
        rows = self.rows(top)
        if not rows:
            return "(no contention recorded)"
        return format_table(rows)


#: (description, event-count expression, counter expression) triplets used
#: to cross-check a captured trace against the run's Counters totals.
_RECONCILE_RULES: tuple[tuple[str, Callable[[Mapping[str, int]], int],
                              Callable[[Mapping[str, int]], int]], ...] = (
    ("messages", lambda c: c.get("message", 0),
     lambda k: k["messages"]),
    ("l1 hits", lambda c: c.get("l1_hit", 0),
     lambda k: k["l1_hits"]),
    ("l1 misses", lambda c: c.get("l1_miss", 0),
     lambda k: k["l1_misses"]),
    ("link grants", lambda c: c.get("link_granted", 0),
     lambda k: k.get("link_msgs", 0)),
    ("link queueings", lambda c: c.get("link_queued", 0),
     lambda k: k.get("link_queued", 0)),
    ("port stalls", lambda c: c.get("port_busy", 0),
     lambda k: k.get("port_stalls", 0)),
    ("requests issued", lambda c: c.get("req_issued", 0),
     lambda k: k["gets_requests"] + k["getx_requests"]),
    ("requests queued", lambda c: c.get("req_queued", 0),
     lambda k: k["dir_queued_requests"]),
    ("probes sent", lambda c: c.get("probe_sent", 0),
     lambda k: k["invalidations_sent"] + k["downgrades_sent"]),
    ("writebacks", lambda c: c.get("writeback", 0),
     lambda k: k["writebacks"]),
    ("l2 accesses", lambda c: c.get("l2_access", 0) + c.get("writeback", 0),
     lambda k: k["l2_accesses"]),
    ("leases requested", lambda c: c.get("lease_requested", 0),
     lambda k: k["leases_requested"]),
    ("leases started", lambda c: c.get("lease_started", 0),
     lambda k: k["leases_granted"]),
    ("probes queued at cores", lambda c: c.get("lease_probe_queued", 0),
     lambda k: k["probes_queued_at_core"]),
    ("multilease calls", lambda c: c.get("multilease", 0),
     lambda k: k["multilease_calls"]),
    ("cas attempts", lambda c: c.get("cas", 0),
     lambda k: k["cas_attempts"]),
    ("lock attempts", lambda c: c.get("lock_attempt", 0),
     lambda k: k["lock_acquire_attempts"]),
    ("stm attempts", lambda c: c.get("stm", 0),
     lambda k: k["stm_commits"] + k["stm_aborts"]),
    ("ops completed", lambda c: c.get("op_completed", 0),
     lambda k: k["ops_completed"]),
    ("ops admitted", lambda c: c.get("op_admitted", 0),
     lambda k: k.get("traffic_admitted", 0)),
    ("ops shed", lambda c: c.get("op_shed", 0),
     lambda k: k.get("traffic_shed", 0)),
    ("faults injected", lambda c: c.get("fault_injected", 0),
     lambda k: k["faults_injected"]),
    ("directory nacks", lambda c: c.get("dir_nack", 0),
     lambda k: k["dir_nacks"]),
    ("retries scheduled", lambda c: c.get("retry_scheduled", 0),
     lambda k: k["dir_retries"]),
    ("node messages sent", lambda c: c.get("node_msg", 0),
     lambda k: k.get("node_msgs_sent", 0)),
    ("node messages dropped", lambda c: c.get("node_msg_dropped", 0),
     lambda k: k.get("node_msgs_dropped", 0)),
    ("node messages duplicated", lambda c: c.get("node_msg_dup", 0),
     lambda k: k.get("node_msgs_duplicated", 0)),
    ("paxos rounds", lambda c: c.get("paxos_round", 0),
     lambda k: k.get("paxos_rounds", 0)),
    ("cluster leases acquired", lambda c: c.get("cluster_lease_acquired", 0),
     lambda k: k.get("cluster_leases_acquired", 0)),
    ("cluster leases expired", lambda c: c.get("cluster_lease_expired", 0),
     lambda k: k.get("cluster_leases_expired", 0)),
    ("cluster leases released", lambda c: c.get("cluster_lease_released", 0),
     lambda k: k.get("cluster_leases_released", 0)),
    ("cluster guard denials", lambda c: c.get("cluster_guard_denied", 0),
     lambda k: k.get("cluster_guard_denied", 0)),
)


def reconcile(event_counts: Mapping[str, int],
              counters: Counters | Mapping[str, int]) -> list[str]:
    """Cross-check per-kind trace event counts against Counters totals.

    Returns a list of human-readable mismatch descriptions (empty when the
    trace reconciles exactly).  ``counters`` may be a live ``Counters`` or
    a ``snapshot()`` dict.
    """
    snap = counters.snapshot() if isinstance(counters, Counters) else counters
    problems = []
    for desc, from_events, from_counters in _RECONCILE_RULES:
        a, b = from_events(event_counts), from_counters(snap)
        if a != b:
            problems.append(f"{desc}: trace={a} counters={b}")
    return problems
