"""Instrumentation layer: event taxonomy, trace bus, and stock sinks.

See DESIGN.md ("Instrumentation") for the event taxonomy and how to write
a custom sink.  Quick orientation::

    from repro import Machine
    from repro.trace import RingBufferTracer

    m = Machine()
    ring = m.attach_tracer(RingBufferTracer(capacity=4096))
    ...
    m.run()
    for event in ring.events():
        print(event)
"""

from . import events
from .bus import NullTracer, TraceBus, Tracer
from .events import TraceEvent
from .invariants import InvariantTracer
from .sinks import (ContentionHeatmap, CountersTracer, JsonlTracer,
                    RingBufferTracer, reconcile)

__all__ = [
    "events", "TraceEvent", "Tracer", "NullTracer", "TraceBus",
    "CountersTracer", "RingBufferTracer", "JsonlTracer",
    "ContentionHeatmap", "InvariantTracer", "reconcile",
]
