"""The instrumentation bus: one ``emit`` seam, pluggable sinks.

Every layer of the machine (engine, coherence, leases, sync, workloads)
reports what it does through the machine's :class:`TraceBus`.  What
happens to an event is entirely a property of the attached sinks:

* :class:`~repro.trace.sinks.CountersTracer` -- the default; rebuilds the
  classic :class:`~repro.stats.Counters` so reports keep working;
* :class:`~repro.trace.sinks.JsonlTracer` / ``RingBufferTracer`` -- raw
  event capture for offline analysis;
* :class:`~repro.trace.sinks.ContentionHeatmap` -- per-line queue-depth /
  deferral histograms;
* :class:`~repro.trace.invariants.InvariantTracer` -- protocol checking.

Observation must never perturb the simulation: sinks only read machine
state, never schedule events or mutate it, so a run's ``RunResult`` is
bit-identical whatever sinks are attached (the test suite asserts this).

The fast path
-------------

Constructing a :class:`~repro.trace.events.TraceEvent` object per
observable action is pure overhead when nothing attached wants the
object -- and the default configuration (a lone ``CountersTracer``) only
ever folds events into flat integer counters.  The bus therefore exposes
one *pre-bound emit slot per event type*, named after the type's ``kind``
string::

    trace.l1_hit(core, line)          # instead of emit(L1Hit(core, line))
    trace.message(src, dst, msg, hops, data)

Each slot is rebuilt whenever the sink set changes, to the cheapest
implementation the attached sinks allow:

* **no consumer** for that type -> a no-op (the call site pays one
  attribute lookup and an empty call, nothing else);
* **fast handlers only** (every interested sink consumes the payload
  directly, e.g. ``CountersTracer``) -> the payload-level handler(s),
  with no event object, no clock stamp, no fan-out loop;
* **any sink that needs the object** (JSONL/ring capture, invariant
  checker, history recorder, any sink whose :meth:`Tracer.interests`
  is ``None``) -> the classic slow path: construct the event once and
  :meth:`TraceBus.emit` it to every sink in attachment order.

Both paths update the same counters by the same arithmetic, so results
are bit-identical; ``set_fast_path(False)`` forces the slow path
everywhere (the perf-regression bench uses this for A/B timing, and the
test suite asserts ``RunResult`` equality across the toggle).
``wants(EventType)`` tells an emitting layer whether anything would
receive the constructed object -- the guard to use before computing an
expensive payload.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Collection, Iterable, Mapping

from . import events as _events
from .events import TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from ..core.machine import Machine

#: Every concrete event type in the taxonomy, discovered from the events
#: module; the bus pre-binds one emit slot per entry, named by its ``kind``.
EVENT_TYPES: tuple[type, ...] = tuple(
    cls for cls in vars(_events).values()
    if isinstance(cls, type) and issubclass(cls, TraceEvent)
    and cls is not TraceEvent)


class Tracer:
    """Sink interface.  Subclass and override :meth:`on_event`.

    ``bind(machine)`` is called when the sink is attached via
    :meth:`Machine.attach_tracer`, giving sinks that need machine state
    (invariant checker, heatmap label resolution) a reference; the default
    is a no-op so simple sinks ignore it.

    ``interests()`` declares which event types the sink consumes *as
    objects*: ``None`` (the default) means every type, an explicit
    collection restricts delivery to those types and lets the bus keep
    every other type on the allocation-free fast path.  ``fast_handlers()``
    goes further: a sink may provide payload-level callables (same
    signature as the event constructor, minus ``self``) for types it can
    consume without the object at all.

    ``folds_unordered`` declares that the sink's final state is invariant
    under reordering events of *different cores* within one cycle (pure
    counters are; anything recording a stream is not).  Core batch-advance
    on the fast engine changes that emission order -- never timestamps or
    per-core order -- so the machine only enables it when every attached
    sink sets this flag.
    """

    #: Conservative default: an unknown sink may care about stream order.
    folds_unordered = False

    def on_event(self, ev: TraceEvent) -> None:
        raise NotImplementedError

    def bind(self, machine: "Machine") -> None:
        pass

    def interests(self) -> Collection[type] | None:
        """Event types this sink consumes (None = all types)."""
        return None

    def fast_handlers(self) -> Mapping[type, Callable[..., None]]:
        """Payload-level handlers for types consumable without an event
        object.  Types covered here are excluded from object delivery
        while the fast path is enabled."""
        return {}


class NullTracer(Tracer):
    """A sink that drops everything (for machines that need no accounting
    at all, and as the do-nothing default for standalone components)."""

    folds_unordered = True

    def on_event(self, ev: TraceEvent) -> None:
        pass

    def interests(self) -> Collection[type]:
        return ()


def _noop(*_args, **_kw) -> None:
    pass


class TraceBus:
    """Fan-out point between instrumented code and the attached sinks.

    ``emit`` stamps each event with the current simulation cycle (via the
    ``clock`` callable) and forwards it to every sink in attachment order.
    The per-type slots (``trace.l1_hit(...)``, ``trace.message(...)``,
    one per ``kind`` in the taxonomy) are the hot-path seam; see the
    module docstring.
    """

    def __init__(self, clock: Callable[[], int] | None = None,
                 sinks: Iterable[Tracer] = ()) -> None:
        self.clock = clock or (lambda: 0)
        self._sinks: list[Tracer] = list(sinks)
        self._fast_enabled = True
        self._muted = False
        self._obj_types: frozenset[type] = frozenset()
        self._rebuild_slots()

    # -- sink management -----------------------------------------------------

    def attach(self, sink: Tracer) -> Tracer:
        """Add ``sink`` to the fan-out list; returns it for chaining."""
        self._sinks.append(sink)
        self._rebuild_slots()
        return sink

    def detach(self, sink: Tracer) -> None:
        """Remove ``sink``; detaching an unattached sink is a no-op."""
        if sink in self._sinks:
            self._sinks.remove(sink)
            self._rebuild_slots()

    @property
    def sinks(self) -> tuple[Tracer, ...]:
        return tuple(self._sinks)

    # -- fast-path control ---------------------------------------------------

    @property
    def fast_path_enabled(self) -> bool:
        return self._fast_enabled

    def set_fast_path(self, enabled: bool) -> None:
        """Enable/disable the allocation-free fast path.  Disabled, every
        slot constructs its event object and runs the full ``emit`` fan-out
        (the pre-fast-path behavior); results are bit-identical either way.
        The perf-regression bench uses this toggle for A/B timing."""
        self._fast_enabled = bool(enabled)
        self._rebuild_slots()

    def wants(self, event_type: type) -> bool:
        """True when some attached sink would receive a constructed
        ``event_type`` object -- the guard for call sites whose payload is
        expensive to build."""
        return event_type in self._obj_types

    # -- muting (checkpoint restore) -----------------------------------------

    def mute(self) -> None:
        """Silence the bus entirely: every per-type slot and ``emit``
        become no-ops.  Used while a checkpoint restore replays the resume
        log -- the replayed thread bodies re-emit events the sinks already
        counted the first time around (sink state is installed from the
        snapshot afterwards)."""
        self._muted = True
        self._rebuild_slots()

    def unmute(self) -> None:
        """Restore normal delivery after :meth:`mute`."""
        self._muted = False
        self._rebuild_slots()

    @property
    def muted(self) -> bool:
        return self._muted

    # -- slot construction ---------------------------------------------------

    def _make_slow_slot(self, cls: type) -> Callable[..., None]:
        def slot(*args, **kw) -> None:
            self.emit(cls(*args, **kw))
        return slot

    @staticmethod
    def _make_fanout_slot(fns: list) -> Callable[..., None]:
        def slot(*args, **kw) -> None:
            for fn in fns:
                fn(*args, **kw)
        return slot

    def _rebuild_slots(self) -> None:
        """Re-derive one emit slot per event type from the attached sinks.
        Runs on attach/detach/toggle only -- never on the hot path."""
        if self._muted:
            for cls in EVENT_TYPES:
                setattr(self, cls.kind, _noop)
            self._obj_types = frozenset()
            return
        per_sink = [(s.fast_handlers() if self._fast_enabled else {},
                     s.interests()) for s in self._sinks]
        obj_types = set()
        for cls in EVENT_TYPES:
            fast = []
            needs_obj = False
            for handlers, interests in per_sink:
                fn = handlers.get(cls)
                if fn is not None:
                    fast.append(fn)
                elif interests is None or cls in interests:
                    needs_obj = True
            if needs_obj:
                # At least one sink needs the object: construct it once and
                # fan out through emit() to *every* sink in attachment
                # order, exactly as before the fast path existed.
                obj_types.add(cls)
                slot = self._make_slow_slot(cls)
            elif len(fast) == 1:
                slot = fast[0]
            elif fast:
                slot = self._make_fanout_slot(fast)
            else:
                slot = _noop
            setattr(self, cls.kind, slot)
        self._obj_types = frozenset(obj_types)

    # -- the seam ------------------------------------------------------------

    def emit(self, ev: TraceEvent) -> None:
        """Stamp ``ev`` with the current cycle and deliver it to every
        attached sink."""
        sinks = self._sinks
        if not sinks or self._muted:
            return
        ev.t = self.clock()
        for sink in sinks:
            sink.on_event(ev)
