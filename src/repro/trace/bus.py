"""The instrumentation bus: one ``emit`` seam, pluggable sinks.

Every layer of the machine (engine, coherence, leases, sync, workloads)
reports what it does by constructing a :mod:`~repro.trace.events` object
and calling ``trace.emit(ev)``.  What happens to the event is entirely a
property of the attached sinks:

* :class:`~repro.trace.sinks.CountersTracer` -- the default; rebuilds the
  classic :class:`~repro.stats.Counters` so reports keep working;
* :class:`~repro.trace.sinks.JsonlTracer` / ``RingBufferTracer`` -- raw
  event capture for offline analysis;
* :class:`~repro.trace.sinks.ContentionHeatmap` -- per-line queue-depth /
  deferral histograms;
* :class:`~repro.trace.invariants.InvariantTracer` -- protocol checking.

Observation must never perturb the simulation: sinks only read machine
state, never schedule events or mutate it, so a run's ``RunResult`` is
bit-identical whatever sinks are attached (the test suite asserts this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

from .events import TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from ..core.machine import Machine


class Tracer:
    """Sink interface.  Subclass and override :meth:`on_event`.

    ``bind(machine)`` is called when the sink is attached via
    :meth:`Machine.attach_tracer`, giving sinks that need machine state
    (invariant checker, heatmap label resolution) a reference; the default
    is a no-op so simple sinks ignore it.
    """

    def on_event(self, ev: TraceEvent) -> None:
        raise NotImplementedError

    def bind(self, machine: "Machine") -> None:
        pass


class NullTracer(Tracer):
    """A sink that drops everything (for machines that need no accounting
    at all, and as the do-nothing default for standalone components)."""

    def on_event(self, ev: TraceEvent) -> None:
        pass


class TraceBus:
    """Fan-out point between instrumented code and the attached sinks.

    The bus stamps each event with the current simulation cycle (via the
    ``clock`` callable) and forwards it to every sink in attachment order.
    With no sinks attached ``emit`` returns immediately.
    """

    __slots__ = ("clock", "_sinks")

    def __init__(self, clock: Callable[[], int] | None = None,
                 sinks: Iterable[Tracer] = ()) -> None:
        self.clock = clock or (lambda: 0)
        self._sinks: list[Tracer] = list(sinks)

    # -- sink management -----------------------------------------------------

    def attach(self, sink: Tracer) -> Tracer:
        """Add ``sink`` to the fan-out list; returns it for chaining."""
        self._sinks.append(sink)
        return sink

    def detach(self, sink: Tracer) -> None:
        """Remove ``sink``; detaching an unattached sink is a no-op."""
        if sink in self._sinks:
            self._sinks.remove(sink)

    @property
    def sinks(self) -> tuple[Tracer, ...]:
        return tuple(self._sinks)

    # -- the seam ------------------------------------------------------------

    def emit(self, ev: TraceEvent) -> None:
        """Stamp ``ev`` with the current cycle and deliver it to every
        attached sink."""
        sinks = self._sinks
        if not sinks:
            return
        ev.t = self.clock()
        for sink in sinks:
            sink.on_event(ev)
