"""Applications: lock-based Pagerank (Figure 5 right) and the Section 5
"cheap snapshots" construction."""

from .pagerank import PagerankApp, make_web_graph
from .snapshot import SnapshotRegion
from .barrier import SenseBarrier

__all__ = ["PagerankApp", "make_web_graph", "SnapshotRegion", "SenseBarrier"]
