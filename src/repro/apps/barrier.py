"""Sense-reversing centralized barrier over simulated memory.

Used by the Pagerank application to separate iterations, as CRONO's
pthread-barrier does.  The count word and the sense word live on separate
lines (arrivals hammer the count; waiters spin on the sense).
"""

from __future__ import annotations

from typing import Any, Generator

from ..core.isa import FetchAdd, Load, Store, Work
from ..core.machine import Machine
from ..core.thread import Ctx

_SPIN = 12


class SenseBarrier:
    """Classic sense-reversing barrier for a fixed thread count."""

    def __init__(self, machine: Machine, num_threads: int) -> None:
        self.num_threads = num_threads
        self.count_addr = machine.alloc_var(0)
        self.sense_addr = machine.alloc_var(0)

    def wait(self, ctx: Ctx, local_sense: int) -> Generator[Any, Any, int]:
        """Block until all threads arrive.  Callers thread their flipped
        ``local_sense`` through successive calls (start with 1)."""
        arrived = yield FetchAdd(self.count_addr, 1)
        if arrived + 1 == self.num_threads:
            yield Store(self.count_addr, 0)
            yield Store(self.sense_addr, local_sense)
        else:
            while True:
                s = yield Load(self.sense_addr)
                if s == local_sense:
                    break
                yield Work(_SPIN)
        return 1 - local_sense
