"""Cheap lock-free snapshots via the voluntary-release bit (Section 5).

"The snapshot operation first leases the lines corresponding to the
locations, reads them, and then releases them.  If all the releases are
voluntary, the values read form a correct snapshot.  Otherwise, the thread
should repeat the procedure."

Baseline: the classic double-collect snapshot -- read all locations twice
and retry until the two collects are identical (writers tag every write
with a monotonically increasing per-writer sequence number, so identical
collects imply an atomic snapshot).
"""

from __future__ import annotations

from typing import Any, Generator

from ..core.isa import Lease, Load, Release, Store, Work
from ..core.machine import Machine
from ..core.thread import Ctx


class SnapshotRegion:
    """``k`` shared words (one line each) supporting atomic snapshots."""

    def __init__(self, machine: Machine, num_words: int) -> None:
        if num_words > machine.config.lease.max_num_leases:
            raise ValueError(
                "lease-based snapshots need num_words <= MAX_NUM_LEASES")
        self.machine = machine
        self.num_words = num_words
        self.addrs = [machine.alloc_var((0, 0)) for _ in range(num_words)]
        #: Set by the snapshot worker when done; open-loop writers stop.
        self.stop_flag = False
        #: Total snapshot retries (interference detected), for reporting.
        self.retries = 0

    # -- writers -------------------------------------------------------------

    def write(self, ctx: Ctx, index: int, value) -> Generator:
        """Tagged write: stores ``(seq, value)`` with a fresh sequence
        number so double-collect can detect interference."""
        old = yield Load(self.addrs[index])
        yield Store(self.addrs[index], (old[0] + 1, value))

    # -- snapshot via leases ----------------------------------------------

    def snapshot_lease(self, ctx: Ctx) -> Generator[Any, Any, list]:
        """Lease all lines, read, release; retry unless every release was
        voluntary.  Requires leases enabled."""
        while True:
            for addr in self.addrs:
                yield Lease(addr)
            values = []
            for addr in self.addrs:
                v = yield Load(addr)
                values.append(v)
            all_voluntary = True
            for addr in self.addrs:
                vol = yield Release(addr)
                if not vol:
                    all_voluntary = False
            if all_voluntary:
                return [v[1] for v in values]
            self.retries += 1

    # -- snapshot via double-collect ------------------------------------------

    def snapshot_double_collect(self, ctx: Ctx) -> Generator[Any, Any, list]:
        collect = []
        for addr in self.addrs:
            v = yield Load(addr)
            collect.append(v)
        while True:
            again = []
            for addr in self.addrs:
                v = yield Load(addr)
                again.append(v)
            if again == collect:
                return [v[1] for v in again]
            self.retries += 1
            collect = again

    # -- benchmark workers -----------------------------------------------------

    def writer_worker(self, ctx: Ctx, ops: int | None = None,
                      local_work: int = 40) -> Generator:
        """Write random words; open-loop (runs until :attr:`stop_flag`)
        when ``ops`` is None."""
        i = 0
        while (ops is None and not self.stop_flag) or \
                (ops is not None and i < ops):
            idx = ctx.rng.randrange(self.num_words)
            yield from self.write(ctx, idx, (ctx.tid << 32) | i)
            if local_work:
                yield Work(local_work)
            i += 1

    def snapshot_worker(self, ctx: Ctx, ops: int, *, use_lease: bool,
                        local_work: int = 40,
                        stop_when_done: bool = False) -> Generator:
        for _ in range(ops):
            if use_lease:
                yield from self.snapshot_lease(ctx)
            else:
                yield from self.snapshot_double_collect(ctx)
            if local_work:
                yield Work(local_work)
            ctx.note_op()
        if stop_when_done:
            self.stop_flag = True
