"""Lock-based Pagerank (the CRONO [2] workload of Figure 5, right).

The paper: "the variable corresponding to inaccessible pages in the web
graph (around 25%) is protected by a contended lock. Protecting this
critical section by a lease improves throughput by 8x at 32 threads, and
allows the application to scale."

We substitute CRONO's input graphs with a synthetic power-law web graph
(preferential attachment via networkx when available, else an internal
generator) in which ~25% of pages are *dangling* (no out-links).  Each
Pagerank iteration, every thread accumulates the rank mass of the dangling
pages in its partition into one shared accumulator under a single global
lock -- the contended critical section the paper leases.  Rank vectors live
in simulated memory, so the computation itself generates realistic traffic;
iterations are separated by a sense-reversing barrier.
"""

from __future__ import annotations

from typing import Generator

from ..core.isa import Load, Store, Work
from ..core.machine import Machine
from ..core.thread import Ctx
from ..sync.locks import TTSLock, lease_lock_acquire, lease_lock_release
from .barrier import SenseBarrier


def make_web_graph(num_pages: int, *, dangling_fraction: float = 0.25,
                   attachment: int = 8,
                   seed: int = 3) -> tuple[list[list[int]], list[int], list[bool]]:
    """Build a synthetic web graph.

    Returns ``(in_neighbors, out_degree, dangling)``: for each page, the
    list of pages linking *to* it, its out-degree, and whether it is
    dangling (an "inaccessible page": it has no out-links; its rank mass is
    redistributed globally -- via the contended lock).
    """
    import random
    rng = random.Random(seed)
    try:
        import networkx as nx
        g = nx.barabasi_albert_graph(num_pages, attachment, seed=seed)
        edges = list(g.edges())
    except ImportError:  # pragma: no cover - networkx is a dependency
        edges = [(i, rng.randrange(max(1, i))) for i in range(1, num_pages)
                 for _ in range(attachment)]
    dangling = [False] * num_pages
    for p in rng.sample(range(num_pages),
                        int(num_pages * dangling_fraction)):
        dangling[p] = True
    in_neighbors: list[list[int]] = [[] for _ in range(num_pages)]
    out_degree = [0] * num_pages
    for u, v in edges:
        # Treat each undirected edge as two links; dangling pages' out-links
        # are removed (that is what makes them dangling).
        for src, dst in ((u, v), (v, u)):
            if not dangling[src]:
                in_neighbors[dst].append(src)
                out_degree[src] += 1
    return in_neighbors, out_degree, dangling


class PagerankApp:
    """Parallel Pagerank with a single contended lock on the dangling-mass
    accumulator."""

    def __init__(self, machine: Machine, num_pages: int, num_threads: int,
                 *, iterations: int = 3, damping: float = 0.85,
                 edge_work: int = 6, attachment: int = 8,
                 seed: int = 3) -> None:
        self.machine = machine
        self.num_pages = num_pages
        self.num_threads = num_threads
        self.iterations = iterations
        self.damping = damping
        #: Compute cycles per in-edge (models the per-edge processing that
        #: dominates CRONO's page loop on real web graphs).
        self.edge_work = edge_work
        self.in_neighbors, self.out_degree, self.dangling = \
            make_web_graph(num_pages, attachment=attachment, seed=seed)
        # Rank vectors (packed: 8 pages per line, as a real array would be).
        self.rank = machine.alloc.alloc_array(num_pages)
        self.next_rank = machine.alloc.alloc_array(num_pages)
        for addr in self.rank:
            machine.write_init(addr, 1.0 / num_pages)
        for addr in self.next_rank:
            machine.write_init(addr, 0.0)
        #: The contended shared state: dangling-mass accumulator + lock.
        self.dangling_lock = TTSLock(machine)
        self.dangling_sum = machine.alloc_var(0.0)
        self.prev_dangling_sum = machine.alloc_var(0.0)
        self.barrier = SenseBarrier(machine, num_threads)

    def _partition(self, tid: int) -> range:
        per = (self.num_pages + self.num_threads - 1) // self.num_threads
        return range(tid * per, min(self.num_pages, (tid + 1) * per))

    def worker(self, ctx: Ctx, tid: int) -> Generator:
        """One Pagerank thread: ``iterations`` sweeps over its partition."""
        pages = self._partition(tid)
        sense = 1
        d = self.damping
        n = self.num_pages
        for _ in range(self.iterations):
            dmass = yield Load(self.prev_dangling_sum)
            for p in pages:
                acc = 0.0
                for q in self.in_neighbors[p]:
                    rq = yield Load(self.rank[q])
                    acc += rq / self.out_degree[q]
                    yield Work(self.edge_work)
                new = (1.0 - d) / n + d * acc + d * dmass / n
                yield Store(self.next_rank[p], new)
                if self.dangling[p]:
                    # The contended critical section (leased per Section 6).
                    rp = yield Load(self.rank[p])
                    token = yield from lease_lock_acquire(
                        ctx, self.dangling_lock)
                    s = yield Load(self.dangling_sum)
                    yield Store(self.dangling_sum, s + rp)
                    yield from lease_lock_release(
                        ctx, self.dangling_lock, token)
                ctx.note_op()
            sense = yield from self.barrier.wait(ctx, sense)
            if tid == 0:
                # Single serial window between the two barriers: publish the
                # dangling mass and swap the rank vectors (the lists are
                # Python-level; all threads see the swap after barrier 2).
                s = yield Load(self.dangling_sum)
                yield Store(self.prev_dangling_sum, s)
                yield Store(self.dangling_sum, 0.0)
                self.rank, self.next_rank = self.next_rank, self.rank
            sense = yield from self.barrier.wait(ctx, sense)

    def ranks_direct(self) -> list[float]:
        return [self.machine.peek(a) for a in self.rank]
