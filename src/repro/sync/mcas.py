"""Software multi-word compare-and-swap with contention-aware helping.

A descriptor-based MCAS in the lineage of Harris-Fraser-Pratt, adapted to
the simulator's instruction set (single-word ``CAS`` resuming with a
success bool) and extended with the contention-aware helping policy of
Unno-Sugiura-Ishikawa: a thread that runs into a foreign in-flight
descriptor registers as a helper, waits in proportion to how many helpers
are already active, and only then helps if the descriptor is *still*
undecided -- so under contention most would-be helpers stand down instead
of piling redundant CASes onto the same lines.

Word convention
---------------
Every MCAS-*managed* word holds either

* a ``(value, version)`` tuple -- its logical value, or
* an ``int`` -- the base address of an in-flight descriptor.

Versions increase by one on every successful MCAS write of the word and
never decrease, which closes the classic late-helper install race without
needing the hardware CCAS of the original algorithm: a stalled helper's
install CAS expects ``(value, version)`` and can never succeed after a
later successful MCAS moved the version on.  A *failed* MCAS restores the
word bit-for-bit, so the only late installs possible are on FAIL-decided
descriptors, where the undo path (restore ``expected``) is exactly
correct.

Descriptor layout (simulated words): ``[status, n, helpers,
addr0, exp0, new0, addr1, exp1, new1, ...]`` where status is
0 = undecided, 1 = success, 2 = fail; ``helpers`` counts registered
helpers for the contention-aware policy.
"""

from __future__ import annotations

from typing import Any, Generator

from ..config import WORD_SIZE
from ..core.isa import CAS, FetchAdd, Load, Work
from ..core.machine import Machine
from ..core.thread import Ctx

UNDECIDED = 0
SUCCESS = 1
FAIL = 2

_STATUS_OFF = 0
_N_OFF = WORD_SIZE
_HELPERS_OFF = 2 * WORD_SIZE
_ENTRIES_OFF = 3 * WORD_SIZE

#: Between-help pause, mirroring the lock spin pause.
_HELP_PAUSE = 8


def managed_word(value: Any, version: int = 0) -> tuple:
    """The initial ``(value, version)`` cell for an MCAS-managed word."""
    return (value, version)


class Mcas:
    """MCAS executor bound to one machine.

    ``helping`` selects the policy applied when an operation encounters a
    *foreign* descriptor:

    * ``"eager"`` -- classic lock-free helping: drive the foreign MCAS to
      completion immediately (correct, but a helping storm under load);
    * ``"aware"`` -- contention-aware: register as a helper, back off
      ``helpers * help_slice`` cycles, and help only if the descriptor is
      still undecided afterwards.

    Counters (``helps``, ``deferred_helps``, ``ops``, ``failures``) are
    plain attributes reported through ``RunResult.extra`` by the drivers.
    """

    def __init__(self, machine: Machine, *, helping: str = "aware",
                 help_slice: int = 64, help_cap: int = 1024) -> None:
        if helping not in ("eager", "aware"):
            raise ValueError(f"unknown helping policy {helping!r}")
        self.machine = machine
        self.helping = helping
        self.help_slice = help_slice
        self.help_cap = help_cap
        self.ops = 0
        self.failures = 0
        self.helps = 0
        self.deferred_helps = 0

    # -- public API ---------------------------------------------------------

    def read(self, ctx: Ctx, addr: int) -> Generator[Any, Any, Any]:
        """The logical value of managed word ``addr`` (resolving any
        in-flight descriptor first)."""
        cell = yield from self.read_word(ctx, addr)
        return cell[0]

    def read_word(self, ctx: Ctx, addr: int) -> Generator[Any, Any, tuple]:
        """The full ``(value, version)`` cell of managed word ``addr``."""
        while True:
            v = yield Load(addr)
            if not isinstance(v, int):
                return v
            yield from self._encounter(ctx, v)

    def mcas(self, ctx: Ctx,
             entries: list[tuple[int, tuple, tuple]]
             ) -> Generator[Any, Any, bool]:
        """Atomically install ``new`` cells iff every word holds its
        ``expected`` cell.  ``entries`` is ``[(addr, expected, new), ...]``
        with ``(value, version)`` tuples; the caller bumps versions.
        Returns True on success."""
        entries = sorted(entries)            # canonical order: no deadlock
        self.ops += 1
        flat: list[Any] = []
        for addr, exp, new in entries:
            flat += [addr, exp, new]
        base = ctx.alloc_cached(3 + len(flat),
                                [UNDECIDED, len(entries), 0, *flat],
                                label="mcas.desc")
        ok = yield from self._run(ctx, base)
        if not ok:
            self.failures += 1
        return ok

    # -- the descriptor state machine ---------------------------------------

    def _entries(self, ctx: Ctx, base: int) -> Generator:
        n = yield Load(base + _N_OFF)
        out = []
        for i in range(n):
            e = base + _ENTRIES_OFF + 3 * i * WORD_SIZE
            addr = yield Load(e)
            exp = yield Load(e + WORD_SIZE)
            new = yield Load(e + 2 * WORD_SIZE)
            out.append((addr, exp, new))
        return out

    def _run(self, ctx: Ctx, base: int) -> Generator[Any, Any, bool]:
        """Drive descriptor ``base`` to completion (owner or helper)."""
        entries = yield from self._entries(ctx, base)
        st = yield Load(base + _STATUS_OFF)
        if st == UNDECIDED:
            decided = SUCCESS
            for addr, exp, new in entries:
                outcome = yield from self._install(ctx, base, addr, exp)
                if outcome is not None:
                    decided = outcome
                    break
            if decided is not None:
                yield CAS(base + _STATUS_OFF, UNDECIDED, decided)
        st = yield Load(base + _STATUS_OFF)
        for addr, exp, new in entries:
            yield CAS(addr, base, new if st == SUCCESS else exp)
        return st == SUCCESS

    def _install(self, ctx: Ctx, base: int, addr: int,
                 exp: tuple) -> Generator:
        """Install ``base`` into ``addr`` (expecting cell ``exp``).
        Returns None to proceed, FAIL on a value mismatch, or a decided
        status when another helper finished the descriptor meanwhile."""
        while True:
            st = yield Load(base + _STATUS_OFF)
            if st != UNDECIDED:
                return st
            ok = yield CAS(addr, exp, base)
            if ok:
                # Close the late-install window: if the descriptor got
                # decided while our CAS was in flight, undo and stand down
                # (only FAIL-decided descriptors can be re-installed -- see
                # the module docstring -- so restoring ``exp`` is exact).
                st = yield Load(base + _STATUS_OFF)
                if st != UNDECIDED:
                    yield CAS(addr, base, exp)
                    return st
                return None
            cur = yield Load(addr)
            if cur == base:
                return None                  # a helper installed it for us
            if isinstance(cur, int):
                yield from self._encounter(ctx, cur)
                continue
            if cur != exp:
                return FAIL
            # Transient mismatch (the word changed back between the CAS
            # and the re-read): retry.

    def _encounter(self, ctx: Ctx, base: int) -> Generator:
        """A foreign in-flight descriptor blocks us: apply the helping
        policy."""
        if self.helping == "eager":
            self.helps += 1
            yield from self._run(ctx, base)
            return
        # Contention-aware: queue up, back off behind the helpers already
        # registered, then help only if still needed.
        helpers = yield FetchAdd(base + _HELPERS_OFF, 1)
        delay = min(self.help_cap, helpers * self.help_slice)
        yield Work(max(_HELP_PAUSE, delay))
        st = yield Load(base + _STATUS_OFF)
        if st == UNDECIDED:
            self.helps += 1
            yield from self._run(ctx, base)
        else:
            self.deferred_helps += 1
        yield FetchAdd(base + _HELPERS_OFF, -1)

    # -- reporting ----------------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {"mcas_ops": self.ops, "mcas_failures": self.failures,
                "mcas_helps": self.helps,
                "mcas_deferred_helps": self.deferred_helps}
