"""Synchronization primitives: locks (with lease-aware usage), backoff
policies, software MCAS, and the adaptive-lease controller -- the
contention-management zoo the ablation harness sweeps."""

from .adaptive import AdaptiveLeaseController
from .backoff import DhmBackoff, ExponentialBackoff, LinearBackoff, NoBackoff
from .locks import (CLHLock, HTicketLock, ReciprocatingLock, TASLock,
                    TTSLock, TicketLock, lease_lock_acquire,
                    lease_lock_release)
from .mcas import Mcas, managed_word

__all__ = [
    "NoBackoff", "LinearBackoff", "ExponentialBackoff", "DhmBackoff",
    "TASLock", "TTSLock", "TicketLock", "CLHLock", "HTicketLock",
    "ReciprocatingLock", "lease_lock_acquire", "lease_lock_release",
    "Mcas", "managed_word", "AdaptiveLeaseController",
]
