"""Synchronization primitives: locks (with lease-aware usage) and backoff."""

from .backoff import ExponentialBackoff, LinearBackoff, NoBackoff
from .locks import (CLHLock, HTicketLock, TASLock, TTSLock, TicketLock,
                    lease_lock_acquire, lease_lock_release)

__all__ = [
    "NoBackoff", "LinearBackoff", "ExponentialBackoff",
    "TASLock", "TTSLock", "TicketLock", "CLHLock", "HTicketLock",
    "lease_lock_acquire", "lease_lock_release",
]
