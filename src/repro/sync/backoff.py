"""Backoff policies (the software contention-mitigation baseline).

Section 7 compares leases against backoff-based variants: backoff improves
the base implementations by up to ~3x but stays clearly below leases,
because backoff inserts "dead time" and does not remove coherence traffic.
"""

from __future__ import annotations

from typing import Generator

from ..core.isa import Work
from ..core.thread import Ctx


class NoBackoff:
    """Zero-delay policy (the base implementations)."""

    def wait(self, ctx: Ctx, attempt: int) -> Generator:
        return
        yield  # pragma: no cover - makes this a generator function

    def reset(self) -> None:
        pass


class LinearBackoff:
    """Wait ``attempt * step`` cycles (used by the ticket lock in Fig. 3:
    proportional backoff on the distance to one's ticket)."""

    def __init__(self, step: int = 64, cap: int = 4096) -> None:
        self.step = step
        self.cap = cap

    def wait(self, ctx: Ctx, attempt: int) -> Generator:
        delay = min(self.cap, attempt * self.step)
        if delay > 0:
            yield Work(delay)

    def reset(self) -> None:
        pass


class ExponentialBackoff:
    """Randomized exponential backoff, the classic CAS-retry mitigation."""

    def __init__(self, min_delay: int = 32, max_delay: int = 4096) -> None:
        self.min_delay = min_delay
        self.max_delay = max_delay

    def delay(self, rng, attempt: int) -> int:
        """One randomized delay draw for ``attempt`` (0-based doubling,
        capped).  Shared by :meth:`wait` and the directory NACK-retry path
        in :mod:`repro.faults`, which needs the draw without the
        thread-context ``yield`` protocol."""
        limit = min(self.max_delay, self.min_delay << min(attempt, 20))
        return rng.randint(self.min_delay, max(self.min_delay, limit))

    def wait(self, ctx: Ctx, attempt: int) -> Generator:
        yield Work(self.delay(ctx.rng, attempt))

    def reset(self) -> None:
        pass
