"""Backoff policies (the software contention-mitigation baseline).

Section 7 compares leases against backoff-based variants: backoff improves
the base implementations by up to ~3x but stays clearly below leases,
because backoff inserts "dead time" and does not remove coherence traffic.

Protocol
--------
A policy exposes two hooks, both optional for callers:

``wait(ctx, attempt, addr=None)``
    Generator subroutine invoked (``yield from``) after a failed attempt.
    ``attempt`` counts consecutive failures of the current operation
    (1-based); ``addr`` names the contended word so per-line policies
    (:class:`DhmBackoff`) can keep separate state per location.

``reset(ctx=None, addr=None)``
    Plain call (no simulated cycles) made when the operation finally
    succeeds.  Stateless policies ignore it; stateful ones decay the
    contention estimate for ``(ctx, addr)``.  With no arguments the whole
    policy state is cleared (test/bench hygiene between runs).

Retry loops in :mod:`repro.structures` call ``reset`` at every operation
success point, so a shared policy instance observes the true
failure/success history of each line.
"""

from __future__ import annotations

from typing import Generator

from ..core.isa import Work
from ..core.thread import Ctx


class NoBackoff:
    """Zero-delay policy (the base implementations)."""

    def wait(self, ctx: Ctx, attempt: int, addr: int | None = None
             ) -> Generator:
        return
        yield  # pragma: no cover - makes this a generator function

    def reset(self, ctx: Ctx | None = None, addr: int | None = None) -> None:
        pass


class LinearBackoff:
    """Wait ``attempt * step`` cycles (used by the ticket lock in Fig. 3:
    proportional backoff on the distance to one's ticket)."""

    def __init__(self, step: int = 64, cap: int = 4096) -> None:
        self.step = step
        self.cap = cap

    def wait(self, ctx: Ctx, attempt: int, addr: int | None = None
             ) -> Generator:
        delay = min(self.cap, attempt * self.step)
        if delay > 0:
            yield Work(delay)

    def reset(self, ctx: Ctx | None = None, addr: int | None = None) -> None:
        pass


class ExponentialBackoff:
    """Randomized exponential backoff, the classic CAS-retry mitigation."""

    def __init__(self, min_delay: int = 32, max_delay: int = 4096) -> None:
        self.min_delay = min_delay
        self.max_delay = max_delay

    def delay(self, rng, attempt: int) -> int:
        """One randomized delay draw for ``attempt`` (0-based doubling,
        capped).  Shared by :meth:`wait` and the directory NACK-retry path
        in :mod:`repro.faults`, which needs the draw without the
        thread-context ``yield`` protocol."""
        limit = min(self.max_delay, self.min_delay << min(attempt, 20))
        return rng.randint(self.min_delay, max(self.min_delay, limit))

    def wait(self, ctx: Ctx, attempt: int, addr: int | None = None
             ) -> Generator:
        yield Work(self.delay(ctx.rng, attempt))

    def reset(self, ctx: Ctx | None = None, addr: int | None = None) -> None:
        pass


class DhmBackoff:
    """Dice-Hendler-Mirsky lightweight CAS contention management.

    Unlike exponential backoff (which doubles on every failure and forgets
    everything on success), DHM keeps a slowly-adapting *contention level*
    per ``(thread, line)`` and waits a **constant** ``level * slice``
    cycles after each failure.  The level climbs by one per failed CAS
    (saturating at ``max_level``) and decays by ``decay`` per success, so
    the delay tracks the line's recent contention instead of the current
    retry burst -- the "lightweight" part: no randomness, no doubling, and
    a stable delay once the system reaches its contention equilibrium.

    The level table is plain Python state mutated from thread bodies, so
    checkpoint/restore reconstructs it for free via generator replay.
    """

    def __init__(self, slice_cycles: int = 96, max_level: int = 8,
                 decay: int = 1) -> None:
        self.slice = slice_cycles
        self.max_level = max_level
        self.decay = decay
        #: (tid, addr) -> current contention level (absent == 0).
        self._level: dict[tuple[int, int | None], int] = {}

    def level(self, ctx: Ctx, addr: int | None = None) -> int:
        """The current contention level for ``(ctx, addr)`` (introspection
        for tests and reports)."""
        return self._level.get((ctx.tid, addr), 0)

    def wait(self, ctx: Ctx, attempt: int, addr: int | None = None
             ) -> Generator:
        key = (ctx.tid, addr)
        lvl = min(self.max_level, self._level.get(key, 0) + 1)
        self._level[key] = lvl
        yield Work(lvl * self.slice)

    def reset(self, ctx: Ctx | None = None, addr: int | None = None) -> None:
        if ctx is None:
            self._level.clear()
            return
        key = (ctx.tid, addr)
        lvl = self._level.get(key, 0)
        if lvl > 0:
            self._level[key] = max(0, lvl - self.decay)
