"""Adaptive lease durations predicted from observed probe pressure.

Our own entry in the contention-management ablation: instead of the
fixed (effectively infinite, ``min``-clamped) durations the structures
request by default, an :class:`AdaptiveLeaseController` watches the same
trace signals the :class:`~repro.trace.sinks.ContentionHeatmap`
aggregates and maintains a per-line duration estimate that the
structures consult on every lease issue (their ``lease_policy`` hook):

* a lease that **expires** was too short to cover its read-CAS window --
  the estimate doubles (the retry burns the whole window again, so
  under-estimation is the expensive direction);
* a lease released **voluntarily** while many probes queued behind it
  was needlessly generous -- the estimate contracts by a quarter, which
  bounds how long waiters can be deferred behind a hot line;
* ``broken``/``fifo`` releases (prioritization override, table
  pressure) also contract: the machine itself judged the lease to be in
  the way.

The controller is a trace sink, attached with
``machine.attach_tracer(...)``.  It is *stream-ordered*
(``folds_unordered = False``), so attaching one transparently disables
core batch-advance on the fast engine -- adaptation depends on the
relative order of probe-queue and release events on a line, which
batch-advance may permute.  State is checkpointable
(``state_dict``/``load_state``), so shrink campaigns can prefix-restore
through it.
"""

from __future__ import annotations

from typing import Collection

from ..trace import events as ev
from ..trace.bus import Tracer


class AdaptiveLeaseController(Tracer):
    """Per-line lease-duration estimator (see module docstring).

    ``time_for(addr)`` is the structures' ``lease_policy`` hook: the
    current estimate for the line holding ``addr``.
    """

    def __init__(self, *, initial: int = 400, min_time: int = 100,
                 max_time: int = 6400, pressure_high: int = 4) -> None:
        self.initial = initial
        self.min_time = min_time
        self.max_time = max_time
        #: Queued probes behind one lease tenure above which a voluntary
        #: release still counts as over-holding.
        self.pressure_high = pressure_high
        self._est: dict[int, int] = {}       # line -> duration estimate
        self._pressure: dict[int, int] = {}  # line -> probes this tenure
        self.expirations = 0
        self.contractions = 0
        self.extensions = 0
        self._line_of = None

    # -- lease_policy hook ---------------------------------------------------

    def time_for(self, addr: int) -> int:
        if self._line_of is None:
            return self.initial
        return self._est.get(self._line_of(addr), self.initial)

    # -- Tracer interface ----------------------------------------------------

    def bind(self, machine) -> None:
        self._line_of = machine.amap.line_of

    def interests(self) -> Collection[type]:
        return frozenset((ev.LeaseStarted, ev.LeaseReleased,
                          ev.LeaseProbeQueued, ev.ProbeDeferred))

    def on_event(self, event: ev.TraceEvent) -> None:
        t = type(event)
        if t is ev.LeaseStarted:
            self._pressure[event.line] = 0
        elif t is ev.LeaseProbeQueued or t is ev.ProbeDeferred:
            line = event.line
            self._pressure[line] = self._pressure.get(line, 0) + 1
        elif t is ev.LeaseReleased:
            line = event.line
            est = self._est.get(line, self.initial)
            if event.mode == "expired":
                self.expirations += 1
                self.extensions += 1
                est = min(self.max_time, est * 2)
            elif (event.mode != "voluntary"
                  or self._pressure.get(line, 0) > self.pressure_high):
                self.contractions += 1
                est = max(self.min_time, est * 3 // 4)
            self._est[line] = est

    # -- checkpointing -------------------------------------------------------

    def state_dict(self, codec=None) -> dict:
        return {
            "est": [[line, est] for line, est in sorted(self._est.items())],
            "pressure": [[line, p] for line, p
                         in sorted(self._pressure.items())],
            "expirations": self.expirations,
            "contractions": self.contractions,
            "extensions": self.extensions,
        }

    def load_state(self, state: dict, codec=None) -> None:
        self._est = {line: est for line, est in state["est"]}
        self._pressure = {line: p for line, p in state["pressure"]}
        self.expirations = state["expirations"]
        self.contractions = state["contractions"]
        self.extensions = state["extensions"]

    # -- reporting -----------------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {"adaptive_expirations": self.expirations,
                "adaptive_extensions": self.extensions,
                "adaptive_contractions": self.contractions,
                "adaptive_lines": len(self._est)}
