"""Lock implementations on the simulated machine.

All lock methods are generator subroutines invoked with ``yield from``
inside thread bodies.  ``acquire`` returns an opaque token that must be
passed back to ``release`` (the ticket and CLH locks need it; TAS/TTS
ignore it).

Lease usage for locks follows Section 6 ("Leases for TryLocks"): lease the
lock's line *before* attempting acquisition, hold the lease for the whole
critical section, and release the lease right after the unlock.  If the
acquisition attempt fails, drop the lease immediately -- holding it would
delay the lock owner (the Section 7 "improper use" pitfall).
``lease_lock_acquire``/``lease_lock_release`` encode that pattern; with
leases disabled in the machine config they degenerate to the plain
spin-on-try-lock loop, which is exactly the baseline.
"""

from __future__ import annotations

from typing import Any, Generator

from ..core.isa import (FetchAdd, Lease, Load, Release, Store, TestAndSet,
                        Work, Swap)
from ..core.thread import Ctx
from ..core.machine import Machine

#: Compute cycles modeling one spin-loop iteration's instruction overhead
#: (keeps simulated spin loops from degenerating into per-cycle polling).
SPIN_PAUSE = 8


class TASLock:
    """Test-and-set spin lock: one word, 0 = free, 1 = held."""

    def __init__(self, machine: Machine) -> None:
        self.addr = machine.alloc_var(0, label="lock.tas")

    def try_acquire(self, ctx: Ctx) -> Generator[Any, Any, bool]:
        ctx.trace.lock_attempt(ctx.core_id)
        old = yield TestAndSet(self.addr)
        if old == 0:
            return True
        ctx.trace.lock_failed(ctx.core_id)
        return False

    def acquire(self, ctx: Ctx) -> Generator[Any, Any, Any]:
        while True:
            ok = yield from self.try_acquire(ctx)
            if ok:
                return None
            yield Work(SPIN_PAUSE)

    def release(self, ctx: Ctx, token: Any = None) -> Generator:
        yield Store(self.addr, 0)


class TTSLock:
    """Test-and-test-and-set lock: spin reading, TAS only when free."""

    def __init__(self, machine: Machine) -> None:
        self.addr = machine.alloc_var(0, label="lock.tts")

    def try_acquire(self, ctx: Ctx) -> Generator[Any, Any, bool]:
        ctx.trace.lock_attempt(ctx.core_id)
        v = yield Load(self.addr)
        if v == 0:
            old = yield TestAndSet(self.addr)
            if old == 0:
                return True
        ctx.trace.lock_failed(ctx.core_id)
        return False

    def acquire(self, ctx: Ctx) -> Generator[Any, Any, Any]:
        while True:
            v = yield Load(self.addr)
            if v == 0:
                ctx.trace.lock_attempt(ctx.core_id)
                old = yield TestAndSet(self.addr)
                if old == 0:
                    return None
                ctx.trace.lock_failed(ctx.core_id)
            yield Work(SPIN_PAUSE)

    def release(self, ctx: Ctx, token: Any = None) -> Generator:
        yield Store(self.addr, 0)


class TicketLock:
    """Ticket lock with proportional (linear) backoff, the optimized
    software lock baseline in Figure 3.

    The ticket counter and the now-serving word live on distinct lines.
    """

    def __init__(self, machine: Machine, *, backoff_step: int = 48) -> None:
        self.next_ticket = machine.alloc_var(0, label="lock.ticket.next")
        self.now_serving = machine.alloc_var(0, label="lock.ticket.serving")
        self.backoff_step = backoff_step

    def acquire(self, ctx: Ctx) -> Generator[Any, Any, int]:
        ctx.trace.lock_attempt(ctx.core_id)
        my = yield FetchAdd(self.next_ticket, 1)
        while True:
            s = yield Load(self.now_serving)
            if s == my:
                return my
            # Proportional backoff: wait longer the farther our turn is.
            yield Work(max(SPIN_PAUSE, (my - s) * self.backoff_step))

    def release(self, ctx: Ctx, token: int) -> Generator:
        yield Store(self.now_serving, token + 1)


class CLHLock:
    """CLH queue lock [Craig; Magnusson-Landin-Hagersten]: spin on the
    predecessor's queue node, O(1) coherence traffic per handoff.

    Each acquisition swaps a fresh queue node into the tail and spins
    locally on the predecessor's node (which migrates into the spinner's
    cache once, then is invalidated exactly once on release).
    """

    def __init__(self, machine: Machine) -> None:
        # Tail points at the most recent waiter's node; seed with a
        # released ("unlocked") dummy node.
        dummy = machine.alloc_var(0)      # node word: 1 = held, 0 = released
        self.tail = machine.alloc_var(dummy)

    def acquire(self, ctx: Ctx) -> Generator[Any, Any, int]:
        ctx.trace.lock_attempt(ctx.core_id)
        my_node = ctx.alloc_cached(1, [1])
        pred = yield Swap(self.tail, my_node)
        while True:
            v = yield Load(pred)
            if v == 0:
                return my_node
            yield Work(SPIN_PAUSE)

    def release(self, ctx: Ctx, token: int) -> Generator:
        yield Store(token, 0)


class HTicketLock:
    """Hierarchical (cohort) ticket lock, after the hierarchical ticket
    locks of ASCYLIB [8] / lock cohorting [10]: a per-cluster ticket lock
    plus one global ticket lock.  The holder hands the global lock to a
    same-cluster waiter when one exists (bounded by ``max_handoffs`` to
    preserve long-term fairness), keeping the lock's cache lines within a
    cluster and cutting cross-cluster transfers.

    Clusters default to mesh rows (``cluster_size = mesh dimension``).
    """

    def __init__(self, machine: Machine, *, cluster_size: int | None = None,
                 max_handoffs: int = 16, backoff_step: int = 48) -> None:
        self.machine = machine
        self.cluster_size = cluster_size or max(1, machine.config.mesh_dim)
        n_clusters = (machine.config.num_cores + self.cluster_size - 1) \
            // self.cluster_size
        self.n_clusters = n_clusters
        self.backoff_step = backoff_step
        self.max_handoffs = max_handoffs
        # Global ticket lock.
        self.g_ticket = machine.alloc_var(0)
        self.g_serving = machine.alloc_var(0)
        # Per-cluster ticket locks + handoff state (padded arrays).
        self.l_ticket = machine.alloc.alloc_array(n_clusters,
                                                  one_per_line=True)
        self.l_serving = machine.alloc.alloc_array(n_clusters,
                                                   one_per_line=True)
        #: handoff[c] = (passes_so_far + 1) while the global lock is being
        #: handed within cluster c, else 0.
        self.handoff = machine.alloc.alloc_array(n_clusters,
                                                 one_per_line=True)
        for addr in (*self.l_ticket, *self.l_serving, *self.handoff):
            machine.write_init(addr, 0)

    def _cluster(self, ctx: Ctx) -> int:
        return ctx.core_id // self.cluster_size

    def acquire(self, ctx: Ctx) -> Generator[Any, Any, tuple[int, int]]:
        ctx.trace.lock_attempt(ctx.core_id)
        c = self._cluster(ctx)
        my = yield FetchAdd(self.l_ticket[c], 1)
        while True:                          # local ticket queue
            s = yield Load(self.l_serving[c])
            if s == my:
                break
            yield Work(max(SPIN_PAUSE, (my - s) * self.backoff_step))
        passes = yield Load(self.handoff[c])
        if passes > 0:
            # The global lock was handed to us by a cluster predecessor.
            return (c, my)
        g = yield FetchAdd(self.g_ticket, 1)
        while True:                          # global ticket queue
            s = yield Load(self.g_serving)
            if s == g:
                return (c, my)
            yield Work(max(SPIN_PAUSE, (g - s) * self.backoff_step))

    def release(self, ctx: Ctx, token: tuple[int, int]) -> Generator:
        c, my = token
        waiters = yield Load(self.l_ticket[c])
        passes = yield Load(self.handoff[c])
        if waiters > my + 1 and passes < self.max_handoffs:
            # Hand both locks to the next same-cluster waiter.
            yield Store(self.handoff[c], passes + 1)
            yield Store(self.l_serving[c], my + 1)
            return
        # Release globally, then locally.
        yield Store(self.handoff[c], 0)
        g = yield Load(self.g_serving)
        yield Store(self.g_serving, g + 1)
        yield Store(self.l_serving[c], my + 1)


def lease_lock_acquire(ctx: Ctx, lock, *,
                       lease_time: int = 1 << 62) -> Generator[Any, Any, Any]:
    """Acquire ``lock`` (which must expose try_acquire) while leasing its
    line; the lease is left held for the critical section.  With leases
    disabled this is the plain try-lock spin loop (the baseline)."""
    attempt = 0
    while True:
        yield Lease(lock.addr, lease_time)
        ok = yield from lock.try_acquire(ctx)
        if ok:
            return None
        # Drop the lease at once: holding it would delay the owner's unlock.
        yield Release(lock.addr)
        attempt += 1
        yield Work(SPIN_PAUSE)


def lease_lock_release(ctx: Ctx, lock, token: Any = None) -> Generator:
    """Unlock and then release the lease taken by lease_lock_acquire."""
    yield from lock.release(ctx, token)
    yield Release(lock.addr)
