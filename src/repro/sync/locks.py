"""Lock implementations on the simulated machine.

All lock methods are generator subroutines invoked with ``yield from``
inside thread bodies.  ``acquire`` returns an opaque token that must be
passed back to ``release`` (the ticket and CLH locks need it; TAS/TTS
ignore it).

Lease usage for locks follows Section 6 ("Leases for TryLocks"): lease the
lock's line *before* attempting acquisition, hold the lease for the whole
critical section, and release the lease right after the unlock.  If the
acquisition attempt fails, drop the lease immediately -- holding it would
delay the lock owner (the Section 7 "improper use" pitfall).
``lease_lock_acquire``/``lease_lock_release`` encode that pattern; with
leases disabled in the machine config they degenerate to the plain
spin-on-try-lock loop, which is exactly the baseline.
"""

from __future__ import annotations

from typing import Any, Generator

from ..config import WORD_SIZE
from ..core.isa import (CAS, FetchAdd, Lease, Load, Release, Store,
                        TestAndSet, Work, Swap)
from ..core.thread import Ctx
from ..core.machine import Machine

#: Compute cycles modeling one spin-loop iteration's instruction overhead
#: (keeps simulated spin loops from degenerating into per-cycle polling).
SPIN_PAUSE = 8


class TASLock:
    """Test-and-set spin lock: one word, 0 = free, 1 = held."""

    def __init__(self, machine: Machine) -> None:
        self.addr = machine.alloc_var(0, label="lock.tas")

    def try_acquire(self, ctx: Ctx) -> Generator[Any, Any, bool]:
        ctx.trace.lock_attempt(ctx.core_id)
        old = yield TestAndSet(self.addr)
        if old == 0:
            return True
        ctx.trace.lock_failed(ctx.core_id)
        return False

    def acquire(self, ctx: Ctx) -> Generator[Any, Any, Any]:
        while True:
            ok = yield from self.try_acquire(ctx)
            if ok:
                return None
            yield Work(SPIN_PAUSE)

    def release(self, ctx: Ctx, token: Any = None) -> Generator:
        yield Store(self.addr, 0)


class TTSLock:
    """Test-and-test-and-set lock: spin reading, TAS only when free."""

    def __init__(self, machine: Machine) -> None:
        self.addr = machine.alloc_var(0, label="lock.tts")

    def try_acquire(self, ctx: Ctx) -> Generator[Any, Any, bool]:
        ctx.trace.lock_attempt(ctx.core_id)
        v = yield Load(self.addr)
        if v == 0:
            old = yield TestAndSet(self.addr)
            if old == 0:
                return True
        ctx.trace.lock_failed(ctx.core_id)
        return False

    def acquire(self, ctx: Ctx) -> Generator[Any, Any, Any]:
        while True:
            v = yield Load(self.addr)
            if v == 0:
                ctx.trace.lock_attempt(ctx.core_id)
                old = yield TestAndSet(self.addr)
                if old == 0:
                    return None
                ctx.trace.lock_failed(ctx.core_id)
            yield Work(SPIN_PAUSE)

    def release(self, ctx: Ctx, token: Any = None) -> Generator:
        yield Store(self.addr, 0)


class TicketLock:
    """Ticket lock with proportional (linear) backoff, the optimized
    software lock baseline in Figure 3.

    The ticket counter and the now-serving word live on distinct lines.
    """

    def __init__(self, machine: Machine, *, backoff_step: int = 48) -> None:
        self.next_ticket = machine.alloc_var(0, label="lock.ticket.next")
        self.now_serving = machine.alloc_var(0, label="lock.ticket.serving")
        self.backoff_step = backoff_step

    def acquire(self, ctx: Ctx) -> Generator[Any, Any, int]:
        ctx.trace.lock_attempt(ctx.core_id)
        my = yield FetchAdd(self.next_ticket, 1)
        while True:
            s = yield Load(self.now_serving)
            if s == my:
                return my
            # Proportional backoff: wait longer the farther our turn is.
            yield Work(max(SPIN_PAUSE, (my - s) * self.backoff_step))

    def release(self, ctx: Ctx, token: int) -> Generator:
        yield Store(self.now_serving, token + 1)


class CLHLock:
    """CLH queue lock [Craig; Magnusson-Landin-Hagersten]: spin on the
    predecessor's queue node, O(1) coherence traffic per handoff.

    Each acquisition swaps a fresh queue node into the tail and spins
    locally on the predecessor's node (which migrates into the spinner's
    cache once, then is invalidated exactly once on release).
    """

    def __init__(self, machine: Machine) -> None:
        # Tail points at the most recent waiter's node; seed with a
        # released ("unlocked") dummy node.
        dummy = machine.alloc_var(0)      # node word: 1 = held, 0 = released
        self.tail = machine.alloc_var(dummy)

    def acquire(self, ctx: Ctx) -> Generator[Any, Any, int]:
        ctx.trace.lock_attempt(ctx.core_id)
        my_node = ctx.alloc_cached(1, [1])
        pred = yield Swap(self.tail, my_node)
        while True:
            v = yield Load(pred)
            if v == 0:
                return my_node
            yield Work(SPIN_PAUSE)

    def release(self, ctx: Ctx, token: int) -> Generator:
        yield Store(token, 0)


class HTicketLock:
    """Hierarchical (cohort) ticket lock, after the hierarchical ticket
    locks of ASCYLIB [8] / lock cohorting [10]: a per-cluster ticket lock
    plus one global ticket lock.  The holder hands the global lock to a
    same-cluster waiter when one exists (bounded by ``max_handoffs`` to
    preserve long-term fairness), keeping the lock's cache lines within a
    cluster and cutting cross-cluster transfers.

    Clusters default to mesh rows (``cluster_size = mesh dimension``).
    """

    def __init__(self, machine: Machine, *, cluster_size: int | None = None,
                 max_handoffs: int = 16, backoff_step: int = 48) -> None:
        self.machine = machine
        self.cluster_size = cluster_size or max(1, machine.config.mesh_dim)
        n_clusters = (machine.config.num_cores + self.cluster_size - 1) \
            // self.cluster_size
        self.n_clusters = n_clusters
        self.backoff_step = backoff_step
        self.max_handoffs = max_handoffs
        # Global ticket lock.
        self.g_ticket = machine.alloc_var(0)
        self.g_serving = machine.alloc_var(0)
        # Per-cluster ticket locks + handoff state (padded arrays).
        self.l_ticket = machine.alloc.alloc_array(n_clusters,
                                                  one_per_line=True)
        self.l_serving = machine.alloc.alloc_array(n_clusters,
                                                   one_per_line=True)
        #: handoff[c] = (passes_so_far + 1) while the global lock is being
        #: handed within cluster c, else 0.
        self.handoff = machine.alloc.alloc_array(n_clusters,
                                                 one_per_line=True)
        for addr in (*self.l_ticket, *self.l_serving, *self.handoff):
            machine.write_init(addr, 0)

    def _cluster(self, ctx: Ctx) -> int:
        return ctx.core_id // self.cluster_size

    def acquire(self, ctx: Ctx) -> Generator[Any, Any, tuple[int, int]]:
        ctx.trace.lock_attempt(ctx.core_id)
        c = self._cluster(ctx)
        my = yield FetchAdd(self.l_ticket[c], 1)
        while True:                          # local ticket queue
            s = yield Load(self.l_serving[c])
            if s == my:
                break
            yield Work(max(SPIN_PAUSE, (my - s) * self.backoff_step))
        passes = yield Load(self.handoff[c])
        if passes > 0:
            # The global lock was handed to us by a cluster predecessor.
            return (c, my)
        g = yield FetchAdd(self.g_ticket, 1)
        while True:                          # global ticket queue
            s = yield Load(self.g_serving)
            if s == g:
                return (c, my)
            yield Work(max(SPIN_PAUSE, (g - s) * self.backoff_step))

    def release(self, ctx: Ctx, token: tuple[int, int]) -> Generator:
        c, my = token
        waiters = yield Load(self.l_ticket[c])
        passes = yield Load(self.handoff[c])
        if waiters > my + 1 and passes < self.max_handoffs:
            # Hand both locks to the next same-cluster waiter.
            yield Store(self.handoff[c], passes + 1)
            yield Store(self.l_serving[c], my + 1)
            return
        # Release globally, then locally.
        yield Store(self.handoff[c], 0)
        g = yield Load(self.g_serving)
        yield Store(self.g_serving, g + 1)
        yield Store(self.l_serving[c], my + 1)


class ReciprocatingLock:
    """Reciprocating lock [Dice-Kogan]: an admission-segregated handoff
    lock with local spinning and O(1) coherence traffic per handoff.

    One word (``arrivals``) is the only globally contended location:
    0 = unlocked, ``TERM`` (1) = locked with an empty arrival segment,
    anything else = the top of a Treiber-style *arrival stack* of waiter
    nodes.  Arriving threads push a 2-word node ``[gate, prev]`` and spin
    locally on their own ``gate``.  When the holder's current admission
    segment runs dry, its release detaches the whole arrival stack with
    one CAS and admits it in reverse-arrival order; threads arriving
    *during* that segment's draining accumulate into the next segment and
    cannot barge in ("admission segregation", which bounds bypass: no
    thread waits through more than two segments).

    A waiter's gate receives the *succession continuation* -- the pointer
    to the next node of its segment, or ``TERM`` when it is the last --
    which is exactly the token it must pass back to :meth:`release`.
    """

    #: Sentinel marking "locked, no detached successor" -- doubles as the
    #: gate value meaning "you are the last of your segment".
    TERM = 1

    def __init__(self, machine: Machine) -> None:
        self.addr = machine.alloc_var(0, label="lock.reciprocating")

    def acquire(self, ctx: Ctx) -> Generator[Any, Any, int]:
        ctx.trace.lock_attempt(ctx.core_id)
        node = None
        while True:
            cur = yield Load(self.addr)
            if cur == 0:
                ok = yield CAS(self.addr, 0, self.TERM)
                if ok:
                    return self.TERM        # uncontended fast path
            else:
                if node is None:
                    node = ctx.alloc_cached(2, [0, 0])
                # Push onto the arrival stack: prev links to the waiter
                # below us (0 when we start a fresh segment).
                yield Store(node + WORD_SIZE,
                            0 if cur == self.TERM else cur)
                ok = yield CAS(self.addr, cur, node)
                if ok:
                    while True:             # local spin on our own gate
                        g = yield Load(node)
                        if g != 0:
                            return g        # succession continuation
                        yield Work(SPIN_PAUSE)
            ctx.trace.lock_failed(ctx.core_id)
            yield Work(SPIN_PAUSE)

    def release(self, ctx: Ctx, token: int) -> Generator:
        if token != self.TERM:
            # Our segment continues: admit the next node, handing it the
            # rest of the segment through its gate.
            nxt = yield Load(token + WORD_SIZE)
            yield Store(token, nxt if nxt != 0 else self.TERM)
            return
        # Segment exhausted: detach the arrival stack (the next segment)
        # or unlock if nobody arrived.
        while True:
            cur = yield Load(self.addr)
            if cur == self.TERM:
                ok = yield CAS(self.addr, self.TERM, 0)
                if ok:
                    return
            else:
                ok = yield CAS(self.addr, cur, self.TERM)
                if ok:
                    nxt = yield Load(cur + WORD_SIZE)
                    yield Store(cur, nxt if nxt != 0 else self.TERM)
                    return
            yield Work(SPIN_PAUSE)


def lease_lock_acquire(ctx: Ctx, lock, *, lease_time: int = 1 << 62,
                       backoff=None) -> Generator[Any, Any, Any]:
    """Acquire ``lock`` (which must expose try_acquire) while leasing its
    line; the lease is left held for the critical section.  With leases
    disabled this is the plain try-lock spin loop (the baseline).

    ``backoff`` (a :mod:`repro.sync.backoff` policy) shapes the inter-try
    delay from the failed-attempt count; the default ``None`` keeps the
    historical fixed ``SPIN_PAUSE`` spin, bit-identical to older builds.
    """
    attempt = 0
    while True:
        yield Lease(lock.addr, lease_time)
        ok = yield from lock.try_acquire(ctx)
        if ok:
            if backoff is not None:
                backoff.reset(ctx, lock.addr)
            return None
        # Drop the lease at once: holding it would delay the owner's unlock.
        yield Release(lock.addr)
        attempt += 1
        if backoff is not None:
            yield from backoff.wait(ctx, attempt, lock.addr)
        else:
            yield Work(SPIN_PAUSE)


def lease_lock_release(ctx: Ctx, lock, token: Any = None) -> Generator:
    """Unlock and then release the lease taken by lease_lock_acquire."""
    yield from lock.release(ctx, token)
    yield Release(lock.addr)
