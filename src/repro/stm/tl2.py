"""TL2-style transactional benchmark (Figure 4 right / Figure 5 left).

Following Section 7: "transactions attempt to modify the values of two
randomly chosen transactional objects out of a fixed set of ten, by
acquiring locks on both.  If an acquisition fails, the transaction aborts
and is retried."

Each transactional object is one cache line holding ``[lock, version,
value]`` -- the TL2 versioned-lock layout [11].  Lease variants:

* ``lease='none'``   -- the base algorithm;
* ``lease='single'`` -- lease only the first object's line (the paper's
  "leasing just the lock associated to the first object" data point);
* ``lease='multi'``  -- ``MultiLease`` both objects' lines before acquiring
  (Algorithm 2 usage; hardware vs software emulation is selected by the
  machine's ``lease.multilease_mode``).

Lock acquisition is in draw order (not sorted), as in TL2 -- which is
exactly why concurrent transactions abort; the MultiLease's own sorted
acquisition is what removes the collisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from ..config import WORD_SIZE
from ..core.isa import (Lease, Load, MultiLease, Release, ReleaseAll, Store,
                        TestAndSet, Work)
from ..core.machine import Machine
from ..core.thread import Ctx
from ..sync.locks import SPIN_PAUSE

LOCK_OFF = 0
VERSION_OFF = WORD_SIZE
VALUE_OFF = 2 * WORD_SIZE


@dataclass
class TransactionStats:
    commits: int = 0
    aborts: int = 0

    @property
    def abort_rate(self) -> float:
        total = self.commits + self.aborts
        return self.aborts / total if total else 0.0


class TL2Objects:
    """A fixed set of versioned-lock transactional objects."""

    def __init__(self, machine: Machine, *, num_objects: int = 10,
                 lease: str = "multi", txn_work: int = 60,
                 single_lease_time: int = 400,
                 multilease_time: int = 1 << 62) -> None:
        if lease not in ("none", "single", "multi"):
            raise ValueError(f"unknown lease variant {lease!r}")
        self.machine = machine
        self.lease = lease
        self.txn_work = txn_work
        #: The *single* lease is sized to the transaction length rather
        #: than MAX_LEASE_TIME: the second object's lock acquisition is a
        #: non-leasing access, so two transactions can transiently wait on
        #: each other's leased first object; a short lease bounds that
        #: stall.  (This is exactly why Lease takes a ``time`` argument.)
        self.single_lease_time = single_lease_time
        #: The MultiLease covers every line the transaction touches, so no
        #: cross-waiting is possible (sorted acquisition) and the full
        #: MAX_LEASE_TIME cap is the right choice.
        self.multilease_time = multilease_time
        self.num_objects = num_objects
        self.objects = [machine.alloc.alloc_line()
                        for _ in range(num_objects)]
        for obj in self.objects:
            machine.write_init(obj + LOCK_OFF, 0)
            machine.write_init(obj + VERSION_OFF, 0)
            machine.write_init(obj + VALUE_OFF, 0)

    # -- one update transaction over two random objects --------------------

    def _try_lock(self, ctx: Ctx, obj: int) -> Generator[Any, Any, bool]:
        old = yield TestAndSet(obj + LOCK_OFF)
        return old == 0

    def _unlock(self, ctx: Ctx, obj: int) -> Generator:
        yield Store(obj + LOCK_OFF, 0)

    def run_transaction(self, ctx: Ctx) -> Generator[Any, Any, bool]:
        """One attempt: returns True on commit, False on abort."""
        a, b = ctx.rng.sample(range(self.num_objects), 2)
        obj_a, obj_b = self.objects[a], self.objects[b]
        if self.lease == "multi":
            yield MultiLease((obj_a, obj_b), self.multilease_time)
        elif self.lease == "single":
            yield Lease(obj_a, self.single_lease_time)
        ok_a = yield from self._try_lock(ctx, obj_a)
        if not ok_a:
            ctx.trace.stm(ctx.core_id, committed=False)
            yield from self._drop_leases(obj_a, obj_b)
            return False
        ok_b = yield from self._try_lock(ctx, obj_b)
        if not ok_b:
            yield from self._unlock(ctx, obj_a)
            ctx.trace.stm(ctx.core_id, committed=False)
            yield from self._drop_leases(obj_a, obj_b)
            return False
        # Both locks held: read, compute, write, bump versions (TL2 commit).
        va = yield Load(obj_a + VALUE_OFF)
        vb = yield Load(obj_b + VALUE_OFF)
        if self.txn_work:
            yield Work(self.txn_work)
        yield Store(obj_a + VALUE_OFF, va + 1)
        yield Store(obj_b + VALUE_OFF, vb + 1)
        ver_a = yield Load(obj_a + VERSION_OFF)
        ver_b = yield Load(obj_b + VERSION_OFF)
        yield Store(obj_a + VERSION_OFF, ver_a + 1)
        yield Store(obj_b + VERSION_OFF, ver_b + 1)
        yield from self._unlock(ctx, obj_b)
        yield from self._unlock(ctx, obj_a)
        yield from self._drop_leases(obj_a, obj_b)
        ctx.trace.stm(ctx.core_id, committed=True)
        return True

    def _drop_leases(self, obj_a: int, obj_b: int) -> Generator:
        if self.lease == "multi":
            yield ReleaseAll()
        elif self.lease == "single":
            yield Release(obj_a)

    # -- invariants (tests) --------------------------------------------------

    def total_value_direct(self) -> int:
        """Sum of object values (== 2 * committed transactions)."""
        return sum(self.machine.peek(obj + VALUE_OFF)
                   for obj in self.objects)

    def versions_direct(self) -> list[int]:
        return [self.machine.peek(obj + VERSION_OFF)
                for obj in self.objects]

    # -- benchmark worker -------------------------------------------------

    def txn_worker(self, ctx: Ctx, transactions: int,
                   local_work: int = 20) -> Generator:
        """Commit ``transactions`` transactions (retrying on abort)."""
        for _ in range(transactions):
            attempt = 0
            while True:
                ok = yield from self.run_transaction(ctx)
                if ok:
                    break
                attempt += 1
                yield Work(SPIN_PAUSE * min(attempt, 8))
            if local_work:
                yield Work(local_work)
            ctx.note_op()
