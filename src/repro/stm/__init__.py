"""Transactional workloads: a TL2-style two-object STM benchmark."""

from .tl2 import TL2Objects, TransactionStats

__all__ = ["TL2Objects", "TransactionStats"]
