"""The per-core lease table (Section 3 / Section 5 "Core Modifications").

The hardware proposal mirrors the load buffer with a small table of
countdown timers.  In the event-driven model each entry instead stores a
scheduled expiry event; FIFO order (for replacement) is the insertion order
of the underlying ordered dict.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..coherence.memunit import Probe
    from ..engine.event_queue import Event


class LeaseGroup:
    """A MultiLease group: a set of lines leased (and released) jointly."""

    __slots__ = ("lines", "dead")

    def __init__(self, lines: tuple[int, ...]) -> None:
        self.lines = lines
        self.dead = False


class LeaseEntry:
    """One leased (or being-leased) cache line."""

    __slots__ = ("line", "duration", "granted", "started", "dead",
                 "expiry_event", "queued_probe", "group", "site")

    def __init__(self, line: int, duration: int,
                 group: LeaseGroup | None = None,
                 site: str | None = None) -> None:
        self.line = line
        self.duration = duration
        #: Static program location of the lease (predictor key).
        self.site = site
        #: Exclusive ownership has been granted (the "lease"/"transition to
        #: lease" load-buffer states of Section 5).
        self.granted = False
        #: The countdown has begun (its expiry event is scheduled).
        self.started = False
        #: Released while the ownership request was still in flight.
        self.dead = False
        self.expiry_event: Optional["Event"] = None
        self.queued_probe: Optional["Probe"] = None
        self.group = group

    @property
    def holds_line(self) -> bool:
        """True while the core owns the line under this lease (probes on the
        line must be queued)."""
        return self.granted and not self.dead


class LeaseTable:
    """Bounded FIFO key-value table of :class:`LeaseEntry` by line."""

    __slots__ = ("max_entries", "_entries")

    def __init__(self, max_entries: int) -> None:
        self.max_entries = max_entries
        self._entries: "OrderedDict[int, LeaseEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, line: int) -> bool:
        return line in self._entries

    def get(self, line: int) -> LeaseEntry | None:
        return self._entries.get(line)

    def add(self, entry: LeaseEntry) -> None:
        assert entry.line not in self._entries
        self._entries[entry.line] = entry

    def remove(self, line: int) -> LeaseEntry | None:
        return self._entries.pop(line, None)

    def remove_entry(self, entry: LeaseEntry) -> bool:
        """Remove ``entry`` by identity: a no-op (returns False) when the
        slot for its line is empty or occupied by a *different* entry.
        Release paths racing with in-flight grants must use this -- after
        release + re-lease of the same line, removing by line number
        would delete the new tenant."""
        if self._entries.get(entry.line) is entry:
            del self._entries[entry.line]
            return True
        return False

    def oldest(self) -> LeaseEntry | None:
        """Oldest entry in FIFO (insertion) order."""
        if not self._entries:
            return None
        return next(iter(self._entries.values()))

    def entries(self) -> list[LeaseEntry]:
        """Snapshot of entries in FIFO order."""
        return list(self._entries.values())

    def load_entries(self, entries) -> None:
        """Replace the table contents with ``entries`` (checkpoint
        restore; iteration order becomes the FIFO order)."""
        self._entries = OrderedDict((e.line, e) for e in entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.max_entries
