"""The Lease/Release mechanism (Sections 3-5 of the paper).

A per-core :class:`LeaseManager` implements Algorithm 1 (single-location
Lease/Release) and Algorithm 2 (MultiLease/ReleaseAll), including:

* the bounded lease table (``MAX_NUM_LEASES`` entries, FIFO replacement,
  no extension of already-held leases);
* probe queuing at the core while a lease is valid, with at most one queued
  probe per line (Proposition 1);
* involuntary release on timer expiry (``MAX_LEASE_TIME`` bound), which is
  what makes the mechanism deadlock-free (Proposition 2 / Corollary 1);
* hardware MultiLease: globally sorted acquisition with jointly started
  counters (Proposition 3);
* software MultiLease emulation with staggered timeouts;
* the Section 5 prioritization optimization (regular requests break leases).
"""

from .table import LeaseEntry, LeaseGroup, LeaseTable
from .manager import LeaseManager

__all__ = ["LeaseEntry", "LeaseGroup", "LeaseTable", "LeaseManager"]
