"""Per-core lease controller implementing Algorithms 1 and 2.

The manager sits between the core's :class:`~repro.coherence.memunit.MemUnit`
and the directory:

* the core executes ``Lease``/``Release``/``MultiLease``/``ReleaseAll``
  instructions by calling into the manager;
* the memory unit consults :meth:`try_queue_probe` for every incoming
  coherence probe, which is where leased lines delay (or, under the
  Section 5 prioritization rule, break on) remote requests.

All acquisition paths are continuation-passing: ``done()`` fires when the
instruction retires (ownership granted / timers started).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..coherence.states import LineState
from ..config import LeaseConfig
from ..engine import Simulator
from ..errors import LeaseError
from ..trace import TraceBus
from .table import LeaseEntry, LeaseGroup, LeaseTable

if TYPE_CHECKING:  # pragma: no cover
    from ..coherence.memunit import MemUnit, Probe
    from ..mem import AddressMap


class _PendingAcquire:
    """The manager's single in-flight acquisition, as explicit state.

    At most one Lease/MultiLease instruction is in flight per core (the
    cores are in-order), so one slot suffices.  Keeping the progress
    (``mode``/``index``) as data instead of closure captures is what lets
    checkpoints serialize a machine stopped mid-acquisition.
    """

    __slots__ = ("mode", "entries", "index", "done", "group")

    def __init__(self, mode: str, entries: tuple,
                 done: Callable[[], None],
                 group: LeaseGroup | None = None) -> None:
        #: "single" | "hw" | "sw" -- which acquisition flow is running.
        self.mode = mode
        self.entries = entries
        self.index = 0
        self.done = done
        self.group = group


class LeaseManager:
    """Lease/Release state machine for one core."""

    __slots__ = ("core_id", "config", "amap", "memunit", "sim", "trace",
                 "faults", "table", "active_group", "site_stats", "_pending")

    def __init__(self, core_id: int, config: LeaseConfig,
                 amap: "AddressMap", memunit: "MemUnit",
                 sim: Simulator, trace: TraceBus, faults=None) -> None:
        self.core_id = core_id
        self.config = config
        self.amap = amap
        self.memunit = memunit
        self.sim = sim
        self.trace = trace
        #: Optional :class:`~repro.faults.FaultPlan`: skews expiry timers.
        self.faults = faults
        self.table = LeaseTable(config.max_num_leases)
        #: Currently active MultiLease group, if any (at most one; the paper
        #: forbids concurrent single- and multi-location leases).
        self.active_group: LeaseGroup | None = None
        #: Section 5 predictor state: site -> [leases_started,
        #: involuntary_ends].  Only populated when the predictor is on and
        #: the Lease instruction carries a site.
        self.site_stats: dict[str, list[int]] = {}
        #: In-flight Lease/MultiLease acquisition (one per in-order core).
        self._pending: _PendingAcquire | None = None

    # ------------------------------------------------------------------
    # Single-location leases (Algorithm 1)
    # ------------------------------------------------------------------

    def lease(self, addr: int, time: int,
              done: Callable[[], None], site: str | None = None) -> None:
        """``Lease(addr, time)``: lease the line of ``addr`` for at most
        ``min(time, MAX_LEASE_TIME)`` cycles.  ``done()`` fires once the
        line is held in exclusive state (possibly synchronously)."""
        if self.active_group is not None and not self.active_group.dead:
            raise LeaseError(
                "concurrent single- and multi-location leases are not "
                "allowed (Section 4)")
        line = self.amap.line_of(addr)
        self.trace.lease_requested(self.core_id, line, site)
        if self._predictor_rejects(site):
            # Section 5 speculative mechanism: this site's leases keep
            # ending involuntarily, so stop honouring them (lease usage is
            # advisory; skipping is always correct).
            self.trace.lease_ignored(self.core_id, line, site)
            done()
            return
        if line in self.table:
            # No extension of an already-leased address (footnote 1: this
            # could break the MAX_LEASE_TIME bound).
            self.trace.lease_noop(self.core_id, line)
            done()
            return
        duration = min(time, self.config.max_lease_time)
        if self.table.full:
            oldest = self.table.oldest()
            assert oldest is not None
            if oldest.started:
                # Same guard as every other release path: a lease that
                # never started (still in flight) is not a release for
                # trace/counter purposes.
                self.trace.lease_released(self.core_id, oldest.line, "fifo")
            self._release_entry(oldest, voluntary=True)
        entry = LeaseEntry(line, duration, site=site)
        self.table.add(entry)
        self._pending = _PendingAcquire("single", (entry,), done)
        self._acquire_current()

    # -- Section 5 involuntary-release predictor ---------------------------

    def _predictor_rejects(self, site: str | None) -> bool:
        if site is None or not self.config.predictor_enabled:
            return False
        stats = self.site_stats.get(site)
        if stats is None or stats[0] < self.config.predictor_min_samples:
            return False
        return stats[1] / stats[0] > self.config.predictor_threshold

    def _predictor_note(self, entry: LeaseEntry, *,
                        involuntary: bool) -> None:
        if entry.site is None or not self.config.predictor_enabled:
            return
        stats = self.site_stats.setdefault(entry.site, [0, 0])
        stats[0] += 1
        if involuntary:
            stats[1] += 1

    def _acquire_current(self) -> None:
        """Request exclusive ownership of the pending acquisition's current
        entry, then (on grant) start its countdown via :meth:`_on_grant`."""
        entry = self._pending.entries[self._pending.index]
        if self.memunit.l1.state_of(entry.line) in (LineState.M,
                                                    LineState.E):
            # Already owned exclusively: the lease is effective immediately.
            self._on_grant()
            return
        self.memunit.access(True, self.amap.base_of_line(entry.line),
                            is_lease=True, callback=self._on_grant)

    def _on_grant(self) -> None:
        """Ownership of the current entry's line arrived (or was already
        held): record the grant, start the single-lease timer, advance."""
        p = self._pending
        entry = p.entries[p.index]
        self._granted(entry)
        if not entry.dead and entry.group is None:
            self._start_timer(entry)
        p.index += 1
        if p.mode == "single":
            self._finish_pending()
        elif p.mode == "hw":
            self._hw_step()
        else:
            self._sw_step()

    def _finish_pending(self) -> None:
        """Retire the in-flight instruction (clear first: ``done`` may
        issue the next lease synchronously)."""
        p = self._pending
        self._pending = None
        p.done()

    def _granted(self, entry: LeaseEntry) -> None:
        entry.granted = True
        if entry.dead:
            # Released while in flight: never start; drop immediately.
            # Remove by *identity*: the release already evicted this entry,
            # and if the core has since re-leased the same line, removing
            # by line number would delete the new tenant.
            self.table.remove_entry(entry)
            self._drain_probe(entry)
        else:
            self.memunit.l1.pin(entry.line)

    def _start_timer(self, entry: LeaseEntry) -> None:
        assert entry.granted and not entry.started
        entry.started = True
        duration = entry.duration
        if self.faults is not None:
            skew = self.faults.timer_skew()
            if skew:
                # Clamp into [1, MAX_LEASE_TIME] so the Proposition-1
                # deferral bound survives the injected skew.
                duration = max(1, min(duration + skew,
                                      self.config.max_lease_time))
                self.trace.fault_injected("timer_skew", self.core_id, skew)
        self.trace.lease_started(self.core_id, entry.line, duration)
        entry.expiry_event = self.sim.after(duration, self._expire, entry)

    def release(self, addr: int) -> bool:
        """``Release(addr)``: returns True iff the release was voluntary
        (the lease was still held).  Releasing a line not in the table does
        nothing and returns False.  Releasing a member of a MultiLease
        group releases the whole group (Section 4 MultiRelease)."""
        line = self.amap.line_of(addr)
        entry = self.table.get(line)
        if entry is None:
            return False
        if entry.group is not None:
            self._release_group(entry.group, voluntary=True)
        else:
            self.trace.lease_released(self.core_id, line, "voluntary")
            self._release_entry(entry, voluntary=True)
        return True

    def release_all(self) -> None:
        """``ReleaseAll()``: voluntarily release every held lease.  Entries
        are deleted first, then outstanding probes serviced (Algorithm 2)."""
        entries = self.table.entries()
        for entry in entries:
            self._unlink_entry(entry)
            if entry.started:
                self.trace.lease_released(self.core_id, entry.line,
                                              "voluntary")
                self._predictor_note(entry, involuntary=False)
        for entry in entries:
            self._drain_probe(entry)
        if self.active_group is not None:
            self.active_group.dead = True
            self.active_group = None

    def _unlink_entry(self, entry: LeaseEntry) -> None:
        """Common release bookkeeping: detach ``entry`` from the table,
        cancel its timer, and drop exactly the pin references it holds --
        one for a granted live lease, one for a queued probe.  A lease
        still in flight (never granted) holds no pin, so none is dropped.
        All state is consistent before any subsequent trace emit (the
        invariant checker audits pin counts synchronously on every event).
        """
        self.table.remove_entry(entry)
        was_held = entry.holds_line
        entry.dead = True
        if entry.expiry_event is not None:
            self.sim.cancel(entry.expiry_event)
            entry.expiry_event = None
        if was_held:
            self.memunit.l1.unpin(entry.line)
        if entry.queued_probe is not None:
            self.memunit.l1.unpin(entry.line)

    def _release_entry(self, entry: LeaseEntry, *, voluntary: bool) -> None:
        """Remove one entry and service its queued probe."""
        self._unlink_entry(entry)
        if entry.started:
            self._predictor_note(entry, involuntary=not voluntary)
        self._drain_probe(entry)

    def _drain_probe(self, entry: LeaseEntry) -> None:
        probe = entry.queued_probe
        if probe is not None:
            entry.queued_probe = None
            self.memunit.apply_probe(probe)

    def _expire(self, entry: LeaseEntry) -> None:
        """ZERO-COUNTER event: involuntary release."""
        if entry.dead or entry.line not in self.table:
            return
        self.trace.lease_released(self.core_id, entry.line, "expired")
        if entry.group is not None:
            self._release_group(entry.group, voluntary=False,
                                count_involuntary=False)
        else:
            self._release_entry(entry, voluntary=False)

    # ------------------------------------------------------------------
    # Probe interception
    # ------------------------------------------------------------------

    def try_queue_probe(self, probe: "Probe") -> bool:
        """Called by the memory unit for every incoming probe.  Returns True
        if the probe was queued behind a lease (the manager now owns its
        reply); False if it should be serviced normally."""
        entry = self.table.get(probe.line)
        if entry is None or not entry.holds_line:
            return False
        if (not probe.requester_is_lease
                and self.config.prioritize_regular_requests):
            # Section 5 prioritization: a regular request breaks the lease.
            self.trace.lease_released(self.core_id, probe.line,
                                          "broken")
            if entry.group is not None:
                self._release_group(entry.group, voluntary=False,
                                    count_involuntary=False)
            else:
                self._release_entry(entry, voluntary=False)
            return False  # memunit applies the probe immediately
        if entry.queued_probe is not None:
            # Proposition 1 guarantees at most one serviced request per line;
            # a second probe here means the directory protocol is broken.
            raise LeaseError(
                f"core {self.core_id}: second probe queued on leased line "
                f"{probe.line}")
        entry.queued_probe = probe
        # The queued probe takes its own pin reference: the line must stay
        # resident until the probe is applied at release time.
        self.memunit.l1.pin(probe.line)
        self.trace.lease_probe_queued(self.core_id, probe.line)
        return True

    # ------------------------------------------------------------------
    # Multi-location leases (Algorithm 2)
    # ------------------------------------------------------------------

    def multilease(self, addrs: tuple[int, ...], time: int,
                   done: Callable[[], None]) -> None:
        """``MultiLease(num, time, addr1, ...)``: jointly lease the lines of
        ``addrs``.  Releases all held leases first; ignored if the group
        would exceed MAX_NUM_LEASES."""
        self.release_all()
        lines = sorted({self.amap.line_of(a) for a in addrs})
        ignored = len(lines) > self.config.max_num_leases
        self.trace.multilease(self.core_id, len(lines), ignored)
        if ignored:
            done()
            return
        duration = min(time, self.config.max_lease_time)
        if self.config.multilease_mode == "software":
            self._software_multilease(lines, duration, done)
        else:
            self._hardware_multilease(lines, duration, done)

    def _hardware_multilease(self, lines: list[int], duration: int,
                             done: Callable[[], None]) -> None:
        """Acquire exclusive ownership of every line in global (address)
        sort order, waiting for each grant before requesting the next; the
        countdown timers start jointly once the whole group is held."""
        group = LeaseGroup(tuple(lines))
        self.active_group = group
        entries = tuple(LeaseEntry(line, duration, group) for line in lines)
        for e in entries:
            self.table.add(e)
        self._pending = _PendingAcquire("hw", entries, done, group)
        self._hw_step()

    def _hw_step(self) -> None:
        """One step of the hardware MultiLease walk: abort if the group
        died, start all counters together once every line is held, else
        acquire the next line in global sort order."""
        p = self._pending
        if p.group.dead:
            self._finish_pending()
            return
        if p.index == len(p.entries):
            # Whole group granted: start all counters together.
            for e in p.entries:
                if not e.dead:
                    self._start_timer(e)
            self._finish_pending()
            return
        self._acquire_current()

    def _software_multilease(self, lines: list[int], duration: int,
                             done: Callable[[], None]) -> None:
        """Emulate MultiLease with single-location leases: acquire in sorted
        order with staggered timeouts -- the j-th (outer) lease runs for
        ``time + (n-1-j) * X`` so that, heuristically, all leases overlap for
        ``time`` cycles.  Joint holding is *not* guaranteed."""
        stagger = self.config.software_stagger_cycles
        n = len(lines)
        entries = tuple(
            LeaseEntry(line, min(duration + (n - 1 - j) * stagger,
                                 self.config.max_lease_time))
            for j, line in enumerate(lines)
        )
        for e in entries:
            self.table.add(e)
        self._pending = _PendingAcquire("sw", entries, done)
        self._sw_step()

    def _sw_step(self) -> None:
        """One step of the software-emulated MultiLease walk: skip entries
        released while waiting, then charge the per-address bookkeeping
        before acquiring the next line."""
        p = self._pending
        while p.index < len(p.entries) and p.entries[p.index].dead:
            p.index += 1
        if p.index == len(p.entries):
            self._finish_pending()
            return
        # The emulation runs as ordinary instructions: charge the
        # per-address software bookkeeping before each acquisition.
        self.sim.after(self.config.software_multilease_overhead_cycles,
                       self._sw_acquire_step)

    def _sw_acquire_step(self) -> None:
        self._acquire_current()

    def _release_group(self, group: LeaseGroup, *, voluntary: bool,
                       count_involuntary: bool = False) -> None:
        """Release every member of a MultiLease group at once."""
        group.dead = True
        if self.active_group is group:
            self.active_group = None
        released = []
        for line in group.lines:
            entry = self.table.get(line)
            if entry is not None and entry.group is group:
                self._unlink_entry(entry)
                if entry.started:
                    if voluntary:
                        self.trace.lease_released(
                            self.core_id, entry.line, "voluntary")
                    elif count_involuntary:
                        self.trace.lease_released(
                            self.core_id, entry.line, "expired")
                released.append(entry)
        for entry in released:
            self._drain_probe(entry)

    # ------------------------------------------------------------------
    # Checkpointing (repro.state)
    # ------------------------------------------------------------------

    def state_dict(self, codec) -> dict:
        """Table entries in FIFO order, the active group, predictor stats
        and the in-flight acquisition.  Everything object-shaped goes
        through the identity pool: restore must preserve entry identity
        (releases remove by identity) and pin refcounts exactly."""
        return {
            "table": [codec.encode(e) for e in self.table.entries()],
            "active_group": codec.encode(self.active_group),
            "site_stats": [[site, list(v)]
                           for site, v in self.site_stats.items()],
            "pending": codec.encode(self._pending),
        }

    def load_state(self, state: dict, codec) -> None:
        self.table.load_entries(
            codec.decode(e) for e in state["table"])
        self.active_group = codec.decode(state["active_group"])
        self.site_stats = {site: list(v)
                           for site, v in state["site_stats"]}
        self._pending = codec.decode(state["pending"])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def held_lines(self) -> list[int]:
        """Lines currently held under a started lease (tests/debugging)."""
        return [e.line for e in self.table.entries() if e.started]

    def is_leased(self, addr: int) -> bool:
        entry = self.table.get(self.amap.line_of(addr))
        return entry is not None and entry.holds_line
