"""The experiment registry: one entry per figure/table of the paper.

Each experiment is a named sweep (variants x thread counts) built on the
:mod:`repro.workloads` drivers; ``run_experiment`` executes it and returns
``{variant: [RunResult per thread count]}``.  The DESIGN.md per-experiment
index references these ids; ``benchmarks/`` wraps each in a pytest-benchmark
target and EXPERIMENTS.md records the measured outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

from .. import workloads as w
from ..cluster import bench_cluster
from ..config import MachineConfig
from .runner import PAPER_THREAD_COUNTS, sweep


@dataclass(frozen=True)
class Experiment:
    """A named, reproducible sweep."""

    id: str
    title: str
    bench: Callable[..., Any]
    variants: dict[str, dict[str, Any]]
    common: dict[str, Any] = field(default_factory=dict)
    #: What the paper reports, for EXPERIMENTS.md.
    paper_claim: str = ""


EXPERIMENTS: dict[str, Experiment] = {}


def _register(exp: Experiment) -> None:
    EXPERIMENTS[exp.id] = exp


def run_experiment(exp_id: str,
                   thread_counts: Sequence[int] = PAPER_THREAD_COUNTS,
                   *, jobs: int = 1, **overrides: Any):
    exp = EXPERIMENTS[exp_id]
    common = {**exp.common, **overrides}
    # A bare ``seed=N`` override reseeds the whole sweep: it folds into the
    # machine config every bench builds from, so the CLI's global --seed
    # reaches Simulator(seed=...) without each bench knowing about it.
    seed = common.pop("seed", None)
    if seed is not None:
        base = common.get("config") or MachineConfig()
        common["config"] = replace(base, seed=seed)
    # A ``faults=SPEC`` override folds in the same way: the spec string
    # rides inside the (picklable) config, so it reaches every sweep cell
    # identically whether cells run serially or on --jobs workers.
    faults = common.pop("faults", None)
    if faults is not None:
        base = common.get("config") or MachineConfig()
        common["config"] = replace(base, fault_spec=faults)
    # A ``network=SPEC`` override swaps in the contended interconnect
    # (repro.coherence.links); the raw spec string rides inside the nested
    # NetworkConfig so it, too, survives pickling to --jobs workers.
    network = common.pop("network", None)
    if network is not None:
        base = common.get("config") or MachineConfig()
        common["config"] = replace(
            base, network=replace(base.network, spec=network))
    # An ``engine=...`` override picks the run-loop engine the same way
    # (results are bit-identical on either; this exists for A/B timing and
    # as an escape hatch).
    engine = common.pop("engine", None)
    if engine is not None:
        base = common.get("config") or MachineConfig()
        common["config"] = replace(base, engine=engine)
    return sweep(exp.bench, exp.variants, thread_counts, jobs=jobs,
                 **common)


# ---------------------------------------------------------------------------
# Figure 2: Treiber stack with and without leases, 100% updates
# ---------------------------------------------------------------------------

_register(Experiment(
    id="fig2_stack",
    title="Figure 2: Treiber stack throughput +/- leases (100% updates)",
    bench=w.bench_stack,
    variants={"base": {"variant": "base"}, "lease": {"variant": "lease"}},
    paper_claim="Leases improve stack throughput by up to ~5-7x under "
                "contention; baseline throughput decreases with threads.",
))

# ---------------------------------------------------------------------------
# Figure 3: lock-based counter / MS queue / skiplist PQ (+ energy)
# ---------------------------------------------------------------------------

_register(Experiment(
    id="fig3_counter",
    title="Figure 3a: lock-based counter (TTS +/- lease, ticket, "
          "hierarchical ticket, CLH)",
    bench=w.bench_counter,
    variants={
        "tts": {"variant": "tts", "use_lease": False},
        "tts+lease": {"variant": "tts", "use_lease": True},
        "ticket": {"variant": "ticket", "use_lease": False},
        "hticket": {"variant": "hticket", "use_lease": False},
        "clh": {"variant": "clh", "use_lease": False},
    },
    paper_claim="Leases improve the contended lock-based counter by up to "
                "~20x and cut energy by up to ~10x.",
))

_register(Experiment(
    id="fig3_queue",
    title="Figure 3b: Michael-Scott queue (base / lease / multilease)",
    bench=w.bench_queue,
    variants={
        "base": {"variant": "base"},
        "lease": {"variant": "lease"},
        "multilease": {"variant": "multilease"},
    },
    paper_claim="Single leases beat the base queue; multileases beat base "
                "but trail single leases on this linear structure.",
))

_register(Experiment(
    id="fig3_pq",
    title="Figure 3c: skiplist priority queue (Pugh locks vs global lock "
          "+ lease)",
    bench=w.bench_pq,
    variants={
        "pugh": {"variant": "pugh"},
        "globallock": {"variant": "globallock"},
        "lease": {"variant": "lease"},
    },
    paper_claim="PQ throughput decreases with concurrency for all variants; "
                "the lease-based implementation is superior under high "
                "contention.",
))

# ---------------------------------------------------------------------------
# Figure 4: MultiQueues and TL2
# ---------------------------------------------------------------------------

_register(Experiment(
    id="fig4_multiqueue",
    title="Figure 4a: MultiQueues (8 queues) +/- MultiLease",
    bench=w.bench_multiqueue,
    variants={"base": {"use_lease": False}, "lease": {"use_lease": True}},
    common={"num_queues": 8},
    paper_claim="MultiLeases improve MultiQueues by ~50% (long critical "
                "sections).",
))

_register(Experiment(
    id="fig4_tl2",
    title="Figure 4b: TL2 two-object transactions (none/single/multi lease)",
    bench=w.bench_tl2,
    variants={
        "none": {"variant": "none"},
        "single": {"variant": "single"},
        "multi": {"variant": "multi"},
    },
    paper_claim="MultiLeases improve TL2 by up to ~5x by eliminating "
                "aborts; single leases on the first object help only "
                "moderately.",
))

# ---------------------------------------------------------------------------
# Figure 5: hardware vs software MultiLease; lock-based Pagerank
# ---------------------------------------------------------------------------

_register(Experiment(
    id="fig5_hw_sw_multilease",
    title="Figure 5 left: hardware vs software MultiLeases on TL2",
    bench=w.bench_tl2,
    variants={
        "hardware": {"variant": "multi", "multilease_mode": "hardware"},
        "software": {"variant": "multi", "multilease_mode": "software"},
    },
    paper_claim="Software MultiLeases are comparable, with a slight but "
                "consistent performance hit.",
))

_register(Experiment(
    id="fig5_pagerank",
    title="Figure 5 right: lock-based Pagerank +/- lease",
    bench=w.bench_pagerank,
    variants={"base": {"use_lease": False}, "lease": {"use_lease": True}},
    common={"num_pages": 256, "iterations": 2},
    paper_claim="Leasing the contended lock lets Pagerank scale (8x at 32 "
                "threads).",
))

# ---------------------------------------------------------------------------
# Section 7 extras: backoff comparison, low contention, messages/op
# ---------------------------------------------------------------------------

_register(Experiment(
    id="e1_backoff",
    title="Section 7: leases vs exponential backoff on the Treiber stack",
    bench=w.bench_stack,
    variants={
        "base": {"variant": "base"},
        "backoff": {"variant": "backoff"},
        "lease": {"variant": "lease"},
    },
    paper_claim="Backoff improves the base by up to ~3x but stays clearly "
                "below leases (~2.5x lower on average).",
))

_register(Experiment(
    id="e2_low_contention_list",
    title="Section 7: Harris list, 20% updates (low contention)",
    bench=w.bench_harris_list,
    variants={"base": {"use_lease": False}, "lease": {"use_lease": True}},
    paper_claim="Throughput is the same +/- leases (<=5% difference).",
))

_register(Experiment(
    id="e2_low_contention_skiplist",
    title="Section 7: lock-free skiplist, 20% updates (low contention)",
    bench=w.bench_skiplist,
    variants={"base": {"use_lease": False}, "lease": {"use_lease": True}},
    paper_claim="Throughput is the same +/- leases (<=5% difference).",
))

_register(Experiment(
    id="e2_low_contention_hashtable",
    title="Section 7: lock-based hash table, 20% updates (low contention)",
    bench=w.bench_hashtable,
    variants={"base": {"use_lease": False}, "lease": {"use_lease": True}},
    paper_claim="Throughput is the same +/- leases (<=5% difference).",
))

_register(Experiment(
    id="e2_low_contention_bst",
    title="Section 7: external BST, 20% updates (low contention)",
    bench=w.bench_bst,
    variants={"base": {"use_lease": False}, "lease": {"use_lease": True}},
    paper_claim="Throughput is the same +/- leases (<=5% difference).",
))

_register(Experiment(
    id="e3_messages_per_op",
    title="Section 7: cache misses and messages per op stay constant with "
          "leases as threads grow",
    bench=w.bench_stack,
    variants={"base": {"variant": "base"}, "lease": {"variant": "lease"}},
    paper_claim="With leases, stack misses/op ~constant (~2.1) and "
                "messages/op ~constant from 4 to 64 threads; the base "
                "grows ~5x; robust down to MAX_LEASE_TIME=1K.",
))

# ---------------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ---------------------------------------------------------------------------

_register(Experiment(
    id="a1_prioritization",
    title="Ablation: Section 5 prioritization (regular requests break "
          "leases) on the MS queue",
    bench=w.bench_queue,
    variants={"lease": {"variant": "lease"}},
    paper_claim="Prioritization is an optional optimization that 'can "
                "improve performance in practice'.",
))

_register(Experiment(
    id="a2_lease_time",
    title="Ablation: MAX_LEASE_TIME sensitivity (1K vs 20K cycles) on the "
          "stack",
    bench=w.bench_stack,
    variants={
        "lease_20k": {"variant": "lease", "max_lease_time": 20_000},
        "lease_1k": {"variant": "lease", "max_lease_time": 1_000},
    },
    paper_claim="Constant messages/op holds 'even if we decrease "
                "MAX_LEASE_TIME to 1K cycles'.",
))

_register(Experiment(
    id="a3_misuse",
    title="Ablation: Section 7 improper use (lease kept on a lock owned by "
          "another thread)",
    bench=w.bench_counter,
    variants={
        "proper": {"variant": "tts", "use_lease": True},
        "misuse": {"variant": "tts", "use_lease": True, "misuse": True},
    },
    paper_claim="Not releasing a lock variable owned by another thread "
                "slows the application; prioritization mitigates it.",
))

_register(Experiment(
    id="s1_snapshot",
    title="Section 5: cheap lock-free snapshots (lease vs double-collect)",
    bench=w.bench_snapshot,
    variants={
        "double_collect": {"use_lease": False},
        "lease": {"use_lease": True},
    },
    paper_claim="The lease-based snapshot 'may be cheaper than the "
                "standard double-collect'.",
))

# ---------------------------------------------------------------------------
# Contention-management zoo: the headline software-rivals ablation
# ---------------------------------------------------------------------------

_register(Experiment(
    id="sync_ablation",
    title="Contention-management zoo: {baseline, lease, cas-backoff, "
          "reciprocating, mcas-helping, adaptive-lease} x {treiber, "
          "msqueue, counter}",
    bench=w.bench_sync_ablation,
    variants={
        f"{structure}:{policy}": {"structure": structure, "policy": policy}
        for structure in w.SYNC_STRUCTURES
        for policy in w.SYNC_POLICIES
    },
    paper_claim="Section 7: software mitigation (backoff and friends) "
                "buys up to ~3x by inserting dead time, but leases stay "
                "clearly ahead because they remove coherence traffic "
                "instead of hiding it; the adaptive-lease arm is our own "
                "entry predicting durations from probe pressure.",
))

# ---------------------------------------------------------------------------
# Open-loop traffic (repro.traffic): tail latency under arrival-process load
# ---------------------------------------------------------------------------

_register(Experiment(
    id="counter",
    title="Open-loop lock-based counter: tail latency / SLO under an "
          "arrival process (use --traffic; closed-loop without it)",
    bench=w.bench_counter,
    variants={
        "tts": {"variant": "tts", "use_lease": False},
        "tts+lease": {"variant": "tts", "use_lease": True},
    },
    paper_claim="Extension beyond the paper: open-loop arrivals expose "
                "what closed-loop throughput hides -- queueing delay and "
                "shed load once the contended lock saturates; leases "
                "should pull p99 down at the same offered rate.",
))

_register(Experiment(
    id="treiber",
    title="Open-loop Treiber stack: tail latency / SLO under an arrival "
          "process (use --traffic; closed-loop without it)",
    bench=w.bench_stack,
    variants={"base": {"variant": "base"}, "lease": {"variant": "lease"}},
    paper_claim="Extension beyond the paper: open-loop push/pop mix; CAS "
                "retry storms show up as tail inflation, not lost "
                "throughput.",
))

_register(Experiment(
    id="skiplist",
    title="Open-loop lock-free skiplist: tail latency / SLO under an "
          "arrival process with skewed keys (use --traffic)",
    bench=w.bench_skiplist,
    variants={"base": {"use_lease": False}, "lease": {"use_lease": True}},
    paper_claim="Extension beyond the paper: Zipfian / hot-set-shifting "
                "keys re-concentrate contention in the low-contention "
                "structure; tail latency tracks the hot key, not the "
                "mean.",
))

# ---------------------------------------------------------------------------
# Cluster layer (repro.cluster): multi-node sharded workloads
# ---------------------------------------------------------------------------

_register(Experiment(
    id="cluster_shards",
    title="Cluster: sharded structures under PaxosLease inter-node "
          "ownership (threads are per node; --nodes sets the node count)",
    bench=bench_cluster,
    variants={
        "counter": {"structure": "counter"},
        "treiber": {"structure": "treiber"},
    },
    common={"nodes": 2, "objects": 2, "ops_per_thread": 4,
            "lease_cycles": 8_000, "renew_margin": 2_000},
    paper_claim="Extension beyond the paper: the lease/release ownership "
                "discipline lifted to a multi-node cluster; throughput "
                "scales with nodes while per-object grants stay exclusive.",
))
