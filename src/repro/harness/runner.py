"""Sweep runner: executes a benchmark driver across thread counts and
variants, producing the rows/series the paper's figures plot.

Sweep cells (variant x thread count) are independent simulations, so with
``jobs > 1`` they fan out over a :class:`~concurrent.futures.
ProcessPoolExecutor`.  Results are reassembled in the fixed variant-major,
thread-minor order regardless of completion order, and every simulation is
deterministic for its seed, so a parallel sweep returns exactly what the
serial sweep returns (the test suite asserts equality)."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from ..stats import RunResult
from ..stats.report import format_table

#: The paper's x-axis: "We tested for 2, 4, 8, 16, 32, 64 threads/cores."
PAPER_THREAD_COUNTS = (2, 4, 8, 16, 32, 64)


def sweep(bench: Callable[..., RunResult],
          variants: dict[str, dict[str, Any]],
          thread_counts: Sequence[int] = PAPER_THREAD_COUNTS,
          *, jobs: int = 1, **common: Any) -> dict[str, list[RunResult]]:
    """Run ``bench(threads, **variant_kwargs, **common)`` for every variant
    and thread count.  Returns ``{variant_name: [RunResult, ...]}`` in
    thread-count order.  ``jobs > 1`` runs the cells on that many worker
    processes (same results, reassembled deterministically)."""
    cells = [(name, n) for name in variants for n in thread_counts]
    if jobs > 1 and len(cells) > 1:
        # Sinks hide in two places: the sweep-wide common kwargs and each
        # variant's own kwargs.  Both would be silently pickled into (or
        # fail to reach) worker processes, so both are rejected alike.
        if common.get("sinks") or any(
                kw.get("sinks") for kw in variants.values()):
            raise ValueError(
                "trace sinks cannot cross process boundaries; run a traced "
                "sweep with jobs=1")
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(cells))) as ex:
            futures = [
                ex.submit(_run_cell, bench, n, variants[name], common)
                for name, n in cells
            ]
            results = [f.result() for f in futures]
    else:
        results = [_run_cell(bench, n, variants[name], common)
                   for name, n in cells]
    out: dict[str, list[RunResult]] = {name: [] for name in variants}
    for (name, _n), res in zip(cells, results):
        out[name].append(res)
    return out


def _cell_descriptor(bench: Callable[..., RunResult], num_threads: int,
                     variant_kw: dict[str, Any], common: dict[str, Any]
                     ) -> dict[str, Any]:
    """JSON-safe identity of one sweep cell, for checkpoint naming and
    warm-start matching.  Scalar kwargs are kept verbatim; the config and
    fault spec are covered by the checkpoint container itself, and sinks
    never affect simulated state, so neither contributes here."""
    merged = {**common, **variant_kw}
    kwargs = {k: v for k, v in sorted(merged.items())
              if k not in ("config", "sinks", "schedule")
              and (v is None or isinstance(v, (bool, int, float, str)))}
    return {"bench": bench.__name__, "num_threads": num_threads,
            "kwargs": kwargs}


def _run_cell(bench: Callable[..., RunResult], num_threads: int,
              variant_kw: dict[str, Any], common: dict[str, Any]
              ) -> RunResult:
    """One sweep cell (module-level so it pickles to worker processes)."""
    from ..state import hooks

    if hooks.run_hook is None:
        return bench(num_threads, **variant_kw, **common)
    prev = hooks.cell
    hooks.cell = _cell_descriptor(bench, num_threads, variant_kw, common)
    try:
        return bench(num_threads, **variant_kw, **common)
    finally:
        hooks.cell = prev


def valid_metrics() -> tuple[str, ...]:
    """Metric names accepted by :func:`series_table` (and the ``--metric``
    CLI flag): the numeric ``RunResult`` fields plus the two display
    aliases."""
    from dataclasses import fields

    numeric = tuple(f.name for f in fields(RunResult)
                    if f.type in ("int", "float", int, float))
    return ("mops_per_sec", "nj_per_op") + numeric


def series_table(results: dict[str, list[RunResult]],
                 metric: str = "mops_per_sec") -> str:
    """Format sweep results as one row per variant, one column per thread
    count -- the textual equivalent of a paper figure."""
    choices = valid_metrics()
    if metric not in choices:
        raise ValueError(
            f"unknown metric {metric!r}; valid metrics: "
            f"{', '.join(choices)}")
    rows = []
    for name, series in results.items():
        row: dict[str, Any] = {"variant": name}
        for r in series:
            if metric == "mops_per_sec":
                val = round(r.mops_per_sec, 3)
            elif metric == "nj_per_op":
                val = round(r.energy_nj_per_op, 1)
            else:
                val = round(getattr(r, metric), 3)
            row[f"t={r.num_threads}"] = val
        rows.append(row)
    return format_table(rows)


def run_all(thread_counts: Sequence[int] = (2, 8, 32),
            names: Iterable[str] | None = None,
            verbose: bool = True) -> dict[str, dict]:
    """Run every registered experiment (optionally a subset) at reduced
    thread counts; used by the examples and for quick validation."""
    from .experiments import EXPERIMENTS, run_experiment

    out = {}
    for name in (names or EXPERIMENTS):
        result = run_experiment(name, thread_counts=thread_counts)
        out[name] = result
        if verbose:
            print(f"== {name}: {EXPERIMENTS[name].title} ==")
            if isinstance(result, dict):
                print(series_table(result))
            print()
    return out
