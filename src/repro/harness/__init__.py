"""Experiment harness: one registered experiment per paper figure/table."""

from .experiments import EXPERIMENTS, Experiment, run_experiment
from .runner import run_all, sweep

__all__ = ["EXPERIMENTS", "Experiment", "run_experiment", "sweep",
           "run_all"]
