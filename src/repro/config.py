"""Machine configuration.

The defaults encode Table 1 of the paper:

======================  =============================================
Parameter               Value
======================  =============================================
Core model              1 GHz, in-order core
L1-I/D cache per tile   32 KB, 4-way, 1 cycle
L2 cache per tile       256 KB, 8-way, inclusive, tag/data 3/8 cycles
Cache-line size         64 bytes
Coherence protocol      MSI (private L1, shared L2)
======================  =============================================

plus the lease parameters from Sections 3-5 (``MAX_LEASE_TIME`` defaults to
20K cycles = 20 microseconds at 1 GHz, as used in the evaluation; the
sensitivity experiment lowers it to 1K).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Literal

from .errors import ConfigError

#: Number of bytes in one machine word (all simulated values are one word).
WORD_SIZE = 8


@dataclass(frozen=True)
class LeaseConfig:
    """Parameters of the Lease/Release mechanism (Section 3)."""

    #: Master switch; with ``enabled=False`` the Lease/Release instructions
    #: become timing no-ops so the same workload code runs as the baseline.
    enabled: bool = True
    #: Upper bound on the length of any lease, in core cycles (system-wide
    #: constant; 20K cycles == 20 us at 1 GHz, the paper's default).
    max_lease_time: int = 20_000
    #: Upper bound on the number of simultaneously held leases per core.
    max_num_leases: int = 8
    #: ``'hardware'`` acquires MultiLease groups in global sorted order and
    #: starts all counters jointly (Section 4); ``'software'`` emulates
    #: MultiLease with staggered single-location leases (Section 4,
    #: "Software Implementation").
    multilease_mode: Literal["hardware", "software"] = "hardware"
    #: Approximation of the time to fulfil one ownership request, used by the
    #: software MultiLease emulation to stagger timeouts (parameter ``X``).
    software_stagger_cycles: int = 120
    #: Section 5 "Prioritization": when True, a *regular* (non-lease)
    #: coherence request breaks an existing lease instead of queuing.
    #: On by default: it bounds the stall when a non-leasing access hits a
    #: leased line (e.g. the second-object lock acquisition in the TL2
    #: single-lease variant, or a dequeuer reading the leased tail pointer
    #: in Algorithm 3) and is what makes the Section 7 "improper use"
    #: mitigation work.  The A1 ablation benchmark studies it.
    prioritize_regular_requests: bool = True
    #: Extra core cycles charged per address by the *software* MultiLease
    #: emulation (sorting and group bookkeeping run as instructions rather
    #: than in the L1 controller) -- the paper's "slight, but consistent
    #: performance hit because of the extra software operations".
    software_multilease_overhead_cycles: int = 16
    #: Section 5 "Speculative Execution": track, per lease site (the
    #: hardware proposal uses the program counter of the lease), how often
    #: leases end involuntarily, and stop honouring sites above the
    #: threshold.  Off by default, as in the paper ("could benefit from").
    predictor_enabled: bool = False
    #: Minimum observed leases before a site can be blacklisted.
    predictor_min_samples: int = 8
    #: Involuntary-release fraction above which a site is ignored.
    predictor_threshold: float = 0.5

    def validate(self) -> None:
        if self.max_lease_time <= 0:
            raise ConfigError("max_lease_time must be positive")
        if self.max_num_leases <= 0:
            raise ConfigError("max_num_leases must be positive")
        if self.software_stagger_cycles < 0:
            raise ConfigError("software_stagger_cycles must be >= 0")
        if self.software_multilease_overhead_cycles < 0:
            raise ConfigError(
                "software_multilease_overhead_cycles must be >= 0")
        if self.predictor_min_samples < 1:
            raise ConfigError("predictor_min_samples must be >= 1")
        if not 0.0 < self.predictor_threshold <= 1.0:
            raise ConfigError("predictor_threshold must be in (0, 1]")
        if self.multilease_mode not in ("hardware", "software"):
            raise ConfigError(
                f"unknown multilease_mode {self.multilease_mode!r}")


@dataclass(frozen=True)
class NetworkConfig:
    """2-D mesh on-chip network latency model (Graphite-style)."""

    #: Fixed per-message router/injection overhead, cycles.
    base_latency: int = 4
    #: Per-mesh-hop latency, cycles.
    hop_latency: int = 2
    #: Extra serialization latency for messages carrying a data payload
    #: (one cache line), cycles.
    data_latency: int = 8
    #: Contended-interconnect spec (see :mod:`repro.coherence.links`),
    #: e.g. ``"link:bw=2,queue=16;arb:wrr,weights=2:1;port:dir=2,mem=4"``.
    #: Empty string (or ``"infinite"``) = the contention-free analytic
    #: model; behaviour is bit-identical to a build without the links
    #: module.  Kept as the raw string so configs stay picklable across
    #: ``--jobs`` workers.
    spec: str = ""

    def validate(self) -> None:
        if min(self.base_latency, self.hop_latency, self.data_latency) < 0:
            raise ConfigError("network latencies must be non-negative")
        if self.spec:
            # Lazy import: coherence depends on config, so the grammar
            # must be pulled in at validation time only.
            from .coherence.links import parse_network_spec
            parse_network_spec(self.spec)


@dataclass(frozen=True)
class EnergyConfig:
    """Event-based energy model, nanojoules per event.

    The paper reports energy per operation and observes that it tracks the
    number of coherence messages and cache misses; this model derives energy
    from exactly those counters.  The constants are in the range of published
    32 nm McPAT-style figures; only relative magnitudes matter for the
    reproduced trends.
    """

    l1_access_nj: float = 0.1
    l2_access_nj: float = 1.0
    dram_access_nj: float = 20.0
    #: Per coherence message (control payload).
    message_nj: float = 0.5
    #: Extra energy per network hop traversed.
    hop_nj: float = 0.1
    #: Extra energy for a data-carrying message.
    data_message_nj: float = 1.0
    #: Static (leakage + clock) energy per core per cycle.
    static_nj_per_core_cycle: float = 0.002

    def validate(self) -> None:
        for name in ("l1_access_nj", "l2_access_nj", "dram_access_nj",
                     "message_nj", "hop_nj", "data_message_nj",
                     "static_nj_per_core_cycle"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")


@dataclass(frozen=True)
class MachineConfig:
    """Top-level configuration of the simulated tiled multicore."""

    num_cores: int = 8
    #: Cache-line size in bytes (Table 1: 64 B).
    line_size: int = 64
    #: Private L1 data cache: 32 KB, 4-way, 1-cycle access.
    l1_size_bytes: int = 32 * 1024
    l1_assoc: int = 4
    l1_latency: int = 1
    #: Shared L2 (one slice per tile): 256 KB/tile, 8-way, tag 3 / data 8.
    l2_size_bytes_per_tile: int = 256 * 1024
    l2_assoc: int = 8
    l2_tag_latency: int = 3
    l2_data_latency: int = 8
    #: Off-chip access charged on first touch of a line (cold miss).
    dram_latency: int = 100
    #: Core clock, used only to convert cycles to seconds in reports.
    clock_hz: int = 1_000_000_000
    #: Coherence protocol: the paper evaluates on MSI (Table 1) and notes
    #: (Section 8) that Lease/Release applies to MESI with the same
    #: semantics; both are implemented.
    protocol: Literal["msi", "mesi"] = "msi"

    lease: LeaseConfig = field(default_factory=LeaseConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)

    #: Deterministic seed for all randomness in the machine and workloads.
    seed: int = 1

    #: Fault-injection spec (see :mod:`repro.faults`), e.g.
    #: ``"net_jitter:p=0.01,max=200;dir_nack:p=0.005"``.  Empty string =
    #: no fault plan installed; behaviour is bit-identical to a build
    #: without the fault subsystem.  Kept as the raw string (not a parsed
    #: object) so configs stay picklable across ``--jobs`` workers.
    fault_spec: str = ""

    #: Safety budgets: the simulation aborts with SimulationTimeout when
    #: either is exceeded (catches livelocked workloads).
    max_cycles: int = 2_000_000_000
    max_events: int = 200_000_000

    #: Run-loop engine (results are bit-identical either way): ``"fast"``
    #: uses the bucketed time-wheel with batch-stepped cores, ``"compat"``
    #: the classic per-event heap.  Machines with a schedule-perturbation
    #: strategy installed always run compat regardless of this setting.
    #: Not part of the machine's semantics: checkpoints ignore it, so a
    #: state saved under one engine restores under the other.
    engine: Literal["fast", "compat"] = "fast"

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.num_cores < 1:
            raise ConfigError("num_cores must be >= 1")
        if self.line_size < WORD_SIZE or self.line_size % WORD_SIZE:
            raise ConfigError("line_size must be a positive multiple of 8")
        if self.line_size & (self.line_size - 1):
            raise ConfigError("line_size must be a power of two")
        for name in ("l1_size_bytes", "l1_assoc", "l1_latency",
                     "l2_size_bytes_per_tile", "l2_assoc", "l2_tag_latency",
                     "l2_data_latency", "dram_latency", "clock_hz",
                     "max_cycles", "max_events"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.l1_size_bytes % (self.line_size * self.l1_assoc):
            raise ConfigError("L1 size must be divisible by assoc*line_size")
        if self.protocol not in ("msi", "mesi"):
            raise ConfigError(f"unknown protocol {self.protocol!r}")
        if self.engine not in ("fast", "compat"):
            raise ConfigError(f"unknown engine {self.engine!r}")
        if self.fault_spec:
            # Lazy import: faults depends on errors/sync only, but config
            # must stay importable first.
            from .faults.spec import parse_fault_spec
            spec = parse_fault_spec(self.fault_spec)
            for core, _mult in spec.slow_cores:
                if core >= self.num_cores:
                    raise ConfigError(
                        f"fault spec: slow_core {core} out of range for "
                        f"{self.num_cores} cores")
        self.lease.validate()
        self.network.validate()
        self.energy.validate()

    # -- derived geometry ---------------------------------------------------

    @property
    def l1_num_sets(self) -> int:
        return self.l1_size_bytes // (self.line_size * self.l1_assoc)

    @property
    def mesh_dim(self) -> int:
        """Side of the smallest square mesh holding ``num_cores`` tiles."""
        return max(1, math.isqrt(self.num_cores - 1) + 1) \
            if self.num_cores > 1 else 1

    def with_leases(self, enabled: bool) -> "MachineConfig":
        """Copy of this config with leases switched on/off."""
        return replace(self, lease=replace(self.lease, enabled=enabled))

    def with_cores(self, num_cores: int) -> "MachineConfig":
        """Copy of this config with a different core count."""
        return replace(self, num_cores=num_cores)
