"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``               -- list the registered experiments (one per paper
                            figure/table) with their paper claims.
* ``run <experiment>``   -- run one experiment and print its series.
                            ``--jobs N`` fans the sweep cells over worker
                            processes; ``--save out.json`` writes the raw
                            results; ``--invariants`` checks coherence/
                            lease invariants continuously while running.
                            ``--checkpoint-every N`` saves a
                            ``repro-ckpt/1`` checkpoint per cell every N
                            cycles into ``--checkpoint-dir``; ``--resume
                            CKPT`` restores one cell from a saved file;
                            ``--warm-start`` resumes every cell from its
                            newest compatible checkpoint.
* ``trace <experiment>`` -- run one experiment with the JSONL tracer
                            attached, writing every simulator event to a
                            file and reconciling the trace against the
                            run's counters.
* ``check <target>``     -- fuzz schedules of a contended structure and
                            check every history for linearizability plus
                            the lease properties; on failure, shrink the
                            schedule and write a replayable repro file.
                            ``check replay repro.json`` re-runs one.
* ``bench [targets...]`` -- time the simulator's hot loops and write one
                            ``BENCH_<name>.json`` per target.  ``--quick``
                            shrinks the workloads for CI; ``--baseline
                            FILE`` diffs normalized scores against a
                            committed baseline and fails (exit 1) on any
                            regression beyond ``--tolerance``;
                            ``--write-baseline FILE`` records a new one;
                            ``--profile`` prints a cProfile summary.
* ``config``             -- print the Table-1 machine configuration.

``run`` and ``trace`` accept a global ``--seed N`` that reseeds the
simulated machine (and thereby every workload RNG) for the whole sweep.
``run``/``trace``/``check``/``bench`` accept ``--faults SPEC``, a
semicolon-separated fault-injection spec (see :mod:`repro.faults`), e.g.
``"net_jitter:p=0.01,max=200;dir_nack:p=0.005;timer_skew:±8"``.  Faults
are deterministic per seed: the same seed + spec replays byte-identically,
serial or under ``--jobs``.  ``run``/``check``/``bench`` accept
``--engine {fast,compat}`` to pick the run-loop engine (default ``fast``;
results are bit-identical either way -- see DESIGN.md "Engine fast
path"); the choice is recorded in bench records and repro files.
``run``/``check``/``bench`` also accept ``--traffic SPEC``, an open-loop
arrival spec (see :mod:`repro.traffic`), e.g.
``"poisson:rate=2.0,zipf:s=1.2,tenants=2,slo:p99=8000"``: workers pull
admitted arrivals instead of self-pacing, ``run`` prints tail-latency
percentiles plus an SLO verdict (and exits 1 on SLO failure), and
``check`` fuzzes the open-loop workload variants.
``run``/``trace`` accept ``--network SPEC``, a contended-interconnect
spec (see :mod:`repro.coherence.links`), e.g.
``"link:bw=2,queue=8,flits=4;arb:wrr,weights=2:1;port:dir=2,mem=4"``:
finite-bandwidth egress links, pluggable arbitration and serialized
directory/memory ports.  Unset (or ``infinite``) keeps the default
contention-free mesh, bit-identical to the pre-links model.

Examples::

    python -m repro list
    python -m repro run fig2_stack --threads 2,8,32
    python -m repro run fig2_stack --jobs 4 --save stack.json --seed 7
    python -m repro run fig4_tl2 --metric nj_per_op
    python -m repro run fig2_stack --faults "dir_nack:p=0.01" --seed 7
    python -m repro run counter --traffic "poisson:rate=2.0,slo:p99=9000"
    python -m repro run sync_ablation --threads 2,8,32
    python -m repro run fig2_stack --checkpoint-every 5000
    python -m repro run fig2_stack --warm-start
    python -m repro trace fig2_stack --threads 4 --heatmap
    python -m repro run cluster_shards --nodes 3 --threads 2,4
    python -m repro check --list-targets
    python -m repro check treiber --budget 200 --seed 7
    python -m repro check sync_zoo_treiber --budget 200
    python -m repro check treiber --budget 50 --faults "timer_skew:±8"
    python -m repro check cluster_lease --budget 60 --nodes 3
    python -m repro check cluster_lease --cluster "loss:p=0.1;skew:80"
    python -m repro check replay repro.treiber.json
    python -m repro bench --list
    python -m repro bench --quick --baseline benchmarks/baseline.json
    python -m repro bench snapshot_roundtrip --seed 7
    python -m repro bench trace_fastpath --profile
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from .config import MachineConfig
from .harness import EXPERIMENTS, run_experiment
from .harness.runner import PAPER_THREAD_COUNTS, series_table
from .trace import (ContentionHeatmap, InvariantTracer, JsonlTracer,
                    reconcile)


class _CliError(Exception):
    """A user-input problem: printed as one line, exit code 2."""


def _parse_threads(spec: str) -> tuple[int, ...]:
    """Parse a ``--threads`` list ("2,4,8"); positive integers only."""
    parts = [p.strip() for p in spec.split(",")]
    counts = []
    for p in parts:
        if not p:
            raise _CliError(f"--threads: empty entry in {spec!r}")
        try:
            n = int(p)
        except ValueError:
            raise _CliError(f"--threads: {p!r} is not an integer") from None
        if n <= 0:
            raise _CliError(f"--threads: {n} is not a positive thread count")
        counts.append(n)
    if not counts:
        raise _CliError("--threads: no thread counts given")
    return tuple(counts)


def _parse_jobs(spec: str) -> int:
    """Parse a ``--jobs`` value; positive integers only."""
    try:
        n = int(spec)
    except ValueError:
        raise _CliError(f"--jobs: {spec!r} is not an integer") from None
    if n < 1:
        raise _CliError(f"--jobs: {n} is not a positive job count")
    return n


def _parse_seed(spec: str) -> int:
    """Parse a ``--seed`` value; non-negative integers only."""
    try:
        n = int(spec)
    except ValueError:
        raise _CliError(f"--seed: {spec!r} is not an integer") from None
    if n < 0:
        raise _CliError(f"--seed: {n} is negative")
    return n


def _parse_metric(spec: str, *, allow_all: bool = True) -> str:
    """Validate a ``--metric`` name against the RunResult metrics."""
    from .harness.runner import valid_metrics

    choices = (("all",) if allow_all else ()) + valid_metrics()
    if spec not in choices:
        raise _CliError(f"--metric: unknown metric {spec!r} "
                        f"(choose from: {', '.join(choices)})")
    return spec


def _parse_nodes(spec: str) -> int:
    """Parse a ``--nodes`` value.  Non-integers are a CLI error; a bad
    count is a ConfigError naming the flag, same as ClusterConfig's own
    validation raises."""
    from .errors import ConfigError

    try:
        n = int(spec)
    except ValueError:
        raise _CliError(f"--nodes: {spec!r} is not an integer") from None
    if n < 1:
        raise ConfigError(f"--nodes must be >= 1, got {n}")
    return n


def _parse_cluster_spec(spec: str) -> str:
    """Validate a ``--cluster`` inter-node fault spec string."""
    from .cluster import parse_cluster_spec
    from .errors import ConfigError

    try:
        parse_cluster_spec(spec)
    except ConfigError as err:
        raise _CliError(f"--cluster: {err}") from None
    return spec


def _parse_engine(spec: str) -> str:
    """Validate an ``--engine`` choice."""
    if spec not in ("fast", "compat"):
        raise _CliError(f"--engine: unknown engine {spec!r} "
                        "(choose from: fast, compat)")
    return spec


def _parse_faults(spec: str) -> str:
    """Validate a ``--faults`` spec string (grammar only; per-machine
    range checks like slow-core ids happen in MachineConfig.validate)."""
    from .errors import ConfigError
    from .faults import parse_fault_spec

    try:
        parse_fault_spec(spec)
    except ConfigError as err:
        raise _CliError(f"--faults: {err}") from None
    return spec


def _parse_network(spec: str) -> str:
    """Validate a ``--network`` contended-interconnect spec string (see
    :mod:`repro.coherence.links`)."""
    from .coherence.links import parse_network_spec
    from .errors import ConfigError

    try:
        parse_network_spec(spec)
    except ConfigError as err:
        raise _CliError(f"--network: {err}") from None
    return spec


def _parse_traffic(spec: str) -> str:
    """Validate a ``--traffic`` open-loop arrival spec string (see
    :mod:`repro.traffic`); an empty/arrival-free spec is a CLI error."""
    from .errors import ConfigError
    from .traffic import parse_traffic_spec

    try:
        parsed = parse_traffic_spec(spec)
    except ConfigError as err:
        raise _CliError(f"--traffic: {err}") from None
    if parsed.empty:
        raise _CliError("--traffic: empty spec (give an arrival clause, "
                        "e.g. 'poisson:rate=2.0')")
    return spec


def _get_experiment(exp_id: str):
    if exp_id not in EXPERIMENTS:
        raise _CliError(f"unknown experiment {exp_id!r}; "
                        "try: python -m repro list")
    return EXPERIMENTS[exp_id]


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for exp_id, exp in EXPERIMENTS.items():
        print(f"{exp_id:<{width}}  {exp.title}")
        print(f"{'':<{width}}  paper: {exp.paper_claim}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .errors import CheckpointError, CheckpointMismatch

    exp = _get_experiment(args.experiment)
    threads = _parse_threads(args.threads)
    jobs = _parse_jobs(args.jobs)
    metric = _parse_metric(args.metric)
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = _parse_seed(args.seed)
    if args.faults:
        overrides["faults"] = _parse_faults(args.faults)
    if args.network:
        overrides["network"] = _parse_network(args.network)
    if args.engine != "fast":
        overrides["engine"] = _parse_engine(args.engine)
    if args.traffic:
        import inspect

        if "traffic" not in inspect.signature(exp.bench).parameters:
            raise _CliError(
                f"--traffic: experiment {exp.id!r} has no open-loop "
                "variant (try: counter, treiber, skiplist, or "
                "cluster_shards)")
        overrides["traffic"] = _parse_traffic(args.traffic)
    if args.nodes is not None:
        if "nodes" not in exp.common:
            raise _CliError(
                f"--nodes: experiment {exp.id!r} is not a cluster "
                "experiment (try: python -m repro run cluster_shards)")
        overrides["nodes"] = _parse_nodes(args.nodes)
    if args.invariants:
        if jobs > 1:
            raise _CliError("--invariants requires --jobs 1 (trace sinks "
                            "cannot cross process boundaries)")
        if "nodes" in exp.common:
            raise _CliError(
                "--invariants: cluster experiments check invariants via "
                "the safety campaign (python -m repro check cluster_lease)")
        overrides["sinks"] = [InvariantTracer()]

    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        raise _CliError(f"--checkpoint-every: {args.checkpoint_every} is "
                        "not a positive cycle count")
    checkpointing = bool(args.checkpoint_every or args.resume
                         or args.warm_start)
    policy = None
    if checkpointing and "nodes" in exp.common:
        raise _CliError(
            "--checkpoint-every/--resume/--warm-start: the per-cell "
            "checkpoint hook is single-machine; cluster state roundtrips "
            "through Cluster.state_dict()/load_state() (see DESIGN.md "
            "§13)")
    if checkpointing:
        if jobs > 1:
            raise _CliError(
                "--checkpoint-every/--resume/--warm-start require --jobs 1 "
                "(the checkpoint hook is process-local)")
        from .state import CheckpointPolicy

        try:
            policy = CheckpointPolicy(
                every=args.checkpoint_every,
                directory=args.checkpoint_dir,
                resume_path=args.resume,
                warm_start=args.warm_start)
        except (OSError, CheckpointError) as err:
            raise _CliError(f"--resume: {err}") from None

    print(f"{exp.id}: {exp.title}")
    from .state import hooks

    if policy is not None:
        hooks.run_hook = policy
    try:
        res = run_experiment(args.experiment, thread_counts=threads,
                             jobs=jobs, **overrides)
    except (CheckpointError, CheckpointMismatch) as err:
        raise _CliError(f"checkpoint: {err}") from None
    finally:
        if policy is not None:
            hooks.run_hook = None

    if policy is not None:
        for label, cycle in policy.restored:
            print(f"restored {label} at cycle {cycle}")
        if policy.saved:
            print(f"saved {len(policy.saved)} checkpoint(s) to "
                  f"{args.checkpoint_dir}")
        if args.resume and not policy.resume_consumed:
            detail = policy.last_mismatch or "no sweep cell ran"
            raise _CliError(
                f"--resume: {args.resume} matched no sweep cell ({detail})")
    labels = {"mops_per_sec": "throughput (Mops/s)",
              "nj_per_op": "energy (nJ/op)"}
    shown = (tuple(labels) if metric == "all" else (metric,))
    for m in shown:
        print(f"\n-- {labels.get(m, m)} --")
        print(series_table(res, metric=m))
    slo_failed = False
    if args.traffic:
        from .stats import format_table

        lat_rows = []
        for name, series in res.items():
            for n, r in zip(threads, series):
                if r.latency is None:
                    continue
                lat = r.latency
                slo_failed |= lat.get("slo") == "fail"
                lat_rows.append({
                    "variant": name, "threads": n,
                    "p50": lat.get("p50"), "p99": lat.get("p99"),
                    "p999": lat.get("p999"),
                    "mean": (round(lat["mean"], 1)
                             if lat.get("mean") is not None else None),
                    "shed": lat["shed"],
                    "shed%": round(100 * lat["shed_frac"], 1),
                    "slo": lat["slo"],
                })
        if lat_rows:
            print("\n-- tail latency (cycles, enqueue->complete) --")
            print(format_table(lat_rows))
    if args.invariants:
        checker = overrides["sinks"][0]
        print(f"\ninvariants: OK ({checker.checks_run} checks)")
    if args.save:
        payload = {
            "experiment": exp.id,
            "title": exp.title,
            "thread_counts": list(threads),
            "results": {
                name: [dataclasses.asdict(r) for r in series]
                for name, series in res.items()
            },
        }
        with open(args.save, "w", encoding="utf-8") as fp:
            json.dump(payload, fp, indent=2, sort_keys=True)
            fp.write("\n")
        print(f"\nsaved results to {args.save}")
    if slo_failed:
        # The SLO gate: a stated bound was violated somewhere in the sweep.
        print("SLO: FAIL (see the tail-latency table)", file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    exp = _get_experiment(args.experiment)
    threads = _parse_threads(args.threads)
    seed = _parse_seed(args.seed) if args.seed is not None else None
    faults = _parse_faults(args.faults) if args.faults else None
    network = _parse_network(args.network) if args.network else None
    out_path = args.out or f"{args.experiment}.trace.jsonl"
    sinks = [JsonlTracer(out_path, max_events=args.limit)]
    jsonl = sinks[0]
    heatmap = None
    if args.heatmap:
        heatmap = ContentionHeatmap()
        sinks.append(heatmap)
    if args.invariants:
        sinks.append(InvariantTracer())
    mismatches = 0
    with jsonl:
        for name, kw in exp.variants.items():
            for n in threads:
                jsonl.annotate(variant=name, threads=n)
                before = dict(jsonl.counts)
                merged = {**exp.common, **kw, "sinks": sinks}
                if seed is not None or faults is not None \
                        or network is not None:
                    base = merged.get("config") or MachineConfig()
                    if seed is not None:
                        base = dataclasses.replace(base, seed=seed)
                    if faults is not None:
                        base = dataclasses.replace(base, fault_spec=faults)
                    if network is not None:
                        base = dataclasses.replace(
                            base, network=dataclasses.replace(
                                base.network, spec=network))
                    merged["config"] = base
                res = exp.bench(n, **merged)
                delta = {k: v - before.get(k, 0)
                         for k, v in jsonl.counts.items()}
                problems = reconcile(delta, res.counters)
                jsonl.annotate()
                jsonl.write_line({
                    "kind": "run_summary", "variant": name, "threads": n,
                    "cycles": res.cycles, "ops": res.ops,
                    "events": sum(delta.values()),
                    "reconciled": not problems,
                })
                status = "ok" if not problems else "MISMATCH"
                print(f"{exp.id}/{name} t={n}: {sum(delta.values())} "
                      f"events, ops={res.ops}, reconcile={status}")
                for p in problems:
                    print(f"  {p}", file=sys.stderr)
                mismatches += bool(problems)
    print(f"wrote {jsonl.written} of {jsonl.total} events to {out_path}")
    if heatmap is not None:
        print("\n-- contention heatmap --")
        print(heatmap.report())
    if mismatches:
        print(f"{mismatches} run(s) failed trace/counter reconciliation",
              file=sys.stderr)
        return 1
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .check import (CLUSTER_REPRO_FORMAT, load_repro,
                        replay_cluster_repro, replay_repro, run_campaign,
                        run_cluster_campaign)
    from .errors import ReproError

    if args.list_targets:
        from .check import EXPERIMENT_ALIASES
        from .check.campaign import TARGETS

        width = max(len(k) for k in TARGETS)
        for name, target in TARGETS.items():
            variants = ", ".join(v for v, _cfg in target.configs)
            print(f"{name:<{width}}  {target.title} [{variants}]")
        aliases = ", ".join(f"{a}->{t}"
                            for a, t in sorted(EXPERIMENT_ALIASES.items()))
        print(f"\nexperiment aliases: {aliases}")
        print(f"\n{'cluster_lease':<{width}}  PaxosLease safety: at most "
              "one node holds an object, fuzzed under message loss/dup/"
              "partitions/timer skew [counter, treiber; --nodes, "
              "--cluster, --quorum, --structure]")
        return 0
    if args.target is None:
        raise _CliError("check: missing target "
                        "(try: python -m repro check --list-targets)")
    if args.target == "replay":
        if not args.repro:
            raise _CliError("check replay: missing repro file "
                            "(usage: python -m repro check replay FILE)")
        if args.faults:
            raise _CliError("check replay: --faults is recorded in the "
                            "repro file; it cannot be overridden on replay")
        if args.traffic:
            raise _CliError("check replay: --traffic is recorded in the "
                            "repro file; it cannot be overridden on replay")
        try:
            with open(args.repro, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError) as err:
            raise _CliError(f"check replay: {err}") from None
        if data.get("format") == CLUSTER_REPRO_FORMAT:
            print(f"replaying {args.repro}: cluster "
                  f"structure={data.get('structure', 'counter')} "
                  f"nodes={data.get('nodes')} "
                  f"quorum={data.get('quorum')} "
                  f"decisions={len(data.get('decisions', {}))}")
            try:
                out = replay_cluster_repro(data)
            except ReproError as err:
                raise _CliError(f"check replay: {err}") from None
        else:
            try:
                repro = load_repro(args.repro)
            except (OSError, ValueError, ReproError) as err:
                raise _CliError(f"check replay: {err}") from None
            print(f"replaying {args.repro}: target={repro['target']} "
                  f"variant={repro['variant']} "
                  f"decisions={len(repro.get('decisions', {}))}")
            out = replay_repro(repro)
        if out.ok:
            print("replay PASSED (the recorded failure did not reproduce)")
            return 1
        print(f"replay reproduced the failure: [{out.kind}] {out.detail}")
        return 0
    if args.repro is not None:
        raise _CliError(f"check: unexpected extra argument {args.repro!r}")

    seed = _parse_seed(args.seed)
    if args.budget < 1:
        raise _CliError(f"--budget: {args.budget} is not a positive "
                        "schedule count")
    engine = _parse_engine(args.engine)

    if args.target in ("cluster_lease", "cluster"):
        if args.faults:
            raise _CliError(
                "check cluster_lease: inter-node faults come from "
                "--cluster SPEC (e.g. 'loss:p=0.1;skew:80'), not --faults")
        if args.traffic:
            raise _CliError(
                "check cluster_lease: --traffic applies to the "
                "single-machine targets (counter, treiber); the cluster "
                "campaign drives its own workload")
        nodes = _parse_nodes(args.nodes) if args.nodes is not None else None
        spec = (_parse_cluster_spec(args.cluster)
                if args.cluster is not None else None)
        quorum = None
        if args.quorum is not None:
            try:
                quorum = int(args.quorum)
            except ValueError:
                raise _CliError(f"--quorum: {args.quorum!r} is not an "
                                "integer") from None
        if args.structure not in ("counter", "treiber"):
            raise _CliError(f"--structure: unknown structure "
                            f"{args.structure!r} (counter or treiber)")
        try:
            report = run_cluster_campaign(
                budget=args.budget, seed=seed, nodes=nodes,
                cluster_spec=spec, quorum=quorum,
                structure=args.structure, shrink=not args.no_shrink,
                engine=engine, progress=lambda msg: print(f"  {msg}"))
        except ReproError as err:
            raise _CliError(str(err)) from None
        return _report_campaign(report, args.save)

    faults = _parse_faults(args.faults) if args.faults else ""
    if faults:
        print(f"fault campaign: {faults}")
    traffic = _parse_traffic(args.traffic) if args.traffic else ""
    if traffic:
        print(f"open-loop traffic: {traffic}")
    try:
        report = run_campaign(args.target, budget=args.budget, seed=seed,
                              shrink=not args.no_shrink,
                              fault_spec=faults, engine=engine,
                              traffic=traffic,
                              progress=lambda msg: print(f"  {msg}"))
    except ReproError as err:
        raise _CliError(str(err)) from None
    return _report_campaign(report, args.save)


def _report_campaign(report, save: str | None) -> int:
    print(f"check {report.target}: explored {report.schedules_run} "
          f"schedule(s), checked {report.histories_checked} histories / "
          f"{report.ops_checked} operations "
          f"({', '.join(f'{k}: {v}' for k, v in report.per_variant.items())})")
    if report.inconclusive:
        print(f"  {report.inconclusive} history check(s) hit the state "
              "budget (inconclusive, counted as pass)")
    if report.ok:
        print("no failures found")
        return 0
    fail = report.failure
    print(f"\nFAILURE [{fail.kind}] after {report.schedules_run} "
          f"schedule(s): {fail.detail}")
    if report.shrink_runs:
        print(f"shrunk to {len(report.repro['decisions'])} schedule "
              f"decision(s) in {report.shrink_runs} replay run(s)")
        if report.shrink_restores:
            print(f"prefix-restore: {report.shrink_restores} replay(s) "
                  f"resumed from checkpoints, saving "
                  f"{report.shrink_cycles_saved} of "
                  f"{report.shrink_cycles_replayed + report.shrink_cycles_saved} "
                  "replayed cycles")
    out_path = save or f"repro.{report.target}.json"
    with open(out_path, "w", encoding="utf-8") as fp:
        json.dump(report.repro, fp, indent=2, sort_keys=True)
        fp.write("\n")
    print(f"wrote repro to {out_path} "
          f"(replay: python -m repro check replay {out_path})")
    return 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from . import bench
    from .errors import ConfigError

    if args.list:
        width = max(len(k) for k in bench.TARGETS)
        for name, target in bench.TARGETS.items():
            print(f"{name:<{width}}  {target.title}")
        return 0
    jobs = _parse_jobs(args.jobs)
    seed = _parse_seed(args.seed) if args.seed is not None else None
    fault_spec = _parse_faults(args.faults) if args.faults else ""
    engine = _parse_engine(args.engine)
    traffic = _parse_traffic(args.traffic) if args.traffic else ""
    if args.repeats < 1:
        raise _CliError(f"--repeats: {args.repeats} is not a positive "
                        "repeat count")
    if not 0.0 < args.tolerance < 1.0:
        raise _CliError(f"--tolerance: {args.tolerance} is not a fraction "
                        "in (0, 1)")
    names = args.targets or bench.default_target_names()
    for name in names:
        if name not in bench.TARGETS:
            known = ", ".join(bench.TARGETS)
            raise _CliError(f"bench: unknown target {name!r} "
                            f"(known: {known})")

    baseline = None
    if args.baseline:
        try:
            baseline = bench.load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            raise _CliError(f"--baseline: {err}") from None

    mode = "quick" if args.quick else "full"
    extras = f", faults={fault_spec!r}" if fault_spec else ""
    if seed is not None:
        extras += f", seed={seed}"
    if engine != "fast":
        extras += f", engine={engine}"
    if traffic:
        extras += f", traffic={traffic!r}"
    print(f"bench ({mode}, repeats={args.repeats}, jobs={jobs}{extras}): "
          f"{', '.join(names)}")
    try:
        results = bench.run_many(names, quick=args.quick, jobs=jobs,
                                 repeats=args.repeats,
                                 fault_spec=fault_spec, seed=seed,
                                 engine=engine, traffic=traffic)
    except ConfigError as err:
        raise _CliError(f"bench: {err}") from None
    for name in names:
        print("  " + bench.record_summary_line(results[name]))
    paths = bench.write_results(results, args.out_dir)
    print(f"wrote {len(paths)} record(s) to "
          f"{args.out_dir or '.'}/BENCH_<name>.json")

    if args.profile:
        print()
        for name in names:
            bench.profile_target(name, quick=args.quick)

    if args.write_baseline:
        bench.write_baseline(results, args.write_baseline)
        print(f"wrote baseline to {args.write_baseline}")

    if baseline is not None:
        rows = bench.diff_results(results, baseline,
                                  tolerance=args.tolerance)
        print(f"\n-- vs baseline {args.baseline} "
              f"(tolerance {args.tolerance:.0%}) --")
        print(bench.format_diff(rows))
        regressed = [r["name"] for r in rows if r["regressed"]]
        if regressed:
            print(f"perf regression in: {', '.join(regressed)}",
                  file=sys.stderr)
            return 1
    return 0


def _cmd_config(_args: argparse.Namespace) -> int:
    cfg = MachineConfig()
    print("Table 1 machine configuration (defaults):")
    print(f"  core model        : in-order, {cfg.clock_hz / 1e9:g} GHz")
    print(f"  L1 per tile       : {cfg.l1_size_bytes // 1024} KB, "
          f"{cfg.l1_assoc}-way, {cfg.l1_latency} cycle")
    print(f"  L2 per tile       : {cfg.l2_size_bytes_per_tile // 1024} KB, "
          f"{cfg.l2_assoc}-way, tag/data {cfg.l2_tag_latency}/"
          f"{cfg.l2_data_latency} cycles")
    print(f"  cache line        : {cfg.line_size} bytes")
    print(f"  protocol          : {cfg.protocol.upper()} "
          "(private L1, shared L2)")
    print(f"  MAX_LEASE_TIME    : {cfg.lease.max_lease_time} cycles")
    print(f"  MAX_NUM_LEASES    : {cfg.lease.max_num_leases}")
    print(f"  multilease mode   : {cfg.lease.multilease_mode}")
    print(f"  prioritization    : {cfg.lease.prioritize_regular_requests}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Lease/Release (PPoPP 2016) reproduction harness")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")
    sub.add_parser("config", help="print the machine configuration")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment id (see `list`)")
    run_p.add_argument(
        "--threads", default=",".join(map(str, PAPER_THREAD_COUNTS)),
        help="comma-separated thread counts (default: the paper's axis)")
    run_p.add_argument("--metric", default="all", metavar="METRIC",
                       help="'all' or any numeric RunResult metric "
                            "(mops_per_sec, nj_per_op, messages_per_op, "
                            "...); validated against the full list")
    run_p.add_argument("--jobs", default="1", metavar="N",
                       help="run sweep cells on N worker processes")
    run_p.add_argument("--save", metavar="OUT.json",
                       help="write the raw results as JSON")
    run_p.add_argument("--invariants", action="store_true",
                       help="check coherence/lease invariants on every "
                            "event (slow; implies --jobs 1)")
    run_p.add_argument("--seed", default=None, metavar="N",
                       help="reseed the simulated machine for the whole "
                            "sweep (default: the config's seed)")
    run_p.add_argument("--faults", default=None, metavar="SPEC",
                       help="fault-injection spec, e.g. "
                            "'net_jitter:p=0.01,max=200;dir_nack:p=0.005' "
                            "(deterministic per seed)")
    run_p.add_argument("--network", default=None, metavar="SPEC",
                       help="contended-interconnect spec, e.g. "
                            "'link:bw=2,queue=16;arb:wrr,weights=2:1;"
                            "port:dir=2,mem=4'; 'infinite' (the default) "
                            "keeps the contention-free analytic model")
    run_p.add_argument("--engine", default="fast", metavar="ENGINE",
                       help="run-loop engine: 'fast' (time-wheel + "
                            "batching, the default) or 'compat' (classic "
                            "heap); results are bit-identical either way")
    run_p.add_argument("--traffic", default=None, metavar="SPEC",
                       help="open-loop arrival spec, e.g. "
                            "'poisson:rate=2.0,zipf:s=1.2,tenants=2,"
                            "slo:p99=8000'; reports tail-latency "
                            "percentiles and exits 1 on SLO failure "
                            "(experiments: counter, treiber, skiplist, "
                            "cluster_shards)")
    run_p.add_argument("--nodes", default=None, metavar="N",
                       help="node count for cluster experiments (e.g. "
                            "cluster_shards); must be >= 1")
    run_p.add_argument("--checkpoint-every", type=int, default=None,
                       metavar="N",
                       help="save a repro-ckpt/1 checkpoint every N "
                            "simulated cycles per sweep cell (implies "
                            "--jobs 1)")
    run_p.add_argument("--checkpoint-dir", default="checkpoints",
                       metavar="DIR",
                       help="where checkpoint files go and where "
                            "--warm-start looks (default: checkpoints/)")
    run_p.add_argument("--resume", default=None, metavar="CKPT.json",
                       help="restore the matching sweep cell from this "
                            "checkpoint instead of running it from cycle "
                            "0; refuses mismatched configs")
    run_p.add_argument("--warm-start", action="store_true",
                       help="restore every sweep cell from its newest "
                            "compatible checkpoint in --checkpoint-dir, "
                            "when one exists")

    trace_p = sub.add_parser(
        "trace", help="run one experiment with the JSONL event tracer")
    trace_p.add_argument("experiment", help="experiment id (see `list`)")
    trace_p.add_argument("--threads", default="4",
                         help="comma-separated thread counts (default: 4)")
    trace_p.add_argument("--out", metavar="FILE.jsonl",
                         help="output path (default: <experiment>"
                              ".trace.jsonl)")
    trace_p.add_argument("--limit", type=int, default=None, metavar="N",
                         help="write at most N event lines (counts still "
                              "cover the full stream)")
    trace_p.add_argument("--heatmap", action="store_true",
                         help="print the per-allocation contention heatmap")
    trace_p.add_argument("--invariants", action="store_true",
                         help="also check invariants on every event")
    trace_p.add_argument("--seed", default=None, metavar="N",
                         help="reseed the simulated machine (default: the "
                              "config's seed)")
    trace_p.add_argument("--faults", default=None, metavar="SPEC",
                         help="fault-injection spec; fault events appear "
                              "in the JSONL stream")
    trace_p.add_argument("--network", default=None, metavar="SPEC",
                         help="contended-interconnect spec; link_queued/"
                              "link_granted/port_busy events appear in "
                              "the JSONL stream")

    check_p = sub.add_parser(
        "check", help="fuzz schedules and check linearizability + lease "
                      "properties")
    check_p.add_argument(
        "target", nargs="?", default=None,
        help="check target (see --list-targets), an experiment id that "
             "maps to one (e.g. fig2_stack), or 'replay'")
    check_p.add_argument("--list-targets", action="store_true",
                         help="list the check targets, their variants and "
                              "experiment aliases, then exit")
    check_p.add_argument("repro", nargs="?", default=None,
                         help="repro file path (with target 'replay')")
    check_p.add_argument("--budget", type=int, default=100, metavar="N",
                         help="number of schedules to explore (default 100)")
    check_p.add_argument("--seed", default="1", metavar="N",
                         help="campaign seed: drives both the perturbation "
                              "strategies and the per-schedule machine "
                              "seeds (default 1)")
    check_p.add_argument("--no-shrink", action="store_true",
                         help="skip ddmin shrinking of a failing schedule")
    check_p.add_argument("--save", metavar="REPRO.json", default=None,
                         help="where to write the repro on failure "
                              "(default: repro.<target>.json)")
    check_p.add_argument("--faults", default=None, metavar="SPEC",
                         help="fuzz schedules under this fault spec; the "
                              "spec is recorded in repro files so replay "
                              "reproduces the same faults")
    check_p.add_argument("--engine", default="fast", metavar="ENGINE",
                         help="run-loop engine recorded in repro files "
                              "('fast' or 'compat'); perturbed schedules "
                              "force the compat loop transparently")
    check_p.add_argument("--traffic", default=None, metavar="SPEC",
                         help="fuzz the open-loop workload variant under "
                              "this arrival spec (targets: counter, "
                              "treiber); recorded in repro files")
    check_p.add_argument("--nodes", default=None, metavar="N",
                         help="(cluster_lease) pin the node count instead "
                              "of sweeping 2..5")
    check_p.add_argument("--cluster", default=None, metavar="SPEC",
                         help="(cluster_lease) pin the inter-node fault "
                              "spec, e.g. 'loss:p=0.1;dup:p=0.05;"
                              "partition:p=0.05,len=2000;skew:80', "
                              "instead of sweeping the built-in grid")
    check_p.add_argument("--quorum", default=None, metavar="Q",
                         help="(cluster_lease) override the majority "
                              "quorum; 1 on a multi-node cluster is the "
                              "deliberate-bug self-test the campaign must "
                              "catch")
    check_p.add_argument("--structure", default="counter",
                         metavar="STRUCT",
                         help="(cluster_lease) workload structure: "
                              "'counter' (default) or 'treiber'")

    bench_p = sub.add_parser(
        "bench", help="time the simulator's hot loops; gate against a "
                      "perf baseline")
    bench_p.add_argument("targets", nargs="*", metavar="TARGET",
                         help="bench targets (default: all; see "
                              "repro.bench.TARGETS)")
    bench_p.add_argument("--list", action="store_true",
                         help="list the bench targets and exit")
    bench_p.add_argument("--quick", action="store_true",
                         help="shrunk workloads for CI smoke runs")
    bench_p.add_argument("--seed", default=None, metavar="N",
                         help="reseed the simulated machines the targets "
                              "build (recorded in the bench records; "
                              "pure-scheduler targets ignore it)")
    bench_p.add_argument("--jobs", default="1", metavar="N",
                         help="run targets on N worker processes (timing "
                              "fidelity drops; baselines should use 1)")
    bench_p.add_argument("--repeats", type=int, default=3, metavar="N",
                         help="timing repetitions per target; best-of-N "
                              "is recorded (default 3)")
    bench_p.add_argument("--profile", action="store_true",
                         help="also print a cProfile summary per target")
    bench_p.add_argument("--baseline", metavar="FILE.json", default=None,
                         help="diff normalized scores against this "
                              "baseline; exit 1 on regression")
    bench_p.add_argument("--tolerance", type=float, default=0.30,
                         metavar="F",
                         help="allowed fractional score drop before a "
                              "target counts as regressed (default 0.30)")
    bench_p.add_argument("--out-dir", default=".", metavar="DIR",
                         help="where BENCH_<name>.json records go "
                              "(default: current directory)")
    bench_p.add_argument("--write-baseline", metavar="FILE.json",
                         default=None,
                         help="bundle this run's records into a new "
                              "baseline file")
    bench_p.add_argument("--faults", default=None, metavar="SPEC",
                         help="run the machine-building targets under "
                              "this fault spec (don't gate faulty runs "
                              "against a fault-free baseline)")
    bench_p.add_argument("--engine", default="fast", metavar="ENGINE",
                         help="run-loop engine for the machine-building "
                              "targets ('fast' or 'compat'); recorded in "
                              "the bench records")
    bench_p.add_argument("--traffic", default=None, metavar="SPEC",
                         help="override the arrival spec of open-loop "
                              "targets (tail_latency)")
    return parser


def main(argv: list[str] | None = None) -> int:
    from .errors import ConfigError

    args = build_parser().parse_args(argv)
    handler = {"list": _cmd_list, "run": _cmd_run, "trace": _cmd_trace,
               "check": _cmd_check, "bench": _cmd_bench,
               "config": _cmd_config}[args.command]
    try:
        return handler(args)
    except (_CliError, ConfigError) as err:
        print(str(err), file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
