"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``               -- list the registered experiments (one per paper
                            figure/table) with their paper claims.
* ``run <experiment>``   -- run one experiment and print its series.
* ``config``             -- print the Table-1 machine configuration.

Examples::

    python -m repro list
    python -m repro run fig2_stack --threads 2,8,32
    python -m repro run fig4_tl2 --metric nj_per_op
"""

from __future__ import annotations

import argparse
import sys

from .config import MachineConfig
from .harness import EXPERIMENTS, run_experiment
from .harness.runner import PAPER_THREAD_COUNTS, series_table


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for exp_id, exp in EXPERIMENTS.items():
        print(f"{exp_id:<{width}}  {exp.title}")
        print(f"{'':<{width}}  paper: {exp.paper_claim}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; "
              f"try: python -m repro list", file=sys.stderr)
        return 2
    threads = tuple(int(t) for t in args.threads.split(","))
    exp = EXPERIMENTS[args.experiment]
    print(f"{exp.id}: {exp.title}")
    res = run_experiment(args.experiment, thread_counts=threads)
    for metric, label in (("mops_per_sec", "throughput (Mops/s)"),
                          ("nj_per_op", "energy (nJ/op)")):
        if args.metric in ("all", metric):
            print(f"\n-- {label} --")
            print(series_table(res, metric=metric))
    return 0


def _cmd_config(_args: argparse.Namespace) -> int:
    cfg = MachineConfig()
    print("Table 1 machine configuration (defaults):")
    print(f"  core model        : in-order, {cfg.clock_hz / 1e9:g} GHz")
    print(f"  L1 per tile       : {cfg.l1_size_bytes // 1024} KB, "
          f"{cfg.l1_assoc}-way, {cfg.l1_latency} cycle")
    print(f"  L2 per tile       : {cfg.l2_size_bytes_per_tile // 1024} KB, "
          f"{cfg.l2_assoc}-way, tag/data {cfg.l2_tag_latency}/"
          f"{cfg.l2_data_latency} cycles")
    print(f"  cache line        : {cfg.line_size} bytes")
    print(f"  protocol          : {cfg.protocol.upper()} "
          "(private L1, shared L2)")
    print(f"  MAX_LEASE_TIME    : {cfg.lease.max_lease_time} cycles")
    print(f"  MAX_NUM_LEASES    : {cfg.lease.max_num_leases}")
    print(f"  multilease mode   : {cfg.lease.multilease_mode}")
    print(f"  prioritization    : {cfg.lease.prioritize_regular_requests}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Lease/Release (PPoPP 2016) reproduction harness")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")
    sub.add_parser("config", help="print the machine configuration")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment id (see `list`)")
    run_p.add_argument(
        "--threads", default=",".join(map(str, PAPER_THREAD_COUNTS)),
        help="comma-separated thread counts (default: the paper's axis)")
    run_p.add_argument("--metric", default="all",
                       choices=["all", "mops_per_sec", "nj_per_op"])
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return {"list": _cmd_list, "run": _cmd_run,
            "config": _cmd_config}[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
