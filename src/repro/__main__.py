"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``               -- list the registered experiments (one per paper
                            figure/table) with their paper claims.
* ``run <experiment>``   -- run one experiment and print its series.
                            ``--jobs N`` fans the sweep cells over worker
                            processes; ``--save out.json`` writes the raw
                            results; ``--invariants`` checks coherence/
                            lease invariants continuously while running.
* ``trace <experiment>`` -- run one experiment with the JSONL tracer
                            attached, writing every simulator event to a
                            file and reconciling the trace against the
                            run's counters.
* ``check <target>``     -- fuzz schedules of a contended structure and
                            check every history for linearizability plus
                            the lease properties; on failure, shrink the
                            schedule and write a replayable repro file.
                            ``check replay repro.json`` re-runs one.
* ``config``             -- print the Table-1 machine configuration.

``run`` and ``trace`` accept a global ``--seed N`` that reseeds the
simulated machine (and thereby every workload RNG) for the whole sweep.

Examples::

    python -m repro list
    python -m repro run fig2_stack --threads 2,8,32
    python -m repro run fig2_stack --jobs 4 --save stack.json --seed 7
    python -m repro run fig4_tl2 --metric nj_per_op
    python -m repro trace fig2_stack --threads 4 --heatmap
    python -m repro check treiber --budget 200 --seed 7
    python -m repro check replay repro.treiber.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from .config import MachineConfig
from .harness import EXPERIMENTS, run_experiment
from .harness.runner import PAPER_THREAD_COUNTS, series_table
from .trace import (ContentionHeatmap, InvariantTracer, JsonlTracer,
                    reconcile)


class _CliError(Exception):
    """A user-input problem: printed as one line, exit code 2."""


def _parse_threads(spec: str) -> tuple[int, ...]:
    """Parse a ``--threads`` list ("2,4,8"); positive integers only."""
    parts = [p.strip() for p in spec.split(",")]
    counts = []
    for p in parts:
        if not p:
            raise _CliError(f"--threads: empty entry in {spec!r}")
        try:
            n = int(p)
        except ValueError:
            raise _CliError(f"--threads: {p!r} is not an integer") from None
        if n <= 0:
            raise _CliError(f"--threads: {n} is not a positive thread count")
        counts.append(n)
    if not counts:
        raise _CliError("--threads: no thread counts given")
    return tuple(counts)


def _parse_seed(spec: str) -> int:
    """Parse a ``--seed`` value; non-negative integers only."""
    try:
        n = int(spec)
    except ValueError:
        raise _CliError(f"--seed: {spec!r} is not an integer") from None
    if n < 0:
        raise _CliError(f"--seed: {n} is negative")
    return n


def _get_experiment(exp_id: str):
    if exp_id not in EXPERIMENTS:
        raise _CliError(f"unknown experiment {exp_id!r}; "
                        "try: python -m repro list")
    return EXPERIMENTS[exp_id]


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for exp_id, exp in EXPERIMENTS.items():
        print(f"{exp_id:<{width}}  {exp.title}")
        print(f"{'':<{width}}  paper: {exp.paper_claim}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    exp = _get_experiment(args.experiment)
    threads = _parse_threads(args.threads)
    if args.jobs < 1:
        raise _CliError(f"--jobs: {args.jobs} is not a positive job count")
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = _parse_seed(args.seed)
    if args.invariants:
        if args.jobs > 1:
            raise _CliError("--invariants requires --jobs 1 (trace sinks "
                            "cannot cross process boundaries)")
        overrides["sinks"] = [InvariantTracer()]
    print(f"{exp.id}: {exp.title}")
    res = run_experiment(args.experiment, thread_counts=threads,
                         jobs=args.jobs, **overrides)
    for metric, label in (("mops_per_sec", "throughput (Mops/s)"),
                          ("nj_per_op", "energy (nJ/op)")):
        if args.metric in ("all", metric):
            print(f"\n-- {label} --")
            print(series_table(res, metric=metric))
    if args.invariants:
        checker = overrides["sinks"][0]
        print(f"\ninvariants: OK ({checker.checks_run} checks)")
    if args.save:
        payload = {
            "experiment": exp.id,
            "title": exp.title,
            "thread_counts": list(threads),
            "results": {
                name: [dataclasses.asdict(r) for r in series]
                for name, series in res.items()
            },
        }
        with open(args.save, "w", encoding="utf-8") as fp:
            json.dump(payload, fp, indent=2, sort_keys=True)
            fp.write("\n")
        print(f"\nsaved results to {args.save}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    exp = _get_experiment(args.experiment)
    threads = _parse_threads(args.threads)
    seed = _parse_seed(args.seed) if args.seed is not None else None
    out_path = args.out or f"{args.experiment}.trace.jsonl"
    sinks = [JsonlTracer(out_path, max_events=args.limit)]
    jsonl = sinks[0]
    heatmap = None
    if args.heatmap:
        heatmap = ContentionHeatmap()
        sinks.append(heatmap)
    if args.invariants:
        sinks.append(InvariantTracer())
    mismatches = 0
    with jsonl:
        for name, kw in exp.variants.items():
            for n in threads:
                jsonl.annotate(variant=name, threads=n)
                before = dict(jsonl.counts)
                merged = {**exp.common, **kw, "sinks": sinks}
                if seed is not None:
                    merged["config"] = dataclasses.replace(
                        merged.get("config") or MachineConfig(), seed=seed)
                res = exp.bench(n, **merged)
                delta = {k: v - before.get(k, 0)
                         for k, v in jsonl.counts.items()}
                problems = reconcile(delta, res.counters)
                jsonl.annotate()
                jsonl.write_line({
                    "kind": "run_summary", "variant": name, "threads": n,
                    "cycles": res.cycles, "ops": res.ops,
                    "events": sum(delta.values()),
                    "reconciled": not problems,
                })
                status = "ok" if not problems else "MISMATCH"
                print(f"{exp.id}/{name} t={n}: {sum(delta.values())} "
                      f"events, ops={res.ops}, reconcile={status}")
                for p in problems:
                    print(f"  {p}", file=sys.stderr)
                mismatches += bool(problems)
    print(f"wrote {jsonl.written} of {jsonl.total} events to {out_path}")
    if heatmap is not None:
        print("\n-- contention heatmap --")
        print(heatmap.report())
    if mismatches:
        print(f"{mismatches} run(s) failed trace/counter reconciliation",
              file=sys.stderr)
        return 1
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .check import load_repro, replay_repro, run_campaign
    from .errors import ReproError

    if args.target == "replay":
        if not args.repro:
            raise _CliError("check replay: missing repro file "
                            "(usage: python -m repro check replay FILE)")
        try:
            repro = load_repro(args.repro)
        except (OSError, ValueError, ReproError) as err:
            raise _CliError(f"check replay: {err}") from None
        print(f"replaying {args.repro}: target={repro['target']} "
              f"variant={repro['variant']} "
              f"decisions={len(repro.get('decisions', {}))}")
        out = replay_repro(repro)
        if out.ok:
            print("replay PASSED (the recorded failure did not reproduce)")
            return 1
        print(f"replay reproduced the failure: [{out.kind}] {out.detail}")
        return 0
    if args.repro is not None:
        raise _CliError(f"check: unexpected extra argument {args.repro!r}")

    seed = _parse_seed(args.seed)
    if args.budget < 1:
        raise _CliError(f"--budget: {args.budget} is not a positive "
                        "schedule count")
    try:
        report = run_campaign(args.target, budget=args.budget, seed=seed,
                              shrink=not args.no_shrink,
                              progress=lambda msg: print(f"  {msg}"))
    except ReproError as err:
        raise _CliError(str(err)) from None

    print(f"check {report.target}: explored {report.schedules_run} "
          f"schedule(s), checked {report.histories_checked} histories / "
          f"{report.ops_checked} operations "
          f"({', '.join(f'{k}: {v}' for k, v in report.per_variant.items())})")
    if report.inconclusive:
        print(f"  {report.inconclusive} history check(s) hit the state "
              "budget (inconclusive, counted as pass)")
    if report.ok:
        print("no failures found")
        return 0
    fail = report.failure
    print(f"\nFAILURE [{fail.kind}] after {report.schedules_run} "
          f"schedule(s): {fail.detail}")
    if report.shrink_runs:
        print(f"shrunk to {len(report.repro['decisions'])} schedule "
              f"decision(s) in {report.shrink_runs} replay run(s)")
    out_path = args.save or f"repro.{report.target}.json"
    with open(out_path, "w", encoding="utf-8") as fp:
        json.dump(report.repro, fp, indent=2, sort_keys=True)
        fp.write("\n")
    print(f"wrote repro to {out_path} "
          f"(replay: python -m repro check replay {out_path})")
    return 1


def _cmd_config(_args: argparse.Namespace) -> int:
    cfg = MachineConfig()
    print("Table 1 machine configuration (defaults):")
    print(f"  core model        : in-order, {cfg.clock_hz / 1e9:g} GHz")
    print(f"  L1 per tile       : {cfg.l1_size_bytes // 1024} KB, "
          f"{cfg.l1_assoc}-way, {cfg.l1_latency} cycle")
    print(f"  L2 per tile       : {cfg.l2_size_bytes_per_tile // 1024} KB, "
          f"{cfg.l2_assoc}-way, tag/data {cfg.l2_tag_latency}/"
          f"{cfg.l2_data_latency} cycles")
    print(f"  cache line        : {cfg.line_size} bytes")
    print(f"  protocol          : {cfg.protocol.upper()} "
          "(private L1, shared L2)")
    print(f"  MAX_LEASE_TIME    : {cfg.lease.max_lease_time} cycles")
    print(f"  MAX_NUM_LEASES    : {cfg.lease.max_num_leases}")
    print(f"  multilease mode   : {cfg.lease.multilease_mode}")
    print(f"  prioritization    : {cfg.lease.prioritize_regular_requests}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Lease/Release (PPoPP 2016) reproduction harness")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")
    sub.add_parser("config", help="print the machine configuration")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment id (see `list`)")
    run_p.add_argument(
        "--threads", default=",".join(map(str, PAPER_THREAD_COUNTS)),
        help="comma-separated thread counts (default: the paper's axis)")
    run_p.add_argument("--metric", default="all",
                       choices=["all", "mops_per_sec", "nj_per_op"])
    run_p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="run sweep cells on N worker processes")
    run_p.add_argument("--save", metavar="OUT.json",
                       help="write the raw results as JSON")
    run_p.add_argument("--invariants", action="store_true",
                       help="check coherence/lease invariants on every "
                            "event (slow; implies --jobs 1)")
    run_p.add_argument("--seed", default=None, metavar="N",
                       help="reseed the simulated machine for the whole "
                            "sweep (default: the config's seed)")

    trace_p = sub.add_parser(
        "trace", help="run one experiment with the JSONL event tracer")
    trace_p.add_argument("experiment", help="experiment id (see `list`)")
    trace_p.add_argument("--threads", default="4",
                         help="comma-separated thread counts (default: 4)")
    trace_p.add_argument("--out", metavar="FILE.jsonl",
                         help="output path (default: <experiment>"
                              ".trace.jsonl)")
    trace_p.add_argument("--limit", type=int, default=None, metavar="N",
                         help="write at most N event lines (counts still "
                              "cover the full stream)")
    trace_p.add_argument("--heatmap", action="store_true",
                         help="print the per-allocation contention heatmap")
    trace_p.add_argument("--invariants", action="store_true",
                         help="also check invariants on every event")
    trace_p.add_argument("--seed", default=None, metavar="N",
                         help="reseed the simulated machine (default: the "
                              "config's seed)")

    check_p = sub.add_parser(
        "check", help="fuzz schedules and check linearizability + lease "
                      "properties")
    check_p.add_argument(
        "target", help="check target (treiber, msqueue, multilease, "
                       "counter, pq, harris), an experiment id that maps "
                       "to one (e.g. fig2_stack), or 'replay'")
    check_p.add_argument("repro", nargs="?", default=None,
                         help="repro file path (with target 'replay')")
    check_p.add_argument("--budget", type=int, default=100, metavar="N",
                         help="number of schedules to explore (default 100)")
    check_p.add_argument("--seed", default="1", metavar="N",
                         help="campaign seed: drives both the perturbation "
                              "strategies and the per-schedule machine "
                              "seeds (default 1)")
    check_p.add_argument("--no-shrink", action="store_true",
                         help="skip ddmin shrinking of a failing schedule")
    check_p.add_argument("--save", metavar="REPRO.json", default=None,
                         help="where to write the repro on failure "
                              "(default: repro.<target>.json)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {"list": _cmd_list, "run": _cmd_run, "trace": _cmd_trace,
               "check": _cmd_check, "config": _cmd_config}[args.command]
    try:
        return handler(args)
    except _CliError as err:
        print(str(err), file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
