"""Lease-specific correctness properties, checked over the trace stream.

Beyond linearizability of the data structures, the lease mechanism itself
makes promises the checker should hold it to:

* **Proposition 1 (bounded deferral).**  A probe queued behind a lease is
  serviced within ``MAX_LEASE_TIME`` cycles of being queued -- the paper's
  starvation-freedom bound.  (The per-line "at most one queued probe"
  half of Proposition 1 is already enforced by
  :class:`~repro.trace.invariants.InvariantTracer`.)
* **MultiLease address order.**  A hardware multilease acquires its lines
  in sorted address order (Section 4's deadlock-avoidance rule); the
  ``LeaseStarted`` events a core emits for one multilease group must be
  strictly increasing in line address.
* **Deadlock freedom** is checked empirically by the campaign: a run that
  exhausts its (small) event budget without quiescing is reported as a
  timeout failure, which under multilease workloads is exactly what a
  lease-order deadlock looks like.

Violations raise :class:`PropertyViolation` from inside ``emit``, which
unwinds through ``Simulator.run`` with the cycle of the offending event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ProtocolError
from ..trace.bus import Tracer
from ..trace.events import (ClusterLeaseAcquired, ClusterLeaseExpired,
                            ClusterLeaseReleased, LeaseProbeQueued,
                            LeaseReleased, LeaseStarted, MultiLeaseIssued,
                            ProbeServiced, TraceEvent)

if TYPE_CHECKING:  # pragma: no cover
    from ..core.machine import Machine

__all__ = ["PropertyViolation", "LeasePropertyTracer",
           "ClusterLeaseSafetyTracer"]


class PropertyViolation(ProtocolError):
    """A lease-specific property (Proposition 1 bound, multilease order)
    was violated."""


class LeasePropertyTracer(Tracer):
    """Checks the Proposition-1 deferral bound and multilease sort order."""

    def __init__(self) -> None:
        self._machine: "Machine | None" = None
        self._max_defer = 0
        #: (core, line) -> cycle the probe was queued at that core.
        self._queued: dict[tuple[int, int], int] = {}
        #: core -> [lines remaining in the current multilease group,
        #:          last line started] for cores inside a multilease.
        self._group: dict[int, list] = {}
        #: worst observed deferral, for reporting.
        self.max_observed_defer = 0
        self.probes_checked = 0
        self.groups_checked = 0

    def bind(self, machine: "Machine") -> None:
        self._machine = machine
        self._max_defer = machine.config.lease.max_lease_time
        self._queued.clear()
        self._group.clear()

    def on_event(self, ev: TraceEvent) -> None:
        kind = type(ev)
        if kind is LeaseProbeQueued:
            self._queued[(ev.core, ev.line)] = ev.t
        elif kind is ProbeServiced:
            when = self._queued.pop((ev.core, ev.line), None)
            if when is None:
                return      # probe serviced immediately, never deferred
            delay = ev.t - when
            self.probes_checked += 1
            if delay > self.max_observed_defer:
                self.max_observed_defer = delay
            # The bound is the lease timer plus the cycle the expiry
            # handler itself takes to run.
            if delay > self._max_defer + 1:
                raise PropertyViolation(
                    f"Proposition 1 violated: probe on line {ev.line:#x} at "
                    f"core {ev.core} deferred {delay} cycles "
                    f"(MAX_LEASE_TIME={self._max_defer}), queued at cycle "
                    f"{when}, serviced at {ev.t}")
        elif kind is MultiLeaseIssued:
            if ev.ignored:
                self._group.pop(ev.core, None)
            else:
                self._group[ev.core] = [ev.n, None]
            self.groups_checked += 1
        elif kind is LeaseStarted:
            group = self._group.get(ev.core)
            if group is None:
                return      # single-line lease: no ordering obligation
            remaining, last = group
            if last is not None and ev.line <= last:
                raise PropertyViolation(
                    f"multilease out of address order at core {ev.core}: "
                    f"line {ev.line:#x} started after {last:#x} (hardware "
                    f"multilease must acquire in sorted order)")
            group[1] = ev.line
            group[0] = remaining - 1
            if group[0] <= 0:
                del self._group[ev.core]
        elif kind is LeaseReleased:
            # Any release ends the core's pending group expectation: a
            # broken/fifo release mid-group means the group was abandoned.
            self._group.pop(ev.core, None)

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self, codec=None) -> dict:
        return {
            "queued": [[c, l, t] for (c, l), t in self._queued.items()],
            "group": [[c, list(g)] for c, g in self._group.items()],
            "max_observed_defer": self.max_observed_defer,
            "probes_checked": self.probes_checked,
            "groups_checked": self.groups_checked,
        }

    def load_state(self, state: dict, codec=None) -> None:
        self._queued = {(c, l): t for c, l, t in state["queued"]}
        self._group = {c: list(g) for c, g in state["group"]}
        self.max_observed_defer = state["max_observed_defer"]
        self.probes_checked = state["probes_checked"]
        self.groups_checked = state["groups_checked"]

    def summary(self) -> dict:
        return {"probes_checked": self.probes_checked,
                "max_observed_defer": self.max_observed_defer,
                "groups_checked": self.groups_checked}


class ClusterLeaseSafetyTracer(Tracer):
    """PaxosLease safety: at most one node holds an object at any instant.

    Attach to a :class:`~repro.cluster.cluster.Cluster`'s bus.  Holders
    only ever appear via ``cluster_lease_acquired`` events, so checking
    at each acquire -- is any *other* node's recorded lease still
    unexpired at this cycle? -- covers every instant.  Expiry bounds are
    the *proposer-side* ``expires_at`` (exclusive: a lease granted until
    ``T`` and one acquired at ``T`` do not overlap), which is the bound
    PaxosLease actually promises; acceptor-side slots live strictly
    longer.  ``cluster_lease_expired`` / ``_released`` retire holders
    early, but a missing one is harmless -- the timestamp check already
    ages entries out.
    """

    def __init__(self) -> None:
        self._cluster = None
        #: obj -> {node: (expires_at, ballot)} for every granted lease
        #: not yet known to have ended.
        self._holders: dict[int, dict[int, tuple[int, int]]] = {}
        self.acquires_checked = 0
        self.max_live_holders = 0

    def bind(self, cluster) -> None:
        self._cluster = cluster
        self._holders.clear()

    def on_event(self, ev: TraceEvent) -> None:
        kind = type(ev)
        if kind is ClusterLeaseAcquired:
            now = ev.t
            held = self._holders.setdefault(ev.obj, {})
            # Age out stale entries, then demand exclusivity.
            for node in [n for n, (exp, _) in held.items() if exp <= now]:
                del held[node]
            for node, (exp, ballot) in held.items():
                if node != ev.node:
                    raise PropertyViolation(
                        f"cluster lease safety violated on object {ev.obj}: "
                        f"node {ev.node} acquired (ballot {ev.ballot}, "
                        f"expires {ev.expires_at}) at cycle {now} while "
                        f"node {node} still holds (ballot {ballot}, "
                        f"expires {exp})")
            held[ev.node] = (ev.expires_at, ev.ballot)
            self.acquires_checked += 1
            if len(held) > self.max_live_holders:
                self.max_live_holders = len(held)
        elif kind is ClusterLeaseExpired or kind is ClusterLeaseReleased:
            held = self._holders.get(ev.obj)
            if held is not None:
                held.pop(ev.node, None)

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self, codec=None) -> dict:
        return {
            "holders": [[obj, sorted([n, exp, b]
                                     for n, (exp, b) in held.items())]
                        for obj, held in sorted(self._holders.items())],
            "acquires_checked": self.acquires_checked,
            "max_live_holders": self.max_live_holders,
        }

    def load_state(self, state: dict, codec=None) -> None:
        self._holders = {obj: {n: (exp, b) for n, exp, b in held}
                         for obj, held in state["holders"]}
        self.acquires_checked = state["acquires_checked"]
        self.max_live_holders = state["max_live_holders"]

    def summary(self) -> dict:
        return {"acquires_checked": self.acquires_checked,
                "max_live_holders": self.max_live_holders}
