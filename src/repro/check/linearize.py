"""Wing & Gong-style linearizability checker.

Given a complete history (every invocation has a response -- true for our
workers, which always run to completion) and a sequential model, search
for a total order of the operations that (a) respects real-time order
(if op A responded before op B was invoked, A precedes B) and (b) makes
every recorded result legal under the model.

The search is the classic Wing & Gong DFS with the Lowe-style
memoization refinement: states are ``(remaining-op bitmask, model
snapshot)`` pairs; revisiting one is futile and is pruned.  Candidates
at each step are the remaining operations whose invocation does not
follow another remaining operation's response -- the "minimal" ops.

The checker is exact but exponential in the worst case, so a state
budget bounds the search; exceeding it yields an *inconclusive* result
(``decided=False``), which the campaign treats as a pass with a note,
never as a failure.

When the caller also knows the structure's *final state* (read directly
from the backing store at quiescence), passing it as ``final_state``
strengthens the check decisively: the witness order must additionally
leave the model in exactly that state.  Without it, a buggy operation
that returns a plausible value but fails to update the structure (e.g. a
pop that ignores its CAS result) can hide forever -- its leftover node
just sinks to the bottom and is never observed again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from .history import OpRecord

__all__ = ["LinearizationResult", "check_history"]


@dataclass
class LinearizationResult:
    """Outcome of one linearizability check."""

    ok: bool                 #: True when a witness order was found
    decided: bool            #: False when the state budget ran out
    states_explored: int
    order: list[OpRecord] = field(default_factory=list)  #: witness, if ok
    reason: str = ""

    def __bool__(self) -> bool:
        return self.ok


#: Sentinel: "no final-state observation supplied".
_UNOBSERVED = object()


def check_history(records: Sequence[OpRecord],
                  model_factory: Callable[[], object], *,
                  final_state: object = _UNOBSERVED,
                  max_states: int = 250_000) -> LinearizationResult:
    """Search for a linearization of ``records`` against the model.

    ``model_factory`` builds a fresh model preloaded with the structure's
    initial (prefill) state.  When ``final_state`` is given (in the
    model's ``snapshot()`` representation), only witness orders whose
    final model state equals it are accepted.  Returns a
    :class:`LinearizationResult`; when ``ok`` the ``order`` field holds a
    witness sequential execution.
    """
    n = len(records)
    if n == 0:
        if (final_state is not _UNOBSERVED
                and model_factory().snapshot() != final_state):
            return LinearizationResult(
                ok=False, decided=True, states_explored=0,
                reason=(f"empty history but final state {final_state!r} "
                        "differs from the initial state"))
        return LinearizationResult(ok=True, decided=True, states_explored=0)
    if n > 64:
        # The bitmask fits in an int regardless, but histories this long
        # are far beyond what exact checking can handle; keep campaigns
        # honest about it.
        return LinearizationResult(
            ok=True, decided=False, states_explored=0,
            reason=f"history too long for exact check ({n} ops)")

    # Stable order by invocation time; the real-time constraint below only
    # looks at invoked/responded, so the sort is just for candidate
    # enumeration efficiency.
    recs = sorted(records, key=lambda r: (r.invoked, r.responded, r.index))

    full_mask = (1 << n) - 1
    seen: set[tuple[int, object]] = set()
    states = 0

    # Iterative DFS.  Each frame: (remaining mask, model, chosen list).
    # Candidates: remaining ops i with inv_i <= min(resp_j for remaining j).
    def min_resp(mask: int) -> int:
        lo = None
        m = mask
        while m:
            i = (m & -m).bit_length() - 1
            m &= m - 1
            r = recs[i].responded
            if lo is None or r < lo:
                lo = r
        return lo if lo is not None else 0

    stack: list[tuple[int, object, list[OpRecord]]] = [
        (full_mask, model_factory(), [])]
    while stack:
        mask, model, chosen = stack.pop()
        if mask == 0:
            if (final_state is not _UNOBSERVED
                    and model.snapshot() != final_state):
                continue    # right results, wrong final state: keep looking
            return LinearizationResult(
                ok=True, decided=True, states_explored=states, order=chosen)
        key = (mask, model.snapshot())
        if key in seen:
            continue
        seen.add(key)
        states += 1
        if states > max_states:
            return LinearizationResult(
                ok=True, decided=False, states_explored=states,
                reason=f"state budget exhausted ({max_states} states)")
        bound = min_resp(mask)
        # Push candidates in reverse so the earliest-invoked op is tried
        # first (stack is LIFO) -- the common fast path for near-sequential
        # histories.
        frames = []
        for i in range(n):
            bit = 1 << i
            if not (mask & bit):
                continue
            r = recs[i]
            if r.invoked > bound:
                break   # recs sorted by invocation; no later op is minimal
            m2 = model.copy()
            try:
                got = m2.apply(r.op, r.args)
            except Exception as exc:  # model rejects the op outright
                return LinearizationResult(
                    ok=False, decided=True, states_explored=states,
                    reason=f"model error on {r}: {exc}")
            if got == r.result:
                frames.append((mask & ~bit, m2, chosen + [r]))
        for frame in reversed(frames):
            stack.append(frame)

    # Search space exhausted with no witness: not linearizable.  Point at
    # the earliest operation that can never be scheduled first, which is
    # usually the culprit in the report.
    reason = _diagnose(recs, model_factory)
    if final_state is not _UNOBSERVED:
        reason += (f"; no order reaches the observed final state "
                   f"{final_state!r}")
    return LinearizationResult(
        ok=False, decided=True, states_explored=states, reason=reason)


def _diagnose(recs: list[OpRecord], model_factory: Callable[[], object]) -> str:
    """Best-effort one-line explanation of a non-linearizable history:
    find the first minimal op whose recorded result no model state reached
    by any prefix explains (approximated by the greedy frontier)."""
    bound = min(r.responded for r in recs)
    first = [r for r in recs if r.invoked <= bound]
    model = model_factory()
    bad = []
    for r in first:
        try:
            got = model.copy().apply(r.op, r.args)
        except Exception as exc:
            return f"model rejected {r}: {exc}"
        if got != r.result:
            bad.append(f"{r} (model would return {got!r})")
    if bad:
        return ("no linearization: every initial candidate is "
                "inconsistent, e.g. " + "; ".join(bad[:3]))
    return "no valid linearization order exists for this history"
