"""Sequential specification models.

Each model is the *sequential* semantics of one structure family: the
linearizability checker replays a candidate operation order against the
model and compares each operation's recorded result with what the model
says it should have returned.  Models are tiny pure-Python objects with
three obligations:

* ``apply(op, args) -> result`` -- run one operation, mutating the state;
* ``copy()``                    -- cheap independent clone (for branching);
* ``snapshot()``                -- hashable state digest (for memoization).

All models take their initial contents from the structure's prefill so
histories start from the right state.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable

from ..errors import SimulationError

__all__ = ["ModelError", "StackModel", "QueueModel", "PQModel",
           "CounterModel", "SetModel"]


class ModelError(SimulationError):
    """A history contains an operation the model does not define."""


class StackModel:
    """LIFO stack: ``push(v) -> None``, ``pop() -> v | None``."""

    def __init__(self, prefill: Iterable[Any] = ()) -> None:
        # Items in push order: the last element is the top of the stack.
        self._items = list(prefill)

    def apply(self, op: str, args: tuple) -> Any:
        if op == "push":
            self._items.append(args[0])
            return None
        if op == "pop":
            return self._items.pop() if self._items else None
        raise ModelError(f"stack model: unknown op {op!r}")

    def copy(self) -> "StackModel":
        m = StackModel()
        m._items = list(self._items)
        return m

    def snapshot(self) -> tuple:
        return tuple(self._items)


class QueueModel:
    """FIFO queue: ``enqueue(v) -> None``, ``dequeue() -> v | None``."""

    def __init__(self, prefill: Iterable[Any] = ()) -> None:
        self._items = deque(prefill)

    def apply(self, op: str, args: tuple) -> Any:
        if op == "enqueue":
            self._items.append(args[0])
            return None
        if op == "dequeue":
            return self._items.popleft() if self._items else None
        raise ModelError(f"queue model: unknown op {op!r}")

    def copy(self) -> "QueueModel":
        m = QueueModel()
        m._items = deque(self._items)
        return m

    def snapshot(self) -> tuple:
        return tuple(self._items)


class PQModel:
    """Min-priority queue (multiset): ``insert(k) -> None``,
    ``delete_min() -> min | None``."""

    def __init__(self, prefill: Iterable[Any] = ()) -> None:
        self._items = sorted(prefill)

    def apply(self, op: str, args: tuple) -> Any:
        if op == "insert":
            import bisect
            bisect.insort(self._items, args[0])
            return None
        if op == "delete_min":
            return self._items.pop(0) if self._items else None
        raise ModelError(f"pq model: unknown op {op!r}")

    def copy(self) -> "PQModel":
        m = PQModel()
        m._items = list(self._items)
        return m

    def snapshot(self) -> tuple:
        return tuple(self._items)


class CounterModel:
    """Fetch-and-increment counter: ``inc() -> pre-increment value``,
    ``read() -> value``."""

    def __init__(self, start: int = 0) -> None:
        self._value = start

    def apply(self, op: str, args: tuple) -> Any:
        if op == "inc":
            v = self._value
            self._value += 1
            return v
        if op == "read":
            return self._value
        raise ModelError(f"counter model: unknown op {op!r}")

    def copy(self) -> "CounterModel":
        return CounterModel(self._value)

    def snapshot(self) -> int:
        return self._value


class SetModel:
    """Ordered set: ``insert(k) -> bool``, ``delete(k) -> bool``,
    ``contains(k) -> bool`` (the return is "did it change / was it there")."""

    def __init__(self, prefill: Iterable[Any] = ()) -> None:
        self._items = set(prefill)

    def apply(self, op: str, args: tuple) -> Any:
        key = args[0]
        if op == "insert":
            if key in self._items:
                return False
            self._items.add(key)
            return True
        if op == "delete":
            if key in self._items:
                self._items.discard(key)
                return True
            return False
        if op == "contains":
            return key in self._items
        raise ModelError(f"set model: unknown op {op!r}")

    def copy(self) -> "SetModel":
        m = SetModel()
        m._items = set(self._items)
        return m

    def snapshot(self) -> frozenset:
        return frozenset(self._items)
