"""Fuzzing campaigns: explore schedules, check histories, shrink failures.

A campaign runs one :class:`CheckTarget` (a small, contended instance of a
structure) under a budget of perturbed schedules.  Each schedule:

1. builds a fresh machine with a derived seed and a perturbation strategy
   from :func:`~repro.check.perturb.strategy_for_schedule` (schedule 0 is
   always the unperturbed baseline);
2. records the operation history and checks the lease properties while
   the run executes;
3. at quiescence, verifies coherence invariants and searches for a
   linearization of the history against the target's sequential model.

On a failure the campaign *shrinks* the strategy's recorded decision map
with ddmin -- re-running the workload under :class:`ReplayStrategy` with
ever-smaller decision subsets -- and emits a repro dict that
:func:`replay_repro` (or ``python -m repro check replay``) re-executes
deterministically.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from ..config import LeaseConfig, MachineConfig
from ..core.machine import Machine
from ..errors import (LeaseError, ProtocolError, ReproError, SimulationError,
                      SimulationTimeout)
from ..core.isa import Load, Store, Work
from ..structures.counter import CasCounter, LockedCounter
from ..structures.harris_list import HarrisList
from ..structures.mcas import McasCounter, McasQueue, McasStack
from ..structures.msqueue import MichaelScottQueue
from ..structures.priorityqueue import GlobalLockPQ
from ..structures.treiber import TreiberStack
from ..sync.adaptive import AdaptiveLeaseController
from ..sync.backoff import DhmBackoff
from ..sync.locks import ReciprocatingLock, SPIN_PAUSE
from ..traffic import (TrafficSource, traffic_counter_worker,
                       traffic_stack_worker)
from .history import HistoryRecorder
from .linearize import check_history
from .models import CounterModel, PQModel, QueueModel, SetModel, StackModel
from .perturb import ReplayStrategy, strategy_for_schedule
from .properties import LeasePropertyTracer, PropertyViolation

__all__ = ["CheckTarget", "RunOutcome", "CampaignReport", "TARGETS",
           "EXPERIMENT_ALIASES", "resolve_target", "run_once",
           "run_campaign", "replay_repro", "load_repro"]

REPRO_FORMAT = "repro-check/1"

#: Campaign workload shape: small and contended, and short enough that the
#: exact linearizability check always decides (4 threads x 8 ops = 32 ops).
THREADS = 4
OPS = 8
#: Lease length for leased variants: short, so expiries/breaks actually
#: happen inside these tiny runs.
LEASE_TIME = 600
#: Key range for open-loop (``--traffic``) campaign variants: small, so
#: the even/odd push-pop split and per-key op hashes stay contended.
TRAFFIC_KEY_RANGE = 16


def _cfg(*, leases: bool, mode: str = "hardware",
         max_lease_time: int = LEASE_TIME) -> MachineConfig:
    """Campaign machine: 4 cores, tight budgets so a deadlocked or
    livelocked schedule surfaces as SimulationTimeout in well under a
    second instead of hanging the fuzzer."""
    return MachineConfig(
        num_cores=THREADS,
        lease=LeaseConfig(enabled=leases, max_lease_time=max_lease_time,
                          multilease_mode=mode),
        max_cycles=3_000_000,
        max_events=3_000_000,
    )


@dataclass(frozen=True)
class CheckTarget:
    """One fuzzable structure instance.

    ``build(machine, variant)`` constructs the structure on ``machine``,
    prefills it, spawns the worker threads, and returns
    ``(model_factory, final_fn)``: a zero-argument factory for the
    matching sequential model (preloaded with the prefill) and a
    zero-argument observer that reads the structure's final state from
    the backing store in the model's ``snapshot()`` representation --
    the extra observation that catches lost updates.  ``configs`` maps
    variant names to machine configs; the campaign cycles through them
    across schedule indices.
    """

    name: str
    title: str
    configs: tuple[tuple[str, MachineConfig], ...]
    build: Callable[[Machine, str],
                    tuple[Callable[[], Any], Callable[[], Any]]]

    def config_for(self, variant: str) -> MachineConfig:
        for name, cfg in self.configs:
            if name == variant:
                return cfg
        raise ReproError(f"target {self.name!r} has no variant {variant!r}: "
                         f"choices are {[n for n, _ in self.configs]}")


# -- target builders ----------------------------------------------------------

def _traffic_source(m: Machine, traffic: str) -> TrafficSource:
    """One lane per campaign thread, seeded from the machine seed -- the
    same schedule-independent arrival plan the driver benches use."""
    return TrafficSource(traffic, num_lanes=THREADS, seed=m.config.seed,
                         key_range=TRAFFIC_KEY_RANGE, default_ops=OPS)


def _build_treiber(m: Machine, variant: str, traffic: str = ""):
    s = TreiberStack(m, lease_time=LEASE_TIME)
    prefill = [10_000 + j for j in range(3)]
    s.prefill(prefill)
    if traffic:
        src = _traffic_source(m, traffic)
        for t in range(THREADS):
            m.add_thread(traffic_stack_worker, s, src.lane(t))
    else:
        for _ in range(THREADS):
            m.add_thread(s.update_worker, OPS, local_work=4)
    # drain_direct walks top->bottom; the model keeps bottom->top.
    return (lambda: StackModel(prefill),
            lambda: tuple(reversed(s.drain_direct())))


def _build_msqueue(m: Machine, variant: str):
    q = MichaelScottQueue(m, variant="single", lease_time=LEASE_TIME)
    prefill = [20_000 + j for j in range(3)]
    q.prefill(prefill)
    for _ in range(THREADS):
        m.add_thread(q.update_worker, OPS, local_work=4)
    return lambda: QueueModel(prefill), lambda: tuple(q.drain_direct())


def _build_multilease(m: Machine, variant: str):
    q = MichaelScottQueue(m, variant="multi", lease_time=LEASE_TIME)
    prefill = [30_000 + j for j in range(3)]
    q.prefill(prefill)
    for _ in range(THREADS):
        m.add_thread(q.update_worker, OPS, local_work=4)
    return lambda: QueueModel(prefill), lambda: tuple(q.drain_direct())


def _build_counter(m: Machine, variant: str, traffic: str = ""):
    c = LockedCounter(m, critical_work=8)
    if traffic:
        src = _traffic_source(m, traffic)
        for t in range(THREADS):
            m.add_thread(traffic_counter_worker, c, src.lane(t))
    else:
        for _ in range(THREADS):
            m.add_thread(c.update_worker, OPS)
    return lambda: CounterModel(0), lambda: m.peek(c.value_addr)


def _build_pq(m: Machine, variant: str):
    pq = GlobalLockPQ(m)
    prefill = [40_000 + 2 * j for j in range(4)]
    pq.prefill(prefill)
    for _ in range(THREADS):
        m.add_thread(pq.update_worker, OPS, key_range=64, local_work=4)
    return lambda: PQModel(prefill), lambda: tuple(pq.keys_direct())


def _build_harris(m: Machine, variant: str):
    lst = HarrisList(m, lease_time=LEASE_TIME)
    prefill = [1, 4, 7, 10]
    lst.prefill(prefill)
    for _ in range(THREADS):
        m.add_thread(lst.mixed_worker, OPS, key_range=12, update_pct=60)
    return lambda: SetModel(prefill), lambda: frozenset(lst.keys_direct())


# -- contention-management zoo builders ---------------------------------------
#
# One target per structure; the campaign cycles the zoo policies as
# variants, so a budget of 4*N runs N perturbed schedules per policy.

def _zoo_adaptive(m: Machine) -> AdaptiveLeaseController:
    """A controller tuned down to campaign scale, so expiries and
    contractions actually fire inside 32-op runs."""
    ctl = AdaptiveLeaseController(initial=120, min_time=40,
                                  max_time=LEASE_TIME, pressure_high=2)
    m.attach_tracer(ctl)
    return ctl


def _build_zoo_treiber(m: Machine, variant: str):
    if variant == "mcas-helping":
        s = McasStack(m)
    elif variant == "cas-backoff":
        s = TreiberStack(m, lease_time=LEASE_TIME, backoff=DhmBackoff())
    elif variant == "adaptive-lease":
        s = TreiberStack(m, lease_policy=_zoo_adaptive(m))
    else:
        raise ReproError(f"unknown zoo variant {variant!r}")
    prefill = [10_000 + j for j in range(3)]
    s.prefill(prefill)
    for _ in range(THREADS):
        m.add_thread(s.update_worker, OPS, local_work=4)
    return (lambda: StackModel(prefill),
            lambda: tuple(reversed(s.drain_direct())))


def _build_zoo_msqueue(m: Machine, variant: str):
    if variant == "mcas-helping":
        q = McasQueue(m)
    elif variant == "cas-backoff":
        q = MichaelScottQueue(m, lease_time=LEASE_TIME, backoff=DhmBackoff())
    elif variant == "adaptive-lease":
        q = MichaelScottQueue(m, lease_policy=_zoo_adaptive(m))
    else:
        raise ReproError(f"unknown zoo variant {variant!r}")
    prefill = [20_000 + j for j in range(3)]
    q.prefill(prefill)
    for _ in range(THREADS):
        m.add_thread(q.update_worker, OPS, local_work=4)
    return lambda: QueueModel(prefill), lambda: tuple(q.drain_direct())


def _build_zoo_counter(m: Machine, variant: str):
    if variant == "mcas-helping":
        c = McasCounter(m)
        final = c.peek_value
    elif variant == "cas-backoff":
        c = CasCounter(m, backoff=DhmBackoff())
        final = lambda: m.peek(c.value_addr)
    elif variant == "reciprocating":
        c = LockedCounter(m, lock="reciprocating", critical_work=8)
        final = lambda: m.peek(c.value_addr)
    elif variant == "adaptive-lease":
        c = LockedCounter(m, critical_work=8,
                          lease_policy=_zoo_adaptive(m))
        final = lambda: m.peek(c.value_addr)
    else:
        raise ReproError(f"unknown zoo variant {variant!r}")
    for _ in range(THREADS):
        m.add_thread(c.update_worker, OPS)
    return lambda: CounterModel(0), final


class _BrokenReciprocatingLock(ReciprocatingLock):
    """DELIBERATELY BROKEN: acquisition is test-then-store instead of CAS,
    so two threads that both observe 0 both "acquire" and race the
    critical section.  Registered as the ``sync_zoo_broken`` must-fail
    target proving the zoo campaigns catch real mutual-exclusion
    violations."""

    def acquire(self, ctx):
        ctx.trace.lock_attempt(ctx.core_id)
        while True:
            cur = yield Load(self.addr)
            if cur == 0:
                # BUG (deliberate): the load-store window admits everyone
                # who raced past the load.
                yield Store(self.addr, self.TERM)
                return self.TERM
            ctx.trace.lock_failed(ctx.core_id)
            yield Work(SPIN_PAUSE)

    def release(self, ctx, token):
        yield Store(self.addr, 0)


def _build_zoo_broken(m: Machine, variant: str):
    c = LockedCounter(m, lock="reciprocating", critical_work=8)
    c.lock = _BrokenReciprocatingLock(m)
    for _ in range(THREADS):
        m.add_thread(c.update_worker, OPS)
    return lambda: CounterModel(0), lambda: m.peek(c.value_addr)


_ZOO_CONFIGS = (("cas-backoff", _cfg(leases=False)),
                ("reciprocating", _cfg(leases=False)),
                ("mcas-helping", _cfg(leases=False)),
                ("adaptive-lease", _cfg(leases=True)))


def _build_zoo_treiber_locked(m: Machine, variant: str):
    """The coarse-lock (reciprocating) stack arm shares the treiber model
    but pushes/pops under one lock."""
    from ..workloads.driver import _locked_stack_worker
    s = TreiberStack(m, lease_time=LEASE_TIME)
    lock = ReciprocatingLock(m)
    prefill = [10_000 + j for j in range(3)]
    s.prefill(prefill)
    for _ in range(THREADS):
        m.add_thread(_locked_stack_worker, lock, s, OPS, local_work=4)
    return (lambda: StackModel(prefill),
            lambda: tuple(reversed(s.drain_direct())))


def _build_zoo_msqueue_locked(m: Machine, variant: str):
    from ..workloads.driver import _locked_queue_worker
    q = MichaelScottQueue(m, lease_time=LEASE_TIME)
    lock = ReciprocatingLock(m)
    prefill = [20_000 + j for j in range(3)]
    q.prefill(prefill)
    for _ in range(THREADS):
        m.add_thread(_locked_queue_worker, lock, q, OPS, local_work=4)
    return lambda: QueueModel(prefill), lambda: tuple(q.drain_direct())


def _dispatch_zoo(build, locked_build):
    def _build(m: Machine, variant: str):
        if variant == "reciprocating":
            return locked_build(m, variant)
        return build(m, variant)
    return _build


TARGETS: dict[str, CheckTarget] = {
    t.name: t for t in (
        CheckTarget(
            "treiber", "Treiber stack (Fig. 1 lease placement)",
            (("base", _cfg(leases=False)), ("lease", _cfg(leases=True))),
            _build_treiber),
        CheckTarget(
            "msqueue", "Michael-Scott queue, single-lease variant",
            (("base", _cfg(leases=False)), ("lease", _cfg(leases=True))),
            _build_msqueue),
        CheckTarget(
            "multilease", "MS queue MultiLease variant (hw + sw emulation)",
            (("hw", _cfg(leases=True, mode="hardware")),
             ("sw", _cfg(leases=True, mode="software"))),
            _build_multilease),
        CheckTarget(
            "counter", "Lock-protected counter (leased TTS lock)",
            (("base", _cfg(leases=False)), ("lease", _cfg(leases=True))),
            _build_counter),
        CheckTarget(
            "pq", "Global-lock skiplist priority queue",
            (("base", _cfg(leases=False)), ("lease", _cfg(leases=True))),
            _build_pq),
        CheckTarget(
            "harris", "Harris lock-free list (set semantics)",
            (("base", _cfg(leases=False)), ("lease", _cfg(leases=True))),
            _build_harris),
        CheckTarget(
            "sync_zoo_treiber", "Contention zoo: Treiber stack policies",
            _ZOO_CONFIGS,
            _dispatch_zoo(_build_zoo_treiber, _build_zoo_treiber_locked)),
        CheckTarget(
            "sync_zoo_msqueue", "Contention zoo: MS queue policies",
            _ZOO_CONFIGS,
            _dispatch_zoo(_build_zoo_msqueue, _build_zoo_msqueue_locked)),
        CheckTarget(
            "sync_zoo_counter", "Contention zoo: counter policies",
            _ZOO_CONFIGS, _build_zoo_counter),
        CheckTarget(
            "sync_zoo_broken", "Must-fail: test-then-store lock (broken)",
            (("broken", _cfg(leases=False)),), _build_zoo_broken),
    )
}

#: ``repro check <experiment>`` accepts harness experiment ids too.
EXPERIMENT_ALIASES: dict[str, str] = {
    "fig2_stack": "treiber",
    "fig3_counter": "counter",
    "fig3_queue": "msqueue",
    "fig3_pq": "pq",
    "fig5_multilease": "multilease",
    "e1_backoff": "treiber",
    "e2_low_contention_list": "harris",
    "sync_ablation": "sync_zoo_treiber",
}


def resolve_target(name: str) -> CheckTarget:
    key = EXPERIMENT_ALIASES.get(name, name)
    try:
        return TARGETS[key]
    except KeyError:
        choices = sorted(set(TARGETS) | set(EXPERIMENT_ALIASES))
        raise ReproError(
            f"unknown check target {name!r}: choices are "
            f"{', '.join(choices)}") from None


# -- single run ---------------------------------------------------------------

@dataclass
class RunOutcome:
    """Result of checking one schedule."""

    ok: bool
    kind: str                   #: pass | inconclusive | linearizability |
                                #: timeout | property | history
    detail: str
    ops: int
    decided: bool
    decisions: dict[int, int] = field(default_factory=dict)
    strategy: dict = field(default_factory=dict)
    properties: dict = field(default_factory=dict)
    cycles: int = 0             #: final simulation cycle of the run


def run_once(target: CheckTarget, variant: str, cfg: MachineConfig,
             strategy: ReplayStrategy | Any, *,
             traffic: str = "",
             checkpoint_every: int | None = None,
             checkpoints: list | None = None,
             restore_from: dict | None = None) -> RunOutcome:
    """Run one schedule of ``target`` and check everything we know how to
    check: lease properties during the run, coherence invariants at
    quiescence, then history linearizability.

    Checkpoint hooks (used by the prefix-restore shrinker): with
    ``checkpoints`` (a list to fill) and ``checkpoint_every`` set, the run
    is sliced and ``(queue-watermark, state_dict)`` pairs are appended
    every interval; with ``restore_from`` (a state tree), the machine is
    restored from it before running, skipping the already-explored prefix.
    """
    m = Machine(cfg, schedule_strategy=strategy)
    hist = m.attach_tracer(HistoryRecorder())
    props = m.attach_tracer(LeasePropertyTracer())
    if traffic:
        if "traffic" not in inspect.signature(target.build).parameters:
            raise ReproError(
                f"check target {target.name!r} has no open-loop variant "
                "(--traffic works with: counter, treiber)")
        model_factory, final_fn = target.build(m, variant, traffic=traffic)
    else:
        model_factory, final_fn = target.build(m, variant)

    def outcome(ok: bool, kind: str, detail: str,
                decided: bool = True) -> RunOutcome:
        return RunOutcome(
            ok=ok, kind=kind, detail=detail, ops=len(hist.records),
            decided=decided, decisions=dict(strategy.decisions),
            strategy=strategy.describe(), properties=props.summary(),
            cycles=m.sim.now)

    try:
        if restore_from is not None:
            m.load_state(restore_from)
        if checkpoints is not None and checkpoint_every:
            m.enable_checkpointing()
            while m._live_threads > 0:
                m.run(until=m.now + checkpoint_every)
                if m._live_threads == 0 or m.sim.queue.peek_time() is None:
                    break
                checkpoints.append((m.sim.queue.next_seq, m.state_dict()))
        m.run()
        m.check_coherence_invariants()
        hist.validate()
    except SimulationTimeout as exc:
        return outcome(False, "timeout",
                       f"no quiescence (deadlock/livelock?): {exc}")
    except (PropertyViolation, ProtocolError, LeaseError) as exc:
        return outcome(False, "property", str(exc))
    except SimulationError as exc:
        return outcome(False, "history", str(exc))

    res = check_history(hist.records, model_factory,
                        final_state=final_fn())
    if not res.ok:
        return outcome(False, "linearizability", res.reason)
    if not res.decided:
        return outcome(True, "inconclusive", res.reason, decided=False)
    return outcome(True, "pass",
                   f"linearizable ({res.states_explored} states)")


def _strategy_for(campaign_seed: int, index: int):
    """Schedule 0 is the unperturbed baseline (an empty replay records no
    decisions and assigns priority 0 everywhere); later schedules come
    from the seeded generator."""
    if index == 0:
        return ReplayStrategy({})
    return strategy_for_schedule(campaign_seed, index)


def _machine_seed(campaign_seed: int, index: int) -> int:
    return ((campaign_seed * 2_654_435_761 + index * 40_503)
            & 0x7FFFFFFF) or 1


# -- shrinking ----------------------------------------------------------------

def _ddmin(items: list[tuple[int, int]],
           fails: Callable[[dict[int, int]], bool],
           max_runs: int) -> tuple[list[tuple[int, int]], int]:
    """Classic ddmin over decision entries: find a (locally) minimal
    subset that still fails.  ``fails`` must be deterministic, which
    replay strategies guarantee."""
    runs = 0
    n = 2
    while len(items) >= 2 and runs < max_runs:
        size = max(1, len(items) // n)
        reduced = False
        for start in range(0, len(items), size):
            if runs >= max_runs:
                break
            subset = items[:start] + items[start + size:]
            runs += 1
            if fails(dict(subset)):
                items = subset
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), n * 2)
    return items, runs


def shrink_failure(target: CheckTarget, variant: str, cfg: MachineConfig,
                   decisions: dict[int, int], *,
                   traffic: str = "",
                   max_runs: int = 160,
                   checkpoint_every: int | None = 2048,
                   stats: dict | None = None) -> tuple[dict[int, int], int]:
    """Minimize a failing decision map by replaying subsets.  Returns the
    shrunken map and how many replay runs were spent.  Any failure kind
    counts -- a subset that fails differently is still a bug, and keeping
    the predicate loose lets ddmin cut much deeper.

    Prefix restore: decisions are keyed by event ``seq``, and a checkpoint
    taken at queue watermark ``W`` precedes every scheduling decision with
    seq >= W.  A replay whose decision map differs from the run that
    recorded a checkpoint only at seqs >= ``W`` is *identical* to that run
    up to the checkpoint, so instead of re-simulating from cycle 0 it
    restores the checkpoint and replays only the suffix.  Because ddmin
    narrows against its most recent *failing* subset (not the original
    map), every probe records its own checkpoints; when a probe fails it
    becomes the new baseline, carrying forward the still-valid prefix of
    the old one.  ``stats`` (optional dict) collects the accounting:
    ``cycles_replayed`` / ``cycles_saved`` / ``restores``.
    """
    items = sorted(decisions.items())
    if not items:
        return {}, 0
    track = stats if stats is not None else {}
    track.setdefault("cycles_replayed", 0)
    track.setdefault("cycles_saved", 0)
    track.setdefault("restores", 0)
    #: Keys of the last *failing* decision map (ddmin's current baseline)
    #: and its ``(queue watermark, state tree)`` checkpoints, ascending.
    base_keys = set(decisions)
    prefix: list[tuple[int, dict]] = []

    def fails(subset: dict[int, int]) -> bool:
        nonlocal base_keys, prefix
        sub_keys = set(subset)
        removed = base_keys - sub_keys
        usable: list[tuple[int, dict]] = []
        if removed and sub_keys <= base_keys:
            cut = min(removed)
            for wm, state in prefix:
                if wm <= cut:
                    usable.append((wm, state))
                else:
                    break
        best = usable[-1][1] if usable else None
        probe: list[tuple[int, dict]] = []
        out = run_once(target, variant, cfg, ReplayStrategy(subset),
                       traffic=traffic, restore_from=best,
                       checkpoint_every=checkpoint_every,
                       checkpoints=probe)
        start = 0
        if best is not None:
            start = best["sim"]["now"]
            track["restores"] += 1
            track["cycles_saved"] += start
        track["cycles_replayed"] += max(0, out.cycles - start)
        if not out.ok:
            # This subset is ddmin's new baseline; its checkpoints are the
            # still-valid prefix of the old run plus the ones just taken.
            base_keys = sub_keys
            prefix = usable + probe
        return not out.ok

    if not fails({}):
        # Seed the baseline checkpoints by re-running the full failing map
        # once with recording on.
        run_once(target, variant, cfg, ReplayStrategy(dict(items)),
                 traffic=traffic,
                 checkpoint_every=checkpoint_every, checkpoints=prefix)
        shrunk, runs = _ddmin(items, fails, max_runs)
        runs += 2
    else:
        # The unperturbed run fails too: the schedule was never the
        # trigger, so the minimal repro is the empty decision map.
        shrunk, runs = [], 1
    return dict(shrunk), runs


# -- campaign -----------------------------------------------------------------

@dataclass
class CampaignReport:
    """Everything a ``repro check`` invocation learned."""

    target: str
    seed: int
    budget: int
    schedules_run: int = 0
    histories_checked: int = 0
    ops_checked: int = 0
    inconclusive: int = 0
    shrink_runs: int = 0
    #: Prefix-restore accounting for the shrink phase (repro.state):
    #: cycles actually re-simulated, cycles skipped by restoring
    #: checkpoints, and how many replays started from a checkpoint.
    shrink_cycles_replayed: int = 0
    shrink_cycles_saved: int = 0
    shrink_restores: int = 0
    per_variant: dict[str, int] = field(default_factory=dict)
    failure: RunOutcome | None = None
    repro: dict | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def run_campaign(target_name: str, *, budget: int = 100, seed: int = 1,
                 shrink: bool = True, shrink_runs: int = 160,
                 fault_spec: str = "", engine: str = "fast",
                 traffic: str = "",
                 progress: Callable[[str], None] | None = None
                 ) -> CampaignReport:
    """Explore ``budget`` schedules of ``target_name``; stop at the first
    failure (shrinking it to a minimal replayable repro).  ``fault_spec``
    (see :mod:`repro.faults`) fuzzes the schedules *under faults*: every
    machine runs with the seeded fault plan installed, and the same
    linearizability + property checks must still hold.  ``engine`` is
    recorded in the config and repro file; perturbed schedules install a
    ``ScheduleStrategy``, which transparently forces the compat run loop
    regardless, so the selector only changes unperturbed replays.
    ``traffic`` (see :mod:`repro.traffic`) switches the workload to its
    open-loop variant: arrivals are admitted from seeded streams and the
    same linearizability checks run over the admitted-op histories."""
    target = resolve_target(target_name)
    report = CampaignReport(target=target.name, seed=seed, budget=budget)
    for i in range(budget):
        variant, base_cfg = target.configs[i % len(target.configs)]
        cfg = replace(base_cfg, seed=_machine_seed(seed, i),
                      fault_spec=fault_spec, engine=engine)
        out = run_once(target, variant, cfg, _strategy_for(seed, i),
                       traffic=traffic)
        report.schedules_run += 1
        report.histories_checked += 1
        report.ops_checked += out.ops
        report.per_variant[variant] = report.per_variant.get(variant, 0) + 1
        if out.decided is False:
            report.inconclusive += 1
        if out.ok:
            continue
        report.failure = out
        if progress:
            progress(f"schedule {i} [{variant}] failed ({out.kind}): "
                     f"{out.detail}")
        decisions = out.decisions
        if shrink and decisions:
            if progress:
                progress(f"shrinking {len(decisions)} schedule decisions...")
            shrink_stats: dict = {}
            decisions, spent = shrink_failure(
                target, variant, cfg, decisions, traffic=traffic,
                max_runs=shrink_runs, stats=shrink_stats)
            report.shrink_runs = spent
            report.shrink_cycles_replayed = shrink_stats["cycles_replayed"]
            report.shrink_cycles_saved = shrink_stats["cycles_saved"]
            report.shrink_restores = shrink_stats["restores"]
            # Re-run the minimal schedule to report the minimized failure.
            final = run_once(target, variant, cfg,
                             ReplayStrategy(decisions), traffic=traffic)
            if not final.ok:
                report.failure = final
        report.repro = {
            "format": REPRO_FORMAT,
            "target": target.name,
            "variant": variant,
            "campaign_seed": seed,
            "schedule_index": i,
            "machine_seed": cfg.seed,
            "fault_spec": fault_spec,
            "engine": engine,
            "traffic": traffic,
            "strategy": out.strategy,
            "decisions": {str(k): v for k, v in sorted(decisions.items())},
            "failure": {"kind": report.failure.kind,
                        "detail": report.failure.detail},
        }
        break
    return report


# -- repro files --------------------------------------------------------------

def load_repro(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("format") != REPRO_FORMAT:
        raise ReproError(
            f"{path}: not a {REPRO_FORMAT} repro file "
            f"(format={data.get('format')!r})")
    return data


def replay_repro(repro: dict) -> RunOutcome:
    """Re-execute a repro dict (as written by :func:`run_campaign`)
    deterministically and return the outcome of the checks."""
    target = resolve_target(repro["target"])
    cfg = replace(target.config_for(repro["variant"]),
                  seed=int(repro["machine_seed"]),
                  fault_spec=repro.get("fault_spec", ""),
                  engine=repro.get("engine", "fast"))
    decisions = {int(k): int(v)
                 for k, v in repro.get("decisions", {}).items()}
    return run_once(target, repro["variant"], cfg,
                    ReplayStrategy(decisions),
                    traffic=repro.get("traffic", ""))
