"""Schedule-perturbation strategies.

The event queue orders events by ``(time, pri, seq)``.  A strategy assigns
the ``pri`` component at schedule time, which reorders *same-timestamp*
events only: the simulation's timing model is untouched, but the
tie-breaking order among simultaneous events -- exactly the freedom a real
machine's arbiters have -- is explored.  Strategies are deterministic
functions of their seed, so any explored schedule can be re-run exactly.

Every recording strategy keeps its nonzero decisions in ``decisions``
(``event seq -> priority``).  That map *is* the schedule: feeding it to
:class:`ReplayStrategy` reproduces the run bit-for-bit, and the campaign
shrinker minimizes a failing run by searching for the smallest decision
subset that still fails (see :mod:`repro.check.campaign`).

Strategies:

* :class:`RandomStrategy` -- seeded random delay: each event is, with some
  probability, pushed behind its same-cycle peers.
* :class:`PctStrategy` -- PCT-style [Burckhardt et al.]: each core gets a
  random scheduling priority, lowered at a few random change points; the
  events a core schedules inherit its priority.
* :class:`ReplayStrategy` -- replays a recorded decision map exactly.
"""

from __future__ import annotations

import random
from typing import Mapping

from ..engine.event_queue import Event, ScheduleStrategy

__all__ = ["ScheduleStrategy", "RandomStrategy", "PctStrategy",
           "ReplayStrategy", "owner_core", "strategy_for_schedule"]


def owner_core(ev: Event) -> int | None:
    """Core id that scheduled ``ev``, when recoverable.

    Most events are continuations bound to a :class:`~repro.core.core.Core`,
    memory unit or lease manager, all of which carry a ``core_id``; events
    owned by shared components (directory, network) return None.
    """
    obj = getattr(ev.fn, "__self__", None)
    return getattr(obj, "core_id", None)


class _Recording(ScheduleStrategy):
    """Base for strategies that record their nonzero decisions."""

    name = "recording"

    def __init__(self) -> None:
        #: event seq -> assigned priority (only nonzero entries).
        self.decisions: dict[int, int] = {}

    def describe(self) -> dict:
        """Metadata for campaign reports / repro files."""
        return {"kind": self.name}

    # -- checkpointing (repro.state) ----------------------------------------
    # state_dict()/load_state() cover *progress* only (recorded decisions,
    # RNG position, change points).  Constructor parameters -- seed, rate,
    # replay map -- are configuration: a restore installs saved progress
    # into a strategy built with the caller's parameters, which is what
    # lets the shrinker resume a prefix under a *smaller* replay map.

    def state_dict(self) -> dict:
        return {"decisions": [[s, p] for s, p in self.decisions.items()]}

    def load_state(self, state: dict) -> None:
        self.decisions = {s: p for s, p in state["decisions"]}


class RandomStrategy(_Recording):
    """Seeded random jitter: with probability ``rate`` an event is assigned
    a random positive priority (1..amplitude), delaying it behind untouched
    (priority-0) events in the same cycle."""

    name = "random"

    def __init__(self, seed: int, *, rate: float = 0.25,
                 amplitude: int = 4) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if amplitude < 1:
            raise ValueError(f"amplitude must be >= 1, got {amplitude}")
        super().__init__()
        self.seed = seed
        self.rate = rate
        self.amplitude = amplitude
        self._rng = random.Random(seed)

    def priority(self, ev: Event) -> int:
        if self._rng.random() >= self.rate:
            return 0
        pri = self._rng.randint(1, self.amplitude)
        self.decisions[ev.seq] = pri
        return pri

    def describe(self) -> dict:
        return {"kind": self.name, "seed": self.seed, "rate": self.rate,
                "amplitude": self.amplitude}

    def state_dict(self) -> dict:
        from ..state.codec import encode_rng

        out = super().state_dict()
        out["rng"] = encode_rng(self._rng)
        return out

    def load_state(self, state: dict) -> None:
        from ..state.codec import decode_rng

        super().load_state(state)
        decode_rng(self._rng, state["rng"])


class PctStrategy(_Recording):
    """PCT-style priority scheduling over cores.

    Each core is assigned a random base priority on first sight; all events
    it schedules inherit that priority, so one core's continuations
    systematically overtake another's within a cycle.  At ``depth`` random
    change points (counted in scheduled events over ``horizon``), one core
    is boosted to a priority below every base priority -- the analogue of
    PCT's priority change points, which is what catches bugs needing a
    specific ordering *switch* mid-run.  Events not owned by a core
    (directory/network timers) keep priority 0.
    """

    name = "pct"

    def __init__(self, seed: int, *, depth: int = 3,
                 horizon: int = 4096) -> None:
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        super().__init__()
        self.seed = seed
        self.depth = depth
        self.horizon = horizon
        self._rng = random.Random(seed)
        self._change_points = sorted(
            self._rng.randrange(horizon) for _ in range(depth))
        self._scheduled = 0
        self._core_pri: dict[int, int] = {}
        self._boosts = 0

    def priority(self, ev: Event) -> int:
        count = self._scheduled
        self._scheduled += 1
        while self._change_points and count >= self._change_points[0]:
            self._change_points.pop(0)
            if self._core_pri:
                victim = self._rng.choice(sorted(self._core_pri))
                self._boosts += 1
                self._core_pri[victim] = -self._boosts
        core = owner_core(ev)
        if core is None:
            return 0
        pri = self._core_pri.get(core)
        if pri is None:
            pri = self._core_pri[core] = self._rng.randint(1, 8)
        if pri:
            self.decisions[ev.seq] = pri
        return pri

    def describe(self) -> dict:
        return {"kind": self.name, "seed": self.seed, "depth": self.depth,
                "horizon": self.horizon}

    def state_dict(self) -> dict:
        from ..state.codec import encode_rng

        out = super().state_dict()
        out.update({
            "rng": encode_rng(self._rng),
            "change_points": list(self._change_points),
            "scheduled": self._scheduled,
            "core_pri": [[c, p] for c, p in self._core_pri.items()],
            "boosts": self._boosts,
        })
        return out

    def load_state(self, state: dict) -> None:
        from ..state.codec import decode_rng

        super().load_state(state)
        decode_rng(self._rng, state["rng"])
        self._change_points = list(state["change_points"])
        self._scheduled = state["scheduled"]
        self._core_pri = {c: p for c, p in state["core_pri"]}
        self._boosts = state["boosts"]


class ReplayStrategy(_Recording):
    """Replays a recorded ``seq -> priority`` decision map exactly.

    Because priorities are keyed by the queue's insertion counter, applying
    the same map to a fresh run of the same workload reproduces the
    perturbed schedule deterministically -- this is what makes shrunken
    repro files replayable.
    """

    name = "replay"

    def __init__(self, decisions: Mapping[int, int]) -> None:
        super().__init__()
        self._replay = {int(k): int(v) for k, v in decisions.items()}

    def priority(self, ev: Event) -> int:
        pri = self._replay.get(ev.seq, 0)
        if pri:
            self.decisions[ev.seq] = pri
        return pri

    def describe(self) -> dict:
        return {"kind": self.name, "n_decisions": len(self._replay)}


def strategy_for_schedule(campaign_seed: int, index: int) -> _Recording:
    """The campaign's schedule generator: schedule ``index`` of a campaign
    deterministically maps to a strategy.  Index 0 is reserved by the
    campaign for the unperturbed baseline; later indices alternate between
    random jitter and PCT with derived seeds."""
    derived = (campaign_seed * 1_000_003 + index * 7_919) & 0x7FFFFFFF
    if index % 2 == 1:
        return RandomStrategy(derived)
    return PctStrategy(derived)
