"""Fuzzing the cluster layer: PaxosLease safety under an unkind network.

The property is the one PaxosLease exists to provide: **at most one node
holds the cluster lease on an object at any instant**
(:class:`~repro.check.properties.ClusterLeaseSafetyTracer`).  A campaign
explores seeded schedules of a small contended cluster workload while
cycling through a grid of network weather (message loss, duplication,
partitions, timer skew) and cluster sizes; every run also re-checks the
usual per-node machinery -- coherence invariants at quiescence and the
sharded-counter sum (each increment lands exactly once).

Failures shrink exactly like the single-machine campaigns: the
perturbation strategy's decision map is minimized with ddmin under
:class:`~repro.check.perturb.ReplayStrategy`, and the repro file
(format ``repro-cluster/1``) replays with ``repro check replay``.

The deliberate-bug check rides along: :func:`run_cluster_campaign` with
``quorum=1`` on a multi-node cluster breaks quorum intersection, and the
same campaign must catch the resulting double grant -- CI runs that
negative as a self-test of the tracer.
"""

from __future__ import annotations

from typing import Any, Callable

from ..cluster import ClusterConfig, build_cluster, verify_cluster_counters
from ..config import LeaseConfig, MachineConfig
from ..errors import (LeaseError, ProtocolError, ReproError, SimulationError,
                      SimulationTimeout)
from .campaign import (CampaignReport, RunOutcome, _ddmin, _machine_seed,
                       _strategy_for)
from .perturb import ReplayStrategy
from .properties import ClusterLeaseSafetyTracer, PropertyViolation

__all__ = ["CLUSTER_REPRO_FORMAT", "CLUSTER_SPEC_GRID", "NODE_GRID",
           "cluster_config_for", "run_cluster_once", "run_cluster_campaign",
           "replay_cluster_repro"]

CLUSTER_REPRO_FORMAT = "repro-cluster/1"

#: Campaign workload shape: small and contended -- few objects, every
#: node's threads fighting over them, leases short enough to expire
#: mid-run.
THREADS_PER_NODE = 2
OPS = 4
LEASE_CYCLES = 3_000
RENEW_MARGIN = 800
INTRA_LEASE_TIME = 600

#: Network-weather grid the campaign cycles through when no explicit
#: ``--cluster`` spec pins one: reliable, lossy, duplicating, skewed,
#: partitioned, and the lot at once.
CLUSTER_SPEC_GRID: tuple[str, ...] = (
    "",
    "loss:p=0.12",
    "dup:p=0.12",
    "skew:80",
    "loss:p=0.15;dup:p=0.08;skew:100",
    "partition:p=0.08,len=1500,check=300",
    "loss:p=0.10;dup:p=0.05;partition:p=0.06,len=2000,check=400;"
    "skew:120;delay:min=40,max=200",
)

#: Cluster sizes the campaign cycles through when ``nodes`` is None.
NODE_GRID: tuple[int, ...] = (2, 3, 4, 5)


def cluster_config_for(*, nodes: int, cluster_spec: str, seed: int,
                       quorum: int | None = None,
                       engine: str = "fast") -> ClusterConfig:
    """The campaign's cluster shape: tight budgets so a stuck negotiation
    surfaces as SimulationTimeout instead of hanging the fuzzer."""
    mc = MachineConfig(
        num_cores=THREADS_PER_NODE,
        lease=LeaseConfig(enabled=True, max_lease_time=INTRA_LEASE_TIME),
        max_cycles=3_000_000,
        max_events=3_000_000,
        seed=seed,
        engine=engine,
    )
    return ClusterConfig(nodes=nodes, objects=2, machine=mc,
                         lease_cycles=LEASE_CYCLES,
                         renew_margin=RENEW_MARGIN,
                         cluster_spec=cluster_spec, quorum=quorum,
                         seed=seed)


def run_cluster_once(ccfg: ClusterConfig, strategy: Any, *,
                     structure: str = "counter") -> RunOutcome:
    """Run one schedule of the cluster workload and check everything:
    lease safety while the run executes, then coherence invariants and
    the counter sum at quiescence."""
    cluster, info = build_cluster(
        ccfg, structure=structure, ops_per_thread=OPS,
        intra_lease_time=INTRA_LEASE_TIME, schedule=strategy)
    safety = cluster.attach_tracer(ClusterLeaseSafetyTracer())

    def outcome(ok: bool, kind: str, detail: str) -> RunOutcome:
        return RunOutcome(
            ok=ok, kind=kind, detail=detail,
            ops=cluster.merged_counters().ops_completed,
            decided=True, decisions=dict(strategy.decisions),
            strategy=strategy.describe(), properties=safety.summary(),
            cycles=cluster.now)

    try:
        cluster.run()
        cluster.check_coherence_invariants()
        verify_cluster_counters(cluster, info)
    except SimulationTimeout as exc:
        return outcome(False, "timeout",
                       f"no quiescence (stuck negotiation?): {exc}")
    except (PropertyViolation, ProtocolError, LeaseError) as exc:
        return outcome(False, "property", str(exc))
    except SimulationError as exc:
        return outcome(False, "history", str(exc))
    return outcome(True, "pass",
                   f"lease-safe ({safety.acquires_checked} grants checked)")


def _shrink_cluster_failure(ccfg: ClusterConfig, structure: str,
                            decisions: dict[int, int], *,
                            max_runs: int = 120) -> tuple[dict[int, int], int]:
    """ddmin the failing decision map by full replay (cluster runs are
    small; prefix-restore is not worth the state plumbing here)."""
    items = sorted(decisions.items())
    if not items:
        return {}, 0

    def fails(subset: dict[int, int]) -> bool:
        return not run_cluster_once(ccfg, ReplayStrategy(subset),
                                    structure=structure).ok

    if fails({}):
        # The unperturbed run fails too: the schedule was never the
        # trigger, so the minimal repro is the empty decision map.
        return {}, 1
    shrunk, runs = _ddmin(items, fails, max_runs)
    return dict(shrunk), runs + 1


def run_cluster_campaign(*, budget: int = 50, seed: int = 1,
                         nodes: int | None = None,
                         cluster_spec: str | None = None,
                         quorum: int | None = None,
                         structure: str = "counter",
                         shrink: bool = True, shrink_runs: int = 120,
                         engine: str = "fast",
                         progress: Callable[[str], None] | None = None
                         ) -> CampaignReport:
    """Explore ``budget`` schedules of the cluster workload; stop at the
    first failure (shrunk to a minimal replayable repro).  With ``nodes``
    / ``cluster_spec`` left as None the campaign sweeps
    :data:`NODE_GRID` x :data:`CLUSTER_SPEC_GRID`; pinning either
    narrows the sweep to it.  ``quorum`` is forwarded verbatim -- pass 1
    on a multi-node cluster to confirm the campaign catches a broken
    quorum."""
    report = CampaignReport(target=f"cluster_{structure}", seed=seed,
                            budget=budget)
    for i in range(budget):
        n = nodes if nodes is not None else NODE_GRID[i % len(NODE_GRID)]
        spec = (cluster_spec if cluster_spec is not None
                else CLUSTER_SPEC_GRID[(i // len(NODE_GRID))
                                       % len(CLUSTER_SPEC_GRID)])
        ccfg = cluster_config_for(nodes=n, cluster_spec=spec,
                                  seed=_machine_seed(seed, i),
                                  quorum=quorum, engine=engine)
        variant = f"n{n}" + (f"/{spec}" if spec else "")
        out = run_cluster_once(ccfg, _strategy_for(seed, i),
                               structure=structure)
        report.schedules_run += 1
        report.histories_checked += 1
        report.ops_checked += out.ops
        report.per_variant[variant] = report.per_variant.get(variant, 0) + 1
        if out.ok:
            continue
        report.failure = out
        if progress:
            progress(f"schedule {i} [{variant}] failed ({out.kind}): "
                     f"{out.detail}")
        decisions = out.decisions
        if shrink and decisions:
            if progress:
                progress(f"shrinking {len(decisions)} schedule decisions...")
            decisions, spent = _shrink_cluster_failure(
                ccfg, structure, decisions, max_runs=shrink_runs)
            report.shrink_runs = spent
            final = run_cluster_once(ccfg, ReplayStrategy(decisions),
                                     structure=structure)
            if not final.ok:
                report.failure = final
        report.repro = {
            "format": CLUSTER_REPRO_FORMAT,
            "structure": structure,
            "nodes": n,
            "quorum": quorum,
            "cluster_spec": spec,
            "campaign_seed": seed,
            "schedule_index": i,
            "machine_seed": ccfg.seed,
            "engine": engine,
            "strategy": out.strategy,
            "decisions": {str(k): v for k, v in sorted(decisions.items())},
            "failure": {"kind": report.failure.kind,
                        "detail": report.failure.detail},
        }
        break
    return report


def replay_cluster_repro(repro: dict) -> RunOutcome:
    """Re-execute a ``repro-cluster/1`` repro dict deterministically."""
    if repro.get("format") != CLUSTER_REPRO_FORMAT:
        raise ReproError(
            f"not a {CLUSTER_REPRO_FORMAT} repro "
            f"(format={repro.get('format')!r})")
    quorum = repro.get("quorum")
    ccfg = cluster_config_for(
        nodes=int(repro["nodes"]),
        cluster_spec=repro.get("cluster_spec", ""),
        seed=int(repro["machine_seed"]),
        quorum=int(quorum) if quorum is not None else None,
        engine=repro.get("engine", "fast"))
    decisions = {int(k): int(v)
                 for k, v in repro.get("decisions", {}).items()}
    return run_cluster_once(ccfg, ReplayStrategy(decisions),
                            structure=repro.get("structure", "counter"))
