"""Operation histories: the raw material of linearizability checking.

Benchmark workers report every completed operation through
``ctx.note_op(op, args, result, start)``, which emits an
:class:`~repro.trace.events.OpCompleted` event carrying the operation
name, its arguments, the observed result, and the invocation cycle; the
trace bus stamps the response cycle.  :class:`HistoryRecorder` is a plain
trace sink that collects these into :class:`OpRecord` entries -- pure
observation, so attaching it never perturbs the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..errors import SimulationError
from ..trace.bus import Tracer
from ..trace.events import OpCompleted, TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from ..core.machine import Machine

__all__ = ["OpRecord", "HistoryRecorder"]


@dataclass(frozen=True)
class OpRecord:
    """One completed operation: invocation/response interval + outcome."""

    index: int          #: arrival order in the trace stream
    tid: int            #: simulated thread id
    core: int           #: core the thread ran on
    op: str             #: operation name ("push", "delete_min", ...)
    args: tuple         #: operation arguments
    result: Any         #: value the operation returned to the worker
    invoked: int        #: cycle the operation was invoked
    responded: int      #: cycle the operation's response was observed

    def overlaps(self, other: "OpRecord") -> bool:
        """True when the two operations were concurrent (their
        invocation/response intervals intersect)."""
        return not (self.responded < other.invoked
                    or other.responded < self.invoked)

    def __str__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        return (f"t{self.tid} {self.op}({args}) -> {self.result!r} "
                f"@[{self.invoked}, {self.responded}]")


class HistoryRecorder(Tracer):
    """Collects the per-thread operation history of one run.

    Only ``op_completed`` events that carry an operation name contribute;
    bare throughput ticks are ignored.  Records arrive in response order
    (the bus delivers events in emission order), and within one thread the
    intervals are necessarily sequential.
    """

    def __init__(self) -> None:
        self.records: list[OpRecord] = []

    def bind(self, machine: "Machine") -> None:
        self.records = []

    def interests(self):
        """Only ``op_completed`` carries history; every other event type
        stays on the bus's allocation-free fast path during campaigns."""
        return frozenset((OpCompleted,))

    def on_event(self, ev: TraceEvent) -> None:
        if type(ev) is not OpCompleted or ev.op is None:
            return
        if ev.tid is None:
            raise SimulationError(
                "history record without a thread id: emit op histories "
                "via ctx.note_op, not a raw OpCompleted")
        invoked = ev.t if ev.start is None else ev.start
        self.records.append(OpRecord(
            index=len(self.records), tid=ev.tid, core=ev.core, op=ev.op,
            args=tuple(ev.args or ()), result=ev.result,
            invoked=invoked, responded=ev.t))

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self, codec) -> dict:
        return {"records": [
            [r.index, r.tid, r.core, r.op, codec.encode(r.args),
             codec.encode(r.result), r.invoked, r.responded]
            for r in self.records]}

    def load_state(self, state: dict, codec) -> None:
        self.records = [
            OpRecord(index=i, tid=tid, core=core, op=op,
                     args=codec.decode(args), result=codec.decode(result),
                     invoked=inv, responded=resp)
            for i, tid, core, op, args, result, inv, resp
            in state["records"]]

    # -- views ---------------------------------------------------------------

    def per_thread(self) -> dict[int, list[OpRecord]]:
        """Records grouped by thread, in program order."""
        out: dict[int, list[OpRecord]] = {}
        for r in self.records:
            out.setdefault(r.tid, []).append(r)
        return out

    def validate(self) -> None:
        """Sanity-check well-formedness: every interval is ordered and each
        thread's operations are sequential (no overlap within a thread)."""
        last_resp: dict[int, int] = {}
        for r in self.records:
            if r.responded < r.invoked:
                raise SimulationError(f"inverted interval: {r}")
            prev = last_resp.get(r.tid)
            if prev is not None and r.invoked < prev:
                raise SimulationError(
                    f"thread {r.tid} operations overlap: {r} invoked "
                    f"before previous response at {prev}")
            last_resp[r.tid] = r.responded
