"""repro.check: schedule exploration + linearizability checking.

The simulator is deterministic by default -- great for reproducibility,
terrible for finding ordering bugs: one run explores exactly one schedule.
This package closes that gap:

* :mod:`~repro.check.perturb` -- seeded strategies that reorder
  same-timestamp events (random jitter, PCT-style priorities, exact
  replay) through the engine's ``ScheduleStrategy`` hook;
* :mod:`~repro.check.history` -- per-thread operation histories recorded
  from the trace bus;
* :mod:`~repro.check.models` / :mod:`~repro.check.linearize` -- sequential
  models and a Wing&Gong-style linearizability checker;
* :mod:`~repro.check.properties` -- lease-specific properties (the
  Proposition 1 deferral bound, MultiLease address order);
* :mod:`~repro.check.campaign` -- the fuzzing driver behind
  ``python -m repro check``: explore schedules under a budget, shrink a
  failing schedule with ddmin, write a replayable repro file;
* :mod:`~repro.check.cluster` -- the multi-node campaign behind
  ``python -m repro check cluster_lease``: PaxosLease safety (at most
  one holder per object) fuzzed under message loss, duplication,
  partitions and timer skew.
"""

from .campaign import (CampaignReport, CheckTarget, EXPERIMENT_ALIASES,
                       RunOutcome, TARGETS, load_repro, replay_repro,
                       resolve_target, run_campaign, run_once,
                       shrink_failure)
from .cluster import (CLUSTER_REPRO_FORMAT, CLUSTER_SPEC_GRID, NODE_GRID,
                      cluster_config_for, replay_cluster_repro,
                      run_cluster_campaign, run_cluster_once)
from .history import HistoryRecorder, OpRecord
from .linearize import LinearizationResult, check_history
from .models import (CounterModel, ModelError, PQModel, QueueModel, SetModel,
                     StackModel)
from .perturb import (PctStrategy, RandomStrategy, ReplayStrategy,
                      ScheduleStrategy, owner_core, strategy_for_schedule)
from .properties import (ClusterLeaseSafetyTracer, LeasePropertyTracer,
                         PropertyViolation)

__all__ = [
    "CampaignReport", "CheckTarget", "EXPERIMENT_ALIASES", "RunOutcome",
    "TARGETS", "load_repro", "replay_repro", "resolve_target",
    "run_campaign", "run_once", "shrink_failure",
    "HistoryRecorder", "OpRecord",
    "LinearizationResult", "check_history",
    "CounterModel", "ModelError", "PQModel", "QueueModel", "SetModel",
    "StackModel",
    "PctStrategy", "RandomStrategy", "ReplayStrategy", "ScheduleStrategy",
    "owner_core", "strategy_for_schedule",
    "LeasePropertyTracer", "PropertyViolation",
    "CLUSTER_REPRO_FORMAT", "CLUSTER_SPEC_GRID", "NODE_GRID",
    "ClusterLeaseSafetyTracer", "cluster_config_for",
    "replay_cluster_repro", "run_cluster_campaign", "run_cluster_once",
]
