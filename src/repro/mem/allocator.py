"""Cache-line-aware bump allocator for simulated memory.

The paper (Section 7, "Observations and Limitations") notes that false
sharing between leased variables can degrade performance badly and should be
prevented by cache-aligned allocation; the allocator therefore defaults to
line-aligned allocations, and shared hot variables are placed on private
lines by the data-structure code.

Allocations may carry a symbolic ``label`` ("stack.head", "lock.word", ...);
``label_of(line)`` resolves a cache line back to its label, which is how the
trace heatmap names contended data.
"""

from __future__ import annotations

from ..config import WORD_SIZE
from ..errors import AllocationError
from .address import AddressMap


class Allocator:
    """Monotonic (bump) allocator over the simulated address space.

    The simulation never frees memory: reproducing the paper's benchmarks
    does not require reclamation (the paper itself elides memory reclamation
    / ABA handling, citing [37]), and monotonic addresses keep the global
    MultiLease sort order stable.
    """

    __slots__ = ("amap", "_next", "limit", "_labels")

    def __init__(self, amap: AddressMap, *, base: int = 1 << 12,
                 limit: int = 1 << 48) -> None:
        self.amap = amap
        # Never hand out address 0 ("NULL" in workload code) or the first
        # page, mirroring a real process layout.
        self._next = base
        self.limit = limit
        #: line -> symbolic allocation label (trace heatmaps).
        self._labels: dict[int, str] = {}

    @property
    def bytes_allocated(self) -> int:
        return self._next

    def alloc(self, nbytes: int, *, align: int | None = None,
              label: str | None = None) -> int:
        """Allocate ``nbytes`` and return the base byte address."""
        if nbytes <= 0:
            raise AllocationError(f"cannot allocate {nbytes} bytes")
        align = align or WORD_SIZE
        if align & (align - 1):
            raise AllocationError(f"alignment {align} not a power of two")
        base = (self._next + align - 1) & ~(align - 1)
        if base + nbytes > self.limit:
            raise AllocationError("simulated address space exhausted")
        self._next = base + nbytes
        if label is not None:
            first = self.amap.line_of(base)
            last = self.amap.line_of(base + nbytes - 1)
            for line in range(first, last + 1):
                self._labels[line] = label
        return base

    def alloc_words(self, nwords: int, *, line_aligned: bool = True,
                    label: str | None = None) -> int:
        """Allocate ``nwords`` 8-byte words (line-aligned by default)."""
        align = self.amap.line_size if line_aligned else WORD_SIZE
        return self.alloc(nwords * WORD_SIZE, align=align, label=label)

    def alloc_line(self, *, label: str | None = None) -> int:
        """Allocate one whole private cache line; returns its base address.

        Use this for hot shared variables (lock words, head/tail pointers)
        so that distinct variables never share a line (no false sharing).
        """
        return self.alloc(self.amap.line_size, align=self.amap.line_size,
                          label=label)

    def alloc_array(self, nwords: int, *, one_per_line: bool = False,
                    label: str | None = None) -> list[int]:
        """Allocate ``nwords`` word slots; with ``one_per_line`` each slot
        lives on its own cache line (padded array)."""
        if one_per_line:
            return [self.alloc_line(label=label) for _ in range(nwords)]
        base = self.alloc_words(nwords, label=label)
        return [base + i * WORD_SIZE for i in range(nwords)]

    def label_of(self, line: int) -> str | None:
        """Symbolic label of the allocation covering ``line``, if any."""
        return self._labels.get(line)

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self) -> dict:
        return {"next": self._next,
                "labels": [[line, lbl] for line, lbl in
                           self._labels.items()]}

    def load_state(self, state: dict) -> None:
        self._next = state["next"]
        self._labels = {line: lbl for line, lbl in state["labels"]}
