"""Address / cache-line arithmetic.

Simulated addresses are plain non-negative integers (byte addresses).  All
simulated values occupy one 8-byte word; the coherence machinery operates at
cache-line granularity.
"""

from __future__ import annotations

from ..config import WORD_SIZE
from ..errors import ConfigError


class AddressMap:
    """Maps byte addresses to cache lines and lines to home tiles."""

    __slots__ = ("line_size", "_line_shift", "num_tiles")

    def __init__(self, line_size: int, num_tiles: int) -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise ConfigError("line_size must be a positive power of two")
        if num_tiles <= 0:
            raise ConfigError("num_tiles must be positive")
        self.line_size = line_size
        self._line_shift = line_size.bit_length() - 1
        self.num_tiles = num_tiles

    def line_of(self, addr: int) -> int:
        """Cache-line index containing byte address ``addr``."""
        return addr >> self._line_shift

    def base_of_line(self, line: int) -> int:
        """First byte address of cache line ``line``."""
        return line << self._line_shift

    def offset_in_line(self, addr: int) -> int:
        return addr & (self.line_size - 1)

    def same_line(self, a: int, b: int) -> bool:
        return (a >> self._line_shift) == (b >> self._line_shift)

    def home_tile(self, line: int) -> int:
        """Home tile (directory slice / L2 slice) of a line.

        Lines are interleaved across tiles, the standard static mapping in
        tiled multicores (and Graphite's default).
        """
        return line % self.num_tiles

    def words_per_line(self) -> int:
        return self.line_size // WORD_SIZE
