"""Simulated memory substrate: address arithmetic, allocator, backing store."""

from .address import AddressMap
from .allocator import Allocator
from .memory import Memory

__all__ = ["AddressMap", "Allocator", "Memory"]
