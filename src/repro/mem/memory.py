"""Word-granularity backing store for simulated memory.

Values are arbitrary Python objects (workloads mostly store integers and
addresses).  The store is the single source of truth for data: caches track
only *presence and coherence state* for timing and statistics, while reads
and writes are applied to this store at the simulated instant the access
completes.  Because the discrete-event engine serializes all events and the
directory serializes ownership per line, this yields exact per-line
sequential consistency and exact atomicity for read-modify-write
instructions -- the properties the workloads rely on.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..config import WORD_SIZE
from ..errors import SimulationError


class Memory:
    """Sparse word-addressable memory: ``addr`` (byte address, 8-aligned)
    -> value.  Unwritten words read as 0."""

    __slots__ = ("_words",)

    def __init__(self) -> None:
        self._words: dict[int, Any] = {}

    @staticmethod
    def _check(addr: int) -> None:
        if addr < 0 or addr % WORD_SIZE:
            raise SimulationError(f"misaligned or negative address {addr:#x}")

    def read(self, addr: int) -> Any:
        self._check(addr)
        return self._words.get(addr, 0)

    def write(self, addr: int, value: Any) -> None:
        self._check(addr)
        self._words[addr] = value

    def cas(self, addr: int, expected: Any, new: Any) -> bool:
        """Atomic compare-and-swap, applied instantaneously."""
        self._check(addr)
        if self._words.get(addr, 0) == expected:
            self._words[addr] = new
            return True
        return False

    def fetch_add(self, addr: int, delta: Any) -> Any:
        self._check(addr)
        old = self._words.get(addr, 0)
        self._words[addr] = old + delta
        return old

    def swap(self, addr: int, value: Any) -> Any:
        self._check(addr)
        old = self._words.get(addr, 0)
        self._words[addr] = value
        return old

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self, codec) -> dict:
        """All written words, in insertion order (values go through the
        codec: workloads store arbitrary -- usually int -- objects)."""
        return {"words": [[a, codec.encode(v)]
                          for a, v in self._words.items()]}

    def load_state(self, state: dict, codec) -> None:
        self._words = {a: codec.decode(v) for a, v in state["words"]}

    def __len__(self) -> int:
        return len(self._words)

    def touched(self) -> Iterator[int]:
        """Addresses that have been written at least once."""
        return iter(self._words)
