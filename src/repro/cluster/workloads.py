"""Cluster workloads: sharded counter and sharded Treiber stacks.

Each cluster object is a *shard* with node-local backing state: every
node allocates its own replica lines (counter cells / stack heads), and
the cluster lease decides which node may operate its replica at any
instant.  Workers acquire the cluster lease, then run a short *burst* of
operations -- each one re-checked against the lease (the
``lease_guarded`` / ``guard`` fast-path gate) so a lease expiring
mid-burst shows up as a ``cluster_guard_denied`` and a re-acquire rather
than an unguarded access.

The sharded counter doubles as a whole-cluster sanity check: every
successful increment lands exactly once on exactly one node's shard
line, so the sum of all shard cells must equal the op total.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Sequence

from ..config import MachineConfig
from ..core.isa import Load, Release, Store, Work
from ..errors import SimulationError
from ..stats import RunResult
from ..structures import TreiberStack
from ..trace import Tracer
from ..traffic import TrafficSource, parse_traffic_spec
from .cluster import Cluster
from .config import ClusterConfig

__all__ = ["bench_cluster", "build_cluster", "verify_cluster_counters"]

#: Cycles of local work folded into each guarded operation (makes bursts
#: long enough that cluster leases can expire mid-burst under fuzz).
_OP_WORK = 40

#: Key-range multiplier for cluster traffic: keys map onto shards mod
#: ``objects``, but the distribution gets a wider range so Zipf/hot-set
#: skew is visible across shards rather than aliased away.
_SHARD_KEY_SPAN = 8


def _counter_worker(ctx, mgr, shards, ops, lease_time, burst):
    """Increment shards under the cluster lease, ``burst`` ops at a time.
    Returns the number of increments performed (each exactly once)."""
    done = 0
    nxt = ctx.tid  # stagger threads across shards
    while done < ops:
        obj = nxt % len(shards)
        nxt += 1
        yield from mgr.acquire(ctx, obj)
        addr = shards[obj]
        for _ in range(min(burst, ops - done)):
            ok = yield from mgr.lease_guarded(ctx, obj, addr, lease_time)
            if not ok:
                break  # cluster lease lapsed mid-burst; re-acquire
            v = yield Load(addr)
            yield Store(addr, v + 1)
            yield Release(addr)
            yield Work(_OP_WORK)
            done += 1
            ctx.note_op(op="incr", args=(obj,), result=v + 1)
        mgr.release(obj)
    return done


def _treiber_worker(ctx, mgr, stacks, ops, burst):
    """Pop+push pairs on per-node Treiber shards under the cluster lease."""
    done = 0
    nxt = ctx.tid
    while done < ops:
        obj = nxt % len(stacks)
        nxt += 1
        yield from mgr.acquire(ctx, obj)
        for _ in range(min(burst, ops - done)):
            if not mgr.guard(ctx, obj):
                break
            v = yield from stacks[obj].pop(ctx)
            yield from stacks[obj].push(ctx, 0 if v is None else v + 1)
            yield Work(_OP_WORK)
            done += 1
            ctx.note_op(op="poppush", args=(obj,), result=v)
        mgr.release(obj)
    return done


def _traffic_counter_worker(ctx, mgr, shards, lane, lease_time):
    """Open-loop shard increments: each admitted arrival picks its shard
    from the admitted key and performs one guarded increment (acquiring
    the cluster lease per op; latency includes the acquisition round)."""
    done = 0
    while True:
        item = lane.poll(ctx)
        if item is None:
            return done
        if isinstance(item, int):
            yield Work(item)
            continue
        enqueued, _tenant, key = item
        obj = key % len(shards)
        addr = shards[obj]
        while True:
            yield from mgr.acquire(ctx, obj)
            ok = yield from mgr.lease_guarded(ctx, obj, addr, lease_time)
            if ok:
                break
            mgr.release(obj)  # cluster lease lapsed before the op; retry
        v = yield Load(addr)
        yield Store(addr, v + 1)
        yield Release(addr)
        yield Work(_OP_WORK)
        mgr.release(obj)
        done += 1
        lane.complete(enqueued, ctx.machine.now)
        ctx.note_op(op="incr", args=(obj,), result=v + 1)


def _traffic_treiber_worker(ctx, mgr, stacks, lane):
    """Open-loop pop+push pairs on the shard the admitted key names."""
    done = 0
    while True:
        item = lane.poll(ctx)
        if item is None:
            return done
        if isinstance(item, int):
            yield Work(item)
            continue
        enqueued, _tenant, key = item
        obj = key % len(stacks)
        while True:
            yield from mgr.acquire(ctx, obj)
            if mgr.guard(ctx, obj):
                break
            mgr.release(obj)
        v = yield from stacks[obj].pop(ctx)
        yield from stacks[obj].push(ctx, 0 if v is None else v + 1)
        yield Work(_OP_WORK)
        mgr.release(obj)
        done += 1
        lane.complete(enqueued, ctx.machine.now)
        ctx.note_op(op="poppush", args=(obj,), result=v)


def build_cluster(ccfg: ClusterConfig, *, structure: str = "counter",
                  ops_per_thread: int = 6, burst: int = 4,
                  intra_lease_time: int = 600, prefill: int = 16,
                  traffic: str = "",
                  schedule: Any = None) -> tuple[Cluster, dict]:
    """Build a ready-to-run cluster workload.  Returns ``(cluster, info)``
    where ``info`` carries what post-run verification needs (the shard
    addresses per node for the counter sanity sum, and the traffic source
    when ``traffic`` selects open-loop arrivals)."""
    if structure not in ("counter", "treiber"):
        raise SimulationError(
            f"unknown cluster structure {structure!r} "
            "(expected 'counter' or 'treiber')")
    cluster = Cluster(ccfg, schedule_strategy=schedule)
    threads = ccfg.machine.num_cores
    info: dict = {"structure": structure,
                  "expected_ops": ccfg.nodes * threads * ops_per_thread}
    spec = parse_traffic_spec(traffic)
    src = None
    if not spec.empty:
        # One lane per worker thread, cluster-wide: lane index is
        # node * threads + local thread, so arrivals are a function of
        # (seed, node, thread), never of scheduling.
        src = TrafficSource(spec, num_lanes=ccfg.nodes * threads,
                            seed=ccfg.seed,
                            key_range=ccfg.objects * _SHARD_KEY_SPAN,
                            default_ops=ops_per_thread)
        info["traffic_source"] = src
    if structure == "counter":
        shards_per_node = []
        for n, m in enumerate(cluster.nodes):
            shards = [m.alloc_var(0, label=f"shard{o}")
                      for o in range(ccfg.objects)]
            shards_per_node.append(shards)
            for t in range(threads):
                if src is not None:
                    m.add_thread(_traffic_counter_worker,
                                 cluster.managers[n], shards,
                                 src.lane(n * threads + t),
                                 intra_lease_time)
                else:
                    m.add_thread(_counter_worker, cluster.managers[n],
                                 shards, ops_per_thread, intra_lease_time,
                                 burst)
        info["shards_per_node"] = shards_per_node
    else:
        for n, m in enumerate(cluster.nodes):
            stacks = [TreiberStack(m, lease_time=intra_lease_time)
                      for _ in range(ccfg.objects)]
            for s in stacks:
                s.prefill(range(prefill))
            for t in range(threads):
                if src is not None:
                    m.add_thread(_traffic_treiber_worker,
                                 cluster.managers[n], stacks,
                                 src.lane(n * threads + t))
                else:
                    m.add_thread(_treiber_worker, cluster.managers[n],
                                 stacks, ops_per_thread, burst)
    return cluster, info


def verify_cluster_counters(cluster: Cluster, info: dict) -> None:
    """Post-run sanity for the sharded counter: every op landed exactly
    once on exactly one node's shard line."""
    if info.get("structure") != "counter":
        return
    total = sum(m.peek(addr)
                for m, shards in zip(cluster.nodes,
                                     info["shards_per_node"])
                for addr in shards)
    ops = cluster.merged_counters().ops_completed
    if total != ops:
        raise SimulationError(
            f"cluster counter mismatch: shard cells sum to {total}, "
            f"{ops} increments completed")
    src = info.get("traffic_source")
    # Open-loop: only admitted arrivals run; shed arrivals must not.
    expected = src.admitted if src is not None else info["expected_ops"]
    if ops != expected:
        raise SimulationError(
            f"cluster counter mismatch: {ops} increments completed, "
            f"expected {expected}")


def bench_cluster(num_threads: int, *, structure: str = "counter",
                  nodes: int = 2, objects: int = 2,
                  ops_per_thread: int = 6, burst: int = 4,
                  lease_cycles: int = 20_000, renew_margin: int = 5_000,
                  cluster_spec: str = "", quorum: int | None = None,
                  intra_lease_time: int = 600, prefill: int = 16,
                  traffic: str = "",
                  config: MachineConfig | None = None,
                  sinks: Sequence[Tracer] | None = None,
                  schedule: Any = None) -> RunResult:
    """Drive a sharded cluster workload; ``num_threads`` is threads *per
    node*.  ``sinks`` attach to the cluster bus (lease/message events).
    The machine config template carries seed/faults/engine exactly as in
    the single-machine benches.  A non-empty ``traffic`` arrival spec
    switches workers to open-loop (admitted keys pick the shard; latency
    includes the cluster-lease acquisition round)."""
    mc = replace(config or MachineConfig(), num_cores=num_threads)
    mc = replace(mc, lease=replace(mc.lease, enabled=True))
    ccfg = ClusterConfig(nodes=nodes, objects=objects, machine=mc,
                         lease_cycles=lease_cycles,
                         renew_margin=renew_margin,
                         cluster_spec=cluster_spec, quorum=quorum,
                         seed=mc.seed)
    cluster, info = build_cluster(
        ccfg, structure=structure, ops_per_thread=ops_per_thread,
        burst=burst, intra_lease_time=intra_lease_time, prefill=prefill,
        traffic=traffic, schedule=schedule)
    for sink in sinks or ():
        cluster.attach_tracer(sink)
    cluster.run()
    verify_cluster_counters(cluster, info)
    k = cluster.counters
    res = cluster.result(f"cluster_{structure}/n{nodes}", extra={
        "nodes": nodes,
        "objects": objects,
        "node_msgs": k.node_msgs_sent,
        "node_msgs_dropped": k.node_msgs_dropped,
        "paxos_rounds": k.paxos_rounds,
        "cluster_leases_acquired": k.cluster_leases_acquired,
        "cluster_leases_expired": k.cluster_leases_expired,
        "cluster_guard_denied": k.cluster_guard_denied,
    })
    src = info.get("traffic_source")
    if src is not None:
        res.latency = src.summary()
    return res
