"""PaxosLease: diskless majority-quorum lease negotiation between nodes.

One :class:`PaxosAgent` per node plays both Paxos roles for every cluster
object: *proposer* (opens rounds to acquire/renew the object's lease) and
*acceptor* (promises ballots and records accepted leases, expiring them on
a local timer).  There is no stable storage and no log -- safety comes
entirely from quorum intersection plus timers:

* A proposer may claim the lease only after a **quorum of accepts** for
  its ballot.  Two quorums intersect, and the shared acceptor will not
  accept a second ballot while its recorded lease is unexpired, so two
  claims can only come from rounds separated by an acceptor-side expiry.
* Timers bound how long an accept blocks the slot.  With clock drift up
  to ``skew`` cycles, an acceptor holds its accepted lease for
  ``T + drawn_skew`` (drawn in ``[-skew, +skew]``), while the proposer
  only trusts its lease until ``t_prepare + T - skew`` -- measured from
  *before* any acceptor started its timer and shortened by the full
  bound.  Hence the proposer's local expiry never exceeds any quorum
  acceptor's, and "at most one holder at any instant" survives any drift
  within the bound.  (The ``quorum`` config knob can deliberately break
  the intersection property; ``repro check cluster_lease`` uses that as
  its negative test.)

Ballot numbers are ``counter * N + node_id`` -- disjoint per node, totally
ordered, and bumped past any ``promised`` seen in a nack.  All messages
are tuples of primitives so the checkpoint codec needs no new classes::

    ("prepare",  obj, ballot, src)
    ("promise",  obj, ballot, src, acc_ballot, acc_holder)  # -1 = none
    ("nack",     obj, ballot, src, promised)
    ("accept",   obj, ballot, holder, duration, src)
    ("accepted", obj, ballot, src)
    ("release",  obj, ballot, holder, src)                  # voluntary

``release`` is an optimization absent from the original protocol: a
holder that stops renewing broadcasts it so acceptors can clear their
slot early instead of blocking the object for the rest of the term.  It
is safe (the holder already stopped using the lease) and best-effort
(lost releases just fall back to timer expiry).

Every timer is fire-and-forget: scheduled callbacks carry ``(obj,
ballot)`` and stale ones are dropped by a ballot/phase check, so nothing
ever needs cancelling -- which keeps the event queue checkpointable with
four registered methods and primitive args.
"""

from __future__ import annotations

import random

from .config import ClusterConfig

__all__ = ["PaxosAgent"]

#: Proposer phases for one object's current round.
_IDLE, _PREPARE, _ACCEPT = "idle", "prepare", "accept"


class _ObjState:
    """Per-(node, object) protocol state: one proposer round + interest
    bookkeeping + the local acceptor slot.  Plain slots of primitives;
    the agent serializes it field-for-field."""

    __slots__ = (
        # -- interest + held lease (proposer outcome) --
        "interest", "holding", "holding_ballot", "expires_at",
        # -- current round (proposer) --
        "phase", "ballot", "t_start", "promises", "accepts", "conflict",
        "counter",
        # -- acceptor slot --
        "promised", "acc_ballot", "acc_holder", "acc_until",
    )

    def __init__(self) -> None:
        self.interest = 0
        self.holding = False
        self.holding_ballot = -1
        self.expires_at = 0
        self.phase = _IDLE
        self.ballot = -1
        self.t_start = 0
        self.promises: set[int] = set()
        self.accepts: set[int] = set()
        self.conflict = False
        self.counter = 0
        self.promised = -1
        self.acc_ballot = -1
        self.acc_holder = -1
        self.acc_until = 0

    _FIELDS = ("interest", "holding", "holding_ballot", "expires_at",
               "phase", "ballot", "t_start", "conflict", "counter",
               "promised", "acc_ballot", "acc_holder", "acc_until")

    def state_dict(self) -> dict:
        state = {f: getattr(self, f) for f in self._FIELDS}
        state["promises"] = sorted(self.promises)
        state["accepts"] = sorted(self.accepts)
        return state

    def load_state(self, state: dict) -> None:
        for f in self._FIELDS:
            setattr(self, f, state[f])
        self.promises = set(state["promises"])
        self.accepts = set(state["accepts"])


class PaxosAgent:
    """One node's proposer + acceptor over all cluster objects."""

    def __init__(self, node: int, config: ClusterConfig, net, sim,
                 trace) -> None:
        self.node = node
        self.num_nodes = config.nodes
        self.quorum = config.effective_quorum
        self.lease_cycles = config.lease_cycles
        self.renew_margin = config.renew_margin
        spec = config.spec
        self.skew_bound = spec.skew
        #: Abandon a round that got no quorum within two worst-case round
        #: trips (prepare + accept), with slack for queued deliveries.
        self.round_timeout = 4 * spec.delay_max + 200
        self.net = net
        self.sim = sim
        self.trace = trace
        self._skew_rng = random.Random(f"{config.seed}:cluster:skew:{node}")
        self._backoff_rng = random.Random(
            f"{config.seed}:cluster:backoff:{node}")
        self._objs = {obj: _ObjState() for obj in range(config.objects)}

    # -- the manager-facing surface -----------------------------------------

    def holding(self, obj: int) -> bool:
        """True while this node's lease on ``obj`` is locally unexpired.
        ``expires_at`` is exclusive: at the expiry cycle the holder has
        already stopped trusting the lease, whatever the same-cycle event
        order."""
        st = self._objs[obj]
        return st.holding and self.sim.now < st.expires_at

    def request(self, obj: int) -> None:
        """Register interest (one worker entering an acquire); opens a
        round when this is the first interested worker."""
        st = self._objs[obj]
        st.interest += 1
        if st.interest == 1 and st.phase == _IDLE and not self.holding(obj):
            self._start_round(obj, extend=False)

    def stop(self, obj: int) -> None:
        """Drop one worker's interest; the last drop voluntarily releases
        a held lease (stops renewing and tells the acceptors)."""
        st = self._objs[obj]
        st.interest -= 1
        if st.interest <= 0:
            st.interest = 0
            if self.holding(obj):
                self._release(obj)

    # -- proposer ------------------------------------------------------------

    def _start_round(self, obj: int, extend: bool) -> None:
        st = self._objs[obj]
        st.counter += 1
        ballot = st.counter * self.num_nodes + self.node
        st.phase = _PREPARE
        st.ballot = ballot
        st.t_start = self.sim.now
        st.promises = set()
        st.accepts = set()
        st.conflict = False
        self.trace.paxos_round(self.node, obj, ballot, extend)
        self.sim.after(self.round_timeout, self._on_round_timeout,
                       obj, ballot)
        self._broadcast(("prepare", obj, ballot, self.node))

    def _release(self, obj: int) -> None:
        st = self._objs[obj]
        ballot = st.holding_ballot
        st.holding = False
        self.trace.cluster_lease_released(self.node, obj, ballot)
        self._broadcast(("release", obj, ballot, self.node, self.node))

    def _schedule_retry(self, obj: int) -> None:
        """Seeded randomized backoff before reopening a round -- breaks
        dueling-proposer livelock without any coordination."""
        delay = self._backoff_rng.randint(20, self.round_timeout)
        self.sim.after(delay, self._retry, obj)

    def _retry(self, obj: int) -> None:
        st = self._objs[obj]
        if st.phase != _IDLE:
            return
        if self.holding(obj):
            if st.interest > 0:
                self._start_round(obj, extend=True)
        elif st.interest > 0:
            self._start_round(obj, extend=False)

    def _maybe_renew(self, obj: int, ballot: int) -> None:
        st = self._objs[obj]
        if (st.holding and st.holding_ballot == ballot
                and st.interest > 0 and st.phase == _IDLE):
            self._start_round(obj, extend=True)

    def _on_round_timeout(self, obj: int, ballot: int) -> None:
        st = self._objs[obj]
        if st.ballot != ballot or st.phase not in (_PREPARE, _ACCEPT):
            return
        st.phase = _IDLE
        if st.interest > 0 or self.holding(obj):
            self._schedule_retry(obj)

    def _on_lease_expire(self, obj: int, ballot: int) -> None:
        st = self._objs[obj]
        if (st.holding and st.holding_ballot == ballot
                and self.sim.now >= st.expires_at):
            st.holding = False
            self.trace.cluster_lease_expired(self.node, obj, ballot)
            if st.interest > 0 and st.phase == _IDLE:
                self._schedule_retry(obj)

    # -- message plumbing ----------------------------------------------------

    def _send(self, dst: int, msg: tuple) -> None:
        """Self-messages are handled synchronously (a node's own acceptor
        shares its clock; no loss or latency applies); everything else
        goes over the lossy network."""
        if dst == self.node:
            self.on_message(msg)
        else:
            self.net.send(self.node, dst, msg)

    def _broadcast(self, msg: tuple) -> None:
        for dst in range(self.num_nodes):
            self._send(dst, msg)

    def on_message(self, msg: tuple) -> None:
        kind = msg[0]
        if kind == "prepare":
            self._on_prepare(*msg[1:])
        elif kind == "promise":
            self._on_promise(*msg[1:])
        elif kind == "nack":
            self._on_nack(*msg[1:])
        elif kind == "accept":
            self._on_accept(*msg[1:])
        elif kind == "accepted":
            self._on_accepted(*msg[1:])
        elif kind == "release":
            self._on_release(*msg[1:])

    # -- proposer: responses -------------------------------------------------

    def _on_promise(self, obj: int, ballot: int, src: int,
                    acc_ballot: int, acc_holder: int) -> None:
        st = self._objs[obj]
        if st.phase != _PREPARE or ballot != st.ballot:
            return  # stale or duplicate response to a dead round
        if acc_holder not in (-1, self.node):
            # Someone else's lease is still live on this acceptor; the
            # round must not steal it.
            st.conflict = True
        st.promises.add(src)
        if len(st.promises) < self.quorum:
            return
        if st.conflict:
            st.phase = _IDLE
            self._schedule_retry(obj)
            return
        st.phase = _ACCEPT
        st.accepts = set()
        self._broadcast(("accept", obj, ballot, self.node,
                         self.lease_cycles, self.node))

    def _on_accepted(self, obj: int, ballot: int, src: int) -> None:
        st = self._objs[obj]
        if st.phase != _ACCEPT or ballot != st.ballot:
            return
        st.accepts.add(src)
        if len(st.accepts) < self.quorum:
            return
        st.phase = _IDLE
        # Trust the lease only up to the prepare send time plus the term,
        # shortened by the full skew bound: every quorum acceptor started
        # its (possibly fast-running) timer after t_start, so it outlasts
        # this local view.
        expires_at = st.t_start + self.lease_cycles - self.skew_bound
        if expires_at <= self.sim.now:
            # The round outlived the term it was negotiating; the grant
            # is stillborn.  Try again.
            st.holding = False
            if st.interest > 0:
                self._schedule_retry(obj)
            return
        st.holding = True
        st.holding_ballot = ballot
        st.expires_at = expires_at
        self.trace.cluster_lease_acquired(self.node, obj, ballot,
                                          expires_at)
        if st.interest <= 0:
            # Interest evaporated mid-round; give the lease straight back.
            self._release(obj)
            return
        self.sim.at(max(self.sim.now + 1,
                        expires_at - self.renew_margin),
                    self._maybe_renew, obj, ballot)
        self.sim.at(expires_at, self._on_lease_expire, obj, ballot)

    def _on_nack(self, obj: int, ballot: int, src: int,
                 promised: int) -> None:
        st = self._objs[obj]
        if st.ballot != ballot or st.phase not in (_PREPARE, _ACCEPT):
            return
        # Jump the counter past the promised ballot so the next round
        # outbids it immediately.
        st.counter = max(st.counter, promised // self.num_nodes)
        st.phase = _IDLE
        self._schedule_retry(obj)

    # -- acceptor ------------------------------------------------------------

    def _lazy_expire_acceptor(self, st: _ObjState) -> None:
        """Acceptor timers need no events: the accepted lease evaporates
        the first time the slot is consulted at or past its deadline."""
        if st.acc_holder != -1 and self.sim.now >= st.acc_until:
            st.acc_ballot = -1
            st.acc_holder = -1
            st.acc_until = 0

    def _on_prepare(self, obj: int, ballot: int, src: int) -> None:
        st = self._objs[obj]
        self._lazy_expire_acceptor(st)
        if ballot < st.promised:
            self._send(src, ("nack", obj, ballot, self.node, st.promised))
            return
        st.promised = ballot
        self._send(src, ("promise", obj, ballot, self.node,
                         st.acc_ballot, st.acc_holder))

    def _on_accept(self, obj: int, ballot: int, holder: int,
                   duration: int, src: int) -> None:
        st = self._objs[obj]
        self._lazy_expire_acceptor(st)
        if ballot < st.promised:
            self._send(src, ("nack", obj, ballot, self.node, st.promised))
            return
        st.promised = ballot
        st.acc_ballot = ballot
        st.acc_holder = holder
        # The local timer runs for the term plus this node's drift draw
        # (bounded by the spec's skew): a slow clock blocks the slot a
        # little longer, a fast one still outlasts the proposer's
        # full-bound-shortened view.  A duplicate accept just re-arms the
        # timer -- longer blocking, never a second holder.
        skew = (self._skew_rng.randint(-self.skew_bound, self.skew_bound)
                if self.skew_bound else 0)
        st.acc_until = self.sim.now + duration + skew
        self._send(src, ("accepted", obj, ballot, self.node))

    def _on_release(self, obj: int, ballot: int, holder: int,
                    src: int) -> None:
        st = self._objs[obj]
        if st.acc_ballot == ballot and st.acc_holder == holder:
            st.acc_ballot = -1
            st.acc_holder = -1
            st.acc_until = 0

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self) -> dict:
        from ..state.codec import encode_rng

        return {
            "skew_rng": encode_rng(self._skew_rng),
            "backoff_rng": encode_rng(self._backoff_rng),
            "objs": [[obj, st.state_dict()]
                     for obj, st in sorted(self._objs.items())],
        }

    def load_state(self, state: dict) -> None:
        from ..state.codec import decode_rng

        decode_rng(self._skew_rng, state["skew_rng"])
        decode_rng(self._backoff_rng, state["backoff_rng"])
        for obj, ss in state["objs"]:
            self._objs[obj].load_state(ss)
