"""Cluster-fault grammar: parse ``--cluster`` strings into a frozen spec.

The inter-node network (:mod:`repro.cluster.internode`) is adversarial by
configuration: every unreliability knob -- link latency, message loss,
duplication, partitions, clock skew -- comes from one ``;``-separated spec
string, mirroring the intra-node ``--faults`` grammar::

    delay:min=60,max=160;loss:p=0.05;dup:p=0.02;partition:p=0.01,len=2000;skew:±40

Clauses
-------

``delay:min=<cycles>,max=<cycles>``
    Per-message one-way latency drawn uniformly from ``[min, max]``
    (default 50..150 when the clause is absent).

``loss:p=<prob>``
    Each inter-node message is independently dropped with probability
    ``p``.

``dup:p=<prob>``
    Each *delivered* message is delivered a second time with probability
    ``p`` (the copy draws its own latency; PaxosLease must be duplicate-
    idempotent).

``partition:p=<prob>,len=<cycles>[,check=<cycles>]``
    Every ``check`` cycles (default 500) the network weather is rolled:
    with probability ``p`` a random bipartition of the nodes is cut for
    ``len`` cycles (messages across the cut are dropped), after which it
    heals.

``skew:±<cycles>`` (also accepts ``<cycles>`` or ``max=<cycles>``)
    Each node's local lease timers drift by a per-timer uniform draw from
    ``[-cycles, +cycles]``.  PaxosLease stays safe under any drift within
    the bound: proposers shorten their local expiry by the full bound
    while acceptors lengthen theirs by the drawn skew.

The parse is strict: unknown clause names, malformed parameters, and
out-of-range values raise :class:`~repro.errors.ConfigError` so a typo'd
``--cluster`` flag fails fast instead of silently testing nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..faults.spec import _parse_int, _parse_params, _parse_prob

__all__ = ["ClusterFaultSpec", "parse_cluster_spec"]

#: Default per-message latency window (cycles) when no ``delay`` clause
#: is given: wide enough that rounds overlap, short against lease terms.
DEFAULT_DELAY_MIN = 50
DEFAULT_DELAY_MAX = 150

#: Default weather-roll period for ``partition`` clauses (cycles).
DEFAULT_PARTITION_CHECK = 500


@dataclass(frozen=True)
class ClusterFaultSpec:
    """Parsed, validated inter-node unreliability parameters (the *what*;
    the seeded streams inside :class:`~repro.cluster.internode.
    InterNodeNetwork` are the *when*)."""

    #: the original spec string, verbatim (travels inside ClusterConfig
    #: and repro-cluster files so clusters can be rebuilt anywhere).
    raw: str = ""
    delay_min: int = DEFAULT_DELAY_MIN
    delay_max: int = DEFAULT_DELAY_MAX
    loss_p: float = 0.0
    dup_p: float = 0.0
    partition_p: float = 0.0
    partition_len: int = 0
    partition_check: int = DEFAULT_PARTITION_CHECK
    skew: int = 0

    @property
    def empty(self) -> bool:
        """True when every unreliability knob is off (latency is still
        modeled -- a cluster network is never a same-cycle wire)."""
        return (self.loss_p == 0.0 and self.dup_p == 0.0
                and self.partition_p == 0.0 and self.skew == 0)


def parse_cluster_spec(spec: str) -> ClusterFaultSpec:
    """Parse a ``--cluster`` spec string.  An empty/whitespace string
    yields a reliable network with the default latency window."""
    spec = (spec or "").strip()
    fields: dict = {"raw": spec}
    seen: set[str] = set()
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        name, _, body = clause.partition(":")
        name = name.strip()
        body = body.strip()
        if name in seen:
            raise ConfigError(f"cluster spec: duplicate clause {name!r}")
        seen.add(name)
        if name == "delay":
            params = _parse_params(clause, body, ("min", "max"))
            if "min" not in params or "max" not in params:
                raise ConfigError(
                    f"cluster spec: {clause}: needs min=<cycles>,"
                    "max=<cycles>")
            lo = _parse_int(clause, "min", params["min"], min_val=1)
            hi = _parse_int(clause, "max", params["max"], min_val=1)
            if hi < lo:
                raise ConfigError(
                    f"cluster spec: {clause}: max={hi} < min={lo}")
            fields["delay_min"], fields["delay_max"] = lo, hi
        elif name == "loss":
            params = _parse_params(clause, body, ("p",))
            if "p" not in params:
                raise ConfigError(f"cluster spec: {clause}: needs p=<prob>")
            fields["loss_p"] = _parse_prob(clause, "p", params["p"])
        elif name == "dup":
            params = _parse_params(clause, body, ("p",))
            if "p" not in params:
                raise ConfigError(f"cluster spec: {clause}: needs p=<prob>")
            fields["dup_p"] = _parse_prob(clause, "p", params["p"])
        elif name == "partition":
            params = _parse_params(clause, body, ("p", "len", "check"))
            if "p" not in params or "len" not in params:
                raise ConfigError(
                    f"cluster spec: {clause}: needs p=<prob>,len=<cycles>")
            fields["partition_p"] = _parse_prob(clause, "p", params["p"])
            fields["partition_len"] = _parse_int(
                clause, "len", params["len"], min_val=1)
            if "check" in params:
                fields["partition_check"] = _parse_int(
                    clause, "check", params["check"], min_val=1)
        elif name == "skew":
            value = body
            if value.lower().startswith("max="):
                value = value[4:]
            # accept the spec-string idiom "±40" as well as plain "40"
            value = value.lstrip("±").lstrip("+").strip()
            if not value:
                raise ConfigError(
                    f"cluster spec: {clause}: needs a skew bound in cycles")
            fields["skew"] = _parse_int(clause, "skew", value, min_val=0)
        else:
            raise ConfigError(
                f"cluster spec: unknown clause {name!r} (known: delay, "
                f"loss, dup, partition, skew)")
    return ClusterFaultSpec(**fields)
