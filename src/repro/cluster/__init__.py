"""repro.cluster: N machines under one clock, leased via PaxosLease.

The multi-node layer.  A :class:`Cluster` drives N
:class:`~repro.core.machine.Machine` instances on one shared simulated
clock, connects them with a lossy latency-modeled
:class:`InterNodeNetwork`, and negotiates *inter-node* object ownership
with a diskless PaxosLease protocol (:class:`PaxosAgent`).  A
:class:`DistributedLeaseManager` per node then layers that ownership
over the paper's intra-node Lease/Release: a node only issues
``Lease`` on lines it holds the cluster lease for.

Everything is deterministic per ``(ClusterConfig, seed)`` on both
engines, checkpointable via ``state_dict``/``load_state``, and fuzzed by
``repro check cluster_lease`` (the ≤1-holder safety property under
message loss, duplication, partitions and timer skew).
"""

from .cluster import Cluster, ClusterCodec, node_seed
from .config import ClusterConfig
from .internode import InterNodeNetwork
from .manager import DistributedLeaseManager
from .paxoslease import PaxosAgent
from .spec import ClusterFaultSpec, parse_cluster_spec
from .workloads import bench_cluster, build_cluster, verify_cluster_counters

__all__ = [
    "Cluster",
    "ClusterCodec",
    "ClusterConfig",
    "ClusterFaultSpec",
    "DistributedLeaseManager",
    "InterNodeNetwork",
    "PaxosAgent",
    "bench_cluster",
    "build_cluster",
    "node_seed",
    "parse_cluster_spec",
    "verify_cluster_counters",
]
