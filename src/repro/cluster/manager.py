"""The distributed lease manager: cluster ownership over node-local leases.

One manager per node bridges two lease layers.  The cluster layer
(:mod:`repro.cluster.paxoslease`) decides *which node* owns an object;
the paper's intra-node Lease/Release (:mod:`repro.lease`) then
serializes *cores within that node* on the object's cache lines.  A
node only issues intra-node ``Lease`` on lines it holds the cluster
lease for -- :meth:`lease_guarded` enforces that, refusing the leased
fast path (and emitting ``cluster_guard_denied``) when the cluster lease
lapsed under the worker.

Checkpoint contract: worker generators call into this manager *between*
yields, so its reads of live agent state must replay from the resume log
(the :class:`~repro.core.thread.Ctx` ``alloc`` idiom).  Each poll of the
cluster-lease state records a ``("cpoll", tid, held)`` entry and each
guard decision a ``("cguard", tid, ok)`` entry; during a restore the
recorded outcomes are consumed from the cursor instead, and the
``request``/``stop`` side effects are skipped entirely -- the agents'
real state is installed from the snapshot afterwards.
"""

from __future__ import annotations

from typing import Generator

from ..core.isa import Lease, Work
from .paxoslease import PaxosAgent

__all__ = ["DistributedLeaseManager"]

#: Cycles a worker sleeps between cluster-lease polls while blocked in
#: :meth:`DistributedLeaseManager.acquire`.
POLL_CYCLES = 120


class DistributedLeaseManager:
    """Per-node façade the workloads talk to."""

    def __init__(self, node: int, machine, agent: PaxosAgent,
                 trace) -> None:
        self.node = node
        self._machine = machine
        self._agent = agent
        self._trace = trace
        self.poll_cycles = POLL_CYCLES

    def holds(self, obj: int) -> bool:
        """True while this node's cluster lease on ``obj`` is unexpired."""
        return self._agent.holding(obj)

    def acquire(self, ctx, obj: int) -> Generator:
        """Block (spin in simulated time) until this node holds the
        cluster lease on ``obj``.  Registers one unit of interest; pair
        with :meth:`release`.  Use as ``yield from mgr.acquire(ctx, obj)``.
        """
        m = self._machine
        if m._replay_cursor is None:
            self._agent.request(obj)
        # The cursor must be re-read on every iteration: a checkpoint can
        # cut this loop mid-poll, in which case the restore replays the
        # recorded polls and the loop then carries on live -- the replay /
        # live boundary falls between two iterations of this generator.
        while True:
            cursor = m._replay_cursor
            if cursor is not None:
                # Restore replay: poll outcomes come from the log; the
                # interest side effect is in the snapshotted agent state.
                held = cursor.take("cpoll", ctx.tid)
            else:
                held = self._agent.holding(obj)
                if m._replay_log is not None:
                    m._replay_log.append(("cpoll", ctx.tid, held, m.sim.now))
            if held:
                return
            yield Work(self.poll_cycles)

    def release(self, obj: int) -> None:
        """Drop the interest taken by :meth:`acquire` (plain call, not a
        yield: releasing sends no intra-node traffic)."""
        if self._machine._replay_cursor is not None:
            return
        self._agent.stop(obj)

    def guard(self, ctx, obj: int) -> bool:
        """Check (and record) whether this node still holds the cluster
        lease on ``obj``.  Workers call this before each operation in a
        burst; a False means the lease expired under them and they must
        re-:meth:`acquire`.  Emits ``cluster_guard_denied`` on denial."""
        m = self._machine
        cursor = m._replay_cursor
        if cursor is not None:
            return cursor.take("cguard", ctx.tid)
        ok = self._agent.holding(obj)
        if m._replay_log is not None:
            m._replay_log.append(("cguard", ctx.tid, ok, m.sim.now))
        if not ok:
            self._trace.cluster_guard_denied(self.node, obj)
        return ok

    def lease_guarded(self, ctx, obj: int, addr: int,
                      duration: int) -> Generator:
        """Issue an intra-node ``Lease(addr, duration)`` iff this node
        still holds the cluster lease on ``obj``.  Returns True when the
        lease was issued, False when the guard denied it (the cluster
        lease expired under the worker -- re-acquire and retry).  Use as
        ``ok = yield from mgr.lease_guarded(ctx, obj, addr, t)``."""
        if not self.guard(ctx, obj):
            return False
        yield Lease(addr, duration)
        return True
