"""The Cluster: N machines under one clock, leased together.

The first layer above :class:`~repro.core.machine.Machine`.  A cluster
owns the single :class:`~repro.engine.Simulator` and injects it into
every member machine, so all nodes interleave on one shared event queue
-- inter-node messages are just events like any cache miss, and the
whole cluster remains a deterministic function of ``(config, seed)`` on
either engine.  On top of the machines it wires:

* an :class:`~repro.cluster.internode.InterNodeNetwork` (lossy,
  latency-modeled links driven by seeded streams),
* one :class:`~repro.cluster.paxoslease.PaxosAgent` per node (the
  proposer/acceptor state machines), and
* one :class:`~repro.cluster.manager.DistributedLeaseManager` per node
  (what workloads yield through).

Cluster-level trace events (``node_msg*``, ``paxos_round``,
``cluster_lease_*``) go to the cluster's own bus; per-node machine
events stay on each node's bus.  ``result()`` merges both into one
:class:`~repro.stats.RunResult`.

Checkpointing reuses the machine split introduced for this layer: the
cluster serializes the shared clock/queue/strategy ONCE (through a
:class:`ClusterCodec` whose function descriptors are node-prefixed),
asks each machine for its :meth:`~repro.core.machine.Machine.
component_state`, and appends the network/agent state.  Restore runs
each node's resume-log replay first, then rebuilds the queue and
installs everything -- the same order a solo machine uses.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from dataclasses import replace
from typing import Any, Callable, Generator

from ..core.machine import Machine
from ..core.thread import ThreadHandle
from ..engine import Simulator
from ..errors import CheckpointError, CheckpointMismatch, SimulationError
from ..stats import Counters, EnergyModel, RunResult
from ..state.codec import SnapshotCodec
from ..trace import CountersTracer, TraceBus, Tracer
from .config import ClusterConfig
from .internode import InterNodeNetwork
from .manager import DistributedLeaseManager
from .paxoslease import PaxosAgent

__all__ = ["Cluster", "ClusterCodec", "node_seed"]


def node_seed(seed: int, node: int) -> int:
    """Per-node machine seed derived from the cluster seed (Knuth-style
    mix, kept positive and nonzero)."""
    return ((seed * 1_000_003 + node * 7_919) & 0x7FFFFFFF) or 1


class ClusterCodec(SnapshotCodec):
    """A snapshot codec spanning every machine in a cluster plus the
    cluster's own schedulable callables.  Node ``n``'s descriptors are
    prefixed ``("node", n, ...)`` so they stay unambiguous in the shared
    event queue."""

    def __init__(self, cluster: "Cluster") -> None:
        super().__init__()
        for n, node in enumerate(cluster.nodes):
            self.register_machine(node, prefix=("node", n))
        net = cluster.net
        for name in ("_deliver", "_weather"):
            self._register(("cnet", name), getattr(net, name))
        for n, agent in enumerate(cluster.agents):
            for name in ("_on_round_timeout", "_on_lease_expire",
                         "_maybe_renew", "_retry"):
                self._register(("paxos", n, name), getattr(agent, name))


class Cluster:
    """N simulated machines negotiating object ownership via PaxosLease."""

    def __init__(self, config: ClusterConfig | None = None, *,
                 schedule_strategy=None) -> None:
        self.config = config or ClusterConfig()
        cfg = self.config
        mc = cfg.machine
        self.schedule_strategy = schedule_strategy
        self.sim = Simulator(seed=cfg.seed, max_cycles=mc.max_cycles,
                             max_events=mc.max_events,
                             strategy=schedule_strategy,
                             engine=mc.engine)
        self._counters_sink = CountersTracer()
        self.trace = TraceBus(clock=lambda: self.sim.now,
                              sinks=(self._counters_sink,))
        #: Cluster-level counters (inter-node traffic, paxos rounds,
        #: cluster leases); per-node machine counters live on each node.
        self.counters = self._counters_sink.counters
        self.nodes = [Machine(replace(mc, seed=node_seed(cfg.seed, n)),
                              sim=self.sim)
                      for n in range(cfg.nodes)]
        self.net = InterNodeNetwork(cfg.spec, cfg.nodes, self.sim,
                                    self.trace, cfg.seed)
        self.agents = [PaxosAgent(n, cfg, self.net, self.sim, self.trace)
                       for n in range(cfg.nodes)]
        self.net.bind([agent.on_message for agent in self.agents])
        self.managers = [DistributedLeaseManager(n, self.nodes[n],
                                                 self.agents[n], self.trace)
                         for n in range(cfg.nodes)]
        # The cluster owns quiescence: run until every node's threads are
        # done (lease timers and weather events may remain queued).
        self.sim.quiescent = lambda: all(
            m._live_threads == 0 for m in self.nodes)
        self.sim.use_quiescence_notify()
        self._ran = False

    # -- instrumentation -----------------------------------------------------

    def attach_tracer(self, sink: Tracer) -> Tracer:
        """Attach a sink to the *cluster* bus (cluster lease/message
        events).  Per-node machine events need ``nodes[n].attach_tracer``.
        """
        sink.bind(self)
        return self.trace.attach(sink)

    def detach_tracer(self, sink: Tracer) -> None:
        self.trace.detach(sink)

    # -- threads -------------------------------------------------------------

    def add_thread(self, node: int, body: Callable[..., Generator],
                   *args: Any, **kwargs: Any) -> ThreadHandle:
        """Start a thread on node ``node`` (see ``Machine.add_thread``)."""
        return self.nodes[node].add_thread(body, *args, **kwargs)

    @property
    def num_threads(self) -> int:
        return sum(len(m.threads) for m in self.nodes)

    # -- running -------------------------------------------------------------

    def run(self, until: int | None = None) -> int:
        """Run the whole cluster until every node quiesces (or ``until``).
        """
        self._ran = True
        cluster_folds = all(getattr(s, "folds_unordered", False)
                            for s in self.trace.sinks)
        for m in self.nodes:
            m._ran = True
            # A node may batch-advance only when the cluster bus folds
            # too: batched worker frames emit cluster events (guard
            # denials, paxos rounds) straight onto it.
            m._batch_ok = (self.sim.engine == "fast" and cluster_folds
                           and all(getattr(s, "folds_unordered", False)
                                   for s in m.trace.sinks))
        return self.sim.run(until=until)

    @property
    def now(self) -> int:
        return self.sim.now

    @property
    def engine(self) -> str:
        return self.sim.engine

    def check_coherence_invariants(self) -> None:
        for m in self.nodes:
            m.check_coherence_invariants()

    # -- checkpointing (repro.state) ----------------------------------------

    STATE_SCHEMA = 1

    def enable_checkpointing(self) -> None:
        if self._ran:
            raise SimulationError(
                "enable_checkpointing() must be called before the cluster "
                "first runs: the resume logs must start at cycle 0")
        for m in self.nodes:
            m.enable_checkpointing()

    def state_dict(self) -> dict:
        """One tree for the whole cluster: shared clock/queue once, each
        machine's component half, then the cluster's own components."""
        codec = ClusterCodec(self)
        state = {
            "schema": self.STATE_SCHEMA,
            "nodes": len(self.nodes),
            "sim": self.sim.state_dict(),
            "queue": self.sim.queue.state_dict(codec),
            "machines": [m.component_state(codec) for m in self.nodes],
            "net": self.net.state_dict(),
            "agents": [a.state_dict() for a in self.agents],
            "sinks": [[type(s).__name__,
                       s.state_dict(codec) if hasattr(s, "state_dict")
                       else None]
                      for s in self.trace.sinks],
            "ran": self._ran,
        }
        if self.schedule_strategy is not None and \
                hasattr(self.schedule_strategy, "state_dict"):
            state["strategy"] = self.schedule_strategy.state_dict()
        state["pool"] = codec.dump_pool()
        self.trace.checkpoint_saved(
            self.sim.now, sum(len(m._replay_log) for m in self.nodes))
        return state

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` tree into this freshly built
        cluster (same config, same threads on each node)."""
        if state.get("schema") != self.STATE_SCHEMA:
            raise CheckpointMismatch(
                f"cluster state schema {state.get('schema')!r} != "
                f"{self.STATE_SCHEMA} supported by this build")
        if state.get("nodes") != len(self.nodes):
            raise CheckpointMismatch(
                f"checkpoint has {state.get('nodes')} nodes, cluster has "
                f"{len(self.nodes)}")
        if self._ran:
            raise CheckpointError(
                "load_state() requires a freshly built cluster: this one "
                "has already run")
        for m, ms in zip(self.nodes, state["machines"]):
            m.check_compatible(ms)
        codec = ClusterCodec(self)
        codec.load_pool(state["pool"])
        # Replaying node resume logs re-runs worker frames, which poke the
        # agents/network (emissions, rng draws, message sends).  All of
        # that is overwritten below -- queue, sim, net, agents and sinks
        # are installed from the snapshot -- so only the bus needs
        # silencing here.
        self.trace.mute()
        try:
            entries = [m.replay_resume_log(ms["replay_log"], codec)
                       for m, ms in zip(self.nodes, state["machines"])]
            event_map = self.sim.queue.load_state(state["queue"], codec)
            codec.set_event_map(event_map)
            codec.fill_pool()
            self.sim.load_state(state["sim"])
            if "strategy" in state and self.schedule_strategy is not None \
                    and hasattr(self.schedule_strategy, "load_state"):
                self.schedule_strategy.load_state(state["strategy"])
            for m, ms, ent in zip(self.nodes, state["machines"], entries):
                m.install_component_state(ms, codec, ent)
            self.net.load_state(state["net"])
            for agent, astate in zip(self.agents, state["agents"]):
                agent.load_state(astate)
            sinks = self.trace.sinks
            if len(state["sinks"]) != len(sinks):
                raise CheckpointMismatch(
                    f"checkpoint has {len(state['sinks'])} cluster trace "
                    f"sinks, cluster has {len(sinks)}")
            for sink, (cls_name, ss) in zip(sinks, state["sinks"]):
                if type(sink).__name__ != cls_name:
                    raise CheckpointMismatch(
                        f"cluster trace sink mismatch: checkpoint saved "
                        f"{cls_name}, cluster has {type(sink).__name__}")
                if ss is not None and hasattr(sink, "load_state"):
                    sink.load_state(ss, codec)
            self._ran = state["ran"]
        finally:
            self.trace.unmute()
        self.trace.checkpoint_restored(self.sim.now, self.num_threads)

    # -- results -------------------------------------------------------------

    def merged_counters(self) -> Counters:
        """Cluster-wide totals: the cluster bus counters plus every
        node's, with per-core ops re-keyed to global core ids."""
        merged = Counters()
        sources = [self.counters] + [m.counters for m in self.nodes]
        for f in dataclass_fields(Counters):
            if f.name == "per_core_ops":
                continue
            setattr(merged, f.name,
                    sum(getattr(s, f.name) for s in sources))
        cores_per_node = self.config.machine.num_cores
        for n, m in enumerate(self.nodes):
            for core, ops in m.counters.per_core_ops.items():
                merged.per_core_ops[n * cores_per_node + core] = ops
        return merged

    def result(self, name: str = "cluster", *,
               extra: dict[str, Any] | None = None) -> RunResult:
        """Summarize the whole cluster run into one :class:`RunResult`."""
        cfg = self.config
        k = self.merged_counters()
        cycles = max(1, self.sim.now)
        ops = k.ops_completed
        throughput = ops * cfg.machine.clock_hz / cycles
        energy = EnergyModel(cfg.machine.energy,
                             cfg.nodes * cfg.machine.num_cores)
        return RunResult(
            name=name,
            num_threads=self.num_threads,
            cycles=self.sim.now,
            ops=ops,
            throughput_ops_per_sec=throughput,
            energy_nj_per_op=energy.nj_per_op(k, cycles),
            messages_per_op=k.messages / max(1, ops),
            l1_misses_per_op=k.l1_misses / max(1, ops),
            cas_failure_rate=k.cas_failures / max(1, k.cas_attempts),
            extra=extra or {},
            counters=k.snapshot(),
        )
