"""The inter-node network: lossy, latency-modeled links between machines.

Distinct from the intra-node :class:`~repro.coherence.network.MeshNetwork`
in both scale and failure model: coherence messages inside a machine are
reliable and cycle-accurate per hop, while messages *between* machines
cross a network that reorders (per-message latency draws), loses,
duplicates, and partitions.  Every unreliability decision comes from its
own seeded stream (the :mod:`repro.faults` idiom: one ``random.Random``
per hook, keyed ``"{seed}:cluster:{hook}"``), so a cluster run is a pure
function of ``(config, seed)`` and any safety violation replays exactly.

Messages are tuples of primitives (see :mod:`repro.cluster.paxoslease`),
which keeps in-flight traffic checkpointable without new pooled classes:
a scheduled delivery is just ``(_deliver, dst, msg)`` in the shared event
queue.

Partitions are *weather*: every ``partition_check`` cycles the network
rolls its partition stream; with probability ``partition_p`` it cuts a
random bipartition of the nodes for ``partition_len`` cycles (messages
across the cut are dropped with reason ``"partition"``), then heals at a
later roll.  Node-local traffic (``src == dst``) never touches this
module -- agents self-deliver synchronously.
"""

from __future__ import annotations

import random
from typing import Callable

from ..engine import Simulator
from ..trace import TraceBus
from .spec import ClusterFaultSpec

__all__ = ["InterNodeNetwork"]


class InterNodeNetwork:
    """Latency/loss/duplication/partition model over ``num_nodes`` links.

    ``handlers`` (one per-node callable, installed via :meth:`bind`)
    receive delivered messages; delivery order is whatever the latency
    draws produce, so consumers must tolerate reordering and duplicates.
    """

    def __init__(self, spec: ClusterFaultSpec, num_nodes: int,
                 sim: Simulator, trace: TraceBus, seed: int) -> None:
        self.spec = spec
        self.num_nodes = num_nodes
        self.sim = sim
        self.trace = trace
        self._handlers: list[Callable[[tuple], None]] = []
        self._delay_rng = random.Random(f"{seed}:cluster:delay")
        self._loss_rng = random.Random(f"{seed}:cluster:loss")
        self._dup_rng = random.Random(f"{seed}:cluster:dup")
        self._part_rng = random.Random(f"{seed}:cluster:partition")
        #: Node ids on side A of the current bipartition (None = healed).
        self._partition: frozenset[int] | None = None
        self._partition_until = 0
        if spec.partition_p > 0.0:
            # The weather loop only exists when partitions can happen, so
            # a partition-free spec schedules nothing extra.
            sim.at(spec.partition_check, self._weather)

    def bind(self, handlers: list[Callable[[tuple], None]]) -> None:
        """Install the per-node delivery callbacks (one per node)."""
        self._handlers = list(handlers)

    # -- sending -------------------------------------------------------------

    def _cut(self, src: int, dst: int) -> bool:
        part = self._partition
        return part is not None and (src in part) != (dst in part)

    def send(self, src: int, dst: int, msg: tuple) -> None:
        """Submit ``msg`` from ``src`` to ``dst``; it is delivered after a
        seeded latency draw, unless lost or cut off by a partition."""
        kind = msg[0]
        if self._cut(src, dst):
            self.trace.node_msg_dropped(src, dst, kind, "partition")
            return
        spec = self.spec
        if spec.loss_p > 0.0 and self._loss_rng.random() < spec.loss_p:
            self.trace.node_msg_dropped(src, dst, kind, "loss")
            return
        lat = self._delay_rng.randint(spec.delay_min, spec.delay_max)
        self.trace.node_msg(src, dst, kind, lat)
        self.sim.after(lat, self._deliver, dst, msg)
        if spec.dup_p > 0.0 and self._dup_rng.random() < spec.dup_p:
            # The duplicate draws its own latency, so the copies may
            # arrive in either order.
            lat2 = self._delay_rng.randint(spec.delay_min, spec.delay_max)
            self.trace.node_msg_dup(src, dst, kind)
            self.sim.after(lat2, self._deliver, dst, msg)

    def _deliver(self, dst: int, msg: tuple) -> None:
        self._handlers[dst](msg)

    # -- partitions ----------------------------------------------------------

    def _weather(self) -> None:
        """Roll the partition stream; reschedules itself every
        ``partition_check`` cycles."""
        now = self.sim.now
        spec = self.spec
        if self._partition is not None:
            if now >= self._partition_until:
                self._partition = None
        elif self._part_rng.random() < spec.partition_p:
            side = frozenset(n for n in range(self.num_nodes)
                             if self._part_rng.random() < 0.5)
            if not side or len(side) == self.num_nodes:
                # A one-sided draw is no partition; flip node 0 so the
                # cut is real.
                side = side ^ frozenset((0,))
            self._partition = side
            self._partition_until = now + spec.partition_len
            self.trace.fault_injected("partition", -1, spec.partition_len)
        self.sim.after(spec.partition_check, self._weather)

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self) -> dict:
        from ..state.codec import encode_rng

        return {
            "delay_rng": encode_rng(self._delay_rng),
            "loss_rng": encode_rng(self._loss_rng),
            "dup_rng": encode_rng(self._dup_rng),
            "part_rng": encode_rng(self._part_rng),
            "partition": (sorted(self._partition)
                          if self._partition is not None else None),
            "partition_until": self._partition_until,
        }

    def load_state(self, state: dict) -> None:
        from ..state.codec import decode_rng

        decode_rng(self._delay_rng, state["delay_rng"])
        decode_rng(self._loss_rng, state["loss_rng"])
        decode_rng(self._dup_rng, state["dup_rng"])
        decode_rng(self._part_rng, state["part_rng"])
        part = state["partition"]
        self._partition = frozenset(part) if part is not None else None
        self._partition_until = state["partition_until"]
