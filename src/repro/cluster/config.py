"""Cluster configuration: N machines + PaxosLease + inter-node network.

Follows the :class:`~repro.config.MachineConfig` idiom: a frozen dataclass
validated at construction so misconfiguration fails fast with a
:class:`~repro.errors.ConfigError`, picklable (the cluster spec travels as
its raw string) so parallel sweeps and repro files can carry it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import MachineConfig
from ..errors import ConfigError
from .spec import parse_cluster_spec

__all__ = ["ClusterConfig"]


@dataclass(frozen=True)
class ClusterConfig:
    """Parameters of a multi-node simulation.

    ``machine`` is the per-node template: every node gets a copy with a
    node-specific seed derived from ``seed``.  ``machine.num_cores`` is
    therefore *cores per node*; the cluster total is
    ``nodes * machine.num_cores``.
    """

    #: Number of machines under the shared clock.
    nodes: int = 2
    #: Number of cluster-leased objects (shards) the nodes contend for.
    objects: int = 1
    #: Per-node machine template (seed is overridden per node).
    machine: MachineConfig = field(default_factory=MachineConfig)
    #: Cluster lease term in cycles.  Proposers shorten their local view
    #: of it by the skew bound; acceptors lengthen theirs by their drawn
    #: skew, so safety holds under any drift within the bound.
    lease_cycles: int = 20_000
    #: Renew this many cycles before local expiry (must leave room for a
    #: full prepare/accept round trip).
    renew_margin: int = 5_000
    #: Inter-node unreliability spec (see repro.cluster.spec); travels as
    #: the raw string so the config stays picklable.
    cluster_spec: str = ""
    #: Accept quorum.  None = majority (N // 2 + 1).  Setting it lower is
    #: *deliberately unsafe* -- the knob exists so the check campaign's
    #: negative test can prove the safety tracer catches a broken quorum.
    quorum: int | None = None
    #: Master seed: node seeds, network streams and timer skew all derive
    #: from it.
    seed: int = 1

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.nodes < 1:
            raise ConfigError(
                f"--nodes must be >= 1, got {self.nodes}")
        if self.objects < 1:
            raise ConfigError(f"objects must be >= 1, got {self.objects}")
        if self.lease_cycles < 1:
            raise ConfigError(
                f"lease_cycles must be >= 1, got {self.lease_cycles}")
        if not 0 < self.renew_margin < self.lease_cycles:
            raise ConfigError(
                f"renew_margin={self.renew_margin} must be in "
                f"(0, lease_cycles={self.lease_cycles})")
        if self.quorum is not None and not 1 <= self.quorum <= self.nodes:
            raise ConfigError(
                f"quorum={self.quorum} out of range [1, nodes="
                f"{self.nodes}]")
        spec = self.spec  # strict parse; raises on a malformed string
        if 2 * spec.skew >= self.lease_cycles:
            raise ConfigError(
                f"cluster spec: skew bound {spec.skew} too large for "
                f"lease_cycles={self.lease_cycles} (need 2*skew < term)")

    @property
    def spec(self):
        """The parsed :class:`~repro.cluster.spec.ClusterFaultSpec`."""
        return parse_cluster_spec(self.cluster_spec)

    @property
    def effective_quorum(self) -> int:
        return self.quorum if self.quorum is not None \
            else self.nodes // 2 + 1
