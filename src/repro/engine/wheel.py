"""A bucketed time-wheel: the fast engine's event queue.

Drop-in replacement for :class:`~repro.engine.event_queue.EventQueue` when
no :class:`~repro.engine.event_queue.ScheduleStrategy` is installed (every
priority is 0, so the deterministic order is exactly ``(time, seq)``).

Events scheduled for the same cycle land in one per-time *bucket* in
insertion order -- which IS ``seq`` order, because ``seq`` is the global
insertion counter -- so a bucket is drained front-to-back with no
comparisons at all.  A min-heap of the *distinct* bucket times replaces the
per-event heap: its pushes/pops are plain int comparisons and there is one
per distinct timestamp instead of one per event.

Bucket layout: ``_buckets[time]`` is a list whose slot 0 holds the cursor
(index of the last consumed entry) and whose remaining slots are the
events.  A handler that schedules more work at the *current* cycle appends
to the bucket being drained, and the drain loop picks it up because it
re-reads the bucket length -- exactly matching the heap's behavior for an
event scheduled at ``now`` during processing.  Exhausted buckets are
deleted lazily on the *next* pop, so a bucket stays alive (and appendable)
for the whole cycle it is draining.

Cancellation marks the event and skips it on pop, like the heap, but the
wheel never compacts: a cancelled event is reclaimed when its cycle passes.
Memory is therefore bounded by the events within the scheduling horizon
(e.g. pending lease expiries), not by the total cancel count.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from ..errors import SimulationError
from .event_queue import Event


class TimeWheel:
    """Bucketed event queue ordered by ``(time, seq)``.

    Implements the full :class:`EventQueue` interface (schedule / cancel /
    pop / peek_time / state_dict / load_state / len / heap_size) with the
    identical canonical checkpoint format, so checkpoints round-trip
    between the two engines.  ``strategy`` is always ``None``.
    """

    __slots__ = ("_buckets", "_times", "_seq", "_live", "strategy")

    def __init__(self) -> None:
        # time -> [cursor, ev1, ev2, ...]; see module docstring.
        self._buckets: dict[int, list] = {}
        # Min-heap of distinct bucket times still holding a bucket.
        self._times: list[int] = []
        self._seq = 0
        self._live = 0
        #: Interface parity with EventQueue: the wheel never perturbs.
        self.strategy = None

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    @property
    def heap_size(self) -> int:
        """Pending physical entries, including cancelled ones (tests)."""
        return sum(len(lst) - 1 - lst[0] for lst in self._buckets.values())

    @property
    def _heap(self) -> list[Event]:
        """Pending events as a flat list (introspection parity with
        EventQueue's physical heap; includes cancelled entries)."""
        return [ev for lst in self._buckets.values()
                for ev in lst[lst[0] + 1:]]

    def schedule(self, time: int, fn: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time``."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at t={time}")
        ev = Event(time, self._seq, fn, args)
        self._seq += 1
        self._live += 1
        lst = self._buckets.get(time)
        if lst is None:
            self._buckets[time] = [0, ev]
            heapq.heappush(self._times, time)
        else:
            lst.append(ev)
        return ev

    def cancel(self, ev: Event) -> None:
        """Cancel a pending event.  Cancelling twice is a no-op."""
        if not ev.cancelled:
            ev.cancelled = True
            self._live -= 1

    def pop(self) -> Event | None:
        """Pop and return the earliest live event, or None if empty."""
        times = self._times
        buckets = self._buckets
        while times:
            lst = buckets[times[0]]
            i = lst[0] + 1
            if i >= len(lst):
                del buckets[heapq.heappop(times)]
                continue
            lst[0] = i
            ev = lst[i]
            if not ev.cancelled:
                self._live -= 1
                return ev
        return None

    def peek_time(self) -> int | None:
        """Time of the earliest live event without popping it."""
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            lst = buckets[t]
            i = lst[0] + 1
            n = len(lst)
            while i < n and lst[i].cancelled:
                # Skipping a cancelled entry consumes it, like the heap's
                # peek popping cancelled heads.
                lst[0] = i
                i += 1
            if i < n:
                return t
            del buckets[heapq.heappop(times)]
        return None

    # -- checkpointing (repro.state) ----------------------------------------

    @property
    def next_seq(self) -> int:
        """The seq the next scheduled event will receive (the shrinker's
        prefix-checkpoint watermark)."""
        return self._seq

    def state_dict(self, codec) -> dict:
        """Identical canonical format to :meth:`EventQueue.state_dict`:
        live events in full ``(time, pri, seq)`` order."""
        live = sorted(e for lst in self._buckets.values()
                      for e in lst[lst[0] + 1:] if not e.cancelled)
        return {
            "seq": self._seq,
            "events": [[e.time, e.pri, e.seq, codec.encode_fn(e.fn),
                        codec.encode(e.args)] for e in live],
        }

    def load_state(self, state: dict, codec) -> dict[int, Event]:
        """Rebuild the buckets from descriptors; returns the
        ``seq -> Event`` map so stored event references (lease expiry
        timers) can relink.  Descriptors arrive sorted by
        ``(time, pri, seq)``, so appending in order reproduces each
        bucket's drain order exactly."""
        self._buckets = {}
        events = []
        for time, pri, seq, fn_desc, args_enc in state["events"]:
            ev = Event(time, seq, codec.decode_fn(fn_desc),
                       codec.decode(args_enc))
            ev.pri = pri
            events.append(ev)
            lst = self._buckets.get(time)
            if lst is None:
                self._buckets[time] = [0, ev]
            else:
                lst.append(ev)
        self._times = sorted(self._buckets)
        self._live = len(events)
        self._seq = state["seq"]
        return {e.seq: e for e in events}
