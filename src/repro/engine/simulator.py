"""Simulation clock and run loop."""

from __future__ import annotations

import random
from typing import Any, Callable

from ..errors import SimulationError, SimulationTimeout
from .event_queue import Event, EventQueue, ScheduleStrategy


class Simulator:
    """Drives an :class:`EventQueue` forward in virtual time.

    The simulator knows nothing about cores or caches; it only provides
    ``now``, scheduling, a seeded RNG and a run loop with cycle/event
    budgets.  Higher layers register a *quiescence check* so that
    :meth:`run` can stop when all threads have finished even though idle
    events (e.g. never-fired lease expiries) may remain queued.

    ``strategy`` installs a schedule-perturbation
    :class:`~repro.engine.event_queue.ScheduleStrategy` that reorders
    same-timestamp events (used by :mod:`repro.check` to explore
    interleavings); the default ``None`` keeps the classic deterministic
    ``(time, seq)`` order bit-for-bit.
    """

    def __init__(self, *, seed: int = 1,
                 max_cycles: int = 2_000_000_000,
                 max_events: int = 200_000_000,
                 strategy: ScheduleStrategy | None = None) -> None:
        self.queue = EventQueue(strategy)
        self.now: int = 0
        self.rng = random.Random(seed)
        self.max_cycles = max_cycles
        self.max_events = max_events
        self.events_processed: int = 0
        #: Callable returning True when the simulation may stop early.
        self.quiescent: Callable[[], bool] = lambda: False
        self._running = False

    # -- scheduling ---------------------------------------------------------

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute cycle ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"scheduling into the past: t={time} < now={self.now}")
        return self.queue.schedule(time, fn, *args)

    def after(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.queue.schedule(self.now + delay, fn, *args)

    def cancel(self, ev: Event) -> None:
        self.queue.cancel(ev)

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self) -> dict:
        """Clock/budget progress and RNG stream (the queue serializes
        separately, through a codec)."""
        from ..state.codec import encode_rng

        return {"now": self.now,
                "events_processed": self.events_processed,
                "rng": encode_rng(self.rng)}

    def load_state(self, state: dict) -> None:
        from ..state.codec import decode_rng

        self.now = state["now"]
        self.events_processed = state["events_processed"]
        decode_rng(self.rng, state["rng"])

    # -- run loop -----------------------------------------------------------

    def run(self, until: int | None = None) -> int:
        """Process events until quiescence, the optional ``until`` cycle, or
        a budget is exhausted.  Returns the final simulation time.

        Clock rule: when ``until`` is given, the clock always advances to
        ``until`` unless quiescence stopped the run first -- whether the
        horizon was reached because the next event lies beyond it or
        because the queue drained entirely.  (The clock never moves
        backwards: ``run(until=past)`` leaves it where it was.)  At
        quiescence, or when the queue drains with no horizon, the clock
        stays at the last processed event's time.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        try:
            queue = self.queue
            while not self.quiescent():
                if until is not None:
                    # Peek first so a deferred event keeps its place in the
                    # (time, seq) order when the run resumes later.
                    t = queue.peek_time()
                    if t is None or t > until:
                        if until > self.now:
                            self.now = until
                        return self.now
                ev = queue.pop()
                if ev is None:
                    break
                if ev.time > self.max_cycles:
                    raise SimulationTimeout(
                        f"simulation exceeded max_cycles={self.max_cycles}",
                        cycle=ev.time, events=self.events_processed)
                self.now = ev.time
                self.events_processed += 1
                if self.events_processed > self.max_events:
                    raise SimulationTimeout(
                        f"simulation exceeded max_events={self.max_events}"
                        " (livelocked workload?)",
                        cycle=self.now, events=self.events_processed)
                ev.fn(*ev.args)
            # Quiescence (or a drained queue with no horizon): the clock
            # stays at the last processed event's time.
            return self.now
        finally:
            self._running = False
