"""Simulation clock and run loop.

Two tiers share one clock contract:

* ``engine="compat"`` -- the classic heap-backed
  :class:`~repro.engine.event_queue.EventQueue` and the original
  event-at-a-time loop.  Required whenever a
  :class:`~repro.engine.event_queue.ScheduleStrategy` is installed (the
  strategy perturbs same-timestamp order via priorities, which the wheel
  does not model).
* ``engine="fast"`` -- a bucketed :class:`~repro.engine.wheel.TimeWheel`
  plus an inlined run loop that drains whole same-cycle buckets without
  per-event heap traffic or per-event quiescence polls.  Produces
  bit-identical schedules: with no strategy every priority is 0, so the
  deterministic order is exactly ``(time, seq)`` -- which is precisely
  bucket order.

Quiescence is *polled* by default (the predicate runs before every event,
as it always did) so bare simulators with ad-hoc ``quiescent`` lambdas keep
their semantics.  A machine whose predicate only changes at discrete
notification points (thread start/finish) opts into *notify* mode via
:meth:`Simulator.use_quiescence_notify`; the run loops then re-evaluate the
predicate only when :attr:`quiesce_dirty` has been raised, eliding the
no-op polls between notifications without changing when the run stops.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable

from ..errors import SimulationError, SimulationTimeout
from .event_queue import Event, EventQueue, ScheduleStrategy
from .wheel import TimeWheel


class Simulator:
    """Drives an event queue forward in virtual time.

    The simulator knows nothing about cores or caches; it only provides
    ``now``, scheduling, a seeded RNG and a run loop with cycle/event
    budgets.  Higher layers register a *quiescence check* so that
    :meth:`run` can stop when all threads have finished even though idle
    events (e.g. never-fired lease expiries) may remain queued.

    ``strategy`` installs a schedule-perturbation
    :class:`~repro.engine.event_queue.ScheduleStrategy` that reorders
    same-timestamp events (used by :mod:`repro.check` to explore
    interleavings) and transparently forces the compat engine; the default
    ``None`` keeps the classic deterministic ``(time, seq)`` order
    bit-for-bit on either engine.
    """

    __slots__ = ("queue", "now", "rng", "max_cycles", "max_events",
                 "events_processed", "quiescent", "engine", "_running",
                 "_poll_quiescence", "quiesce_dirty")

    def __init__(self, *, seed: int = 1,
                 max_cycles: int = 2_000_000_000,
                 max_events: int = 200_000_000,
                 strategy: ScheduleStrategy | None = None,
                 engine: str = "compat") -> None:
        if engine not in ("fast", "compat"):
            raise SimulationError(
                f"unknown engine {engine!r} (expected 'fast' or 'compat')")
        if strategy is not None:
            # A perturbation strategy needs the priority-aware heap.
            engine = "compat"
        self.engine = engine
        self.queue = TimeWheel() if engine == "fast" else EventQueue(strategy)
        self.now: int = 0
        self.rng = random.Random(seed)
        self.max_cycles = max_cycles
        self.max_events = max_events
        self.events_processed: int = 0
        #: Callable returning True when the simulation may stop early.
        self.quiescent: Callable[[], bool] = lambda: False
        self._running = False
        self._poll_quiescence = True
        #: In notify mode: raised whenever the quiescence predicate may
        #: have changed; the run loop clears it after re-evaluating.
        self.quiesce_dirty = True

    # -- scheduling ---------------------------------------------------------

    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute cycle ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"scheduling into the past: t={time} < now={self.now}")
        return self.queue.schedule(time, fn, *args)

    def after(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.queue.schedule(self.now + delay, fn, *args)

    def cancel(self, ev: Event) -> None:
        self.queue.cancel(ev)

    # -- quiescence notification --------------------------------------------

    def use_quiescence_notify(self) -> None:
        """Stop polling the quiescence predicate before every event; only
        re-evaluate it after :meth:`notify_quiescence`.  Callers guarantee
        they notify at every point the predicate can flip (the Machine does
        so on thread start and finish)."""
        self._poll_quiescence = False
        self.quiesce_dirty = True

    def notify_quiescence(self) -> None:
        """Flag that the quiescence predicate may have changed."""
        self.quiesce_dirty = True

    # -- checkpointing (repro.state) ----------------------------------------

    def state_dict(self) -> dict:
        """Clock/budget progress and RNG stream (the queue serializes
        separately, through a codec)."""
        from ..state.codec import encode_rng

        return {"now": self.now,
                "events_processed": self.events_processed,
                "rng": encode_rng(self.rng)}

    def load_state(self, state: dict) -> None:
        from ..state.codec import decode_rng

        self.now = state["now"]
        self.events_processed = state["events_processed"]
        decode_rng(self.rng, state["rng"])

    # -- run loop -----------------------------------------------------------

    def run(self, until: int | None = None) -> int:
        """Process events until quiescence, the optional ``until`` cycle, or
        a budget is exhausted.  Returns the final simulation time.

        Clock rule: when ``until`` is given, the clock always advances to
        ``until`` unless quiescence stopped the run first -- whether the
        horizon was reached because the next event lies beyond it or
        because the queue drained entirely.  (The clock never moves
        backwards: ``run(until=past)`` leaves it where it was.)  At
        quiescence, or when the queue drains with no horizon, the clock
        stays at the last processed event's time.
        """
        if self.engine == "fast":
            return self._run_fast(until)
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        poll = self._poll_quiescence
        self.quiesce_dirty = True
        try:
            queue = self.queue
            while True:
                if poll or self.quiesce_dirty:
                    self.quiesce_dirty = False
                    if self.quiescent():
                        return self.now
                if until is not None:
                    # Peek first so a deferred event keeps its place in the
                    # (time, seq) order when the run resumes later.
                    t = queue.peek_time()
                    if t is None or t > until:
                        if until > self.now:
                            self.now = until
                        return self.now
                ev = queue.pop()
                if ev is None:
                    break
                if ev.time > self.max_cycles:
                    raise SimulationTimeout(
                        f"simulation exceeded max_cycles={self.max_cycles}",
                        cycle=ev.time, events=self.events_processed)
                self.now = ev.time
                self.events_processed += 1
                if self.events_processed > self.max_events:
                    raise SimulationTimeout(
                        f"simulation exceeded max_events={self.max_events}"
                        " (livelocked workload?)",
                        cycle=self.now, events=self.events_processed)
                ev.fn(*ev.args)
            # Quiescence (or a drained queue with no horizon): the clock
            # stays at the last processed event's time.
            return self.now
        finally:
            self._running = False

    def _run_fast(self, until: int | None = None) -> int:
        """The inlined fast-engine loop over the time-wheel's buckets.

        Event-for-event equivalent to the compat loop above: same stop
        conditions evaluated in the same order, same budget-exception
        payloads, same clock rule.  The wins are structural -- no heap
        traffic, no per-event ``pop()``/``peek_time()`` calls, quiescence
        evaluated only when flagged (in notify mode), and every hot name a
        local.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        q = self.queue
        times = q._times
        buckets = q._buckets
        heappop = heapq.heappop
        poll = self._poll_quiescence
        quiescent = self.quiescent
        max_cycles = self.max_cycles
        max_events = self.max_events
        has_until = until is not None
        # ``events_processed`` stays authoritative on self throughout: a
        # batch-advancing core accounts its elided resume events there
        # mid-handler (see Core._advance_batch).
        consumed = 0
        # The current draining bucket, cached across events.  Handlers can
        # only schedule at >= now == t, so ``t`` stays the minimum time
        # while its bucket has entries; appends to ``lst`` are picked up by
        # re-reading its length, and the exhausted bucket is deleted lazily
        # by the locate loop below (keeping it appendable all cycle).
        t = 0
        lst: list | None = None
        self.quiesce_dirty = True
        try:
            while True:
                if poll or self.quiesce_dirty:
                    self.quiesce_dirty = False
                    if quiescent():
                        return self.now
                if lst is not None:
                    i = lst[0] + 1
                    if i < len(lst):
                        lst[0] = i
                        ev = lst[i]
                        if ev.cancelled:
                            continue
                        consumed += 1
                        nev = self.events_processed + 1
                        self.events_processed = nev
                        if nev > max_events:
                            raise SimulationTimeout(
                                f"simulation exceeded max_events="
                                f"{max_events} (livelocked workload?)",
                                cycle=t, events=nev)
                        ev.fn(*ev.args)
                        continue
                    lst = None
                # Locate the earliest pending bucket without consuming an
                # entry (a deferred event keeps its place).  The horizon
                # and cycle-budget checks ride on the bucket's time, so
                # they run once per distinct timestamp, not per event.
                while times:
                    t = times[0]
                    nxt = buckets[t]
                    if nxt[0] + 1 < len(nxt):
                        break
                    del buckets[heappop(times)]
                else:
                    # Drained: same clock rule as the compat loop.
                    if has_until and until > self.now:
                        self.now = until
                    return self.now
                if has_until and t > until:
                    if until > self.now:
                        self.now = until
                    return self.now
                if t > max_cycles:
                    raise SimulationTimeout(
                        f"simulation exceeded max_cycles={max_cycles}",
                        cycle=t, events=self.events_processed)
                self.now = t
                lst = nxt
        finally:
            q._live -= consumed
            self._running = False
