"""A cancellable, deterministic event queue.

Events are ordered by ``(time, pri, seq)`` where ``seq`` is a monotonically
increasing insertion counter and ``pri`` is a perturbation priority
(0 unless a schedule-exploration strategy is installed), so simultaneous
events fire in the order they were scheduled.  This gives bit-for-bit
reproducible simulations for a fixed seed, which the test suite relies on.

A :class:`ScheduleStrategy` (see :mod:`repro.check.perturb`) may be
installed to assign nonzero priorities to events at schedule time.  This
reorders *same-timestamp* events only -- the primary ``time`` key is never
touched -- so timing semantics are preserved while the tie-breaking order
among simultaneous events is explored.  With no strategy installed every
priority is 0 and the order is exactly the classic ``(time, seq)``.

Cancellation is lazy: cancelled events stay in the heap and are skipped on
pop (the standard idiom for heap-backed schedulers; O(1) cancel).  When
dead entries outnumber live ones (and there are enough of them to matter)
the heap is compacted in place, so workloads that cancel heavily -- e.g.
every lease acquisition schedules an expiry that a voluntary release
cancels -- keep the heap linear in the number of *live* events.
Compaction rebuilds the heap from the surviving events' stored
``(time, pri, seq)`` keys, so a strategy's chosen order among equal-time
events survives compaction unchanged.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from ..errors import SimulationError


class ScheduleStrategy:
    """Assigns a perturbation priority to each event at schedule time.

    The default implementation returns 0 for every event, which reproduces
    the classic ``(time, seq)`` order.  Subclasses (seeded random, PCT-style,
    replay -- see :mod:`repro.check.perturb`) override :meth:`priority`;
    smaller priorities fire earlier among events with the same timestamp.
    Strategies must be deterministic functions of their own seed and the
    events they have seen, never of wall-clock or global state.
    """

    def priority(self, ev: "Event") -> int:
        return 0


class Event:
    """A scheduled callback.  Returned by :meth:`EventQueue.schedule` so the
    caller can later :meth:`EventQueue.cancel` it."""

    __slots__ = ("time", "pri", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int,
                 fn: Callable[..., Any], args: tuple) -> None:
        self.time = time
        self.pri = 0
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        # Ordered by (time, pri, seq), compared field-by-field: this runs
        # once per heap sift step, and building two key tuples per
        # comparison dominated schedule/pop cost.  Ties on all three keys
        # cannot happen (seq is unique), so the final seq comparison
        # decides every remaining case.
        if self.time != other.time:
            return self.time < other.time
        if self.pri != other.pri:
            return self.pri < other.pri
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        pri = f" p{self.pri}" if self.pri else ""
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time}{pri} #{self.seq} {name}{state}>"


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time, pri, seq)``."""

    #: Compact only once at least this many cancelled entries accumulate
    #: (avoids rebuilding tiny heaps over and over).
    COMPACT_MIN_DEAD = 64

    __slots__ = ("_heap", "_seq", "_live", "strategy")

    def __init__(self, strategy: ScheduleStrategy | None = None) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0
        #: Optional perturbation strategy consulted once per scheduled
        #: event.  None means "no perturbation": every priority is 0.
        self.strategy = strategy

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    @property
    def heap_size(self) -> int:
        """Physical heap length, including cancelled entries (tests)."""
        return len(self._heap)

    def schedule(self, time: int, fn: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time``."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at t={time}")
        ev = Event(time, self._seq, fn, args)
        if self.strategy is not None:
            ev.pri = self.strategy.priority(ev)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, ev)
        return ev

    def cancel(self, ev: Event) -> None:
        """Cancel a pending event.  Cancelling twice is a no-op."""
        if not ev.cancelled:
            ev.cancelled = True
            self._live -= 1
            dead = len(self._heap) - self._live
            if dead >= self.COMPACT_MIN_DEAD and dead > self._live:
                self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.  O(n) in heap length --
        amortized O(1) per cancel, since at least half the heap is dead
        whenever this runs.  Ordering is untouched: surviving events keep
        their (time, pri, seq) keys -- including any strategy-assigned
        priorities -- so determinism is preserved."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)

    def pop(self) -> Event | None:
        """Pop and return the earliest live event, or None if empty."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if not ev.cancelled:
                self._live -= 1
                return ev
        return None

    def peek_time(self) -> int | None:
        """Time of the earliest live event without popping it."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    # -- checkpointing (repro.state) ----------------------------------------

    @property
    def next_seq(self) -> int:
        """The seq the next scheduled event will receive (the shrinker's
        prefix-checkpoint watermark)."""
        return self._seq

    def state_dict(self, codec) -> dict:
        """Live events as serializable descriptors.

        Cancelled entries are dropped -- they are behaviorally invisible
        (skipped on pop) and their callbacks may reference dead objects.
        Events are saved in full ``(time, pri, seq)`` order so the tree is
        canonical regardless of the heap's internal layout.
        """
        live = sorted(e for e in self._heap if not e.cancelled)
        return {
            "seq": self._seq,
            "events": [[e.time, e.pri, e.seq, codec.encode_fn(e.fn),
                        codec.encode(e.args)] for e in live],
        }

    def load_state(self, state: dict, codec) -> dict[int, Event]:
        """Rebuild the heap from descriptors; returns the ``seq -> Event``
        map so stored event references (lease expiry timers) can relink.
        The strategy is *not* consulted: each event keeps the priority it
        was assigned when originally scheduled."""
        events = []
        for time, pri, seq, fn_desc, args_enc in state["events"]:
            ev = Event(time, seq, codec.decode_fn(fn_desc),
                       codec.decode(args_enc))
            ev.pri = pri
            events.append(ev)
        heapq.heapify(events)
        self._heap = events
        self._live = len(events)
        self._seq = state["seq"]
        return {e.seq: e for e in events}
