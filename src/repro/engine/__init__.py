"""Deterministic discrete-event simulation kernel."""

from .event_queue import Event, EventQueue
from .simulator import Simulator

__all__ = ["Event", "EventQueue", "Simulator"]
