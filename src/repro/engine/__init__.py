"""Deterministic discrete-event simulation kernel."""

from .event_queue import Event, EventQueue, ScheduleStrategy
from .simulator import Simulator
from .wheel import TimeWheel

__all__ = ["Event", "EventQueue", "ScheduleStrategy", "Simulator",
           "TimeWheel"]
