"""Deterministic discrete-event simulation kernel."""

from .event_queue import Event, EventQueue, ScheduleStrategy
from .simulator import Simulator

__all__ = ["Event", "EventQueue", "ScheduleStrategy", "Simulator"]
