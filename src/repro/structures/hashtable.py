"""Lock-striped hash table (the paper's "lock-based hash tables" low-
contention workload; the design mirrors the classic Java concurrent hash
table: one lock per bucket, sorted chains).

Bucket heads and bucket locks live in padded arrays (one line per slot) so
that neighbouring buckets never false-share.  Updates take the bucket lock
with the Section 6 lease pattern; with many buckets and uniform keys the
lock is uncontended and leases change nothing measurable -- that is the
point of the experiment.
"""

from __future__ import annotations

from typing import Any, Generator

from ..config import WORD_SIZE
from ..core.isa import Load, Store
from ..core.machine import Machine
from ..core.thread import Ctx
from ..sync.locks import TTSLock, lease_lock_acquire, lease_lock_release

KEY_OFF = 0
NEXT_OFF = WORD_SIZE
NIL = 0


class LockedHashTable:
    """Fixed-size bucket array of sorted chains, one TTS lock per bucket."""

    def __init__(self, machine: Machine, *, num_buckets: int = 64) -> None:
        self.machine = machine
        self.num_buckets = num_buckets
        self.heads = machine.alloc.alloc_array(num_buckets, one_per_line=True)
        self.locks = [TTSLock(machine) for _ in range(num_buckets)]

    def _bucket(self, key) -> int:
        return hash(key) % self.num_buckets

    # -- setup -------------------------------------------------------------

    def prefill(self, keys) -> None:
        m = self.machine
        for key in set(keys):
            head = self.heads[self._bucket(key)]
            node = m.alloc.alloc_words(2)
            m.write_init(node + KEY_OFF, key)
            m.write_init(node + NEXT_OFF, m.peek(head))
            m.write_init(head, node)

    # -- internal chain walk -------------------------------------------------

    def _chain_find(self, ctx: Ctx, head: int, key
                    ) -> Generator[Any, Any, tuple[int, int]]:
        """Returns ``(prev_addr, node)``: ``prev_addr`` is the word holding
        the pointer to ``node`` (the head slot or a next field); ``node`` is
        the first chain node with that key, or NIL."""
        prev = head
        node = yield Load(head)
        while node != NIL:
            k = yield Load(node + KEY_OFF)
            if k == key:
                return prev, node
            prev = node + NEXT_OFF
            node = yield Load(prev)
        return prev, NIL

    # -- operations --------------------------------------------------------

    def insert(self, ctx: Ctx, key) -> Generator[Any, Any, bool]:
        b = self._bucket(key)
        lock, head = self.locks[b], self.heads[b]
        token = yield from lease_lock_acquire(ctx, lock)
        _, node = yield from self._chain_find(ctx, head, key)
        if node != NIL:
            yield from lease_lock_release(ctx, lock, token)
            return False
        new = ctx.alloc_cached(2, [key, NIL])
        old_head = yield Load(head)
        yield Store(new + NEXT_OFF, old_head)
        yield Store(head, new)
        yield from lease_lock_release(ctx, lock, token)
        return True

    def delete(self, ctx: Ctx, key) -> Generator[Any, Any, bool]:
        b = self._bucket(key)
        lock, head = self.locks[b], self.heads[b]
        token = yield from lease_lock_acquire(ctx, lock)
        prev, node = yield from self._chain_find(ctx, head, key)
        if node == NIL:
            yield from lease_lock_release(ctx, lock, token)
            return False
        nxt = yield Load(node + NEXT_OFF)
        yield Store(prev, nxt)
        yield from lease_lock_release(ctx, lock, token)
        return True

    def contains(self, ctx: Ctx, key) -> Generator[Any, Any, bool]:
        """Lock-free read (the common-case search path)."""
        b = self._bucket(key)
        _, node = yield from self._chain_find(ctx, self.heads[b], key)
        return node != NIL

    # -- inspection -----------------------------------------------------------

    def keys_direct(self) -> list:
        m = self.machine
        out = []
        for head in self.heads:
            node = m.peek(head)
            while node != NIL:
                out.append(m.peek(node + KEY_OFF))
                node = m.peek(node + NEXT_OFF)
        return out

    # -- benchmark worker -------------------------------------------------

    def mixed_worker(self, ctx: Ctx, ops: int, key_range: int,
                     update_pct: int = 20) -> Generator:
        for _ in range(ops):
            key = ctx.rng.randrange(key_range)
            roll = ctx.rng.randrange(100)
            start = ctx.machine.now
            if roll < update_pct // 2:
                added = yield from self.insert(ctx, key)
                ctx.note_op("insert", (key,), added, start)
            elif roll < update_pct:
                removed = yield from self.delete(ctx, key)
                ctx.note_op("delete", (key,), removed, start)
            else:
                found = yield from self.contains(ctx, key)
                ctx.note_op("contains", (key,), found, start)
