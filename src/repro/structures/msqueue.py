"""The Michael-Scott non-blocking FIFO queue [27], Algorithm 3 of the paper.

Node layout (one line each): ``[value, next]``; the queue always contains a
dummy node at the head.  Head and tail pointers live on *separate* cache
lines (the Section 7 false-sharing pitfall explicitly warns against letting
them share one).

Lease placements reproduced from the paper:

* ``variant='single'`` -- Algorithm 3: lease the head pointer (dequeue) or
  tail pointer (enqueue) at the top of the retry loop, release on success
  or at the end of the loop iteration.
* ``variant='multi'``  -- the Section 7 multi-lease alternative: jointly
  lease the tail pointer and the last node's ``next`` line for the enqueue.
  The paper finds this *slower* than single leases on linear structures;
  the queue benchmark reports both.
* With leases disabled either variant degrades to the classic MS queue.
"""

from __future__ import annotations

from typing import Any, Generator

from ..config import WORD_SIZE
from ..core.isa import CAS, Lease, Load, MultiLease, Release, ReleaseAll, Work
from ..core.machine import Machine
from ..core.thread import Ctx

VALUE_OFF = 0
NEXT_OFF = WORD_SIZE
NIL = 0


class MichaelScottQueue:
    """Non-blocking FIFO queue with head/tail sentinels and a dummy node."""

    def __init__(self, machine: Machine, *, variant: str = "single",
                 lease_time: int = 1 << 62, backoff=None,
                 lease_policy=None) -> None:
        if variant not in ("single", "multi"):
            raise ValueError(f"unknown variant {variant!r}")
        self.machine = machine
        self.variant = variant
        self.lease_time = lease_time
        self.backoff = backoff
        #: Optional adaptive duration source (``time_for(addr)``); None
        #: keeps the fixed ``lease_time``.
        self.lease_policy = lease_policy
        dummy = machine.alloc.alloc_words(2, label="queue.node")
        machine.write_init(dummy + VALUE_OFF, NIL)
        machine.write_init(dummy + NEXT_OFF, NIL)
        self.head = machine.alloc_var(dummy, label="queue.head")
        self.tail = machine.alloc_var(dummy, label="queue.tail")

    # -- setup ------------------------------------------------------------

    def prefill(self, values) -> None:
        """Enqueue ``values`` directly (no traffic); call before run."""
        m = self.machine
        for v in values:
            node = m.alloc.alloc_words(2, label="queue.node")
            m.write_init(node + VALUE_OFF, v)
            m.write_init(node + NEXT_OFF, NIL)
            last = m.peek(self.tail)
            m.write_init(last + NEXT_OFF, node)
            m.write_init(self.tail, node)

    def _lease_for(self, addr: int) -> int:
        if self.lease_policy is not None:
            return self.lease_policy.time_for(addr)
        return self.lease_time

    # -- enqueue ----------------------------------------------------------

    def enqueue(self, ctx: Ctx, value: Any) -> Generator:
        if self.variant == "multi":
            yield from self._enqueue_multi(ctx, value)
        else:
            yield from self._enqueue_single(ctx, value)

    def _enqueue_single(self, ctx: Ctx, value: Any) -> Generator:
        w = ctx.alloc_cached(2, [value, NIL])
        attempt = 0
        while True:
            yield Lease(self.tail, self._lease_for(self.tail))
            t = yield Load(self.tail)
            n = yield Load(t + NEXT_OFF)
            t2 = yield Load(self.tail)
            if t == t2:                       # pointers consistent?
                if n == NIL:                  # tail points at last node
                    ok = yield CAS(t + NEXT_OFF, NIL, w)
                    if ok:
                        yield CAS(self.tail, t, w)   # swing tail
                        yield Release(self.tail)
                        if self.backoff is not None:
                            self.backoff.reset(ctx, self.tail)
                        return
                else:                         # tail fell behind: help swing
                    yield CAS(self.tail, t, n)
            yield Release(self.tail)
            attempt += 1
            if self.backoff is not None:
                yield from self.backoff.wait(ctx, attempt, self.tail)

    def _enqueue_multi(self, ctx: Ctx, value: Any) -> Generator:
        """Jointly lease the tail pointer and the (guessed) last node's
        ``next`` line.

        The tail pointer must be read *before* the MultiLease (the call
        releases everything held), so the second line is a guess.  The
        group is acquired in address-sorted order and the tail pointer --
        allocated first -- always sorts below node lines, so the tail is
        frozen from the moment the group's first grant lands: the re-read
        under the lease is authoritative and needs no retry.  If the guess
        went stale, the operation simply proceeds on the current tail with
        only the tail-pointer lease effective (leases are advisory;
        correctness never depends on them)."""
        w = ctx.alloc_cached(2, [value, NIL])
        while True:
            guess = yield Load(self.tail)
            yield MultiLease((self.tail, guess + NEXT_OFF),
                             self._lease_for(self.tail))
            t = yield Load(self.tail)         # frozen while we hold it
            n = yield Load(t + NEXT_OFF)
            if n == NIL:
                ok = yield CAS(t + NEXT_OFF, NIL, w)
                if ok:
                    yield CAS(self.tail, t, w)
                    yield ReleaseAll()
                    return
            else:                             # tail fell behind: help swing
                yield CAS(self.tail, t, n)
            yield ReleaseAll()

    # -- dequeue ----------------------------------------------------------

    def dequeue(self, ctx: Ctx) -> Generator[Any, Any, Any]:
        """Dequeue and return the oldest value, or None if empty."""
        attempt = 0
        while True:
            yield Lease(self.head, self._lease_for(self.head))
            h = yield Load(self.head)
            t = yield Load(self.tail)
            n = yield Load(h + NEXT_OFF)
            h2 = yield Load(self.head)
            if h == h2:                       # pointers consistent?
                if h == t:
                    if n == NIL:
                        yield Release(self.head)
                        if self.backoff is not None:
                            self.backoff.reset(ctx, self.head)
                        return None           # queue empty
                    yield CAS(self.tail, t, n)   # tail fell behind
                else:
                    ret = yield Load(n + VALUE_OFF)
                    ok = yield CAS(self.head, h, n)   # swing head
                    if ok:
                        yield Release(self.head)
                        if self.backoff is not None:
                            self.backoff.reset(ctx, self.head)
                        return ret
            yield Release(self.head)
            attempt += 1
            if self.backoff is not None:
                yield from self.backoff.wait(ctx, attempt, self.head)

    # -- inspection --------------------------------------------------------

    def drain_direct(self) -> list[Any]:
        """Walk the queue in the backing store (test helper)."""
        m = self.machine
        out = []
        node = m.peek(m.peek(self.head) + NEXT_OFF)
        while node != NIL:
            out.append(m.peek(node + VALUE_OFF))
            node = m.peek(node + NEXT_OFF)
        return out

    # -- benchmark worker ---------------------------------------------------

    def update_worker(self, ctx: Ctx, ops: int,
                      local_work: int = 30) -> Generator:
        """100%-update benchmark body: alternating enqueue/dequeue.  Each
        operation is reported with its arguments and result so the run's
        history is checkable (see :mod:`repro.check`)."""
        for i in range(ops):
            start = ctx.machine.now
            if i % 2 == 0:
                value = (ctx.tid << 32) | i
                yield from self.enqueue(ctx, value)
                ctx.note_op("enqueue", (value,), None, start)
            else:
                taken = yield from self.dequeue(ctx)
                ctx.note_op("dequeue", (), taken, start)
            if local_work:
                yield Work(local_work)
