"""Lock-free skiplist set (Fraser [15] / Herlihy-Shavit style).

Node layout: ``[key, height, next_0, ..., next_{h-1}]``; the low bit of each
``next_l`` is the per-level deletion mark.  A node is logically in the set
iff it is reachable and unmarked at level 0 (the linearization level).

This is one of the paper's *low-contention* structures: with 20% updates on
uniform keys leases change throughput by at most a few percent.  The lease
is taken on the level-0 predecessor around the linearizing CAS, as for the
other linear structures.
"""

from __future__ import annotations

from typing import Any, Generator

from ..config import WORD_SIZE
from ..core.isa import CAS, Lease, Load, Release, Store
from ..core.machine import Machine
from ..core.thread import Ctx
from .harris_list import is_marked, mark, unmark

KEY_OFF = 0
HEIGHT_OFF = WORD_SIZE
NEXT0_OFF = 2 * WORD_SIZE
NIL = 0

MAX_HEIGHT = 5


def next_off(level: int) -> int:
    return NEXT0_OFF + level * WORD_SIZE


class LockFreeSkipList:
    """Lock-free sorted set over integer keys with probabilistic balance."""

    def __init__(self, machine: Machine, *, max_height: int = MAX_HEIGHT,
                 lease_time: int = 1 << 62) -> None:
        self.machine = machine
        self.max_height = max_height
        self.lease_time = lease_time
        self.tail = machine.alloc.alloc_words(2 + max_height)
        machine.write_init(self.tail + KEY_OFF, float("inf"))
        machine.write_init(self.tail + HEIGHT_OFF, max_height)
        self.head = machine.alloc.alloc_words(2 + max_height)
        machine.write_init(self.head + KEY_OFF, float("-inf"))
        machine.write_init(self.head + HEIGHT_OFF, max_height)
        for lvl in range(max_height):
            machine.write_init(self.head + next_off(lvl), self.tail)
            machine.write_init(self.tail + next_off(lvl), NIL)

    # -- helpers ---------------------------------------------------------

    def _random_height(self, ctx: Ctx) -> int:
        h = 1
        while h < self.max_height and ctx.rng.random() < 0.5:
            h += 1
        return h

    def _alloc_node(self, ctx: Ctx, key, height: int) -> int:
        return ctx.alloc_cached(2 + height, [key, height]
                                + [NIL] * height)

    # -- setup -------------------------------------------------------------

    def prefill(self, keys, seed: int = 7) -> None:
        """Insert ``keys`` directly (no traffic); call before run."""
        import random
        rng = random.Random(seed)
        m = self.machine
        for key in sorted(set(keys)):
            h = 1
            while h < self.max_height and rng.random() < 0.5:
                h += 1
            node = m.alloc.alloc_words(2 + h)
            m.write_init(node + KEY_OFF, key)
            m.write_init(node + HEIGHT_OFF, h)
            pred = self.head
            for lvl in range(self.max_height - 1, -1, -1):
                while True:
                    nxt = m.peek(pred + next_off(lvl))
                    if nxt != self.tail and m.peek(nxt + KEY_OFF) < key:
                        pred = nxt
                    else:
                        break
                if lvl < h:
                    m.write_init(node + next_off(lvl), nxt)
                    m.write_init(pred + next_off(lvl), node)

    # -- find (with per-level unlinking of marked nodes) ---------------------

    def _find(self, ctx: Ctx, key) -> Generator[
            Any, Any, tuple[bool, list[int], list[int]]]:
        """Herlihy-Shavit find: returns ``(found, preds, succs)``."""
        H = self.max_height
        while True:
            retry = False
            preds = [self.head] * H
            succs = [self.tail] * H
            pred = self.head
            for lvl in range(H - 1, -1, -1):
                raw = yield Load(pred + next_off(lvl))
                curr = unmark(raw)
                while True:
                    succ_raw = yield Load(curr + next_off(lvl))
                    while is_marked(succ_raw):
                        # curr is being deleted at this level: unlink it.
                        ok = yield CAS(pred + next_off(lvl), curr,
                                       unmark(succ_raw))
                        if not ok:
                            retry = True
                            break
                        raw = yield Load(pred + next_off(lvl))
                        curr = unmark(raw)
                        succ_raw = yield Load(curr + next_off(lvl))
                    if retry:
                        break
                    ckey = yield Load(curr + KEY_OFF)
                    if ckey < key:
                        pred = curr
                        curr = unmark(succ_raw)
                    else:
                        break
                if retry:
                    break
                preds[lvl] = pred
                succs[lvl] = curr
            if retry:
                continue
            if succs[0] != self.tail:
                k0 = yield Load(succs[0] + KEY_OFF)
                return k0 == key, preds, succs
            return False, preds, succs

    # -- operations --------------------------------------------------------

    def insert(self, ctx: Ctx, key) -> Generator[Any, Any, bool]:
        height = self._random_height(ctx)
        node = self._alloc_node(ctx, key, height)
        while True:
            found, preds, succs = yield from self._find(ctx, key)
            if found:
                return False
            for lvl in range(height):
                yield Store(node + next_off(lvl), succs[lvl])
            # Linearizing CAS at level 0, under a lease on the predecessor.
            yield Lease(preds[0] + next_off(0), self.lease_time)
            ok = yield CAS(preds[0] + next_off(0), succs[0], node)
            yield Release(preds[0] + next_off(0))
            if not ok:
                continue
            # Link upper levels, re-finding on interference.
            for lvl in range(1, height):
                while True:
                    raw = yield Load(node + next_off(lvl))
                    if is_marked(raw):
                        return True          # concurrently deleted
                    if raw != succs[lvl]:
                        # Refresh our forward pointer (CAS, not store, so a
                        # concurrent deleter's mark is never erased).
                        ok = yield CAS(node + next_off(lvl), raw, succs[lvl])
                        if not ok:
                            continue
                    ok = yield CAS(preds[lvl] + next_off(lvl),
                                   succs[lvl], node)
                    if ok:
                        break
                    found, preds, succs = yield from self._find(ctx, key)
                    if not found or succs[0] != node:
                        return True          # deleted / replaced meanwhile
            return True

    def delete(self, ctx: Ctx, key) -> Generator[Any, Any, bool]:
        found, preds, succs = yield from self._find(ctx, key)
        if not found:
            return False
        victim = succs[0]
        height = yield Load(victim + HEIGHT_OFF)
        # Mark the upper levels top-down.
        for lvl in range(height - 1, 0, -1):
            while True:
                raw = yield Load(victim + next_off(lvl))
                if is_marked(raw):
                    break
                yield CAS(victim + next_off(lvl), raw, mark(raw))
        # Marking level 0 is the linearization point.
        while True:
            raw = yield Load(victim + next_off(0))
            if is_marked(raw):
                return False                 # lost the race
            yield Lease(victim + next_off(0), self.lease_time)
            ok = yield CAS(victim + next_off(0), raw, mark(raw))
            yield Release(victim + next_off(0))
            if ok:
                yield from self._find(ctx, key)   # physical cleanup
                return True

    def contains(self, ctx: Ctx, key) -> Generator[Any, Any, bool]:
        """Read-only traversal (skips marked nodes, no unlinking)."""
        pred = self.head
        curr = self.tail
        for lvl in range(self.max_height - 1, -1, -1):
            raw = yield Load(pred + next_off(lvl))
            curr = unmark(raw)
            while True:
                succ_raw = yield Load(curr + next_off(lvl))
                while is_marked(succ_raw):
                    curr = unmark(succ_raw)
                    succ_raw = yield Load(curr + next_off(lvl))
                ckey = yield Load(curr + KEY_OFF)
                if ckey < key:
                    pred = curr
                    curr = unmark(succ_raw)
                else:
                    break
        if curr == self.tail:
            return False
        k = yield Load(curr + KEY_OFF)
        raw = yield Load(curr + next_off(0))
        return k == key and not is_marked(raw)

    # -- inspection -----------------------------------------------------------

    def keys_direct(self) -> list:
        """Unmarked level-0 keys via the backing store (test helper)."""
        m = self.machine
        out = []
        node = unmark(m.peek(self.head + next_off(0)))
        while node != self.tail:
            raw = m.peek(node + next_off(0))
            if not is_marked(raw):
                out.append(m.peek(node + KEY_OFF))
            node = unmark(raw)
        return out

    # -- benchmark worker -------------------------------------------------

    def mixed_worker(self, ctx: Ctx, ops: int, key_range: int,
                     update_pct: int = 20) -> Generator:
        for _ in range(ops):
            key = ctx.rng.randrange(key_range)
            roll = ctx.rng.randrange(100)
            start = ctx.machine.now
            if roll < update_pct // 2:
                added = yield from self.insert(ctx, key)
                ctx.note_op("insert", (key,), added, start)
            elif roll < update_pct:
                removed = yield from self.delete(ctx, key)
                ctx.note_op("delete", (key,), removed, start)
            else:
                found = yield from self.contains(ctx, key)
                ctx.note_op("contains", (key,), found, start)
