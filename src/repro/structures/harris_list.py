"""Harris's lock-free sorted linked list [17] (set semantics).

Node layout (one line each): ``[key, next]``, where the low bit of ``next``
is the logical-deletion mark (simulated addresses are 8-byte aligned, so the
bit is free -- the same trick real implementations use).

Lease placement follows the paper's guidance for "linear" structures
(Sections 1 and 7): lease only the *predecessor* node's line around the
read-validate-CAS window of an update.  Under low contention (the regime
the paper evaluates lists in) this changes throughput by at most a few
percent; the lease instructions are no-ops when disabled.
"""

from __future__ import annotations

from typing import Any, Generator

from ..config import WORD_SIZE
from ..core.isa import CAS, Lease, Load, Release, Store
from ..core.machine import Machine
from ..core.thread import Ctx

KEY_OFF = 0
NEXT_OFF = WORD_SIZE
NIL = 0


def is_marked(ptr: int) -> bool:
    return bool(ptr & 1)


def mark(ptr: int) -> int:
    return ptr | 1


def unmark(ptr: int) -> int:
    return ptr & ~1


class HarrisList:
    """Lock-free sorted set over integer keys."""

    def __init__(self, machine: Machine,
                 lease_time: int = 1 << 62) -> None:
        self.machine = machine
        self.lease_time = lease_time
        self.tail = machine.alloc.alloc_words(2)
        machine.write_init(self.tail + KEY_OFF, float("inf"))
        machine.write_init(self.tail + NEXT_OFF, NIL)
        self.head = machine.alloc.alloc_words(2)
        machine.write_init(self.head + KEY_OFF, float("-inf"))
        machine.write_init(self.head + NEXT_OFF, self.tail)

    # -- setup --------------------------------------------------------------

    def prefill(self, keys) -> None:
        """Insert ``keys`` directly (no traffic); call before run."""
        m = self.machine
        for key in sorted(set(keys), reverse=True):
            node = m.alloc.alloc_words(2)
            m.write_init(node + KEY_OFF, key)
            m.write_init(node + NEXT_OFF, m.peek(self.head + NEXT_OFF))
            m.write_init(self.head + NEXT_OFF, node)

    # -- core search (Harris's two-phase search with cleanup) ---------------

    def _search(self, ctx: Ctx, key) -> Generator[Any, Any, tuple[int, int]]:
        """Returns ``(left, right)``: adjacent unmarked nodes with
        ``left.key < key <= right.key``, unlinking marked chains on the way."""
        while True:
            # Phase 1: scan for left/right.
            t = self.head
            t_next = yield Load(self.head + NEXT_OFF)
            left = self.head
            left_next = t_next
            while True:
                if not is_marked(t_next):
                    left = t
                    left_next = t_next
                t = unmark(t_next)
                if t == self.tail:
                    break
                t_next = yield Load(t + NEXT_OFF)
                if not is_marked(t_next):
                    t_key = yield Load(t + KEY_OFF)
                    if t_key >= key:
                        break
            right = t
            # Phase 2: adjacent?
            if left_next == right:
                if right != self.tail:
                    rn = yield Load(right + NEXT_OFF)
                    if is_marked(rn):
                        continue
                return left, right
            # Phase 3: unlink the marked chain between left and right.
            ok = yield CAS(left + NEXT_OFF, left_next, right)
            if ok:
                if right != self.tail:
                    rn = yield Load(right + NEXT_OFF)
                    if is_marked(rn):
                        continue
                return left, right

    # -- operations ----------------------------------------------------------

    def insert(self, ctx: Ctx, key) -> Generator[Any, Any, bool]:
        """Add ``key``; False if already present."""
        node = ctx.alloc_cached(2, [key, NIL])
        while True:
            left, right = yield from self._search(ctx, key)
            if right != self.tail:
                rkey = yield Load(right + KEY_OFF)
                if rkey == key:
                    return False
            # Lease the predecessor's line over the validate-CAS window.
            yield Lease(left + NEXT_OFF, self.lease_time)
            cur = yield Load(left + NEXT_OFF)
            if cur != right:
                yield Release(left + NEXT_OFF)
                continue
            yield Store(node + NEXT_OFF, right)
            ok = yield CAS(left + NEXT_OFF, right, node)
            yield Release(left + NEXT_OFF)
            if ok:
                return True

    def delete(self, ctx: Ctx, key) -> Generator[Any, Any, bool]:
        """Remove ``key``; False if absent."""
        while True:
            left, right = yield from self._search(ctx, key)
            if right == self.tail:
                return False
            rkey = yield Load(right + KEY_OFF)
            if rkey != key:
                return False
            right_next = yield Load(right + NEXT_OFF)
            if is_marked(right_next):
                continue
            # Logical deletion: mark right's next pointer (lease the line
            # being CASed -- here the node itself is the "predecessor" of
            # its own next pointer).
            yield Lease(right + NEXT_OFF, self.lease_time)
            ok = yield CAS(right + NEXT_OFF, right_next, mark(right_next))
            yield Release(right + NEXT_OFF)
            if not ok:
                continue
            # Physical unlink (best effort; search cleans up on failure).
            yield CAS(left + NEXT_OFF, right, right_next)
            return True

    def contains(self, ctx: Ctx, key) -> Generator[Any, Any, bool]:
        """Wait-free membership test (no cleanup, no writes)."""
        node = yield Load(self.head + NEXT_OFF)
        node = unmark(node)
        while node != self.tail:
            nkey = yield Load(node + KEY_OFF)
            nxt = yield Load(node + NEXT_OFF)
            if nkey >= key:
                return nkey == key and not is_marked(nxt)
            node = unmark(nxt)
        return False

    # -- inspection -----------------------------------------------------------

    def keys_direct(self) -> list:
        """Unmarked keys, via the backing store (test helper)."""
        m = self.machine
        out = []
        node = unmark(m.peek(self.head + NEXT_OFF))
        while node != self.tail:
            nxt = m.peek(node + NEXT_OFF)
            if not is_marked(nxt):
                out.append(m.peek(node + KEY_OFF))
            node = unmark(nxt)
        return out

    # -- benchmark worker -------------------------------------------------

    def mixed_worker(self, ctx: Ctx, ops: int, key_range: int,
                     update_pct: int = 20) -> Generator:
        """The Section 7 low-contention mix: ``update_pct``/2 inserts,
        ``update_pct``/2 deletes, rest searches, uniform random keys.
        Every operation reports its boolean result so the run's history is
        checkable against a sequential set model."""
        for _ in range(ops):
            key = ctx.rng.randrange(key_range)
            roll = ctx.rng.randrange(100)
            start = ctx.machine.now
            if roll < update_pct // 2:
                added = yield from self.insert(ctx, key)
                ctx.note_op("insert", (key,), added, start)
            elif roll < update_pct:
                removed = yield from self.delete(ctx, key)
                ctx.note_op("delete", (key,), removed, start)
            else:
                found = yield from self.contains(ctx, key)
                ctx.note_op("contains", (key,), found, start)
