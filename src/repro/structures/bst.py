"""External binary search tree with fine-grained (per-node) locking.

The paper's low-contention tree workload cites the lock-free BST of
Natarajan-Mittal [31]; we substitute a fine-grained locked *external* BST
(leaves hold the keys, internal nodes route) with optimistic traversal and
validate-after-lock, which has the same coherence profile under the 20%-
update/uniform-key workload: traffic is spread over the whole tree and
leases change throughput by at most a few percent.  The substitution is
recorded in DESIGN.md.

Node layout: ``[key, left, right, lock, dead]``; leaves have
``left == right == NIL``.  Updates take per-node try-locks in
ancestor-then-descendant order and retry on validation failure, so no
deadlock is possible; the locks are leased over the critical section
exactly like the Section 6 lock pattern.
"""

from __future__ import annotations

from typing import Any, Generator

from ..config import WORD_SIZE
from ..core.isa import Lease, Load, Release, Store, TestAndSet, Work
from ..core.machine import Machine
from ..core.thread import Ctx
from ..sync.locks import SPIN_PAUSE

KEY_OFF = 0
LEFT_OFF = WORD_SIZE
RIGHT_OFF = 2 * WORD_SIZE
LOCK_OFF = 3 * WORD_SIZE
DEAD_OFF = 4 * WORD_SIZE
NIL = 0

#: Sentinel keys: all real keys compare below INF1 < INF2.
INF1 = float("inf")
INF2 = float("inf")


class LockedExternalBST:
    """Concurrent external BST (set semantics over integer keys)."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        # Ellen-style sentinels: root = internal(INF2) with two sentinel
        # leaves; every real key is routed into root.left's subtree.
        leaf1 = self._raw_node(machine, INF1)
        leaf2 = self._raw_node(machine, INF2)
        self.root = self._raw_node(machine, INF2, left=leaf1, right=leaf2)

    @staticmethod
    def _raw_node(machine: Machine, key, left: int = NIL,
                  right: int = NIL) -> int:
        node = machine.alloc.alloc_words(5)
        machine.write_init(node + KEY_OFF, key)
        machine.write_init(node + LEFT_OFF, left)
        machine.write_init(node + RIGHT_OFF, right)
        return node

    # -- setup ------------------------------------------------------------

    def prefill(self, keys) -> None:
        m = self.machine
        for key in set(keys):
            # Direct (non-simulated) insert.
            parent, side = self.root, LEFT_OFF
            node = m.peek(parent + side)
            while m.peek(node + LEFT_OFF) != NIL:
                parent = node
                side = (LEFT_OFF if key < m.peek(node + KEY_OFF)
                        else RIGHT_OFF)
                node = m.peek(parent + side)
            lkey = m.peek(node + KEY_OFF)
            if lkey == key:
                continue
            new_leaf = self._raw_node(m, key)
            inner_key = max(key, lkey) if lkey != INF1 else INF1
            if key < lkey:
                inner = self._raw_node(m, inner_key, new_leaf, node)
            else:
                inner = self._raw_node(m, inner_key, node, new_leaf)
            m.write_init(parent + side, inner)

    # -- locking helpers (leased try-locks on the node's line) ---------------

    def _try_lock(self, ctx: Ctx, node: int) -> Generator[Any, Any, bool]:
        yield Lease(node + LOCK_OFF)
        old = yield TestAndSet(node + LOCK_OFF)
        if old == 0:
            return True
        yield Release(node + LOCK_OFF)
        return False

    def _unlock(self, ctx: Ctx, node: int) -> Generator:
        yield Store(node + LOCK_OFF, 0)
        yield Release(node + LOCK_OFF)

    # -- traversal ------------------------------------------------------------

    def _search(self, ctx: Ctx, key) -> Generator[
            Any, Any, tuple[int, int, int, int, int]]:
        """Returns ``(gparent, gside, parent, pside, leaf)``."""
        gparent, gside = NIL, LEFT_OFF
        parent, pside = self.root, LEFT_OFF
        leaf = yield Load(parent + pside)
        while True:
            left = yield Load(leaf + LEFT_OFF)
            if left == NIL:
                return gparent, gside, parent, pside, leaf
            k = yield Load(leaf + KEY_OFF)
            gparent, gside = parent, pside
            parent = leaf
            pside = LEFT_OFF if key < k else RIGHT_OFF
            leaf = yield Load(parent + pside)

    # -- operations ----------------------------------------------------------

    def insert(self, ctx: Ctx, key) -> Generator[Any, Any, bool]:
        while True:
            _, _, parent, pside, leaf = yield from self._search(ctx, key)
            lkey = yield Load(leaf + KEY_OFF)
            if lkey == key:
                return False
            ok = yield from self._try_lock(ctx, parent)
            if not ok:
                yield Work(SPIN_PAUSE)
                continue
            dead = yield Load(parent + DEAD_OFF)
            cur = yield Load(parent + pside)
            if dead or cur != leaf:
                yield from self._unlock(ctx, parent)
                continue
            new_leaf = ctx.alloc_cached(5, [key, NIL, NIL, 0, 0])
            if key < lkey:
                inner = ctx.alloc_cached(
                    5, [lkey, new_leaf, leaf, 0, 0])
            else:
                inner = ctx.alloc_cached(
                    5, [key, leaf, new_leaf, 0, 0])
            yield Store(parent + pside, inner)
            yield from self._unlock(ctx, parent)
            return True

    def delete(self, ctx: Ctx, key) -> Generator[Any, Any, bool]:
        while True:
            gparent, gside, parent, pside, leaf = \
                yield from self._search(ctx, key)
            lkey = yield Load(leaf + KEY_OFF)
            if lkey != key:
                return False
            # Lock ancestor before descendant; try-locks keep this
            # deadlock-free even when the shape changed underneath us.
            ok = yield from self._try_lock(ctx, gparent)
            if not ok:
                yield Work(SPIN_PAUSE)
                continue
            ok = yield from self._try_lock(ctx, parent)
            if not ok:
                yield from self._unlock(ctx, gparent)
                yield Work(SPIN_PAUSE)
                continue
            gdead = yield Load(gparent + DEAD_OFF)
            pdead = yield Load(parent + DEAD_OFF)
            gchild = yield Load(gparent + gside)
            pchild = yield Load(parent + pside)
            if gdead or pdead or gchild != parent or pchild != leaf:
                yield from self._unlock(ctx, parent)
                yield from self._unlock(ctx, gparent)
                continue
            sibling_off = RIGHT_OFF if pside == LEFT_OFF else LEFT_OFF
            sibling = yield Load(parent + sibling_off)
            yield Store(gparent + gside, sibling)    # splice parent out
            yield Store(parent + DEAD_OFF, 1)
            yield from self._unlock(ctx, parent)
            yield from self._unlock(ctx, gparent)
            return True

    def contains(self, ctx: Ctx, key) -> Generator[Any, Any, bool]:
        _, _, _, _, leaf = yield from self._search(ctx, key)
        k = yield Load(leaf + KEY_OFF)
        return k == key

    # -- inspection -----------------------------------------------------------

    def keys_direct(self) -> list:
        """In-order leaf keys (excluding sentinels), via the backing store."""
        m = self.machine
        out = []

        def walk(node: int) -> None:
            if node == NIL:
                return
            left = m.peek(node + LEFT_OFF)
            if left == NIL:
                k = m.peek(node + KEY_OFF)
                if k != INF1:
                    out.append(k)
                return
            walk(left)
            walk(m.peek(node + RIGHT_OFF))

        walk(m.peek(self.root + LEFT_OFF))
        return out

    # -- benchmark worker -------------------------------------------------

    def mixed_worker(self, ctx: Ctx, ops: int, key_range: int,
                     update_pct: int = 20) -> Generator:
        for _ in range(ops):
            key = ctx.rng.randrange(key_range)
            roll = ctx.rng.randrange(100)
            start = ctx.machine.now
            if roll < update_pct // 2:
                added = yield from self.insert(ctx, key)
                ctx.note_op("insert", (key,), added, start)
            elif roll < update_pct:
                removed = yield from self.delete(ctx, key)
                ctx.note_op("delete", (key,), removed, start)
            else:
                found = yield from self.contains(ctx, key)
                ctx.note_op("contains", (key,), found, start)
