"""Skiplist-based priority queues (the Figure 3 right-hand benchmark).

Three implementations, matching Section 7's setup:

* :class:`SequentialSkipListPQ` -- a plain sequential skiplist priority
  queue executed over simulated memory (its accesses still generate real
  coherence traffic when nodes migrate between cores);
* :class:`PughLockPQ` -- the baseline: a fine-grained locking skiplist in
  the style of Pugh [33] / Lotan-Shavit [23], per-node locks acquired in
  key order (deadlock-free), deleteMin contending on the head lock;
* :class:`GlobalLockPQ` -- the paper's lease-based implementation: the
  sequential skiplist under one global lock, leased for the critical
  section (Section 7: "The lease-based implementation relies on a global
  lock").  With leases disabled it is a plain global-lock PQ.
"""

from __future__ import annotations

from typing import Any, Generator

from ..config import WORD_SIZE
from ..core.isa import Load, Store, TestAndSet, Work
from ..core.machine import Machine
from ..core.thread import Ctx
from ..sync.locks import SPIN_PAUSE, TTSLock, lease_lock_acquire, \
    lease_lock_release

NIL = 0
MAX_HEIGHT = 5

# Sequential / global-lock node layout: [key, height, next_0..next_{h-1}]
KEY_OFF = 0
HEIGHT_OFF = WORD_SIZE
NEXT0_OFF = 2 * WORD_SIZE

# Pugh node layout: [key, height, lock, dead, next_0..next_{h-1}]
# (Lotan-Shavit reuses it, with an extra logical-deletion word.)
P_KEY_OFF = 0
P_HEIGHT_OFF = WORD_SIZE
P_LOCK_OFF = 2 * WORD_SIZE
P_DEAD_OFF = 3 * WORD_SIZE
P_NEXT0_OFF = 4 * WORD_SIZE

# Lotan-Shavit node layout: [key, height, lock, dead, del, next_0..].
L_DEL_OFF = 4 * WORD_SIZE
L_NEXT0_OFF = 5 * WORD_SIZE


def _rand_height(rng, max_height: int) -> int:
    h = 1
    while h < max_height and rng.random() < 0.5:
        h += 1
    return h


class SequentialSkipListPQ:
    """Sequential skiplist min-priority-queue over simulated memory.

    NOT thread-safe on its own: callers serialize operations with a lock
    (GlobalLockPQ) or run single-threaded.
    """

    def __init__(self, machine: Machine, *,
                 max_height: int = MAX_HEIGHT) -> None:
        self.machine = machine
        self.max_height = max_height
        self.head = machine.alloc.alloc_words(2 + max_height)
        machine.write_init(self.head + KEY_OFF, float("-inf"))
        machine.write_init(self.head + HEIGHT_OFF, max_height)
        for lvl in range(max_height):
            machine.write_init(self.head + NEXT0_OFF + lvl * WORD_SIZE, NIL)

    def _next(self, node: int, lvl: int) -> int:
        return node + NEXT0_OFF + lvl * WORD_SIZE

    def prefill(self, keys, seed: int = 11) -> None:
        import random
        rng = random.Random(seed)
        m = self.machine
        for key in sorted(keys, reverse=True):
            h = _rand_height(rng, self.max_height)
            node = m.alloc.alloc_words(2 + h)
            m.write_init(node + KEY_OFF, key)
            m.write_init(node + HEIGHT_OFF, h)
            pred = self.head
            for lvl in range(self.max_height - 1, -1, -1):
                while True:
                    nxt = m.peek(self._next(pred, lvl))
                    if nxt != NIL and m.peek(nxt + KEY_OFF) < key:
                        pred = nxt
                    else:
                        break
                if lvl < h:
                    m.write_init(self._next(node, lvl), nxt)
                    m.write_init(self._next(pred, lvl), node)

    def insert(self, ctx: Ctx, key) -> Generator:
        h = _rand_height(ctx.rng, self.max_height)
        node = ctx.alloc_cached(2 + h, [key, h] + [NIL] * h)
        pred = self.head
        for lvl in range(self.max_height - 1, -1, -1):
            while True:
                nxt = yield Load(self._next(pred, lvl))
                if nxt != NIL:
                    nkey = yield Load(nxt + KEY_OFF)
                    if nkey < key:
                        pred = nxt
                        continue
                break
            if lvl < h:
                yield Store(self._next(node, lvl), nxt)
                yield Store(self._next(pred, lvl), node)

    def delete_min(self, ctx: Ctx) -> Generator[Any, Any, Any]:
        """Unlink and return the minimum key, or None if empty."""
        first = yield Load(self._next(self.head, 0))
        if first == NIL:
            return None
        h = yield Load(first + HEIGHT_OFF)
        for lvl in range(h):
            nxt = yield Load(self._next(first, lvl))
            yield Store(self._next(self.head, lvl), nxt)
        return (yield Load(first + KEY_OFF))

    def keys_direct(self) -> list:
        m = self.machine
        out = []
        node = m.peek(self._next(self.head, 0))
        while node != NIL:
            out.append(m.peek(node + KEY_OFF))
            node = m.peek(self._next(node, 0))
        return out


class GlobalLockPQ:
    """The lease-based PQ: one global (leased) TTS lock around a
    sequential skiplist."""

    def __init__(self, machine: Machine, *,
                 max_height: int = MAX_HEIGHT) -> None:
        self.machine = machine
        self.pq = SequentialSkipListPQ(machine, max_height=max_height)
        self.lock = TTSLock(machine)

    def prefill(self, keys, seed: int = 11) -> None:
        self.pq.prefill(keys, seed)

    def insert(self, ctx: Ctx, key) -> Generator:
        token = yield from lease_lock_acquire(ctx, self.lock)
        yield from self.pq.insert(ctx, key)
        yield from lease_lock_release(ctx, self.lock, token)

    def delete_min(self, ctx: Ctx) -> Generator[Any, Any, Any]:
        token = yield from lease_lock_acquire(ctx, self.lock)
        ret = yield from self.pq.delete_min(ctx)
        yield from lease_lock_release(ctx, self.lock, token)
        return ret

    def keys_direct(self) -> list:
        return self.pq.keys_direct()

    def update_worker(self, ctx: Ctx, ops: int, key_range: int = 1 << 20,
                      local_work: int = 30) -> Generator:
        """100%-update benchmark body: alternating insert/deleteMin.  Each
        operation is reported with arguments and result for history
        checking (see :mod:`repro.check`)."""
        for i in range(ops):
            start = ctx.machine.now
            if i % 2 == 0:
                key = ctx.rng.randrange(key_range)
                yield from self.insert(ctx, key)
                ctx.note_op("insert", (key,), None, start)
            else:
                taken = yield from self.delete_min(ctx)
                ctx.note_op("delete_min", (), taken, start)
            if local_work:
                yield Work(local_work)


class PughLockPQ:
    """Fine-grained locking skiplist PQ (the Figure 3 baseline).

    Per-node try-locks acquired in global key order (head first), with
    validate-after-lock and full retry on failure; deleteMin locks the head
    sentinel and the current minimum, whose predecessors at every level are
    the head itself.
    """

    #: Words before the next-pointer array ([key, height, lock, dead]).
    NODE_HDR = 4

    def __init__(self, machine: Machine, *,
                 max_height: int = MAX_HEIGHT) -> None:
        self.machine = machine
        self.max_height = max_height
        self.head = machine.alloc.alloc_words(self.NODE_HDR + max_height)
        machine.write_init(self.head + P_KEY_OFF, float("-inf"))
        machine.write_init(self.head + P_HEIGHT_OFF, max_height)
        for lvl in range(max_height):
            machine.write_init(self._next(self.head, lvl), NIL)

    def _next(self, node: int, lvl: int) -> int:
        return node + (self.NODE_HDR + lvl) * WORD_SIZE

    def prefill(self, keys, seed: int = 11) -> None:
        import random
        rng = random.Random(seed)
        m = self.machine
        for key in sorted(keys, reverse=True):
            h = _rand_height(rng, self.max_height)
            node = m.alloc.alloc_words(self.NODE_HDR + h)
            m.write_init(node + P_KEY_OFF, key)
            m.write_init(node + P_HEIGHT_OFF, h)
            pred = self.head
            for lvl in range(self.max_height - 1, -1, -1):
                while True:
                    nxt = m.peek(self._next(pred, lvl))
                    if nxt != NIL and m.peek(nxt + P_KEY_OFF) < key:
                        pred = nxt
                    else:
                        break
                if lvl < h:
                    m.write_init(self._next(node, lvl), nxt)
                    m.write_init(self._next(pred, lvl), node)

    # -- per-node locks -----------------------------------------------------

    def _try_lock(self, ctx: Ctx, node: int) -> Generator[Any, Any, bool]:
        ctx.trace.lock_attempt(ctx.core_id)
        v = yield Load(node + P_LOCK_OFF)
        if v == 0:
            old = yield TestAndSet(node + P_LOCK_OFF)
            if old == 0:
                return True
        ctx.trace.lock_failed(ctx.core_id)
        return False

    def _unlock(self, ctx: Ctx, node: int) -> Generator:
        yield Store(node + P_LOCK_OFF, 0)

    # -- operations -----------------------------------------------------------

    def insert(self, ctx: Ctx, key) -> Generator:
        h = _rand_height(ctx.rng, self.max_height)
        node = ctx.alloc_cached(self.NODE_HDR + h,
                                [key, h] + [0] * (self.NODE_HDR - 2)
                                + [NIL] * h)
        while True:
            # Optimistic search for per-level predecessors/successors.
            preds = [self.head] * self.max_height
            succs = [NIL] * self.max_height
            pred = self.head
            for lvl in range(self.max_height - 1, -1, -1):
                while True:
                    nxt = yield Load(self._next(pred, lvl))
                    if nxt != NIL:
                        nkey = yield Load(nxt + P_KEY_OFF)
                        if nkey < key:
                            pred = nxt
                            continue
                    break
                preds[lvl] = pred
                succs[lvl] = nxt
            # Lock the distinct predecessors in key order (head first).
            to_lock = []
            for lvl in range(h):
                if preds[lvl] not in to_lock:
                    to_lock.append(preds[lvl])
            keys = {}
            for p in to_lock:
                keys[p] = yield Load(p + P_KEY_OFF)
            to_lock.sort(key=lambda p: keys[p])
            locked = []
            ok = True
            for p in to_lock:
                got = yield from self._try_lock(ctx, p)
                if not got:
                    ok = False
                    break
                locked.append(p)
            if ok:
                # Validate: predecessors alive and still adjacent.
                for lvl in range(h):
                    dead = yield Load(preds[lvl] + P_DEAD_OFF)
                    cur = yield Load(self._next(preds[lvl], lvl))
                    if dead or cur != succs[lvl]:
                        ok = False
                        break
            if ok:
                for lvl in range(h):
                    yield Store(self._next(node, lvl), succs[lvl])
                    yield Store(self._next(preds[lvl], lvl), node)
            for p in reversed(locked):
                yield from self._unlock(ctx, p)
            if ok:
                return
            yield Work(SPIN_PAUSE)

    def delete_min(self, ctx: Ctx) -> Generator[Any, Any, Any]:
        while True:
            got = yield from self._try_lock(ctx, self.head)
            if not got:
                yield Work(SPIN_PAUSE)
                continue
            first = yield Load(self._next(self.head, 0))
            if first == NIL:
                yield from self._unlock(ctx, self.head)
                return None
            got = yield from self._try_lock(ctx, first)
            if not got:
                yield from self._unlock(ctx, self.head)
                yield Work(SPIN_PAUSE)
                continue
            # The minimum's predecessor at every linked level is the head.
            h = yield Load(first + P_HEIGHT_OFF)
            for lvl in range(h):
                nxt = yield Load(self._next(first, lvl))
                yield Store(self._next(self.head, lvl), nxt)
            yield Store(first + P_DEAD_OFF, 1)
            key = yield Load(first + P_KEY_OFF)
            yield from self._unlock(ctx, first)
            yield from self._unlock(ctx, self.head)
            return key

    def keys_direct(self) -> list:
        m = self.machine
        out = []
        node = m.peek(self._next(self.head, 0))
        while node != NIL:
            out.append(m.peek(node + P_KEY_OFF))
            node = m.peek(self._next(node, 0))
        return out

    def update_worker(self, ctx: Ctx, ops: int, key_range: int = 1 << 20,
                      local_work: int = 30) -> Generator:
        for i in range(ops):
            start = ctx.machine.now
            if i % 2 == 0:
                key = ctx.rng.randrange(key_range)
                yield from self.insert(ctx, key)
                ctx.note_op("insert", (key,), None, start)
            else:
                taken = yield from self.delete_min(ctx)
                ctx.note_op("delete_min", (), taken, start)
            if local_work:
                yield Work(local_work)


class LotanShavitPQ(PughLockPQ):
    """The Lotan-Shavit skiplist priority queue [23], literally.

    deleteMin proceeds in two phases, as in the original algorithm: a
    *lock-free logical deletion* (scan level 0 and test-and-set the first
    node's deleted flag -- the linearization point), followed by a Pugh-
    style *physical removal* under per-node try-locks.  Inserts are the
    fine-grained Pugh inserts inherited from :class:`PughLockPQ`.

    Node layout: ``[key, height, lock, dead, del, next_0..]`` -- ``del``
    is the logical-deletion flag, ``dead`` marks physically removed nodes
    for insert validation.
    """

    NODE_HDR = 5

    def delete_min(self, ctx: Ctx) -> Generator[Any, Any, Any]:
        # Phase 1: logical deletion (lock-free TAS scan along level 0).
        node = yield Load(self._next(self.head, 0))
        victim = NIL
        while node != NIL:
            deleted = yield Load(node + L_DEL_OFF)
            if deleted == 0:
                old = yield TestAndSet(node + L_DEL_OFF)
                if old == 0:
                    victim = node
                    break
            node = yield Load(self._next(node, 0))
        if victim == NIL:
            return None                    # queue (logically) empty
        key = yield Load(victim + P_KEY_OFF)
        # Phase 2: physical removal under locks (best effort, retried).
        yield from self._remove_node(ctx, key, victim)
        return key

    def _remove_node(self, ctx: Ctx, key, victim: int) -> Generator:
        """Unlink ``victim`` from every level it occupies."""
        h = yield Load(victim + P_HEIGHT_OFF)
        while True:
            # Optimistic search for victim's predecessor at each level.
            preds = [self.head] * self.max_height
            pred = self.head
            for lvl in range(self.max_height - 1, -1, -1):
                while True:
                    nxt = yield Load(self._next(pred, lvl))
                    if nxt == NIL or nxt == victim:
                        break
                    nkey = yield Load(nxt + P_KEY_OFF)
                    if nkey > key:
                        break
                    pred = nxt
                preds[lvl] = pred
            # Try-lock victim + distinct predecessors (retry on failure;
            # try-locks keep this deadlock-free regardless of key ties).
            to_lock = [victim]
            for lvl in range(h):
                if preds[lvl] not in to_lock:
                    to_lock.append(preds[lvl])
            locked = []
            ok = True
            for n in to_lock:
                got = yield from self._try_lock(ctx, n)
                if not got:
                    ok = False
                    break
                locked.append(n)
            if ok:
                # Unlink at every level where the pred still points at us.
                for lvl in range(h):
                    cur = yield Load(self._next(preds[lvl], lvl))
                    if cur == victim:
                        nxt = yield Load(self._next(victim, lvl))
                        yield Store(self._next(preds[lvl], lvl), nxt)
                still_linked = False
                for lvl in range(h):
                    cur = yield Load(self._next(preds[lvl], lvl))
                    if cur == victim:
                        still_linked = True
                yield Store(victim + P_DEAD_OFF, 1)
            for n in reversed(locked):
                yield from self._unlock(ctx, n)
            if ok and not still_linked:
                return
            yield Work(SPIN_PAUSE)

    def keys_direct(self) -> list:
        """Logically-live keys (unmarked level-0 nodes)."""
        m = self.machine
        out = []
        node = m.peek(self._next(self.head, 0))
        while node != NIL:
            if m.peek(node + L_DEL_OFF) == 0:
                out.append(m.peek(node + P_KEY_OFF))
            node = m.peek(self._next(node, 0))
        return out
