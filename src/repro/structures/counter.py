"""Lock-based counter: the Figure 3 (left) microbenchmark.

A single contended lock protects one counter word.  Variants:

* ``lock='tts'`` with the lease pattern of Section 6 (the paper's headline
  ~20x case; with leases disabled the same code is the TTS baseline);
* ``lock='ticket'`` -- ticket lock with proportional backoff (the optimized
  software lock in Figure 3);
* ``lock='clh'`` -- CLH queue lock (the other optimized software baseline);
* ``misuse=True`` -- the Section 7 "improper use" ablation: waiters keep
  the lease on a lock they failed to acquire, delaying the owner's unlock
  (mitigated by the prioritization mechanism when it is enabled).
"""

from __future__ import annotations

from typing import Any, Generator

from ..core.isa import (CAS, FetchAdd, Lease, Load, Release, Store,
                        TestAndSet, Work)
from ..core.machine import Machine
from ..core.thread import Ctx
from ..sync.locks import (CLHLock, HTicketLock, ReciprocatingLock,
                          SPIN_PAUSE, TTSLock, TicketLock,
                          lease_lock_acquire, lease_lock_release)

_LOCKS = {"tts": TTSLock, "ticket": TicketLock, "clh": CLHLock,
          "hticket": HTicketLock, "reciprocating": ReciprocatingLock}


class LockedCounter:
    """One lock, one counter word (each on its own line)."""

    def __init__(self, machine: Machine, *, lock: str = "tts",
                 critical_work: int = 40, misuse: bool = False,
                 backoff=None, lease_time: int = 1 << 62,
                 lease_policy=None) -> None:
        if lock not in _LOCKS:
            raise ValueError(f"unknown lock kind {lock!r}")
        self.machine = machine
        self.lock_kind = lock
        self.lock = _LOCKS[lock](machine)
        self.value_addr = machine.alloc_var(0, label="counter.value")
        #: Extra cycles spent inside the critical section (models the work
        #: a real application does while holding the lock).
        self.critical_work = critical_work
        self.misuse = misuse
        #: Inter-try backoff for the leased (tts) acquisition path.
        self.backoff = backoff
        self.lease_time = lease_time
        #: Optional adaptive duration source (``time_for(addr)``).
        self.lease_policy = lease_policy

    # -- operations --------------------------------------------------------

    def increment(self, ctx: Ctx) -> Generator[Any, Any, int]:
        """Lock, bump the counter, unlock.  Returns the pre-increment value."""
        if self.misuse:
            return (yield from self._increment_misuse(ctx))
        if self.lock_kind == "tts":
            lt = (self.lease_policy.time_for(self.lock.addr)
                  if self.lease_policy is not None else self.lease_time)
            token = yield from lease_lock_acquire(ctx, self.lock,
                                                  lease_time=lt,
                                                  backoff=self.backoff)
        else:
            token = yield from self.lock.acquire(ctx)
        v = yield Load(self.value_addr)
        if self.critical_work:
            yield Work(self.critical_work)
        yield Store(self.value_addr, v + 1)
        if self.lock_kind == "tts":
            yield from lease_lock_release(ctx, self.lock, token)
        else:
            yield from self.lock.release(ctx, token)
        return v

    def _increment_misuse(self, ctx: Ctx) -> Generator[Any, Any, int]:
        """Improper lease usage (Section 7): the owner drops its lease at
        acquisition (leaving its critical section unprotected), and waiters
        do *not* drop the lease on the lock they failed to acquire -- so
        the owner's unlock store stalls behind a waiter's lease until
        expiry, unless the prioritization override breaks it."""
        lock_addr = self.lock.addr
        while True:
            # The site tag lets the Section 5 predictor identify (and, when
            # enabled, neutralize) this repeatedly-expiring lease site.
            yield Lease(lock_addr, site="counter.misuse_spin")
            ctx.trace.lock_attempt(ctx.core_id)
            v = yield Load(lock_addr)
            if v == 0:
                old = yield TestAndSet(lock_addr)
                if old == 0:
                    # BUG (deliberate): give up the lease while holding the
                    # lock, so others can observe the locked line.
                    yield Release(lock_addr)
                    break
            ctx.trace.lock_failed(ctx.core_id)
            # BUG (deliberate): no Release on failure; spin while leasing
            # the lock line, reading our own stale exclusive copy until
            # the lease expires or is broken.
            yield Work(SPIN_PAUSE)
        v = yield Load(self.value_addr)
        if self.critical_work:
            yield Work(self.critical_work)
        yield Store(self.value_addr, v + 1)
        yield Store(lock_addr, 0)
        return v

    def read(self, ctx: Ctx) -> Generator[Any, Any, int]:
        return (yield Load(self.value_addr))

    # -- worker -------------------------------------------------------------

    def update_worker(self, ctx: Ctx, ops: int) -> Generator:
        """Benchmark body: ``ops`` lock-protected increments.  The
        pre-increment value each increment observed is reported, so the
        history is checkable against a sequential counter."""
        for _ in range(ops):
            start = ctx.machine.now
            before = yield from self.increment(ctx)
            ctx.note_op("inc", (), before, start)


class CasCounter:
    """Lock-free CAS-retry counter (load; CAS old -> old+1): the substrate
    the DHM cas-backoff arm manages, with the same lease placement as the
    Treiber loop (lease over the read-CAS window; no-op when disabled)."""

    def __init__(self, machine: Machine, *, critical_work: int = 0,
                 backoff=None, lease_time: int = 1 << 62,
                 lease_policy=None) -> None:
        self.machine = machine
        self.value_addr = machine.alloc_var(0, label="counter.value")
        #: Extra cycles spent between the load and the CAS (inside the
        #: lease window), matching LockedCounter's critical-section work so
        #: cross-arm comparisons measure the synchronization, not a
        #: workload asymmetry.
        self.critical_work = critical_work
        self.backoff = backoff
        self.lease_time = lease_time
        self.lease_policy = lease_policy

    def increment(self, ctx: Ctx) -> Generator[Any, Any, int]:
        """CAS-retry increment.  Returns the pre-increment value."""
        attempt = 0
        while True:
            lt = (self.lease_policy.time_for(self.value_addr)
                  if self.lease_policy is not None else self.lease_time)
            yield Lease(self.value_addr, lt)
            v = yield Load(self.value_addr)
            if self.critical_work:
                yield Work(self.critical_work)
            ok = yield CAS(self.value_addr, v, v + 1)
            yield Release(self.value_addr)
            if ok:
                if self.backoff is not None:
                    self.backoff.reset(ctx, self.value_addr)
                return v
            attempt += 1
            if self.backoff is not None:
                yield from self.backoff.wait(ctx, attempt, self.value_addr)

    def read(self, ctx: Ctx) -> Generator[Any, Any, int]:
        return (yield Load(self.value_addr))

    def update_worker(self, ctx: Ctx, ops: int) -> Generator:
        for _ in range(ops):
            start = ctx.machine.now
            before = yield from self.increment(ctx)
            ctx.note_op("inc", (), before, start)


class AtomicCounter:
    """Fetch-and-add counter (a hardware-RMW reference point; not in the
    paper's figures but useful as a sanity ceiling in tests)."""

    def __init__(self, machine: Machine) -> None:
        self.value_addr = machine.alloc_var(0, label="counter.value")

    def increment(self, ctx: Ctx) -> Generator[Any, Any, int]:
        return (yield FetchAdd(self.value_addr, 1))

    def update_worker(self, ctx: Ctx, ops: int) -> Generator:
        for _ in range(ops):
            start = ctx.machine.now
            before = yield from self.increment(ctx)
            ctx.note_op("inc", (), before, start)
