"""The paper's workload data structures, written against the simulated ISA.

Every operation is a generator subroutine (``yield from`` composition); the
same code runs as the baseline when leases are disabled in the machine
config, because the lease instructions become zero-cost no-ops -- mirroring
how the paper adds leases to classic designs by "modifying just a few lines
of code in the base implementation".
"""

from .counter import LockedCounter, AtomicCounter, CasCounter
from .treiber import TreiberStack
from .msqueue import MichaelScottQueue
from .mcas import McasCounter, McasQueue, McasStack
from .harris_list import HarrisList
from .skiplist import LockFreeSkipList
from .hashtable import LockedHashTable
from .bst import LockedExternalBST
from .priorityqueue import (GlobalLockPQ, LotanShavitPQ, PughLockPQ,
                            SequentialSkipListPQ)
from .multiqueue import MultiQueue

__all__ = [
    "LockedCounter", "AtomicCounter", "CasCounter", "TreiberStack",
    "MichaelScottQueue", "McasCounter", "McasStack", "McasQueue",
    "HarrisList", "LockFreeSkipList", "LockedHashTable", "LockedExternalBST",
    "GlobalLockPQ", "PughLockPQ", "LotanShavitPQ", "SequentialSkipListPQ",
    "MultiQueue",
]
