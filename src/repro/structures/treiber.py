"""Treiber's lock-free stack [41] with the Figure 1 lease placement.

Node layout (one cache line each): ``[value, next]``.

The lease is taken on the head pointer's line before the read and released
right after the CAS, covering the read-CAS window so that the validation
"is always successful, unless the lease on the corresponding line expires"
(Section 1).  With leases disabled the identical code is the classic
Treiber stack; an optional backoff policy turns it into the software
contention-mitigation baseline of Section 7.
"""

from __future__ import annotations

from typing import Any, Generator

from ..config import WORD_SIZE
from ..core.isa import CAS, Lease, Load, Release, Store, Work
from ..core.machine import Machine
from ..core.thread import Ctx

VALUE_OFF = 0
NEXT_OFF = WORD_SIZE

#: "NULL" in simulated memory.
NIL = 0


class TreiberStack:
    """Lock-free LIFO stack with a single head pointer."""

    def __init__(self, machine: Machine, *, backoff=None,
                 lease_time: int = 1 << 62, lease_policy=None) -> None:
        self.machine = machine
        self.head = machine.alloc_var(NIL, label="stack.head")
        self.backoff = backoff
        self.lease_time = lease_time
        #: Optional adaptive duration source (``time_for(addr)``); None
        #: keeps the fixed ``lease_time``.
        self.lease_policy = lease_policy

    def _lease_for(self, addr: int) -> int:
        if self.lease_policy is not None:
            return self.lease_policy.time_for(addr)
        return self.lease_time

    # -- setup ------------------------------------------------------------

    def prefill(self, values) -> None:
        """Push ``values`` directly (no simulated traffic); call before run."""
        for v in values:
            node = self.machine.alloc.alloc_words(2, label="stack.node")
            self.machine.write_init(node + VALUE_OFF, v)
            self.machine.write_init(node + NEXT_OFF,
                                    self.machine.peek(self.head))
            self.machine.write_init(self.head, node)

    # -- operations (Figure 1) ---------------------------------------------

    def push(self, ctx: Ctx, value: Any) -> Generator:
        node = ctx.alloc_cached(2, [value, NIL], label="stack.node")
        attempt = 0
        while True:
            yield Lease(self.head, self._lease_for(self.head))
            h = yield Load(self.head)
            yield Store(node + NEXT_OFF, h)
            ok = yield CAS(self.head, h, node)
            yield Release(self.head)
            if ok:
                if self.backoff is not None:
                    self.backoff.reset(ctx, self.head)
                return
            attempt += 1
            if self.backoff is not None:
                yield from self.backoff.wait(ctx, attempt, self.head)

    def pop(self, ctx: Ctx) -> Generator[Any, Any, Any]:
        """Pop and return the top value, or None if the stack is empty."""
        attempt = 0
        while True:
            yield Lease(self.head, self._lease_for(self.head))
            h = yield Load(self.head)
            if h == NIL:
                yield Release(self.head)
                if self.backoff is not None:
                    self.backoff.reset(ctx, self.head)
                return None
            nxt = yield Load(h + NEXT_OFF)
            ok = yield CAS(self.head, h, nxt)
            yield Release(self.head)
            if ok:
                if self.backoff is not None:
                    self.backoff.reset(ctx, self.head)
                return (yield Load(h + VALUE_OFF))
            attempt += 1
            if self.backoff is not None:
                yield from self.backoff.wait(ctx, attempt, self.head)

    # -- inspection (direct memory, for tests) -------------------------------

    def drain_direct(self) -> list[Any]:
        """Walk the stack in the backing store (no traffic); test helper."""
        out = []
        node = self.machine.peek(self.head)
        while node != NIL:
            out.append(self.machine.peek(node + VALUE_OFF))
            node = self.machine.peek(node + NEXT_OFF)
        return out

    # -- benchmark worker -------------------------------------------------

    def update_worker(self, ctx: Ctx, ops: int,
                      local_work: int = 30) -> Generator:
        """100%-update benchmark body: alternating push/pop pairs.  Each
        operation is reported with its arguments and result so the run's
        history is checkable (see :mod:`repro.check`)."""
        for i in range(ops):
            start = ctx.machine.now
            if i % 2 == 0:
                value = (ctx.tid << 32) | i
                yield from self.push(ctx, value)
                ctx.note_op("push", (value,), None, start)
            else:
                popped = yield from self.pop(ctx)
                ctx.note_op("pop", (), popped, start)
            if local_work:
                yield Work(local_work)
