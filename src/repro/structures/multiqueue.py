"""MultiQueues [36] with leases -- Algorithm 4 of the paper.

A relaxed priority queue: ``M`` *sequential* priority queues (binary heaps
over simulated memory), each protected by a try-lock.  Insert picks random
queues until one lock is acquired; deleteMin try-locks *two* random queues
and pops the smaller top.  Lease usage follows Algorithm 4 exactly:

* insert leases the chosen lock's line (single lease), releasing after the
  unlock;
* deleteMin takes a ``MultiLease`` on both chosen locks, unlocks the losing
  queue and releases *all* leases as soon as the comparison is done -- the
  paper explains that holding the lease on the winner would prevent other
  threads from quickly discovering the lock is taken and re-rolling.
"""

from __future__ import annotations

from typing import Any, Generator

from ..config import WORD_SIZE
from ..core.isa import (Lease, Load, MultiLease, Release, ReleaseAll, Store,
                        Work)
from ..core.machine import Machine
from ..core.thread import Ctx
from ..sync.locks import SPIN_PAUSE, TTSLock

NIL = 0


class SequentialBinaryHeap:
    """Array-backed sequential min-heap over simulated memory.

    NOT thread-safe: callers hold the owning queue's lock.  The size word
    and array live in ordinary (line-shared) memory, so heap operations
    generate realistic cache traffic when a queue migrates between cores.
    """

    def __init__(self, machine: Machine, capacity: int = 4096) -> None:
        self.machine = machine
        self.capacity = capacity
        self.size_addr = machine.alloc_var(0)
        self.base = machine.alloc.alloc_words(capacity)

    def _slot(self, i: int) -> int:
        return self.base + i * WORD_SIZE

    def prefill(self, keys) -> None:
        import heapq
        m = self.machine
        heap = list(keys)
        heapq.heapify(heap)
        for i, k in enumerate(heap):
            m.write_init(self._slot(i), k)
        m.write_init(self.size_addr, len(heap))

    def insert(self, ctx: Ctx, key) -> Generator:
        n = yield Load(self.size_addr)
        if n >= self.capacity:
            raise OverflowError("simulated heap capacity exceeded")
        i = n
        yield Store(self._slot(i), key)
        yield Store(self.size_addr, n + 1)
        while i > 0:                       # sift up
            parent = (i - 1) // 2
            pv = yield Load(self._slot(parent))
            if pv <= key:
                break
            yield Store(self._slot(i), pv)
            yield Store(self._slot(parent), key)
            i = parent

    def peek_min(self, ctx: Ctx) -> Generator[Any, Any, Any]:
        n = yield Load(self.size_addr)
        if n == 0:
            return None
        return (yield Load(self._slot(0)))

    def delete_min(self, ctx: Ctx) -> Generator[Any, Any, Any]:
        n = yield Load(self.size_addr)
        if n == 0:
            return None
        ret = yield Load(self._slot(0))
        last = yield Load(self._slot(n - 1))
        yield Store(self.size_addr, n - 1)
        n -= 1
        if n == 0:
            return ret
        yield Store(self._slot(0), last)
        i = 0
        while True:                        # sift down
            left, right = 2 * i + 1, 2 * i + 2
            smallest, sval = i, last
            if left < n:
                lv = yield Load(self._slot(left))
                if lv < sval:
                    smallest, sval = left, lv
            if right < n:
                rv = yield Load(self._slot(right))
                if rv < sval:
                    smallest, sval = right, rv
            if smallest == i:
                break
            yield Store(self._slot(smallest), last)
            yield Store(self._slot(i), sval)
            i = smallest
        return ret

    def keys_direct(self) -> list:
        m = self.machine
        n = m.peek(self.size_addr)
        return [m.peek(self._slot(i)) for i in range(n)]


class MultiQueue:
    """Relaxed concurrent priority queue: M heaps + try-locks + leases."""

    def __init__(self, machine: Machine, *, num_queues: int = 8,
                 capacity: int = 4096) -> None:
        self.machine = machine
        self.num_queues = num_queues
        self.queues = [SequentialBinaryHeap(machine, capacity)
                       for _ in range(num_queues)]
        self.locks = [TTSLock(machine) for _ in range(num_queues)]

    def prefill(self, keys, seed: int = 13) -> None:
        import random
        rng = random.Random(seed)
        per: list[list] = [[] for _ in range(self.num_queues)]
        for k in keys:
            per[rng.randrange(self.num_queues)].append(k)
        for q, ks in zip(self.queues, per):
            q.prefill(ks)

    # -- Algorithm 4 -------------------------------------------------------

    def insert(self, ctx: Ctx, value) -> Generator[Any, Any, int]:
        """Insert ``value``; returns the queue index used."""
        while True:
            i = ctx.rng.randrange(self.num_queues)
            yield Lease(self.locks[i].addr)
            ok = yield from self.locks[i].try_acquire(ctx)
            if ok:
                yield from self.queues[i].insert(ctx, value)   # sequential
                yield from self.locks[i].release(ctx)
                yield Release(self.locks[i].addr)
                return i
            yield Release(self.locks[i].addr)
            yield Work(SPIN_PAUSE)

    def delete_min(self, ctx: Ctx) -> Generator[Any, Any, Any]:
        """Pop the smaller of two random queue tops (relaxed deleteMin)."""
        while True:
            i = ctx.rng.randrange(self.num_queues)
            k = ctx.rng.randrange(self.num_queues)
            if k == i:
                k = (k + 1) % self.num_queues
            yield MultiLease((self.locks[i].addr, self.locks[k].addr))
            ok_i = yield from self.locks[i].try_acquire(ctx)
            if ok_i:
                ok_k = yield from self.locks[k].try_acquire(ctx)
                if ok_k:
                    top_i = yield from self.queues[i].peek_min(ctx)
                    top_k = yield from self.queues[k].peek_min(ctx)
                    # Winner: the queue whose top has higher priority
                    # (smaller key); empty queues lose.
                    if top_i is None and top_k is None:
                        yield from self.locks[k].release(ctx)
                        yield from self.locks[i].release(ctx)
                        yield ReleaseAll()
                        return None
                    if top_k is None or (top_i is not None
                                         and top_i <= top_k):
                        win, lose = i, k
                    else:
                        win, lose = k, i
                    yield from self.locks[lose].release(ctx)
                    yield ReleaseAll()
                    ret = yield from self.queues[win].delete_min(ctx)
                    yield from self.locks[win].release(ctx)
                    return ret
                # Failed to acquire Locks[k].
                yield from self.locks[i].release(ctx)
                yield ReleaseAll()
            else:
                # Failed to acquire Locks[i].
                yield ReleaseAll()
            yield Work(SPIN_PAUSE)

    # -- benchmark worker -------------------------------------------------

    def update_worker(self, ctx: Ctx, ops: int, key_range: int = 1 << 20,
                      local_work: int = 20) -> Generator:
        """Alternating insert / deleteMin (the Figure 4 workload).  Each
        operation is reported with arguments and result; MultiQueues are
        *relaxed*, so checkers validate element conservation rather than
        strict priority order."""
        for op in range(ops):
            start = ctx.machine.now
            if op % 2 == 0:
                key = ctx.rng.randrange(key_range)
                yield from self.insert(ctx, key)
                ctx.note_op("insert", (key,), None, start)
            else:
                taken = yield from self.delete_min(ctx)
                ctx.note_op("delete_min", (), taken, start)
            if local_work:
                yield Work(local_work)
