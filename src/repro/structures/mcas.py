"""Data structures built on software MCAS (:mod:`repro.sync.mcas`).

The multi-word arm of the contention-management zoo: each operation
updates several words atomically (the structure pointer *plus* a size
word), so the MCAS helping policy -- not a lease -- is what manages
contention.  All MCAS-managed words follow the ``(value, version)`` cell
convention of :mod:`repro.sync.mcas`; node payload words that are
immutable after publication stay plain.
"""

from __future__ import annotations

from typing import Any, Generator

from ..config import WORD_SIZE
from ..core.isa import Load, Store, Work
from ..core.machine import Machine
from ..core.thread import Ctx
from ..sync.mcas import Mcas, managed_word

VALUE_OFF = 0
NEXT_OFF = WORD_SIZE
NIL = 0


class McasCounter:
    """Counter whose increment MCASes two words -- the value and an op
    count on a separate line -- keeping ``value == ops`` as a structural
    invariant any lost or doubled update would break."""

    def __init__(self, machine: Machine, *, helping: str = "aware",
                 help_slice: int = 64) -> None:
        self.machine = machine
        self.mc = Mcas(machine, helping=helping, help_slice=help_slice)
        self.value_addr = machine.alloc_var(managed_word(0),
                                            label="counter.value")
        self.ops_addr = machine.alloc_var(managed_word(0),
                                          label="counter.ops")

    def increment(self, ctx: Ctx) -> Generator[Any, Any, int]:
        """MCAS-increment both words.  Returns the pre-increment value."""
        while True:
            vc = yield from self.mc.read_word(ctx, self.value_addr)
            oc = yield from self.mc.read_word(ctx, self.ops_addr)
            ok = yield from self.mc.mcas(ctx, [
                (self.value_addr, vc, (vc[0] + 1, vc[1] + 1)),
                (self.ops_addr, oc, (oc[0] + 1, oc[1] + 1))])
            if ok:
                return vc[0]

    def read(self, ctx: Ctx) -> Generator[Any, Any, int]:
        return (yield from self.mc.read(ctx, self.value_addr))

    def peek_value(self) -> int:
        """The committed counter value (test helper; resolves no
        descriptors, so only valid at quiescence)."""
        return self.machine.peek(self.value_addr)[0]

    def peek_ops(self) -> int:
        return self.machine.peek(self.ops_addr)[0]

    def update_worker(self, ctx: Ctx, ops: int) -> Generator:
        for _ in range(ops):
            start = ctx.machine.now
            before = yield from self.increment(ctx)
            ctx.note_op("inc", (), before, start)

    def stats(self) -> dict[str, int]:
        return self.mc.stats()


class McasStack:
    """Treiber-shaped LIFO whose push/pop MCAS the head pointer and a
    size word together (``len(stack) == count`` is the invariant)."""

    def __init__(self, machine: Machine, *, helping: str = "aware",
                 help_slice: int = 64) -> None:
        self.machine = machine
        self.mc = Mcas(machine, helping=helping, help_slice=help_slice)
        self.head = machine.alloc_var(managed_word(NIL), label="stack.head")
        self.count = machine.alloc_var(managed_word(0), label="stack.count")

    def prefill(self, values) -> None:
        """Push ``values`` directly (no simulated traffic); call before run."""
        m = self.machine
        for v in values:
            node = m.alloc.alloc_words(2, label="stack.node")
            m.write_init(node + VALUE_OFF, v)
            m.write_init(node + NEXT_OFF, m.peek(self.head)[0])
            m.write_init(self.head, managed_word(node))
        m.write_init(self.count, managed_word(self._count_direct()))

    def _count_direct(self) -> int:
        n, node = 0, self.machine.peek(self.head)[0]
        while node != NIL:
            n += 1
            node = self.machine.peek(node + NEXT_OFF)
        return n

    def push(self, ctx: Ctx, value: Any) -> Generator:
        node = ctx.alloc_cached(2, [value, NIL], label="stack.node")
        while True:
            hc = yield from self.mc.read_word(ctx, self.head)
            cc = yield from self.mc.read_word(ctx, self.count)
            yield Store(node + NEXT_OFF, hc[0])
            ok = yield from self.mc.mcas(ctx, [
                (self.head, hc, (node, hc[1] + 1)),
                (self.count, cc, (cc[0] + 1, cc[1] + 1))])
            if ok:
                return

    def pop(self, ctx: Ctx) -> Generator[Any, Any, Any]:
        """Pop and return the top value, or None if the stack is empty."""
        while True:
            hc = yield from self.mc.read_word(ctx, self.head)
            h = hc[0]
            if h == NIL:
                return None
            cc = yield from self.mc.read_word(ctx, self.count)
            nxt = yield Load(h + NEXT_OFF)
            ok = yield from self.mc.mcas(ctx, [
                (self.head, hc, (nxt, hc[1] + 1)),
                (self.count, cc, (cc[0] - 1, cc[1] + 1))])
            if ok:
                return (yield Load(h + VALUE_OFF))

    def drain_direct(self) -> list[Any]:
        """Walk the stack in the backing store (no traffic); test helper."""
        out = []
        node = self.machine.peek(self.head)[0]
        while node != NIL:
            out.append(self.machine.peek(node + VALUE_OFF))
            node = self.machine.peek(node + NEXT_OFF)
        return out

    def update_worker(self, ctx: Ctx, ops: int,
                      local_work: int = 30) -> Generator:
        """100%-update benchmark body mirroring TreiberStack's."""
        for i in range(ops):
            start = ctx.machine.now
            if i % 2 == 0:
                value = (ctx.tid << 32) | i
                yield from self.push(ctx, value)
                ctx.note_op("push", (value,), None, start)
            else:
                popped = yield from self.pop(ctx)
                ctx.note_op("pop", (), popped, start)
            if local_work:
                yield Work(local_work)

    def stats(self) -> dict[str, int]:
        return self.mc.stats()


class McasQueue:
    """Michael-Scott-shaped FIFO whose enqueue atomically links the new
    node *and* swings the tail (plus a size word) in one MCAS, so the
    tail can never lag -- the helping policy replaces the MS "help swing"
    path entirely.  Node layout: ``[value, next]`` with ``next`` managed.
    """

    def __init__(self, machine: Machine, *, helping: str = "aware",
                 help_slice: int = 64) -> None:
        self.machine = machine
        self.mc = Mcas(machine, helping=helping, help_slice=help_slice)
        dummy = machine.alloc.alloc_words(2, label="queue.node")
        machine.write_init(dummy + VALUE_OFF, NIL)
        machine.write_init(dummy + NEXT_OFF, managed_word(NIL))
        self.head = machine.alloc_var(managed_word(dummy),
                                      label="queue.head")
        self.tail = machine.alloc_var(managed_word(dummy),
                                      label="queue.tail")
        self.count = machine.alloc_var(managed_word(0), label="queue.count")

    def prefill(self, values) -> None:
        """Enqueue ``values`` directly (no traffic); call before run."""
        m = self.machine
        n = 0
        for v in values:
            node = m.alloc.alloc_words(2, label="queue.node")
            m.write_init(node + VALUE_OFF, v)
            m.write_init(node + NEXT_OFF, managed_word(NIL))
            last = m.peek(self.tail)[0]
            lc = m.peek(last + NEXT_OFF)
            m.write_init(last + NEXT_OFF, (node, lc[1] + 1))
            tc = m.peek(self.tail)
            m.write_init(self.tail, (node, tc[1] + 1))
            n += 1
        cc = m.peek(self.count)
        m.write_init(self.count, (cc[0] + n, cc[1]))

    def enqueue(self, ctx: Ctx, value: Any) -> Generator:
        w = ctx.alloc_cached(2, [value, managed_word(NIL)],
                             label="queue.node")
        while True:
            tc = yield from self.mc.read_word(ctx, self.tail)
            t = tc[0]
            nc = yield from self.mc.read_word(ctx, t + NEXT_OFF)
            if nc[0] != NIL:
                continue                      # raced: re-read the new tail
            cc = yield from self.mc.read_word(ctx, self.count)
            ok = yield from self.mc.mcas(ctx, [
                (self.tail, tc, (w, tc[1] + 1)),
                (t + NEXT_OFF, nc, (w, nc[1] + 1)),
                (self.count, cc, (cc[0] + 1, cc[1] + 1))])
            if ok:
                return

    def dequeue(self, ctx: Ctx) -> Generator[Any, Any, Any]:
        """Dequeue and return the oldest value, or None if empty."""
        while True:
            hc = yield from self.mc.read_word(ctx, self.head)
            h = hc[0]
            nc = yield from self.mc.read_word(ctx, h + NEXT_OFF)
            n = nc[0]
            if n == NIL:
                # next never un-sets, so h was still the head when we read
                # NIL: the queue was empty at that instant.
                return None
            ret = yield Load(n + VALUE_OFF)
            cc = yield from self.mc.read_word(ctx, self.count)
            ok = yield from self.mc.mcas(ctx, [
                (self.head, hc, (n, hc[1] + 1)),
                (self.count, cc, (cc[0] - 1, cc[1] + 1))])
            if ok:
                return ret

    def drain_direct(self) -> list[Any]:
        """Walk the queue in the backing store (test helper)."""
        m = self.machine
        out = []
        node = m.peek(m.peek(self.head)[0] + NEXT_OFF)[0]
        while node != NIL:
            out.append(m.peek(node + VALUE_OFF))
            node = m.peek(node + NEXT_OFF)[0]
        return out

    def update_worker(self, ctx: Ctx, ops: int,
                      local_work: int = 30) -> Generator:
        """100%-update benchmark body mirroring MichaelScottQueue's."""
        for i in range(ops):
            start = ctx.machine.now
            if i % 2 == 0:
                value = (ctx.tid << 32) | i
                yield from self.enqueue(ctx, value)
                ctx.note_op("enqueue", (value,), None, start)
            else:
                taken = yield from self.dequeue(ctx)
                ctx.note_op("dequeue", (), taken, start)
            if local_work:
                yield Work(local_work)

    def stats(self) -> dict[str, int]:
        return self.mc.stats()
