"""Open-loop traffic source: per-core lanes with bounded admission queues.

A :class:`TrafficSource` owns one :class:`Lane` per core.  Each lane
merges ``tenants`` independent arrival streams (each with its own seeded
RNG, arrival process, and key distribution) into a bounded admission
queue; the lane's worker *pulls* admitted ops instead of self-pacing.
An arrival that finds the queue full is **shed**: counted, traced as an
``OpShed`` event, never executed -- exactly what a production admission
controller does under overload.

Determinism contract (what makes the identity checks in
``bench tail_latency`` / ``examples/traffic_identity.py`` possible):
lanes are mutated *only* from inside thread generator bodies, and every
input to that mutation is either the machine clock at the poll site, a
replayed yield value, or the lane's private RNGs.  Checkpoint replay
re-executes the same polls at the same clock values, so lane state --
queues, RNG streams, histograms, shed counts -- reconstructs
bit-identically without being serialized.

Lane protocol (see :mod:`repro.traffic.workers`)::

    item = lane.poll(ctx)
    #  (enqueue_cycle, tenant, key)  -> run this op, then lane.complete(...)
    #  int n                         -> idle: yield Work(n), poll again
    #  None                          -> streams dry and queue empty: stop

Latency is ``complete_cycle - enqueue_cycle`` where the enqueue cycle is
the op's *intended arrival time* -- the queue-wait is part of the number,
which is the whole coordinated-omission point.
"""

from __future__ import annotations

import random
from collections import deque

from ..stats.latency import LatencyHistogram
from .arrivals import make_arrivals
from .spec import TrafficSpec, parse_traffic_spec

__all__ = ["TrafficSource", "Lane", "evaluate_slo"]

#: Stream-RNG seed mixing: distinct from the per-thread Ctx stream
#: (``(seed << 20) ^ (tid + 1)``) so traffic draws never collide with
#: workload-body draws, and distinct per (lane, tenant).
_LANE_MIX = 0x9E3779B1
_TENANT_MIX = 0x85EBCA77


def _make_keys(spec: TrafficSpec, key_range: int):
    # Imported here, not at module level: repro.workloads imports this
    # package for its open-loop driver variants.
    from ..workloads.generators import HotSetKeys, UniformKeys, ZipfKeys
    if spec.keys == "zipf":
        return ZipfKeys(key_range, spec.zipf_s)
    if spec.keys == "hotset":
        return HotSetKeys(key_range, frac=spec.hot_frac,
                          size=spec.hot_size, shift_every=spec.hot_shift)
    return UniformKeys(key_range)


class _Stream:
    """One tenant's arrival stream on one lane."""

    __slots__ = ("tenant", "rng", "arrivals", "keys", "remaining", "pending")

    def __init__(self, spec: TrafficSpec, *, seed: int, lane: int,
                 tenant: int, key_range: int, ops: int) -> None:
        self.tenant = tenant
        self.rng = random.Random(
            (seed << 24) ^ (lane * _LANE_MIX) ^ (tenant * _TENANT_MIX)
            ^ 0x7F4A7C15)
        self.arrivals = make_arrivals(spec, self.rng)
        self.keys = _make_keys(spec, key_range)
        self.remaining = ops
        #: next undelivered arrival as (cycle, key), or None when dry.
        self.pending: tuple[int, int] | None = None
        self.advance()

    def advance(self) -> None:
        if self.remaining <= 0:
            self.pending = None
            return
        self.remaining -= 1
        t = self.arrivals.next_arrival()
        key = self.keys.sample(self.rng)
        self.pending = (t, key)


class Lane:
    """One core's admission queue fed by that core's tenant streams."""

    __slots__ = ("depth", "queue", "hist", "admitted", "shed", "streams")

    def __init__(self, spec: TrafficSpec, *, seed: int, lane: int,
                 key_range: int, ops: int) -> None:
        self.depth = spec.queue_depth
        self.queue: deque[tuple[int, int, int]] = deque()
        self.hist = LatencyHistogram()
        self.admitted = 0
        self.shed = 0
        self.streams = [
            _Stream(spec, seed=seed, lane=lane, tenant=t,
                    key_range=key_range, ops=ops)
            for t in range(spec.tenants)
        ]

    def _admit_up_to(self, now: int, trace, core_id: int) -> None:
        """Admit (or shed) every arrival at or before ``now``, in global
        (cycle, tenant) order so multi-tenant merges are deterministic."""
        while True:
            best = None
            for s in self.streams:
                if s.pending is not None and s.pending[0] <= now:
                    if best is None or ((s.pending[0], s.tenant)
                                        < (best.pending[0], best.tenant)):
                        best = s
            if best is None:
                return
            t_arrive, key = best.pending
            if len(self.queue) < self.depth:
                self.queue.append((t_arrive, best.tenant, key))
                self.admitted += 1
                trace.op_admitted(core_id, best.tenant, len(self.queue))
            else:
                self.shed += 1
                trace.op_shed(core_id, best.tenant)
            best.advance()

    def poll(self, ctx):
        """Next admitted op, a wait hint, or None when the lane is done.

        Returns ``(enqueue_cycle, tenant, key)`` when an op is ready,
        an ``int`` count of cycles until the next possible arrival when
        the queue is empty but streams remain, or ``None`` when every
        stream is dry and the queue is drained.
        """
        now = ctx.machine.now
        self._admit_up_to(now, ctx.machine.trace, ctx.core_id)
        if self.queue:
            return self.queue.popleft()
        nxt = None
        for s in self.streams:
            if s.pending is not None and (nxt is None or s.pending[0] < nxt):
                nxt = s.pending[0]
        if nxt is None:
            return None
        return max(1, nxt - now)

    def complete(self, enqueue_cycle: int, now: int) -> None:
        """Record one op's enqueue->complete latency."""
        self.hist.record(now - enqueue_cycle)


class TrafficSource:
    """All lanes of one open-loop run, plus run-level accounting."""

    def __init__(self, spec: TrafficSpec | str, *, num_lanes: int, seed: int,
                 key_range: int = 1, default_ops: int = 16) -> None:
        if isinstance(spec, str):
            spec = parse_traffic_spec(spec)
        if spec.empty:
            raise ValueError("TrafficSource needs a non-empty TrafficSpec")
        self.spec = spec
        ops = spec.ops or default_ops
        self.lanes = [
            Lane(spec, seed=seed, lane=i, key_range=key_range, ops=ops)
            for i in range(num_lanes)
        ]

    def lane(self, i: int) -> Lane:
        return self.lanes[i]

    @property
    def admitted(self) -> int:
        return sum(lane.admitted for lane in self.lanes)

    @property
    def shed(self) -> int:
        return sum(lane.shed for lane in self.lanes)

    def histogram(self) -> LatencyHistogram:
        """All lanes' latencies merged into one histogram."""
        merged = LatencyHistogram()
        for lane in self.lanes:
            merged.merge(lane.hist)
        return merged

    def summary(self) -> dict:
        """The latency payload attached to ``RunResult.latency``."""
        hist = self.histogram()
        offered = self.admitted + self.shed
        shed_frac = self.shed / offered if offered else 0.0
        out: dict = {
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_frac": shed_frac,
            "mean": hist.mean,
        }
        out.update(hist.percentiles())
        out["slo"] = evaluate_slo(self.spec, hist, shed_frac)
        out["hist"] = hist.state_dict()
        return out


def evaluate_slo(spec: TrafficSpec, hist: LatencyHistogram,
                 shed_frac: float) -> str:
    """``pass``/``fail`` against the spec's SLO clause, ``n/a`` without
    one.  Every stated bound must hold; an empty histogram (everything
    shed) fails any latency bound."""
    if not spec.has_slo:
        return "n/a"
    if spec.slo_p99 is not None:
        p99 = hist.percentile(0.99)
        if p99 is None or p99 > spec.slo_p99:
            return "fail"
    if spec.slo_p999 is not None:
        p999 = hist.percentile(0.999)
        if p999 is None or p999 > spec.slo_p999:
            return "fail"
    if spec.slo_shed is not None and shed_frac > spec.slo_shed:
        return "fail"
    return "pass"
