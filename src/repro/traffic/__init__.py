"""Open-loop traffic generation for the deterministic engine.

Closed-loop drivers (every thread issues its next op when the previous
one completes) understate contention collapse: a real service's arrival
rate doesn't slow down because the lock got hot.  This package layers
open-loop load on the existing engine -- seeded arrival processes feed
bounded per-core admission queues, workers pull admitted ops, overflow
is shed -- and measures what open-loop measures best: enqueue->complete
latency percentiles and SLO verdicts.

* :mod:`~repro.traffic.spec` -- the strict ``--traffic`` grammar.
* :mod:`~repro.traffic.arrivals` -- Poisson / bursty / diurnal-ramp
  arrival processes on seeded per-stream RNGs.
* :mod:`~repro.traffic.source` -- per-core lanes, bounded admission,
  shed accounting, latency histograms, SLO evaluation.
* :mod:`~repro.traffic.workers` -- open-loop worker bodies for the
  counter, Treiber stack, and search structures.
"""

from .source import Lane, TrafficSource, evaluate_slo
from .spec import TrafficSpec, parse_traffic_spec
from .workers import (op_for_key, traffic_counter_worker,
                      traffic_search_worker, traffic_stack_worker)

__all__ = [
    "Lane",
    "TrafficSource",
    "TrafficSpec",
    "evaluate_slo",
    "op_for_key",
    "parse_traffic_spec",
    "traffic_counter_worker",
    "traffic_search_worker",
    "traffic_stack_worker",
]
