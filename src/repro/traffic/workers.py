"""Open-loop worker bodies: pull admitted ops from a lane, never self-pace.

These mirror the closed-loop ``update_worker``/``mixed_worker`` bodies on
the same structures, with the loop inverted: instead of issuing ``ops``
back-to-back operations, each body polls its :class:`~repro.traffic.
source.Lane` and runs whatever the arrival process admitted.  While the
queue is empty the worker idles (``Work`` for the lane's wait hint); when
every stream is dry and the queue drained, it exits.

Every op still goes through ``ctx.note_op`` with its arguments and
result, so open-loop histories stay checkable by the linearizability
checker (``check counter/treiber --traffic ...``), and records its
enqueue->complete latency into the lane histogram.
"""

from __future__ import annotations

from typing import Any, Generator

from ..core.isa import Work
from ..core.thread import Ctx

__all__ = ["traffic_counter_worker", "traffic_stack_worker",
           "traffic_search_worker", "op_for_key"]


def op_for_key(key: int, tenant: int, update_pct: int) -> str:
    """Deterministic op choice for an admitted (key, tenant) pair.

    Open-loop ops can't roll the worker's RNG (admission order depends
    on the arrival merge, and the mix must be a property of the *offered
    load*, not of which core served it), so the roll is a hash of the
    op's own identity.  Mix matches :func:`~repro.workloads.generators.
    op_mix`: ceil(pct/2) inserts, floor(pct/2) deletes, rest searches.
    """
    roll = (key * 1103515245 + tenant * 12345 + 12821) % 100
    if roll < (update_pct + 1) // 2:
        return "insert"
    if roll < update_pct:
        return "delete"
    return "contains"


def traffic_counter_worker(ctx: Ctx, counter, lane) -> Generator:
    """Open-loop counterpart of ``LockedCounter.update_worker``: every
    admitted op is one lock-protected increment (keys only steer the
    arrival process here; a counter has a single word)."""
    while True:
        item = lane.poll(ctx)
        if item is None:
            return
        if isinstance(item, int):
            yield Work(item)
            continue
        enqueued, _tenant, _key = item
        start = ctx.machine.now
        before = yield from counter.increment(ctx)
        lane.complete(enqueued, ctx.machine.now)
        ctx.note_op("inc", (), before, start)


def traffic_stack_worker(ctx: Ctx, stack, lane) -> Generator:
    """Open-loop counterpart of ``TreiberStack.update_worker``: even keys
    push (values unique per (tid, sequence) so histories stay checkable),
    odd keys pop."""
    seq = 0
    while True:
        item = lane.poll(ctx)
        if item is None:
            return
        if isinstance(item, int):
            yield Work(item)
            continue
        enqueued, _tenant, key = item
        start = ctx.machine.now
        if key % 2 == 0:
            value = (ctx.tid << 32) | seq
            seq += 1
            yield from stack.push(ctx, value)
            lane.complete(enqueued, ctx.machine.now)
            ctx.note_op("push", (value,), None, start)
        else:
            popped = yield from stack.pop(ctx)
            lane.complete(enqueued, ctx.machine.now)
            ctx.note_op("pop", (), popped, start)


def traffic_search_worker(ctx: Ctx, structure, lane,
                          update_pct: int = 20) -> Generator:
    """Open-loop counterpart of ``mixed_worker`` for the Section 7 search
    structures: the admitted key is the operation's key, the op kind is
    hashed from it (see :func:`op_for_key`)."""
    while True:
        item = lane.poll(ctx)
        if item is None:
            return
        if isinstance(item, int):
            yield Work(item)
            continue
        enqueued, tenant, key = item
        op = op_for_key(key, tenant, update_pct)
        start = ctx.machine.now
        if op == "insert":
            added = yield from structure.insert(ctx, key)
            result: Any = added
        elif op == "delete":
            result = yield from structure.delete(ctx, key)
        else:
            result = yield from structure.contains(ctx, key)
        lane.complete(enqueued, ctx.machine.now)
        ctx.note_op(op, (key,), result, start)
