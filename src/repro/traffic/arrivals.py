"""Seeded arrival processes: successive absolute arrival cycles.

Each open-loop stream owns one arrival process driven by the stream's
private RNG, so arrival times are a pure function of (spec, seed, lane,
tenant) -- independent of scheduling, engine, or how late the consuming
worker polls.  That independence is what makes open-loop latency honest:
an op's latency clock starts at its *intended* arrival time even if the
worker was wedged behind a contended lock when it arrived (the
coordinated-omission correction; see DESIGN.md).

Rates are given in ops per kilocycle; gaps are drawn in float cycles and
rounded to integers (min 1 cycle) so every downstream consumer stays in
the simulator's integer-cycle domain.
"""

from __future__ import annotations

import math
import random

from .spec import TrafficSpec

__all__ = ["make_arrivals"]

#: Floor on the instantaneous ramp rate as a fraction of the nominal
#: rate, so the trough of the sinusoid never divides by ~zero.
_RAMP_FLOOR = 0.05


class PoissonArrivals:
    """Memoryless arrivals: exponential gaps with mean ``1000/rate``."""

    __slots__ = ("rng", "rate_per_cycle", "t")

    def __init__(self, rng: random.Random, rate_per_kcycle: float) -> None:
        self.rng = rng
        self.rate_per_cycle = rate_per_kcycle / 1000.0
        self.t = 0

    def next_arrival(self) -> int:
        gap = self.rng.expovariate(self.rate_per_cycle)
        self.t += max(1, round(gap))
        return self.t


class BurstArrivals:
    """On-off arrivals: Poisson at ``rate`` inside each ``on`` window,
    silent for ``off``.  A gap landing in an off window slides to the
    start of the next on window (no extra RNG draw, so the draw sequence
    stays aligned with the admitted-op sequence)."""

    __slots__ = ("rng", "rate_per_cycle", "on", "period", "t")

    def __init__(self, rng: random.Random, rate_per_kcycle: float,
                 on_cycles: int, off_cycles: int) -> None:
        self.rng = rng
        self.rate_per_cycle = rate_per_kcycle / 1000.0
        self.on = on_cycles
        self.period = on_cycles + off_cycles
        self.t = 0

    def next_arrival(self) -> int:
        gap = self.rng.expovariate(self.rate_per_cycle)
        t = self.t + max(1, round(gap))
        phase = t % self.period
        if phase >= self.on:
            t += self.period - phase
        self.t = t
        return t


class RampArrivals:
    """Diurnal ramp: a sinusoid of period ``period`` modulates the
    instantaneous rate between ~0 and ``2*rate`` (time-averaged mean
    ``rate``); the gap is an exponential draw at the rate in effect when
    the previous op arrived (a standard thinning-free approximation that
    keeps one RNG draw per arrival)."""

    __slots__ = ("rng", "rate_per_cycle", "period", "t")

    def __init__(self, rng: random.Random, rate_per_kcycle: float,
                 period: int) -> None:
        self.rng = rng
        self.rate_per_cycle = rate_per_kcycle / 1000.0
        self.period = period
        self.t = 0

    def next_arrival(self) -> int:
        phase = (self.t % self.period) / self.period
        rate = self.rate_per_cycle * (1.0 + math.sin(2.0 * math.pi * phase))
        rate = max(rate, self.rate_per_cycle * _RAMP_FLOOR)
        gap = self.rng.expovariate(rate)
        self.t += max(1, round(gap))
        return self.t


def make_arrivals(spec: TrafficSpec, rng: random.Random):
    """Build the arrival process a spec names, on the stream's RNG."""
    if spec.arrival == "poisson":
        return PoissonArrivals(rng, spec.rate)
    if spec.arrival == "burst":
        return BurstArrivals(rng, spec.rate, spec.on_cycles, spec.off_cycles)
    if spec.arrival == "ramp":
        return RampArrivals(rng, spec.rate, spec.period)
    raise ValueError(f"spec has no arrival process: {spec!r}")
