"""Traffic-spec grammar: parse ``--traffic`` strings into a frozen spec.

A spec is one arrival clause plus optional key-distribution, tenancy,
queue, volume, and SLO clauses.  Clauses may be separated by ``;`` or
``,`` -- the YCSB-style one-liner from the roadmap parses as written::

    poisson:rate=2.0,zipf:s=1.2,tenants=2
    burst:rate=4,on=3000,off=9000;hotset:frac=0.9,size=8,shift=64;queue=8
    ramp:rate=1.5,period=40000;slo:p99=2500,shed=0.01

Tokens therefore bind to the nearest clause on their left: ``rate=2.0``
belongs to ``poisson``, ``s=1.2`` to ``zipf``.  A token whose head names
a clause starts that clause.

Clauses
-------

``poisson:rate=<ops/kcycle>``
    Memoryless arrivals; inter-arrival gaps are exponential draws with
    mean ``1000/rate`` cycles (rounded to >= 1 cycle).

``burst:rate=<ops/kcycle>,on=<cycles>,off=<cycles>``
    On-off (bursty) arrivals: Poisson at ``rate`` during each ``on``
    window, silent for each ``off`` window.

``ramp:rate=<ops/kcycle>,period=<cycles>``
    Diurnal ramp: a full sinusoid of period ``period`` modulates the
    instantaneous rate between ~0 and ``2*rate`` (mean ``rate``).

``uniform`` / ``zipf:s=<exp>`` / ``hotset:frac=<p>,size=<n>[,shift=<k>]``
    Key selection (default ``uniform``): the existing
    :class:`~repro.workloads.generators.UniformKeys` / ``ZipfKeys``
    distributions, or the hot-set-shifting distribution where a ``frac``
    share of draws hits a window of ``size`` keys that slides after
    every ``shift`` draws (default 256).

``tenants=<n>``
    Independent arrival streams per core (default 1), each with its own
    seeded RNG; ops are tagged with their tenant id in trace events.

``queue=<depth>`` (also ``queue:depth=<n>``)
    Bounded admission queue per core (default 16).  An arrival that
    finds its queue full is *shed*: counted, traced, never executed.

``ops=<n>``
    Arrivals generated per stream before it dries up (default: the
    driver's ``ops_per_thread``).

``slo:[p99=<cycles>][,p999=<cycles>][,shed=<frac>]``
    Service-level objective.  The run verdict is ``pass`` iff every
    stated bound holds (p99/p999 latency at or under the bound, shed
    fraction at or under ``shed``); without this clause the verdict is
    ``n/a``.

The parse is strict: unknown clause names, malformed parameters, and
out-of-range values raise :class:`~repro.errors.ConfigError` so a typo'd
``--traffic`` flag fails fast instead of silently free-running.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import ConfigError
from ..faults.spec import _parse_int as _fault_parse_int
from ..faults.spec import _parse_prob as _fault_parse_prob

__all__ = ["TrafficSpec", "parse_traffic_spec"]

#: Default bounded admission-queue depth per core.
DEFAULT_QUEUE_DEPTH = 16

#: Default hot-set slide interval (draws between shifts).
DEFAULT_HOTSET_SHIFT = 256

_ARRIVALS = ("poisson", "burst", "ramp")
_KEYS = ("uniform", "zipf", "hotset")
_SCALARS = ("tenants", "queue", "ops")
_CLAUSES = _ARRIVALS + _KEYS + _SCALARS + ("slo",)


@dataclass(frozen=True)
class TrafficSpec:
    """Parsed, validated open-loop traffic parameters (the *what*; the
    seeded :class:`~repro.traffic.source.TrafficSource` is the *when*)."""

    #: the original spec string, verbatim (travels in experiment kwargs
    #: and repro-check files so sources can be rebuilt anywhere).
    raw: str = ""
    arrival: str = ""                 # "", "poisson", "burst", "ramp"
    rate: float = 0.0                 # ops per kilocycle, per stream
    on_cycles: int = 0
    off_cycles: int = 0
    period: int = 0
    keys: str = "uniform"
    zipf_s: float = 0.0
    hot_frac: float = 0.0
    hot_size: int = 0
    hot_shift: int = DEFAULT_HOTSET_SHIFT
    tenants: int = 1
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    ops: int = 0                      # 0 -> driver's ops_per_thread
    slo_p99: int | None = None
    slo_p999: int | None = None
    slo_shed: float | None = None

    @property
    def empty(self) -> bool:
        return self.arrival == ""

    @property
    def has_slo(self) -> bool:
        return (self.slo_p99 is not None or self.slo_p999 is not None
                or self.slo_shed is not None)


def _parse_int(clause: str, key: str, value: str, *, min_val: int = 0) -> int:
    # The fault-spec helpers carry the wrong family name in their error
    # prefix; re-raise with ours so a typo'd --traffic never reports
    # itself as a fault-spec problem.
    try:
        return _fault_parse_int(clause, key, value, min_val=min_val)
    except ConfigError as err:
        raise ConfigError(str(err).replace("fault spec:", "traffic spec:", 1))


def _parse_prob(clause: str, key: str, value: str) -> float:
    try:
        return _fault_parse_prob(clause, key, value)
    except ConfigError as err:
        raise ConfigError(str(err).replace("fault spec:", "traffic spec:", 1))


def _parse_rate(clause: str, value: str) -> float:
    try:
        r = float(value)
    except ValueError:
        raise ConfigError(
            f"traffic spec: {clause}: rate must be a float, got {value!r}")
    if r <= 0.0:
        raise ConfigError(
            f"traffic spec: {clause}: rate={r} must be > 0 (ops/kcycle)")
    return r


def _params(clause: str, parts: list[str],
            allowed: tuple[str, ...]) -> dict[str, str]:
    params: dict[str, str] = {}
    for part in parts:
        if "=" not in part:
            raise ConfigError(
                f"traffic spec: {clause}: expected key=value, got {part!r}")
        key, _, value = part.partition("=")
        key = key.strip()
        if key not in allowed:
            raise ConfigError(
                f"traffic spec: {clause}: unknown parameter {key!r} "
                f"(allowed: {', '.join(allowed) or 'none'})")
        if key in params:
            raise ConfigError(f"traffic spec: {clause}: duplicate {key!r}")
        params[key] = value.strip()
    return params


def _group_clauses(spec: str) -> list[tuple[str, str, list[str]]]:
    """Split a spec into ``(name, head_token, param_tokens)`` groups.

    Both ``;`` and ``,`` separate tokens; a token starts a new clause
    when its head (text before ``:`` or ``=``) names one, otherwise it
    is a parameter of the clause to its left.
    """
    groups: list[tuple[str, str, list[str]]] = []
    for token in re.split(r"[;,]", spec):
        token = token.strip()
        if not token:
            continue
        head = re.split(r"[:=]", token, maxsplit=1)[0].strip()
        if head in _CLAUSES:
            groups.append((head, token, []))
        elif groups:
            groups[-1][2].append(token)
        else:
            raise ConfigError(
                f"traffic spec: unknown clause {head!r} "
                f"(known: {', '.join(_CLAUSES)})")
    return groups


def parse_traffic_spec(spec: str) -> TrafficSpec:
    """Parse a ``--traffic`` spec string.  An empty/whitespace string
    yields an empty spec (``TrafficSpec.empty`` is true -> drivers run
    their usual closed loop, bit-identical to a traffic-free build)."""
    spec = (spec or "").strip()
    fields: dict = {"raw": spec}
    seen_arrival = seen_keys = False
    seen: set[str] = set()
    for name, head_token, extra in _group_clauses(spec):
        # Canonical clause text for error messages.
        clause = head_token if not extra else f"{head_token},{','.join(extra)}"
        if name in seen:
            raise ConfigError(f"traffic spec: duplicate clause {name!r}")
        seen.add(name)
        # Split the head token into its own leading parameter (if any).
        _, colon, body = head_token.partition(":")
        body = body.strip()
        parts = ([body] if body else []) + extra
        if name in _ARRIVALS:
            if seen_arrival:
                raise ConfigError(
                    f"traffic spec: {clause}: second arrival clause "
                    f"(already have {fields['arrival']!r})")
            seen_arrival = True
            fields["arrival"] = name
            if name == "poisson":
                params = _params(clause, parts, ("rate",))
                if "rate" not in params:
                    raise ConfigError(
                        f"traffic spec: {clause}: needs rate=<ops/kcycle>")
                fields["rate"] = _parse_rate(clause, params["rate"])
            elif name == "burst":
                params = _params(clause, parts, ("rate", "on", "off"))
                if not {"rate", "on", "off"} <= params.keys():
                    raise ConfigError(
                        f"traffic spec: {clause}: needs rate=<ops/kcycle>,"
                        "on=<cycles>,off=<cycles>")
                fields["rate"] = _parse_rate(clause, params["rate"])
                fields["on_cycles"] = _parse_int(
                    clause, "on", params["on"], min_val=1)
                fields["off_cycles"] = _parse_int(
                    clause, "off", params["off"], min_val=1)
            else:  # ramp
                params = _params(clause, parts, ("rate", "period"))
                if not {"rate", "period"} <= params.keys():
                    raise ConfigError(
                        f"traffic spec: {clause}: needs rate=<ops/kcycle>,"
                        "period=<cycles>")
                fields["rate"] = _parse_rate(clause, params["rate"])
                fields["period"] = _parse_int(
                    clause, "period", params["period"], min_val=2)
        elif name in _KEYS:
            if seen_keys:
                raise ConfigError(
                    f"traffic spec: {clause}: second key clause "
                    f"(already have {fields['keys']!r})")
            seen_keys = True
            fields["keys"] = name
            if name == "uniform":
                _params(clause, parts, ())
            elif name == "zipf":
                params = _params(clause, parts, ("s",))
                if "s" not in params:
                    raise ConfigError(
                        f"traffic spec: {clause}: needs s=<exponent>")
                try:
                    s = float(params["s"])
                except ValueError:
                    raise ConfigError(
                        f"traffic spec: {clause}: s must be a float, "
                        f"got {params['s']!r}")
                if s < 0:
                    raise ConfigError(
                        f"traffic spec: {clause}: s={s} must be >= 0")
                fields["zipf_s"] = s
            else:  # hotset
                params = _params(clause, parts, ("frac", "size", "shift"))
                if not {"frac", "size"} <= params.keys():
                    raise ConfigError(
                        f"traffic spec: {clause}: needs frac=<prob>,"
                        "size=<keys>")
                fields["hot_frac"] = _parse_prob(clause, "frac",
                                                 params["frac"])
                fields["hot_size"] = _parse_int(
                    clause, "size", params["size"], min_val=1)
                if "shift" in params:
                    fields["hot_shift"] = _parse_int(
                        clause, "shift", params["shift"], min_val=1)
        elif name in _SCALARS:
            # Accept both tenants=2 and tenants:2 / queue:depth=8.
            if not colon and "=" in head_token:
                parts = [head_token]
            value: str | None = None
            if len(parts) == 1 and "=" in parts[0]:
                key, _, val = parts[0].partition("=")
                key = key.strip()
                if key in (name, "depth" if name == "queue" else name):
                    value = val.strip()
            if value is None and len(parts) == 1 and "=" not in parts[0]:
                value = parts[0]
            if value is None:
                raise ConfigError(
                    f"traffic spec: {clause}: expected {name}=<int>")
            field_name = {"tenants": "tenants", "queue": "queue_depth",
                          "ops": "ops"}[name]
            fields[field_name] = _parse_int(
                clause, name, value, min_val=1)
        else:  # slo
            params = _params(clause, parts, ("p99", "p999", "shed"))
            if not params:
                raise ConfigError(
                    f"traffic spec: {clause}: needs at least one of "
                    "p99=<cycles>, p999=<cycles>, shed=<frac>")
            if "p99" in params:
                fields["slo_p99"] = _parse_int(
                    clause, "p99", params["p99"], min_val=1)
            if "p999" in params:
                fields["slo_p999"] = _parse_int(
                    clause, "p999", params["p999"], min_val=1)
            if "shed" in params:
                fields["slo_shed"] = _parse_prob(
                    clause, "shed", params["shed"])
    if spec and not seen_arrival:
        raise ConfigError(
            "traffic spec: needs an arrival clause "
            f"({', '.join(_ARRIVALS)})")
    return TrafficSpec(**fields)
