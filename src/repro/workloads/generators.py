"""Key-distribution generators for workload drivers.

The paper's low-contention experiments use *uniform random keys*; a bounded
Zipf option is provided to explore skew (skewed keys concentrate traffic on
a few nodes and re-introduce contention, which is a useful knob when
studying where leases start to matter in search structures).
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Iterator


class UniformKeys:
    """Uniform keys over ``range(key_range)``."""

    def __init__(self, key_range: int) -> None:
        if key_range <= 0:
            raise ValueError("key_range must be positive")
        self.key_range = key_range

    def sample(self, rng: random.Random) -> int:
        return rng.randrange(self.key_range)


class ZipfKeys:
    """Bounded Zipf(s) keys over ``range(key_range)`` via inverse-CDF.

    ``s=0`` degenerates to uniform; larger ``s`` concentrates probability
    on small keys.  The CDF is precomputed once, so sampling is
    O(log key_range).
    """

    def __init__(self, key_range: int, s: float = 1.0) -> None:
        if key_range <= 0:
            raise ValueError("key_range must be positive")
        if s < 0:
            raise ValueError("zipf exponent must be >= 0")
        self.key_range = key_range
        self.s = s
        weights = [1.0 / (k + 1) ** s for k in range(key_range)]
        total = sum(weights)
        self._cdf = list(itertools.accumulate(w / total for w in weights))
        self._cdf[-1] = 1.0   # guard against float drift

    def sample(self, rng: random.Random) -> int:
        return bisect.bisect_left(self._cdf, rng.random())


class HotSetKeys:
    """Hot-set-shifting keys: a ``frac`` share of draws lands in a window
    of ``size`` consecutive keys that slides by ``size`` after every
    ``shift_every`` draws (wrapping mod ``key_range``); the rest are
    uniform over the whole range.

    This models popularity churn -- "the hot key moved" -- the open-loop
    traffic scenario the ROADMAP asks about.  The instance is *stateful*
    (it counts its own draws to know the current window), so give each
    arrival stream its own instance; for a fixed draw sequence the key
    sequence is deterministic.
    """

    def __init__(self, key_range: int, *, frac: float = 0.9, size: int = 8,
                 shift_every: int = 256) -> None:
        if key_range <= 0:
            raise ValueError("key_range must be positive")
        if not 0.0 <= frac <= 1.0:
            raise ValueError("hot fraction must be in [0, 1]")
        if size <= 0 or shift_every <= 0:
            raise ValueError("hot-set size and shift interval must be "
                             "positive")
        self.key_range = key_range
        self.frac = frac
        self.size = min(size, key_range)
        self.shift_every = shift_every
        self._drawn = 0

    def sample(self, rng: random.Random) -> int:
        base = (self._drawn // self.shift_every) * self.size % self.key_range
        self._drawn += 1
        if rng.random() < self.frac:
            return (base + rng.randrange(self.size)) % self.key_range
        return rng.randrange(self.key_range)


def op_mix(rng: random.Random, update_pct: int) -> str:
    """Draw one operation from the paper's mix: ``update_pct`` percent
    updates split between inserts and deletes, the rest searches.

    An odd ``update_pct`` cannot split evenly; the extra percentage
    point goes to inserts (``ceil(pct/2)`` inserts, ``floor(pct/2)``
    deletes), so ``update_pct=5`` means exactly 3% inserts / 2% deletes
    -- deterministic, not rounded differently per call site.
    """
    roll = rng.randrange(100)
    if roll < (update_pct + 1) // 2:
        return "insert"
    if roll < update_pct:
        return "delete"
    return "contains"


def key_stream(dist, rng: random.Random) -> Iterator[int]:
    """Infinite stream of keys from a distribution."""
    while True:
        yield dist.sample(rng)
