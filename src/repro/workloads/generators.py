"""Key-distribution generators for workload drivers.

The paper's low-contention experiments use *uniform random keys*; a bounded
Zipf option is provided to explore skew (skewed keys concentrate traffic on
a few nodes and re-introduce contention, which is a useful knob when
studying where leases start to matter in search structures).
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Iterator


class UniformKeys:
    """Uniform keys over ``range(key_range)``."""

    def __init__(self, key_range: int) -> None:
        if key_range <= 0:
            raise ValueError("key_range must be positive")
        self.key_range = key_range

    def sample(self, rng: random.Random) -> int:
        return rng.randrange(self.key_range)


class ZipfKeys:
    """Bounded Zipf(s) keys over ``range(key_range)`` via inverse-CDF.

    ``s=0`` degenerates to uniform; larger ``s`` concentrates probability
    on small keys.  The CDF is precomputed once, so sampling is
    O(log key_range).
    """

    def __init__(self, key_range: int, s: float = 1.0) -> None:
        if key_range <= 0:
            raise ValueError("key_range must be positive")
        if s < 0:
            raise ValueError("zipf exponent must be >= 0")
        self.key_range = key_range
        self.s = s
        weights = [1.0 / (k + 1) ** s for k in range(key_range)]
        total = sum(weights)
        self._cdf = list(itertools.accumulate(w / total for w in weights))
        self._cdf[-1] = 1.0   # guard against float drift

    def sample(self, rng: random.Random) -> int:
        return bisect.bisect_left(self._cdf, rng.random())


def op_mix(rng: random.Random, update_pct: int) -> str:
    """Draw one operation from the paper's mix: ``update_pct``/2 inserts,
    ``update_pct``/2 deletes, the rest searches."""
    roll = rng.randrange(100)
    if roll < update_pct // 2:
        return "insert"
    if roll < update_pct:
        return "delete"
    return "contains"


def key_stream(dist, rng: random.Random) -> Iterator[int]:
    """Infinite stream of keys from a distribution."""
    while True:
        yield dist.sample(rng)
