"""Benchmark workload drivers: one entry point per paper benchmark."""

from .driver import (bench_counter, bench_hashtable, bench_harris_list,
                     bench_bst, bench_skiplist, bench_multiqueue,
                     bench_pagerank, bench_pq, bench_queue, bench_snapshot,
                     bench_stack, bench_sync_ablation, bench_tl2,
                     SYNC_POLICIES, SYNC_STRUCTURES)

__all__ = [
    "bench_stack", "bench_queue", "bench_counter", "bench_pq",
    "bench_multiqueue", "bench_tl2", "bench_pagerank", "bench_snapshot",
    "bench_harris_list", "bench_skiplist", "bench_hashtable", "bench_bst",
    "bench_sync_ablation", "SYNC_POLICIES", "SYNC_STRUCTURES",
]
