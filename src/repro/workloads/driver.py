"""One driver function per benchmark in the paper's evaluation.

Every driver builds a fresh :class:`~repro.core.machine.Machine` from a
(possibly customized) config, constructs the structure under test, spawns
one worker thread per core, runs to completion, and returns a
:class:`~repro.stats.report.RunResult`.  All drivers are deterministic for
a fixed seed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Sequence

from ..config import MachineConfig
from ..core.isa import Work
from ..core.machine import Machine
from ..stats import RunResult
from ..trace import Tracer
from ..structures import (CasCounter, GlobalLockPQ, HarrisList,
                          LockFreeSkipList, LockedCounter, LockedExternalBST,
                          LockedHashTable, LotanShavitPQ, McasCounter,
                          McasQueue, McasStack, MichaelScottQueue, MultiQueue,
                          PughLockPQ, TreiberStack)
from ..stm import TL2Objects
from ..apps import PagerankApp, SnapshotRegion
from ..sync.adaptive import AdaptiveLeaseController
from ..sync.backoff import DhmBackoff, ExponentialBackoff
from ..sync.locks import ReciprocatingLock
from ..traffic import (TrafficSource, parse_traffic_spec,
                       traffic_counter_worker, traffic_search_worker,
                       traffic_stack_worker)

#: Key range handed to traffic key distributions when the structure under
#: test has no keys of its own (counter: keys only steer the arrival
#: process; stack: key parity picks push vs pop).
_TRAFFIC_KEY_RANGE = 64


def _config(num_threads: int, use_lease: bool,
            base: MachineConfig | None = None, **lease_kw: Any
            ) -> MachineConfig:
    cfg = base or MachineConfig()
    cfg = replace(cfg, num_cores=num_threads)
    lease = replace(cfg.lease, enabled=use_lease, **lease_kw)
    return replace(cfg, lease=lease)


def _machine(cfg: MachineConfig,
             sinks: Sequence[Tracer] | None,
             schedule: Any = None) -> Machine:
    """Build the benchmark machine, attaching any extra trace sinks
    (JSONL writers, heatmaps, invariant checkers) the caller supplied and
    installing an optional schedule-perturbation strategy (see
    :mod:`repro.check.perturb`)."""
    m = Machine(cfg, schedule_strategy=schedule)
    for sink in sinks or ():
        m.attach_tracer(sink)
    return m


def _finish(m: Machine, name: str, *, traffic_source=None,
            **extra: Any) -> RunResult:
    from ..state import hooks
    if hooks.run_hook is not None:
        # Checkpoint/restore seam (see repro.state.hooks): the CLI installs
        # a hook that enables recording, slices the run into checkpoint
        # intervals, and/or restores a saved state before running.
        hooks.run_hook(m)
    else:
        m.run()
    k = m.counters
    res = m.result(name, extra={
        "invol_releases": k.releases_involuntary,
        "vol_releases": k.releases_voluntary,
        **extra,
    })
    if traffic_source is not None:
        res.latency = traffic_source.summary()
    return res


def _traffic_source(cfg: MachineConfig, traffic: str, num_threads: int, *,
                    key_range: int, default_ops: int) -> TrafficSource | None:
    """Build the run's traffic source, or None for a closed-loop run.
    Seeded from the *post-override* config seed so ``--seed`` reaches the
    arrival streams the same way it reaches per-thread RNGs."""
    spec = parse_traffic_spec(traffic)
    if spec.empty:
        return None
    return TrafficSource(spec, num_lanes=num_threads, seed=cfg.seed,
                         key_range=key_range, default_ops=default_ops)


# ---------------------------------------------------------------------------
# Figure 2: Treiber stack, 100% updates
# ---------------------------------------------------------------------------

def bench_stack(num_threads: int, *, ops_per_thread: int = 60,
                variant: str = "base", prefill: int = 128,
                traffic: str = "",
                config: MachineConfig | None = None,
                max_lease_time: int | None = None,
                sinks: Sequence[Tracer] | None = None,
                schedule: Any = None) -> RunResult:
    """``variant``: 'base', 'lease', or 'backoff' (the software-optimized
    comparison point of Section 7).  A non-empty ``traffic`` spec switches
    the workers to open-loop (admitted key parity picks push vs pop)."""
    kw = {}
    if max_lease_time is not None:
        kw["max_lease_time"] = max_lease_time
    cfg = _config(num_threads, variant == "lease", config, **kw)
    m = _machine(cfg, sinks, schedule)
    backoff = ExponentialBackoff() if variant == "backoff" else None
    stack = TreiberStack(m, backoff=backoff)
    stack.prefill(range(prefill))
    src = _traffic_source(cfg, traffic, num_threads,
                          key_range=_TRAFFIC_KEY_RANGE,
                          default_ops=ops_per_thread)
    for i in range(num_threads):
        if src is not None:
            m.add_thread(traffic_stack_worker, stack, src.lane(i))
        else:
            m.add_thread(stack.update_worker, ops_per_thread)
    return _finish(m, f"stack/{variant}", traffic_source=src)


# ---------------------------------------------------------------------------
# Figure 3: Michael-Scott queue, 100% updates
# ---------------------------------------------------------------------------

def bench_queue(num_threads: int, *, ops_per_thread: int = 60,
                variant: str = "base", prefill: int = 128,
                config: MachineConfig | None = None,
                sinks: Sequence[Tracer] | None = None,
                schedule: Any = None) -> RunResult:
    """``variant``: 'base', 'lease' (Algorithm 3), 'multilease' (tail +
    next jointly), or 'backoff'."""
    use_lease = variant in ("lease", "multilease")
    cfg = _config(num_threads, use_lease, config)
    m = _machine(cfg, sinks, schedule)
    backoff = ExponentialBackoff() if variant == "backoff" else None
    q = MichaelScottQueue(
        m, variant="multi" if variant == "multilease" else "single",
        backoff=backoff)
    q.prefill(range(prefill))
    for _ in range(num_threads):
        m.add_thread(q.update_worker, ops_per_thread)
    return _finish(m, f"queue/{variant}")


# ---------------------------------------------------------------------------
# Figure 3: lock-based counter
# ---------------------------------------------------------------------------

def bench_counter(num_threads: int, *, ops_per_thread: int = 60,
                  variant: str = "tts", use_lease: bool = False,
                  misuse: bool = False, traffic: str = "",
                  config: MachineConfig | None = None,
                  max_lease_time: int | None = None,
                  sinks: Sequence[Tracer] | None = None,
                  schedule: Any = None) -> RunResult:
    """``variant``: lock kind ('tts', 'ticket', 'clh'); ``use_lease``
    applies the Section 6 lease pattern (only meaningful for 'tts').  A
    non-empty ``traffic`` spec switches the workers to open-loop: every
    admitted arrival is one increment, shed arrivals never run."""
    kw = {}
    if max_lease_time is not None:
        kw["max_lease_time"] = max_lease_time
    cfg = _config(num_threads, use_lease, config, **kw)
    m = _machine(cfg, sinks, schedule)
    counter = LockedCounter(m, lock=variant, misuse=misuse)
    src = _traffic_source(cfg, traffic, num_threads,
                          key_range=_TRAFFIC_KEY_RANGE,
                          default_ops=ops_per_thread)
    for i in range(num_threads):
        if src is not None:
            m.add_thread(traffic_counter_worker, counter, src.lane(i))
        else:
            m.add_thread(counter.update_worker, ops_per_thread)
    res = _finish(m, f"counter/{variant}{'+lease' if use_lease else ''}",
                  traffic_source=src)
    # Open-loop: only admitted ops run (shed arrivals must NOT count).
    expected = (src.admitted if src is not None
                else num_threads * ops_per_thread)
    actual = m.peek(counter.value_addr)
    if actual != expected:
        raise AssertionError(
            f"counter lost updates: {actual} != {expected}")
    return res


# ---------------------------------------------------------------------------
# Contention-management zoo: {policy} x {structure} ablation
# ---------------------------------------------------------------------------

#: The six contention-management arms of the zoo sweep.
SYNC_POLICIES = ("baseline", "lease", "cas-backoff", "reciprocating",
                 "mcas-helping", "adaptive-lease")
#: The structures every arm runs on.
SYNC_STRUCTURES = ("treiber", "msqueue", "counter")


def _locked_stack_worker(ctx, lock, stack, ops: int,
                         local_work: int = 30):
    """Stack update worker with every op inside ``lock``'s critical
    section (the coarse-lock arm of the zoo)."""
    for i in range(ops):
        start = ctx.machine.now
        token = yield from lock.acquire(ctx)
        if i % 2 == 0:
            value = (ctx.tid << 32) | i
            yield from stack.push(ctx, value)
            yield from lock.release(ctx, token)
            ctx.note_op("push", (value,), None, start)
        else:
            popped = yield from stack.pop(ctx)
            yield from lock.release(ctx, token)
            ctx.note_op("pop", (), popped, start)
        if local_work:
            yield Work(local_work)


def _locked_queue_worker(ctx, lock, q, ops: int, local_work: int = 30):
    """Queue update worker with every op inside ``lock``'s critical
    section (the coarse-lock arm of the zoo)."""
    for i in range(ops):
        start = ctx.machine.now
        token = yield from lock.acquire(ctx)
        if i % 2 == 0:
            value = (ctx.tid << 32) | i
            yield from q.enqueue(ctx, value)
            yield from lock.release(ctx, token)
            ctx.note_op("enqueue", (value,), None, start)
        else:
            taken = yield from q.dequeue(ctx)
            yield from lock.release(ctx, token)
            ctx.note_op("dequeue", (), taken, start)
        if local_work:
            yield Work(local_work)


def bench_sync_ablation(num_threads: int, *, structure: str = "treiber",
                        policy: str = "baseline", ops_per_thread: int = 60,
                        prefill: int = 64,
                        config: MachineConfig | None = None,
                        max_lease_time: int | None = None,
                        sinks: Sequence[Tracer] | None = None,
                        schedule: Any = None) -> RunResult:
    """One cell of the contention-management ablation:
    ``structure`` in :data:`SYNC_STRUCTURES` under ``policy`` in
    :data:`SYNC_POLICIES`.

    * ``baseline``       -- the plain structure, leases disabled;
    * ``lease``          -- the paper's fixed-duration lease placement;
    * ``cas-backoff``    -- DHM per-line failure-adaptive constant backoff
      on the CAS retry loop (leases disabled);
    * ``reciprocating``  -- every op under one Reciprocating Lock;
    * ``mcas-helping``   -- the multi-word MCAS variant with
      contention-aware helping;
    * ``adaptive-lease`` -- leases whose duration the
      :class:`AdaptiveLeaseController` predicts from probe pressure.
    """
    if structure not in SYNC_STRUCTURES:
        raise ValueError(f"unknown structure {structure!r}")
    if policy not in SYNC_POLICIES:
        raise ValueError(f"unknown policy {policy!r}")
    use_lease = policy in ("lease", "adaptive-lease")
    kw = {}
    if max_lease_time is not None:
        kw["max_lease_time"] = max_lease_time
    cfg = _config(num_threads, use_lease, config, **kw)
    m = _machine(cfg, sinks, schedule)
    controller = None
    if policy == "adaptive-lease":
        controller = AdaptiveLeaseController()
        m.attach_tracer(controller)
    backoff = DhmBackoff() if policy == "cas-backoff" else None
    lock = ReciprocatingLock(m) if policy == "reciprocating" else None
    expected_count = None
    count_of = None

    if structure == "counter":
        if policy == "mcas-helping":
            c = McasCounter(m)
            count_of = c.peek_value
        elif policy == "cas-backoff":
            # Same critical-section work as the locked arms (40 cycles
            # between load and CAS), so the cross-arm claim compares
            # contention management, not critical-section length.
            c = CasCounter(m, critical_work=40, backoff=backoff)
            count_of = lambda: m.peek(c.value_addr)
        elif policy == "reciprocating":
            c = LockedCounter(m, lock="reciprocating")
            count_of = lambda: m.peek(c.value_addr)
        else:
            c = LockedCounter(m, lock="tts", lease_policy=controller)
            count_of = lambda: m.peek(c.value_addr)
        for _ in range(num_threads):
            m.add_thread(c.update_worker, ops_per_thread)
        expected_count = num_threads * ops_per_thread
        stats_of = getattr(c, "stats", None)
    elif structure == "treiber":
        if policy == "mcas-helping":
            s = McasStack(m)
        else:
            s = TreiberStack(m, backoff=backoff, lease_policy=controller)
        s.prefill(range(prefill))
        for _ in range(num_threads):
            if lock is not None:
                m.add_thread(_locked_stack_worker, lock, s, ops_per_thread)
            else:
                m.add_thread(s.update_worker, ops_per_thread)
        stats_of = getattr(s, "stats", None)
    else:  # msqueue
        if policy == "mcas-helping":
            q = McasQueue(m)
        else:
            q = MichaelScottQueue(m, backoff=backoff,
                                  lease_policy=controller)
        q.prefill(range(prefill))
        for _ in range(num_threads):
            if lock is not None:
                m.add_thread(_locked_queue_worker, lock, q, ops_per_thread)
            else:
                m.add_thread(q.update_worker, ops_per_thread)
        stats_of = getattr(q, "stats", None)

    res = _finish(m, f"sync/{structure}/{policy}")
    if stats_of is not None:
        res.extra.update(stats_of())
    if controller is not None:
        res.extra.update(controller.stats())
    if expected_count is not None:
        actual = count_of()
        if actual != expected_count:
            raise AssertionError(
                f"counter lost updates under {policy}: "
                f"{actual} != {expected_count}")
    return res


# ---------------------------------------------------------------------------
# Figure 3: skiplist-based priority queue
# ---------------------------------------------------------------------------

def bench_pq(num_threads: int, *, ops_per_thread: int = 40,
             variant: str = "pugh", prefill: int = 1024,
             config: MachineConfig | None = None,
             sinks: Sequence[Tracer] | None = None,
             schedule: Any = None) -> RunResult:
    """``variant``: 'pugh' (fine-grained-lock baseline), 'lotan' (the
    literal Lotan-Shavit logical-deletion algorithm), 'globallock' (global
    lock, no leases), or 'lease' (global lock + leases)."""
    cfg = _config(num_threads, variant == "lease", config)
    m = _machine(cfg, sinks, schedule)
    if variant == "pugh":
        pq = PughLockPQ(m)
    elif variant == "lotan":
        pq = LotanShavitPQ(m)
    else:
        pq = GlobalLockPQ(m)
    pq.prefill(range(0, 2 * prefill, 2))
    for _ in range(num_threads):
        m.add_thread(pq.update_worker, ops_per_thread)
    return _finish(m, f"pq/{variant}")


# ---------------------------------------------------------------------------
# Figure 4: MultiQueues
# ---------------------------------------------------------------------------

def bench_multiqueue(num_threads: int, *, ops_per_thread: int = 40,
                     num_queues: int = 8, use_lease: bool = False,
                     prefill: int = 1024,
                     config: MachineConfig | None = None,
                     sinks: Sequence[Tracer] | None = None,
                     schedule: Any = None) -> RunResult:
    """MultiQueues (Figure 4a): alternating insert/deleteMin over
    ``num_queues`` heaps, with the Algorithm 4 lease placement."""
    cfg = _config(num_threads, use_lease, config)
    m = _machine(cfg, sinks, schedule)
    mq = MultiQueue(m, num_queues=num_queues)
    mq.prefill(range(0, 2 * prefill, 2))
    for _ in range(num_threads):
        m.add_thread(mq.update_worker, ops_per_thread)
    return _finish(m, f"multiqueue/{'lease' if use_lease else 'base'}")


# ---------------------------------------------------------------------------
# Figure 4 / 5: TL2 transactions
# ---------------------------------------------------------------------------

def bench_tl2(num_threads: int, *, txns_per_thread: int = 30,
              variant: str = "none", num_objects: int = 10,
              multilease_mode: str = "hardware",
              config: MachineConfig | None = None,
              sinks: Sequence[Tracer] | None = None,
              schedule: Any = None) -> RunResult:
    """``variant``: 'none', 'single' (first object only), 'multi'."""
    cfg = _config(num_threads, variant != "none", config,
                  multilease_mode=multilease_mode)
    m = _machine(cfg, sinks, schedule)
    tl2 = TL2Objects(m, num_objects=num_objects, lease=variant)
    for _ in range(num_threads):
        m.add_thread(tl2.txn_worker, txns_per_thread)
    res = _finish(m, f"tl2/{variant}/{multilease_mode}")
    k = m.counters
    res.extra["abort_rate"] = round(
        k.stm_aborts / max(1, k.stm_aborts + k.stm_commits), 4)
    expected = 2 * num_threads * txns_per_thread
    if tl2.total_value_direct() != expected:
        raise AssertionError("TL2 lost committed updates")
    return res


# ---------------------------------------------------------------------------
# Figure 5: lock-based Pagerank
# ---------------------------------------------------------------------------

def bench_pagerank(num_threads: int, *, num_pages: int = 128,
                   iterations: int = 2, use_lease: bool = False,
                   config: MachineConfig | None = None,
                   sinks: Sequence[Tracer] | None = None,
                   schedule: Any = None) -> RunResult:
    """Lock-based Pagerank (Figure 5 right): the contended dangling-mass
    lock is leased when ``use_lease`` is set."""
    cfg = _config(num_threads, use_lease, config)
    m = _machine(cfg, sinks, schedule)
    app = PagerankApp(m, num_pages=num_pages, num_threads=num_threads,
                      iterations=iterations)
    for tid in range(num_threads):
        m.add_thread(app.worker, tid)
    return _finish(m, f"pagerank/{'lease' if use_lease else 'base'}")


# ---------------------------------------------------------------------------
# Section 5: cheap snapshots
# ---------------------------------------------------------------------------

def bench_snapshot(num_threads: int, *, ops_per_thread: int = 15,
                   num_words: int = 6, writer_work: int = 150,
                   use_lease: bool = False,
                   config: MachineConfig | None = None,
                   sinks: Sequence[Tracer] | None = None,
                   schedule: Any = None) -> RunResult:
    """Half the threads write, half snapshot (lease-based vs
    double-collect).  Leases stay enabled in the machine either way; the
    flag selects the snapshot algorithm.  Prioritization must be off for
    this pattern: with it, every writer store would break the snapshot's
    leases and force a retry."""
    cfg = _config(num_threads, True, config,
                  prioritize_regular_requests=False)
    m = _machine(cfg, sinks, schedule)
    sr = SnapshotRegion(m, num_words)
    # One snapshotter vs an open-loop write load: cycles then measure the
    # time to complete ``ops_per_thread`` snapshots under interference.
    for _ in range(num_threads - 1):
        m.add_thread(sr.writer_worker, None, writer_work)
    m.add_thread(sr.snapshot_worker, ops_per_thread, use_lease=use_lease,
                 local_work=10, stop_when_done=True)
    res = _finish(m, f"snapshot/{'lease' if use_lease else 'collect'}")
    res.extra["snapshot_retries"] = sr.retries
    return res


# ---------------------------------------------------------------------------
# Section 7 low-contention structures (20% updates, 80% searches)
# ---------------------------------------------------------------------------

def _bench_search_structure(cls, name: str, num_threads: int,
                            ops_per_thread: int, key_range: int,
                            update_pct: int, use_lease: bool,
                            config: MachineConfig | None,
                            traffic: str = "",
                            sinks: Sequence[Tracer] | None = None,
                            schedule: Any = None,
                            **cls_kw: Any) -> RunResult:
    cfg = _config(num_threads, use_lease, config)
    m = _machine(cfg, sinks, schedule)
    s = cls(m, **cls_kw)
    s.prefill(range(0, key_range, 2))
    src = _traffic_source(cfg, traffic, num_threads, key_range=key_range,
                          default_ops=ops_per_thread)
    for i in range(num_threads):
        if src is not None:
            m.add_thread(traffic_search_worker, s, src.lane(i), update_pct)
        else:
            m.add_thread(s.mixed_worker, ops_per_thread, key_range,
                         update_pct)
    return _finish(m, f"{name}/{'lease' if use_lease else 'base'}",
                   traffic_source=src)


def bench_harris_list(num_threads: int, *, ops_per_thread: int = 40,
                      key_range: int = 128, update_pct: int = 20,
                      use_lease: bool = False,
                      config: MachineConfig | None = None,
                      sinks: Sequence[Tracer] | None = None,
                      schedule: Any = None) -> RunResult:
    """Harris lock-free list at 20% updates (Section 7 low contention)."""
    return _bench_search_structure(HarrisList, "list", num_threads,
                                   ops_per_thread, key_range, update_pct,
                                   use_lease, config, sinks=sinks,
                                   schedule=schedule)


def bench_skiplist(num_threads: int, *, ops_per_thread: int = 40,
                   key_range: int = 512, update_pct: int = 20,
                   use_lease: bool = False, traffic: str = "",
                   config: MachineConfig | None = None,
                   sinks: Sequence[Tracer] | None = None,
                   schedule: Any = None) -> RunResult:
    """Lock-free skiplist at 20% updates (Section 7 low contention).  A
    non-empty ``traffic`` spec switches to open-loop: admitted keys are
    the operation keys and the op kind is hashed from them."""
    return _bench_search_structure(LockFreeSkipList, "skiplist", num_threads,
                                   ops_per_thread, key_range, update_pct,
                                   use_lease, config, traffic=traffic,
                                   sinks=sinks, schedule=schedule)


def bench_hashtable(num_threads: int, *, ops_per_thread: int = 40,
                    key_range: int = 512, update_pct: int = 20,
                    use_lease: bool = False,
                    config: MachineConfig | None = None,
                    sinks: Sequence[Tracer] | None = None,
                    schedule: Any = None) -> RunResult:
    """Lock-striped hash table at 20% updates (Section 7 low contention)."""
    return _bench_search_structure(LockedHashTable, "hashtable", num_threads,
                                   ops_per_thread, key_range, update_pct,
                                   use_lease, config, sinks=sinks,
                                   schedule=schedule)


def bench_bst(num_threads: int, *, ops_per_thread: int = 40,
              key_range: int = 512, update_pct: int = 20,
              use_lease: bool = False,
              config: MachineConfig | None = None,
              sinks: Sequence[Tracer] | None = None,
              schedule: Any = None) -> RunResult:
    """External BST at 20% updates (Section 7 low contention)."""
    return _bench_search_structure(LockedExternalBST, "bst", num_threads,
                                   ops_per_thread, key_range, update_pct,
                                   use_lease, config, sinks=sinks,
                                   schedule=schedule)
