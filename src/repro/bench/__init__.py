"""repro.bench: microbenchmarks and the perf-regression gate.

``python -m repro bench [targets...] [--quick] [--baseline FILE]`` times
the simulator's hot loops (event-queue churn, coherence storms, contended
structure runs, a full sweep cell, and the trace-bus fast/slow A/B),
writes one ``BENCH_<name>.json`` per target, and optionally diffs the
normalized scores against a committed baseline with a tolerance gate.

See DESIGN.md ("Benchmarking") for the record schema and the
cross-machine score normalization.
"""

from .runner import (BENCH_FORMAT, DEFAULT_TOLERANCE, calibration_ops_per_sec,
                     default_target_names, diff_results, format_diff,
                     load_baseline, machine_fingerprint, profile_target,
                     record_summary_line, run_many, run_target, write_baseline,
                     write_results)
from .targets import TARGETS, BenchTarget

__all__ = [
    "BENCH_FORMAT", "DEFAULT_TOLERANCE", "TARGETS", "BenchTarget",
    "calibration_ops_per_sec", "default_target_names", "diff_results",
    "format_diff", "load_baseline", "machine_fingerprint", "profile_target",
    "record_summary_line", "run_many", "run_target", "write_baseline",
    "write_results",
]
