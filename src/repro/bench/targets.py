"""The microbenchmark targets: one per simulator hot loop.

Each target is a plain function ``fn(quick: bool, fault_spec: str = "",
seed: int | None = None, engine: str = "fast") -> dict`` that performs
one complete iteration of its workload and reports::

    {"ops": <units of work>,            # denominator of ops/sec
     "events": <simulator events> | None,
     "extra": {...},                    # target-specific findings
     "wall_seconds": <float>}           # optional: self-timed targets only

The :mod:`~repro.bench.runner` repeats the call, times it (unless the
target self-times, like the fast/slow A/B below), measures peak heap on a
separate pass, and normalizes against a per-machine calibration loop.

Targets cover the loops that dominate figure-reproduction wall-clock:

* ``event_queue``      -- raw schedule/cancel/pop/peek churn (the
  ``Event.__lt__`` + heap-compaction hot path);
* ``coherence_storm``  -- every core storing to one line: maximal
  invalidation/message traffic through directory + network;
* ``treiber``          -- the paper's contended Treiber stack run;
* ``counter``          -- the contended TTS+lease lock counter;
* ``sweep_cell``       -- one full fig2-style sweep cell (both variants),
  the unit every figure reproduction multiplies;
* ``sync_ablation``    -- the contention-management zoo: all 6 policies x
  3 structures through the workload driver, reporting lease-vs-software
  headline ratios;
* ``trace_fastpath``   -- the counters-only emit hot loop, fast vs slow
  path, asserting bit-identical counters and ``RunResult``;
* ``engine_fastpath``  -- the run-loop engine A/B (time-wheel + batching
  vs classic heap), asserting bit-identical ``RunResult`` and event
  counts;
* ``fault_degradation`` -- contended Treiber stack throughput under an
  escalating fault-rate grid, reporting simulated-throughput degradation
  relative to the fault-free run;
* ``snapshot_roundtrip`` -- mid-run checkpoint save + restore roundtrip
  (``repro.state``), asserting restored runs stay bit-identical;
* ``tail_latency``      -- open-loop arrivals into the contended counter
  (``repro.traffic``), asserting latency histograms bit-identical
  fast-vs-compat and across a mid-run checkpoint/restore cut;
* ``cluster_scale``     -- sharded-counter cluster throughput vs node
  count (``repro.cluster``): N machines under one clock with PaxosLease
  negotiating shard ownership over a mildly lossy network;
* ``link_saturation``   -- lease vs baseline on the hot-cell counter
  over finite-bandwidth links (``repro.coherence.links``), asserting
  leases reduce flits and link-stall cycles under saturation.

``fault_spec`` threads a :mod:`repro.faults` spec into the targets that
build a machine; ``seed`` reseeds those machines (CLI ``--seed``, for
parity with run/trace/check); ``engine`` selects the run-loop engine the
same way (CLI ``--engine``).  The pure-scheduler targets
(``event_queue``, ``trace_fastpath``) and the fixed A/B
(``engine_fastpath``) accept and ignore the selectors that do not apply.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Callable

from ..config import MachineConfig
from ..core.machine import Machine
from ..engine.event_queue import EventQueue


def _lease_config(num_cores: int, fault_spec: str = "",
                  seed: int | None = None, engine: str = "fast",
                  **lease_kw: Any) -> MachineConfig:
    cfg = MachineConfig(num_cores=num_cores, fault_spec=fault_spec,
                        engine=engine)
    if seed is not None:
        cfg = replace(cfg, seed=seed)
    return replace(cfg, lease=replace(cfg.lease, enabled=True, **lease_kw))


# ---------------------------------------------------------------------------
# Raw event-queue churn
# ---------------------------------------------------------------------------

def bench_event_queue(quick: bool, fault_spec: str = "",
                      seed: int | None = None,
                      engine: str = "fast") -> dict:
    """Schedule/cancel/pop/peek churn on a bare :class:`EventQueue` --
    no machine, pure scheduler cost (``__lt__``, heap ops, compaction).
    No machine, so ``fault_spec``, ``seed`` and ``engine`` are ignored."""
    n = 30_000 if quick else 150_000
    q = EventQueue()
    fn = lambda: None  # noqa: E731 - payload is irrelevant here
    ops = 0
    state = 0x2545F491
    pending = []
    for i in range(n):
        # Deterministic xorshift times: spread, with plenty of ties.
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        ev = q.schedule(state % 4096, fn)
        pending.append(ev)
        ops += 1
        if i % 3 == 2:                 # cancel every third event (lease-
            q.cancel(pending[-2])      # expiry churn pattern); exercises
            ops += 1                   # lazy-dead-entry compaction
        if i % 64 == 0:
            q.peek_time()
            ops += 1
    while q.pop() is not None:
        ops += 1
    return {"ops": ops, "events": n, "extra": {"final_heap": q.heap_size}}


# ---------------------------------------------------------------------------
# Coherence message storm
# ---------------------------------------------------------------------------

def bench_coherence_storm(quick: bool, fault_spec: str = "",
                          seed: int | None = None,
                          engine: str = "fast") -> dict:
    """Every core stores to the same line in a tight loop: maximal
    invalidation + directory-queue traffic (the paper's worst case)."""
    from ..core.isa import Store

    cores = 4 if quick else 8
    rounds = 150 if quick else 300
    cfg = MachineConfig(num_cores=cores, fault_spec=fault_spec,
                        engine=engine)
    if seed is not None:
        cfg = replace(cfg, seed=seed)
    m = Machine(cfg)
    addr = m.alloc_var(0, label="storm.line")

    def body(ctx):
        for i in range(rounds):
            yield Store(addr, i)
        ctx.note_op()

    for _ in range(cores):
        m.add_thread(body)
    m.run()
    return {"ops": cores * rounds, "events": m.sim.events_processed,
            "extra": {"messages": m.counters.messages,
                      "invalidations": m.counters.invalidations_sent}}


# ---------------------------------------------------------------------------
# Contended structure runs
# ---------------------------------------------------------------------------

def bench_treiber(quick: bool, fault_spec: str = "",
                  seed: int | None = None,
                  engine: str = "fast") -> dict:
    """The paper's headline workload: a contended lease-enabled Treiber
    stack at high thread count."""
    from ..structures import TreiberStack

    threads = 8 if quick else 16
    ops_per_thread = 25 if quick else 60
    m = Machine(_lease_config(threads, fault_spec, seed, engine))
    stack = TreiberStack(m)
    stack.prefill(range(128))
    for _ in range(threads):
        m.add_thread(stack.update_worker, ops_per_thread)
    m.run()
    res = m.result("treiber")
    return {"ops": res.ops, "events": m.sim.events_processed,
            "extra": {"cycles": res.cycles,
                      "messages_per_op": round(res.messages_per_op, 2)}}


def bench_counter_lock(quick: bool, fault_spec: str = "",
                       seed: int | None = None,
                       engine: str = "fast") -> dict:
    """The contended TTS+lease lock-based counter (Figure 3a's biggest
    winner -- and the densest emit stream per simulated cycle)."""
    from ..structures import LockedCounter

    threads = 8 if quick else 16
    ops_per_thread = 25 if quick else 60
    m = Machine(_lease_config(threads, fault_spec, seed, engine))
    counter = LockedCounter(m, lock="tts")
    for _ in range(threads):
        m.add_thread(counter.update_worker, ops_per_thread)
    m.run()
    res = m.result("counter")
    return {"ops": res.ops, "events": m.sim.events_processed,
            "extra": {"cycles": res.cycles}}


def bench_sweep_cell(quick: bool, fault_spec: str = "",
                     seed: int | None = None,
                     engine: str = "fast") -> dict:
    """One full fig2-style sweep cell (base + lease variants at one thread
    count) through the real harness path -- the unit of work every figure
    reproduction repeats dozens of times."""
    from ..harness.runner import sweep
    from ..workloads.driver import bench_stack

    threads = 4 if quick else 8
    ops_per_thread = 15 if quick else 40
    common: dict[str, Any] = {"ops_per_thread": ops_per_thread}
    if fault_spec or seed is not None or engine != "fast":
        cfg = replace(MachineConfig(), fault_spec=fault_spec, engine=engine)
        if seed is not None:
            cfg = replace(cfg, seed=seed)
        common["config"] = cfg
    res = sweep(bench_stack,
                {"base": {"variant": "base"}, "lease": {"variant": "lease"}},
                (threads,), **common)
    total_ops = sum(r.ops for series in res.values() for r in series)
    return {"ops": total_ops, "events": None,
            "extra": {"variants": len(res), "threads": threads}}


def bench_sync_ablation(quick: bool, fault_spec: str = "",
                        seed: int | None = None,
                        engine: str = "fast") -> dict:
    """The full contention-management zoo in one record: every
    {policy} x {structure} cell of the ``sync_ablation`` experiment at one
    thread count (18 machine runs through the real workload driver).

    ``extra`` distills the ablation's headline comparisons per structure:
    the lease speedup over the software baseline, which software rival
    (cas-backoff / reciprocating / mcas-helping) came closest, and how
    far ahead the lease arm stayed -- the numbers the paper's Section 7
    "leases vs backoff" argument rests on.  The counter arms also assert
    no updates were lost, so this target doubles as a correctness smoke
    over every zoo primitive.
    """
    from ..workloads.driver import SYNC_POLICIES, SYNC_STRUCTURES
    from ..workloads.driver import bench_sync_ablation as cell

    threads = 4 if quick else 8
    ops_per_thread = 10 if quick else 25
    cfg = MachineConfig(num_cores=threads, fault_spec=fault_spec,
                        engine=engine)
    if seed is not None:
        cfg = replace(cfg, seed=seed)
    software = ("cas-backoff", "reciprocating", "mcas-helping")
    total_ops = 0
    extra: dict[str, Any] = {}
    for structure in SYNC_STRUCTURES:
        tput: dict[str, float] = {}
        for policy in SYNC_POLICIES:
            res = cell(threads, structure=structure, policy=policy,
                       ops_per_thread=ops_per_thread, prefill=32,
                       config=cfg)
            total_ops += res.ops
            tput[policy] = res.throughput_ops_per_sec
        base = tput["baseline"]
        best_sw = max(software, key=lambda p: tput[p])
        extra[f"{structure}_lease_speedup"] = (
            round(tput["lease"] / base, 2) if base else 0.0)
        extra[f"{structure}_best_software"] = best_sw
        extra[f"{structure}_lease_vs_best_sw"] = (
            round(tput["lease"] / tput[best_sw], 2) if tput[best_sw]
            else 0.0)
    extra["cells"] = len(SYNC_STRUCTURES) * len(SYNC_POLICIES)
    return {"ops": total_ops, "events": None, "extra": extra}


# ---------------------------------------------------------------------------
# Throughput degradation vs fault rate
# ---------------------------------------------------------------------------

#: Escalating fault-rate grid for the degradation curve.  The first row is
#: the fault-free baseline every other row is normalized against.
_DEGRADATION_GRID: tuple[tuple[str, str], ...] = (
    ("none", ""),
    ("mild", "net_jitter:p=0.01,max=60;dir_nack:p=0.005"),
    ("heavy", "net_jitter:p=0.05,max=200;dir_nack:p=0.02;timer_skew:8"),
    ("hostile", "net_jitter:p=0.10,max=400;dir_nack:p=0.05;timer_skew:16;"
                "slow_core:0@4x"),
)


def bench_fault_degradation(quick: bool, fault_spec: str = "",
                            seed: int | None = None,
                            engine: str = "fast") -> dict:
    """Contended Treiber stack across an escalating fault-rate grid.

    Reports each rung's *simulated* throughput relative to the fault-free
    run (``<label>_relative`` in ``extra``) plus the fault counters of the
    harshest rung -- the ISSUE's "throughput degradation vs fault rate"
    curve in one record.  A caller-supplied ``fault_spec`` is appended as
    an extra ``cli`` rung rather than replacing the grid.
    """
    from ..structures import TreiberStack

    threads = 4 if quick else 8
    ops_per_thread = 15 if quick else 40
    grid = list(_DEGRADATION_GRID)
    if fault_spec:
        grid.append(("cli", fault_spec))
    total_ops = 0
    events = 0
    base_tput = None
    extra: dict[str, Any] = {}
    for label, spec in grid:
        m = Machine(replace(_lease_config(threads, seed=seed, engine=engine),
                            fault_spec=spec))
        stack = TreiberStack(m)
        stack.prefill(range(128))
        for _ in range(threads):
            m.add_thread(stack.update_worker, ops_per_thread)
        m.run()
        res = m.result("treiber")
        total_ops += res.ops
        events += m.sim.events_processed
        tput = res.throughput_ops_per_sec
        if base_tput is None:
            base_tput = tput
        extra[f"{label}_relative"] = (round(tput / base_tput, 3)
                                      if base_tput else 0.0)
        extra[f"{label}_faults"] = (m.counters.faults_injected
                                    + m.counters.dir_nacks)
    return {"ops": total_ops, "events": events, "extra": extra}


# ---------------------------------------------------------------------------
# Checkpoint save/restore roundtrip
# ---------------------------------------------------------------------------

def bench_snapshot_roundtrip(quick: bool, fault_spec: str = "",
                             seed: int | None = None,
                             engine: str = "fast") -> dict:
    """Mid-run ``state_dict`` -> JSON -> ``load_state`` roundtrips on a
    contended Treiber stack, asserting the restored run finishes with a
    :class:`RunResult` identical to an uninterrupted one.

    This times the whole checkpoint path -- codec encode, JSON
    serialization, fresh-machine replay-restore, and the run to
    quiescence -- which is what ``--checkpoint-every`` and prefix-restore
    shrinking pay per snapshot.  ``ops`` counts save+restore pairs, so
    the score is roundtrips/sec (machine-normalized).
    """
    import json as _json

    from ..structures import TreiberStack

    threads = 4 if quick else 8
    ops_per_thread = 15 if quick else 40
    rounds = 3 if quick else 6

    def build() -> Machine:
        m = Machine(_lease_config(threads, fault_spec, seed, engine))
        m.enable_checkpointing()
        stack = TreiberStack(m)
        stack.prefill(range(64))
        for _ in range(threads):
            m.add_thread(stack.update_worker, ops_per_thread)
        return m

    ref = build()
    ref.run()
    ref_res = ref.result("snapshot")

    state_bytes = 0
    events = ref.sim.events_processed
    for i in range(rounds):
        m = build()
        # Staggered cut points so successive roundtrips snapshot different
        # amounts of in-flight state.
        m.run(until=(i + 1) * 300)
        blob = _json.dumps(m.state_dict())
        state_bytes += len(blob)
        m2 = build()
        m2.load_state(_json.loads(blob))
        m2.run()
        events += m2.sim.events_processed
        if m2.result("snapshot") != ref_res:
            raise AssertionError(
                "snapshot roundtrip diverged from the straight-through run")
    return {"ops": rounds, "events": events,
            "extra": {"state_bytes": state_bytes // rounds,
                      "run_result_identical": True}}


# ---------------------------------------------------------------------------
# Open-loop tail latency identity
# ---------------------------------------------------------------------------

#: Default arrival spec for the tail-latency target: Poisson arrivals with
#: Zipf-skewed keys and a latency SLO, so the record carries a pass/fail
#: verdict alongside the percentiles.
_TAIL_LATENCY_SPEC = ("poisson:rate=3.0,zipf:s=1.1,tenants=2,"
                      "slo:p99=6000,shed=0.2")


def bench_tail_latency(quick: bool, fault_spec: str = "",
                       seed: int | None = None,
                       engine: str = "fast",
                       traffic: str = "") -> dict:
    """Open-loop tail latency on the contended counter -- the
    :mod:`repro.traffic` engine's regression guard.

    Runs the same Poisson/Zipf arrival plan on both run-loop engines and
    asserts the latency *histograms* (not just the percentiles) are
    bit-identical; then cuts the fast-engine run mid-flight with a
    ``state_dict`` -> JSON -> ``load_state`` roundtrip and asserts the
    restored run reproduces the same histogram.  That pair is the
    determinism contract behind ``RunResult.latency``.  Reports p50/p99/
    p999, shed fraction and the SLO verdict in ``extra``.  The A/B is
    fast-vs-compat by construction, so the ``engine`` selector is
    ignored; ``traffic`` (CLI ``--traffic``) overrides the arrival spec.
    """
    import json as _json

    from ..structures import LockedCounter
    from ..traffic import TrafficSource, evaluate_slo, traffic_counter_worker

    threads = 4 if quick else 8
    ops_per_lane = 12 if quick else 30
    spec = traffic or _TAIL_LATENCY_SPEC

    def build(engine_choice: str) -> tuple[Machine, TrafficSource]:
        m = Machine(_lease_config(threads, fault_spec, seed, engine_choice))
        m.enable_checkpointing()
        counter = LockedCounter(m, lock="tts")
        src = TrafficSource(spec, num_lanes=threads, seed=m.config.seed,
                            key_range=64, default_ops=ops_per_lane)
        for t in range(threads):
            m.add_thread(traffic_counter_worker, counter, src.lane(t))
        return m, src

    fast_m, fast_src = build("fast")
    fast_m.run()
    compat_m, compat_src = build("compat")
    compat_m.run()
    ref_hist = fast_src.histogram()
    if ref_hist != compat_src.histogram():
        raise AssertionError(
            "fast/compat engines produced different latency histograms")
    if (fast_src.admitted, fast_src.shed) != (compat_src.admitted,
                                              compat_src.shed):
        raise AssertionError(
            "fast/compat engines admitted/shed different arrival counts")

    cut_m, _ = build("fast")
    cut_m.run(until=max(1, fast_m.sim.now // 2))
    blob = _json.dumps(cut_m.state_dict())
    restored_m, restored_src = build("fast")
    restored_m.load_state(_json.loads(blob))
    restored_m.run()
    if restored_src.histogram() != ref_hist:
        raise AssertionError(
            "checkpoint/restore changed the latency histogram")

    summary = fast_src.summary()
    events = (fast_m.sim.events_processed + compat_m.sim.events_processed
              + restored_m.sim.events_processed)
    ops = fast_src.admitted + compat_src.admitted + restored_src.admitted
    return {
        "ops": ops, "events": events,
        "extra": {
            "traffic": spec,
            "p50": summary.get("p50"),
            "p99": summary.get("p99"),
            "p999": summary.get("p999"),
            "shed_frac": round(summary["shed_frac"], 4),
            "slo": evaluate_slo(fast_src.spec, ref_hist,
                                summary["shed_frac"]),
            "hist_identical": True,
            "restore_identical": True,
        },
    }


# ---------------------------------------------------------------------------
# Cluster throughput scaling
# ---------------------------------------------------------------------------

#: Node counts for the scaling curve; the first entry is the single-node
#: baseline every other rung is normalized against.
_CLUSTER_NODE_COUNTS_QUICK = (1, 2, 3)
_CLUSTER_NODE_COUNTS_FULL = (1, 2, 3, 4, 5)


def bench_cluster_scale(quick: bool, fault_spec: str = "",
                        seed: int | None = None,
                        engine: str = "fast") -> dict:
    """Sharded-counter cluster throughput vs node count at fixed
    per-node contention (the cluster layer's scaling curve).

    Each rung runs the same per-node workload -- 2 threads fighting over
    2 shards -- on 1..N machines under one clock, with PaxosLease
    negotiating shard ownership over a mildly lossy network.  ``extra``
    reports each rung's simulated throughput relative to the single-node
    baseline (``n<k>_relative``) plus the paxos/message totals of the
    widest rung.  ``fault_spec`` threads per-node (intra-machine) faults
    into every member machine.
    """
    from ..cluster import bench_cluster

    node_counts = (_CLUSTER_NODE_COUNTS_QUICK if quick
                   else _CLUSTER_NODE_COUNTS_FULL)
    # Even quick mode needs enough work per rung for a stable best-of-N
    # wall time: a few-millisecond measurement swings past the CI gate's
    # tolerance on a loaded runner, so aim for a few hundred ms total.
    ops_per_thread = 150 if quick else 300
    cfg = MachineConfig(fault_spec=fault_spec, engine=engine)
    if seed is not None:
        cfg = replace(cfg, seed=seed)
    total_ops = 0
    base_tput = None
    extra: dict[str, Any] = {}
    for n in node_counts:
        res = bench_cluster(
            2, structure="counter", nodes=n, objects=2,
            ops_per_thread=ops_per_thread,
            cluster_spec="loss:p=0.02;delay:min=50,max=150",
            config=cfg)
        total_ops += res.ops
        tput = res.throughput_ops_per_sec
        if base_tput is None:
            base_tput = tput
        extra[f"n{n}_relative"] = (round(tput / base_tput, 3)
                                   if base_tput else 0.0)
        if n == node_counts[-1]:
            extra["paxos_rounds"] = res.extra["paxos_rounds"]
            extra["node_msgs"] = res.extra["node_msgs"]
    return {"ops": total_ops, "events": None, "extra": extra}


# ---------------------------------------------------------------------------
# Trace-bus fast path A/B
# ---------------------------------------------------------------------------

#: One representative event mix per loop iteration (mirrors the dominant
#: kinds in a contended run: cache activity, a message, a CAS, queueing).
_FASTPATH_EVENTS_PER_ITER = 5


def _emit_mix(bus, iters: int) -> float:
    """The counters-only hot loop: emit the mix through the per-type
    slots; returns wall seconds.  Identical slot calls serve both paths --
    ``set_fast_path(False)`` turns every slot into construct-and-emit."""
    l1_hit, l1_miss = bus.l1_hit, bus.l1_miss
    message, cas, req_queued = bus.message, bus.cas, bus.req_queued
    t0 = time.perf_counter()
    for i in range(iters):
        l1_hit(0, i & 1023)
        l1_miss(1, i & 1023)
        message(0, 1, "GetS", 2, False)
        cas(0, 64, True)
        req_queued(1, i & 1023, 3)
    return time.perf_counter() - t0


def _counter_run_result(fast: bool, engine: str = "fast"):
    """A small real machine run with the fast path toggled -- the
    byte-identity half of the A/B."""
    from ..structures import LockedCounter

    m = Machine(_lease_config(4, engine=engine))
    m.trace.set_fast_path(fast)
    counter = LockedCounter(m, lock="tts")
    for _ in range(4):
        m.add_thread(counter.update_worker, 30)
    m.run()
    return m.result("counter")


def bench_trace_fastpath(quick: bool, fault_spec: str = "",
                         seed: int | None = None,
                         engine: str = "fast") -> dict:
    """Fast vs slow emit path on the counters-only hot loop (self-timed).
    Pure emit-path A/B with a fixed fault-free machine run, so
    ``fault_spec`` and ``seed`` are ignored.

    Asserts the two paths are bit-identical -- equal :class:`Counters`
    from the raw emit storm AND equal :class:`RunResult` from a real
    machine run -- then reports the wall-clock improvement the fast path
    buys.  This is the regression guard for the optimization the whole
    bench subsystem exists to protect.
    """
    from ..trace import CountersTracer, TraceBus

    iters = 60_000 if quick else 200_000

    fast_bus = TraceBus(sinks=(CountersTracer(),))
    slow_bus = TraceBus(sinks=(CountersTracer(),))
    slow_bus.set_fast_path(False)
    fast_s = _emit_mix(fast_bus, iters)
    slow_s = _emit_mix(slow_bus, iters)
    if fast_bus.sinks[0].counters != slow_bus.sinks[0].counters:
        raise AssertionError(
            "fast/slow emit paths diverged on the raw counter storm")

    res_fast = _counter_run_result(True, engine)
    res_slow = _counter_run_result(False, engine)
    if res_fast != res_slow:
        raise AssertionError(
            "fast/slow emit paths produced different RunResults")

    events = iters * _FASTPATH_EVENTS_PER_ITER
    improvement = (1.0 - fast_s / slow_s) * 100.0 if slow_s > 0 else 0.0
    return {
        "ops": events, "events": events,
        "wall_seconds": fast_s,
        "extra": {
            "slow_wall_seconds": round(slow_s, 6),
            "improvement_pct": round(improvement, 1),
            "run_result_identical": True,
        },
    }


# ---------------------------------------------------------------------------
# Engine fast path A/B
# ---------------------------------------------------------------------------

def _engine_ab_run(engine: str, cores: int, rounds: int, fault_spec: str,
                   seed: int | None) -> tuple[float, Any, int]:
    """One coherence-storm run on the chosen engine; returns
    ``(wall_seconds, RunResult, events_processed)``."""
    from ..core.isa import Store

    cfg = MachineConfig(num_cores=cores, fault_spec=fault_spec,
                        engine=engine)
    if seed is not None:
        cfg = replace(cfg, seed=seed)
    m = Machine(cfg)
    addr = m.alloc_var(0, label="engine_ab.line")

    def body(ctx):
        for i in range(rounds):
            yield Store(addr, i)
        ctx.note_op()

    for _ in range(cores):
        m.add_thread(body)
    t0 = time.perf_counter()
    m.run()
    wall = time.perf_counter() - t0
    return wall, m.result("engine_ab"), m.sim.events_processed


def bench_engine_fastpath(quick: bool, fault_spec: str = "",
                          seed: int | None = None,
                          engine: str = "fast") -> dict:
    """Fast vs compat run-loop engine on the coherence storm (self-timed).

    The two-tier engine's regression guard: runs the identical maximal-
    contention workload once per engine, asserts the :class:`RunResult`
    AND the processed-event count are bit-identical (the tentpole's
    correctness contract), then reports the wall-clock improvement the
    fast engine buys.  The A/B is fixed fast-vs-compat by construction,
    so the ``engine`` selector is ignored.
    """
    cores = 4 if quick else 8
    rounds = 150 if quick else 300

    fast_s, res_fast, ev_fast = _engine_ab_run(
        "fast", cores, rounds, fault_spec, seed)
    compat_s, res_compat, ev_compat = _engine_ab_run(
        "compat", cores, rounds, fault_spec, seed)
    if res_fast != res_compat:
        raise AssertionError(
            "fast/compat engines produced different RunResults")
    if ev_fast != ev_compat:
        raise AssertionError(
            f"fast/compat engines processed different event counts "
            f"({ev_fast} vs {ev_compat})")

    improvement = (1.0 - fast_s / compat_s) * 100.0 if compat_s > 0 else 0.0
    return {
        "ops": cores * rounds, "events": ev_fast,
        "wall_seconds": fast_s,
        "extra": {
            "compat_wall_seconds": round(compat_s, 6),
            "improvement_pct": round(improvement, 1),
            "run_result_identical": True,
        },
    }


# ---------------------------------------------------------------------------
# Contended interconnect: lease vs baseline under saturating links
# ---------------------------------------------------------------------------

#: Finite-bandwidth spec that saturates under the hot-cell counter: 2
#: cycles/flit with 4-flit data payloads, shallow bounded queues, WRR
#: arbitration and serialized directory/memory ports.
_LINK_SAT_SPEC = "link:bw=2,queue=8,flits=4;arb:wrr,weights=2:1;port:dir=2,mem=4"


def _link_sat_run(lease: bool, threads: int, ops_per_thread: int,
                  fault_spec: str, seed: int | None, engine: str):
    from ..structures import LockedCounter

    cfg = _lease_config(threads, fault_spec, seed, engine)
    cfg = cfg.with_leases(lease)
    cfg = replace(cfg, network=replace(cfg.network, spec=_LINK_SAT_SPEC))
    m = Machine(cfg)
    counter = LockedCounter(m, lock="tts")
    for _ in range(threads):
        m.add_thread(counter.update_worker, ops_per_thread)
    m.run()
    return m


def bench_link_saturation(quick: bool, fault_spec: str = "",
                          seed: int | None = None,
                          engine: str = "fast") -> dict:
    """Lease vs baseline on a saturating hot-cell workload over finite
    links (:mod:`repro.coherence.links`).

    Runs the contended TTS lock counter twice under :data:`_LINK_SAT_SPEC`
    -- leases off, then on -- and asserts the paper's mechanism survives a
    bandwidth-limited interconnect: by suppressing the probe/retry storm
    at the source, leases must move strictly fewer flits AND spend
    strictly fewer cycles waiting in link queues than the baseline.  The
    measured reductions are recorded as the regression-tracked extras.
    """
    threads = 8 if quick else 16
    ops_per_thread = 25 if quick else 60

    base = _link_sat_run(False, threads, ops_per_thread,
                         fault_spec, seed, engine)
    leased = _link_sat_run(True, threads, ops_per_thread,
                           fault_spec, seed, engine)
    kb, kl = base.counters, leased.counters
    if not kl.link_flits < kb.link_flits:
        raise AssertionError(
            f"leases did not reduce link flits ({kl.link_flits} vs "
            f"baseline {kb.link_flits})")
    if not kl.link_stall_cycles < kb.link_stall_cycles:
        raise AssertionError(
            f"leases did not reduce link stall cycles "
            f"({kl.link_stall_cycles} vs baseline {kb.link_stall_cycles})")

    def _cut(b: int, l: int) -> float:
        return round((1.0 - l / b) * 100.0, 1) if b else 0.0

    return {
        "ops": 2 * threads * ops_per_thread,
        "events": base.sim.events_processed + leased.sim.events_processed,
        "extra": {
            "base_link_flits": kb.link_flits,
            "lease_link_flits": kl.link_flits,
            "flit_reduction_pct": _cut(kb.link_flits, kl.link_flits),
            "base_link_stall_cycles": kb.link_stall_cycles,
            "lease_link_stall_cycles": kl.link_stall_cycles,
            "stall_reduction_pct": _cut(kb.link_stall_cycles,
                                        kl.link_stall_cycles),
            "base_port_stalls": kb.port_stalls,
            "lease_port_stalls": kl.port_stalls,
            "cycle_reduction_pct": _cut(base.sim.now, leased.sim.now),
        },
    }


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BenchTarget:
    name: str
    title: str
    fn: Callable[..., dict]  # (quick: bool, fault_spec: str = "") -> dict


TARGETS: dict[str, BenchTarget] = {
    t.name: t for t in (
        BenchTarget("event_queue", "raw EventQueue schedule/cancel/pop "
                    "churn", bench_event_queue),
        BenchTarget("coherence_storm", "all cores storing one line "
                    "(message storm)", bench_coherence_storm),
        BenchTarget("treiber", "contended lease-enabled Treiber stack",
                    bench_treiber),
        BenchTarget("counter", "contended TTS+lease lock counter",
                    bench_counter_lock),
        BenchTarget("sweep_cell", "one fig2-style sweep cell (base + "
                    "lease)", bench_sweep_cell),
        BenchTarget("sync_ablation", "contention zoo: 6 policies x 3 "
                    "structures", bench_sync_ablation),
        BenchTarget("trace_fastpath", "counters-only emit hot loop, fast "
                    "vs slow path", bench_trace_fastpath),
        BenchTarget("engine_fastpath", "fast vs compat run-loop engine "
                    "on the storm", bench_engine_fastpath),
        BenchTarget("fault_degradation", "Treiber throughput vs "
                    "escalating fault rate", bench_fault_degradation),
        BenchTarget("snapshot_roundtrip", "mid-run checkpoint save + "
                    "restore roundtrip", bench_snapshot_roundtrip),
        BenchTarget("tail_latency", "open-loop latency percentiles, "
                    "fast/compat + restore identity", bench_tail_latency),
        BenchTarget("cluster_scale", "sharded-counter throughput vs "
                    "node count (PaxosLease)", bench_cluster_scale),
        BenchTarget("link_saturation", "lease vs baseline over "
                    "saturating finite links", bench_link_saturation),
    )
}
