"""Timing, recording, and baseline-diffing for the bench targets.

Protocol per target:

1. **Timing pass** -- call the target ``repeats`` times under
   :func:`time.perf_counter` and keep the *best* wall time (the standard
   microbenchmark discipline: minimum over repeats rejects scheduler noise
   one-sidedly).  Self-timed targets (those returning ``wall_seconds``)
   are still repeated and the best of their self-reported times kept.
2. **Heap pass** -- one extra run under :mod:`tracemalloc` for
   ``peak_heap_bytes``.  Separate pass because tracemalloc's bookkeeping
   slows the timed loop by an order of magnitude.
3. **Calibration** -- a fixed arithmetic loop timed once per process
   gives ``calibration_ops_per_sec``; ``score = ops_per_sec /
   calibration_ops_per_sec`` is a machine-normalized throughput, which is
   what the baseline gate compares.  Raw ops/sec moves with the host CPU;
   the ratio mostly cancels that out, so one committed baseline remains
   meaningful across developer laptops and CI runners.

Records are written one file per target (``BENCH_<name>.json``,
``bench_format`` 1); a baseline bundles the same records under a
``targets`` map.  :func:`diff_results` flags any target whose score fell
more than ``tolerance`` below the baseline.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
import time
import tracemalloc
from typing import Any, Iterable, Sequence

from .targets import TARGETS

#: Schema version stamped into every record and baseline.
BENCH_FORMAT = 1

#: Default regression gate: fail when score drops >30% below baseline.
DEFAULT_TOLERANCE = 0.30

#: Iterations of the calibration loop (fixed forever: changing it changes
#: every score and invalidates committed baselines).
_CALIBRATION_ITERS = 2_000_000

_calibration_cache: float | None = None


def _calibration_loop(iters: int) -> int:
    """Fixed integer-arithmetic loop: same work on every machine."""
    acc = 0
    for i in range(iters):
        acc = (acc * 1103515245 + i) & 0xFFFFFFFF
    return acc


def calibration_ops_per_sec() -> float:
    """Ops/sec of the fixed arithmetic loop on this machine (cached --
    one measurement per process keeps scores self-consistent)."""
    global _calibration_cache
    if _calibration_cache is None:
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            _calibration_loop(_CALIBRATION_ITERS)
            best = min(best, time.perf_counter() - t0)
        _calibration_cache = _CALIBRATION_ITERS / best
    return _calibration_cache


def machine_fingerprint() -> dict:
    """Where a record was measured (stored, never compared exactly)."""
    info = {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }
    digest = hashlib.sha256(
        json.dumps(info, sort_keys=True).encode()).hexdigest()[:12]
    return {**info, "id": digest}


def run_target(name: str, *, quick: bool = False, repeats: int = 3,
               fault_spec: str = "", seed: int | None = None,
               engine: str = "fast", traffic: str = "") -> dict:
    """Run one bench target through the full protocol; returns its record.

    ``fault_spec`` threads a fault-injection spec into the machine-building
    targets (pure-scheduler targets ignore it); faulty records carry the
    spec so they are never mistaken for clean baselines.  ``seed`` reseeds
    the simulated machines the same way and is recorded alongside.
    ``engine`` picks the run-loop engine those machines use (results are
    bit-identical either way; wall-clock is not) and is recorded so
    compat-engine timings are never mistaken for fast-engine baselines.
    ``traffic`` overrides the arrival spec of open-loop targets (only
    ``tail_latency`` takes one; naming it elsewhere is a ConfigError)."""
    import inspect

    from ..errors import ConfigError

    target = TARGETS[name]
    extra_kw: dict = {}
    if traffic:
        if "traffic" not in inspect.signature(target.fn).parameters:
            raise ConfigError(
                f"bench target {name!r} does not take --traffic "
                "(open-loop arrivals apply to: tail_latency)")
        extra_kw["traffic"] = traffic
    best_wall = float("inf")
    report: dict = {}
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        report = target.fn(quick, fault_spec, seed, engine, **extra_kw)
        wall = report.get("wall_seconds", time.perf_counter() - t0)
        best_wall = min(best_wall, wall)

    tracemalloc.start()
    try:
        target.fn(quick, fault_spec, seed, engine, **extra_kw)
        _, peak_heap = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    ops = report["ops"]
    events = report.get("events")
    calib = calibration_ops_per_sec()
    ops_per_sec = ops / best_wall if best_wall > 0 else 0.0
    return {
        "bench_format": BENCH_FORMAT,
        "name": name,
        "title": target.title,
        "quick": quick,
        "repeats": max(1, repeats),
        "wall_seconds": round(best_wall, 6),
        "ops": ops,
        "ops_per_sec": round(ops_per_sec, 1),
        "events": events,
        "events_per_sec": (round(events / best_wall, 1)
                           if events and best_wall > 0 else None),
        "peak_heap_bytes": peak_heap,
        "calibration_ops_per_sec": round(calib, 1),
        "score": round(ops_per_sec / calib, 6) if calib else 0.0,
        "fault_spec": fault_spec,
        "seed": seed,
        "engine": engine,
        "extra": report.get("extra", {}),
        "machine": machine_fingerprint(),
    }


def _run_target_worker(name: str, quick: bool, repeats: int,
                       fault_spec: str, seed: int | None,
                       engine: str, traffic: str) -> dict:
    """Module-level wrapper so parallel runs pickle cleanly."""
    return run_target(name, quick=quick, repeats=repeats,
                      fault_spec=fault_spec, seed=seed, engine=engine,
                      traffic=traffic)


def run_many(names: Sequence[str], *, quick: bool = False, jobs: int = 1,
             repeats: int = 3, fault_spec: str = "",
             seed: int | None = None,
             engine: str = "fast", traffic: str = "") -> dict[str, dict]:
    """Run several targets, optionally on worker processes.

    Note ``jobs > 1`` trades timing fidelity for wall-clock: concurrent
    workers contend for cores, so absolute numbers dip.  Scores are
    normalized per-process (calibration runs on each worker), which
    absorbs most of it; still, baselines should be recorded with
    ``jobs=1``.
    """
    names = list(names)
    if jobs > 1 and len(names) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(names))) as ex:
            futs = [ex.submit(_run_target_worker, n, quick, repeats,
                              fault_spec, seed, engine, traffic)
                    for n in names]
            records = [f.result() for f in futs]
    else:
        records = [run_target(n, quick=quick, repeats=repeats,
                              fault_spec=fault_spec, seed=seed,
                              engine=engine, traffic=traffic)
                   for n in names]
    return {name: rec for name, rec in zip(names, records)}


# ---------------------------------------------------------------------------
# Persistence
# ---------------------------------------------------------------------------

def write_results(results: dict[str, dict], out_dir: str = ".") -> list[str]:
    """Write one ``BENCH_<name>.json`` per record; returns the paths."""
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for name, rec in results.items():
        path = os.path.join(out_dir, f"BENCH_{name}.json")
        with open(path, "w") as f:
            json.dump(rec, f, indent=2, sort_keys=True)
            f.write("\n")
        paths.append(path)
    return paths


def write_baseline(results: dict[str, dict], path: str) -> None:
    """Bundle the records into a committed baseline file."""
    doc = {
        "bench_format": BENCH_FORMAT,
        "machine": machine_fingerprint(),
        "targets": results,
    }
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")


def load_baseline(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    if doc.get("bench_format") != BENCH_FORMAT:
        raise ValueError(
            f"{path}: unsupported bench_format "
            f"{doc.get('bench_format')!r} (expected {BENCH_FORMAT})")
    return doc


# ---------------------------------------------------------------------------
# Baseline diff
# ---------------------------------------------------------------------------

def diff_results(results: dict[str, dict], baseline: dict,
                 tolerance: float = DEFAULT_TOLERANCE) -> list[dict]:
    """Compare normalized scores against a baseline.

    Returns one row per target present in both sides with keys ``name``,
    ``old_score``, ``new_score``, ``delta_pct`` (positive = faster) and
    ``regressed`` (True when the new score fell more than ``tolerance``
    below the old).  Targets on only one side are skipped: a fresh target
    has nothing to regress against, and a retired one nothing to check.
    """
    rows = []
    base_targets = baseline.get("targets", {})
    for name, rec in results.items():
        old = base_targets.get(name)
        if old is None:
            continue
        old_score, new_score = old["score"], rec["score"]
        delta = ((new_score - old_score) / old_score * 100.0
                 if old_score else 0.0)
        rows.append({
            "name": name,
            "old_score": old_score,
            "new_score": new_score,
            "delta_pct": round(delta, 1),
            "regressed": bool(old_score)
            and new_score < old_score * (1.0 - tolerance),
        })
    return rows


def format_diff(rows: Iterable[dict]) -> str:
    """Render diff rows for terminal output."""
    from ..stats.report import format_table

    display = [{
        "target": r["name"],
        "baseline": round(r["old_score"], 4),
        "current": round(r["new_score"], 4),
        "delta%": r["delta_pct"],
        "status": "REGRESSED" if r["regressed"] else "ok",
    } for r in rows]
    return format_table(display) if display else "(no common targets)"


def profile_target(name: str, *, quick: bool = True,
                   top: int = 15, out=sys.stdout) -> None:
    """One cProfile pass over a target, printing the ``top`` entries by
    cumulative time (the ``--profile`` flag's backend)."""
    import cProfile
    import pstats

    target = TARGETS[name]
    prof = cProfile.Profile()
    prof.enable()
    target.fn(quick)
    prof.disable()
    stats = pstats.Stats(prof, stream=out)
    stats.sort_stats("cumulative")
    print(f"-- profile: {name} --", file=out)
    stats.print_stats(top)


def default_target_names() -> list[str]:
    return list(TARGETS)


def record_summary_line(rec: dict[str, Any]) -> str:
    """One human line per target for CLI output."""
    parts = [f"{rec['name']:<16} {rec['wall_seconds']*1000:9.1f} ms",
             f"{rec['ops_per_sec']:>12,.0f} ops/s",
             f"score {rec['score']:.4f}"]
    if rec.get("events_per_sec"):
        parts.insert(2, f"{rec['events_per_sec']:>12,.0f} ev/s")
    extra = rec.get("extra") or {}
    if "improvement_pct" in extra:
        parts.append(f"fast-path {extra['improvement_pct']:+}%")
    return "  ".join(parts)
