"""Figure 5 (right): lock-based Pagerank with the contended
inaccessible-pages lock, with and without a lease on that lock.

Paper shape: the base version stops scaling (throughput collapses with
threads); protecting the critical section with a lease lets the
application scale, with a large speedup at 32 threads (paper: 8x; the
synthetic-graph substitute reaches ~4x, see EXPERIMENTS.md).
"""

from conftest import at, regenerate

PR_THREADS = (2, 4, 8, 16, 32)


def test_fig5_pagerank(benchmark):
    res = regenerate(benchmark, "fig5_pagerank", thread_counts=PR_THREADS)
    base, lease = res["base"], res["lease"]

    # The base stops scaling: 32 threads is slower than 4.
    assert at(base, 32, PR_THREADS).throughput_ops_per_sec < \
        at(base, 4, PR_THREADS).throughput_ops_per_sec

    # The lease version scales: 32 threads beats 2 threads.
    assert at(lease, 32, PR_THREADS).throughput_ops_per_sec > \
        at(lease, 2, PR_THREADS).throughput_ops_per_sec

    # Large speedup at 32 threads.
    ratio = (at(lease, 32, PR_THREADS).throughput_ops_per_sec /
             at(base, 32, PR_THREADS).throughput_ops_per_sec)
    assert ratio >= 3.0

    # Uncontended (2 threads): leases are harmless (within 10%).
    r2 = (at(lease, 2, PR_THREADS).throughput_ops_per_sec /
          at(base, 2, PR_THREADS).throughput_ops_per_sec)
    assert r2 > 0.9
