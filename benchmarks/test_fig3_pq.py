"""Figure 3c: skiplist-based priority queue -- Pugh fine-grained locking
baseline vs the global-lock + lease implementation.

Paper shape: PQ throughput decreases with concurrency for every variant
(skiplist cache misses grow with contention), and the lease-based
implementation is superior under high contention.  The global lock
*without* leases shows that the lease, not the lock granularity, provides
the win.
"""

from conftest import FULL_THREADS, at, regenerate


def test_fig3_pq(benchmark):
    res = regenerate(benchmark, "fig3_pq")
    pugh, glock, lease = res["pugh"], res["globallock"], res["lease"]

    # Throughput decreases with concurrency (paper's observation).
    assert at(pugh, 64, FULL_THREADS).throughput_ops_per_sec < \
        at(pugh, 4, FULL_THREADS).throughput_ops_per_sec
    assert at(lease, 64, FULL_THREADS).throughput_ops_per_sec < \
        at(lease, 4, FULL_THREADS).throughput_ops_per_sec

    # Lease-based implementation is superior under high contention.
    for threads in (32, 64):
        assert at(lease, threads, FULL_THREADS).throughput_ops_per_sec > \
            at(pugh, threads, FULL_THREADS).throughput_ops_per_sec

    # The lease (not merely the global lock) is what wins: plain global
    # lock must not beat the leased variant anywhere contended.
    for threads in (8, 16, 32, 64):
        assert at(lease, threads, FULL_THREADS).throughput_ops_per_sec >= \
            at(glock, threads, FULL_THREADS).throughput_ops_per_sec
