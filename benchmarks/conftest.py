"""Shared machinery for the figure-regeneration benchmarks.

Each benchmark file regenerates one paper figure/table: it sweeps the
relevant workload over thread counts and variants, prints the series the
paper plots (throughput and energy per op), records them in
``benchmark.extra_info``, and asserts the paper's qualitative shape (who
wins, roughly by how much, where trends go).

The simulation is deterministic, so a single round is meaningful --
``benchmark.pedantic(rounds=1)`` wraps the whole sweep; wall time of the
sweep is what pytest-benchmark reports.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.harness import run_experiment
from repro.harness.runner import series_table

#: Thread axis used by the paper ("2, 4, 8, 16, 32, 64 threads/cores").
FULL_THREADS = (2, 4, 8, 16, 32, 64)
#: Reduced axis for expensive ablations.
SHORT_THREADS = (2, 8, 32)


def regenerate(benchmark, exp_id: str,
               thread_counts: Sequence[int] = FULL_THREADS,
               **overrides: Any) -> dict:
    """Run experiment ``exp_id`` once under pytest-benchmark and print the
    figure's series."""
    box: dict = {}

    def once():
        box["res"] = run_experiment(exp_id, thread_counts, **overrides)

    benchmark.pedantic(once, rounds=1, iterations=1)
    res = box["res"]
    print()
    print(f"=== {exp_id}: throughput (Mops/s) ===")
    print(series_table(res, metric="mops_per_sec"))
    print(f"=== {exp_id}: energy (nJ/op) ===")
    print(series_table(res, metric="nj_per_op"))
    for variant, series in res.items():
        benchmark.extra_info[f"{variant}_mops"] = [
            round(r.mops_per_sec, 3) for r in series]
        benchmark.extra_info[f"{variant}_nj_per_op"] = [
            round(r.energy_nj_per_op, 1) for r in series]
    benchmark.extra_info["threads"] = list(thread_counts)
    return res


def at(series: list, threads: int, thread_counts: Sequence[int]):
    """Series entry for a given thread count."""
    return series[list(thread_counts).index(threads)]
