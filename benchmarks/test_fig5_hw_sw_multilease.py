"""Figure 5 (left): hardware vs software MultiLeases on the TL2 benchmark.

Paper shape: performance is comparable; the software emulation incurs a
slight but consistent hit (extra software operations; joint holding not
guaranteed).
"""

from conftest import regenerate


def test_fig5_hw_sw_multilease(benchmark):
    res = regenerate(benchmark, "fig5_hw_sw_multilease")
    hw, sw = res["hardware"], res["software"]

    for h, s in zip(hw, sw):
        # Comparable: within 2x everywhere...
        assert s.throughput_ops_per_sec > h.throughput_ops_per_sec / 2
        # ...but the software emulation never wins by more than noise.
        assert s.throughput_ops_per_sec <= h.throughput_ops_per_sec * 1.05

    # The hit is consistent: software is slower at most thread counts.
    slower = sum(1 for h, s in zip(hw, sw)
                 if s.throughput_ops_per_sec < h.throughput_ops_per_sec)
    assert slower >= len(hw) - 1
