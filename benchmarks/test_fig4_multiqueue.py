"""Figure 4a: MultiQueues (8 sequential heaps + try-locks) with the
Algorithm 4 lease placement.

Paper shape: ~50% improvement from leases (the critical sections are
long, so the lock-handoff savings are a bounded fraction of the op).
"""

from conftest import FULL_THREADS, at, regenerate


def test_fig4_multiqueue(benchmark):
    res = regenerate(benchmark, "fig4_multiqueue")
    base, lease = res["base"], res["lease"]

    # Leases help under contention (threads >= queues).
    for threads in (16, 32, 64):
        assert at(lease, threads, FULL_THREADS).throughput_ops_per_sec > \
            at(base, threads, FULL_THREADS).throughput_ops_per_sec

    # The improvement is a moderate factor (roughly the paper's ~1.5x),
    # not the order-of-magnitude of the single-hotspot benchmarks.
    ratio = (at(lease, 32, FULL_THREADS).throughput_ops_per_sec /
             at(base, 32, FULL_THREADS).throughput_ops_per_sec)
    assert 1.2 <= ratio <= 4.0

    # Leases reduce coherence traffic per op.
    assert at(lease, 64, FULL_THREADS).messages_per_op < \
        at(base, 64, FULL_THREADS).messages_per_op
