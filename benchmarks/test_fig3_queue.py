"""Figure 3b: Michael-Scott queue -- base vs single lease (Algorithm 3)
vs multi-lease (tail + last node's next, jointly).

Paper shape: single leases beat the base under contention; multileases
also beat the base but are inferior to single leases on this linear
structure (extra overhead, and leasing the predecessor already prevents
successor misses).
"""

from conftest import FULL_THREADS, at, regenerate


def test_fig3_queue(benchmark):
    res = regenerate(benchmark, "fig3_queue")
    base, lease, multi = res["base"], res["lease"], res["multilease"]

    # Single lease wins under high contention.
    for threads in (16, 32, 64):
        assert at(lease, threads, FULL_THREADS).throughput_ops_per_sec > \
            at(base, threads, FULL_THREADS).throughput_ops_per_sec

    # Multi-lease also beats base under high contention...
    assert at(multi, 64, FULL_THREADS).throughput_ops_per_sec > \
        at(base, 64, FULL_THREADS).throughput_ops_per_sec
    # ...but trails the single-lease placement (the paper's finding for
    # linear structures).
    assert at(lease, 64, FULL_THREADS).throughput_ops_per_sec > \
        at(multi, 64, FULL_THREADS).throughput_ops_per_sec

    # Lease messages/op stay bounded while the base's grow severalfold.
    base_growth = (at(base, 64, FULL_THREADS).messages_per_op /
                   at(base, 4, FULL_THREADS).messages_per_op)
    lease_growth = (at(lease, 64, FULL_THREADS).messages_per_op /
                    at(lease, 4, FULL_THREADS).messages_per_op)
    assert base_growth > 2.0
    assert lease_growth < 1.5
