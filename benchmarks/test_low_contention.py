"""Section 7 "Low Contention": Harris list, lock-free skiplist, lock-based
hash table and external BST with 20% updates / 80% searches on uniform
keys.

Paper shape: throughput is essentially identical with and without leases
(the paper quotes <=5% differences, slightly positive at high thread
counts).  We allow a 15% band to absorb simulator noise on short runs.
"""

import pytest

from conftest import SHORT_THREADS, regenerate

BAND = 0.15


@pytest.mark.parametrize("exp_id", [
    "e2_low_contention_list",
    "e2_low_contention_skiplist",
    "e2_low_contention_hashtable",
    "e2_low_contention_bst",
])
def test_e2_low_contention(benchmark, exp_id):
    res = regenerate(benchmark, exp_id, thread_counts=SHORT_THREADS)
    base, lease = res["base"], res["lease"]
    for b, l in zip(base, lease):
        ratio = l.throughput_ops_per_sec / b.throughput_ops_per_sec
        assert 1 - BAND <= ratio <= 1 + BAND, (
            f"{exp_id} t={b.num_threads}: lease/base ratio {ratio:.3f} "
            "outside the low-contention band")
