"""Section 7 constant-cost claim: with leases, cache misses per operation
and coherence messages per operation stay roughly constant as thread count
grows (the paper quotes ~2.1 misses/op and ~9.5 messages/op for the stack
from 4 to 64 threads), while the base implementation's grow severalfold
(~5x).  The claim also holds with MAX_LEASE_TIME reduced to 1K cycles.
"""

from conftest import FULL_THREADS, at, regenerate
from repro.harness import run_experiment


def test_e3_messages_and_misses_per_op(benchmark):
    res = regenerate(benchmark, "e3_messages_per_op")
    base, lease = res["base"], res["lease"]

    # Lease: messages/op and misses/op ~constant from 4 to 64 threads.
    lease_msg_growth = (at(lease, 64, FULL_THREADS).messages_per_op /
                        at(lease, 4, FULL_THREADS).messages_per_op)
    lease_miss_growth = (at(lease, 64, FULL_THREADS).l1_misses_per_op /
                         at(lease, 4, FULL_THREADS).l1_misses_per_op)
    assert lease_msg_growth < 1.3
    assert lease_miss_growth < 1.3

    # Base: both grow severalfold (paper: ~5x at 64 threads).
    base_msg_growth = (at(base, 64, FULL_THREADS).messages_per_op /
                       at(base, 4, FULL_THREADS).messages_per_op)
    base_miss_growth = (at(base, 64, FULL_THREADS).l1_misses_per_op /
                        at(base, 4, FULL_THREADS).l1_misses_per_op)
    assert base_msg_growth > 3.0
    assert base_miss_growth > 3.0

    # Absolute scale: the lease stack needs only a handful of misses and
    # messages per op, in the paper's ballpark.
    assert at(lease, 64, FULL_THREADS).l1_misses_per_op < 4.0
    assert at(lease, 64, FULL_THREADS).messages_per_op < 15.0

    benchmark.extra_info["lease_msg_growth"] = round(lease_msg_growth, 3)
    benchmark.extra_info["base_msg_growth"] = round(base_msg_growth, 3)


def test_e3_robust_at_1k_lease_time(benchmark):
    """The constant-cost property survives MAX_LEASE_TIME = 1K cycles."""
    box = {}

    def once():
        box["res"] = run_experiment("a2_lease_time",
                                    thread_counts=(4, 16, 64))

    benchmark.pedantic(once, rounds=1, iterations=1)
    res = box["res"]
    for name, series in res.items():
        growth = series[-1].messages_per_op / series[0].messages_per_op
        assert growth < 1.3, f"{name}: messages/op grew {growth:.2f}x"
        benchmark.extra_info[f"{name}_msgs_per_op"] = [
            round(r.messages_per_op, 2) for r in series]
