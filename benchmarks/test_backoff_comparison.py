"""Section 7 "Comparison with Backoffs": exponential backoff vs leases on
the Treiber stack.

Paper shape: backoff improves the base implementation (up to ~3x under
contention) but remains clearly below leases (the paper quotes leases
~2.5x above even the highly optimized backoff implementation of [14]).
"""

from conftest import FULL_THREADS, at, regenerate


def test_e1_backoff_comparison(benchmark):
    res = regenerate(benchmark, "e1_backoff")
    base, backoff, lease = res["base"], res["backoff"], res["lease"]

    # Backoff beats the bare base under high contention...
    for threads in (32, 64):
        assert at(backoff, threads, FULL_THREADS).throughput_ops_per_sec > \
            at(base, threads, FULL_THREADS).throughput_ops_per_sec

    # ...but leases clearly beat backoff.
    for threads in (16, 32, 64):
        assert at(lease, threads, FULL_THREADS).throughput_ops_per_sec > \
            1.5 * at(backoff, threads, FULL_THREADS).throughput_ops_per_sec

    # Backoff reduces CAS failures but does not eliminate them; leases do.
    assert 0 < at(backoff, 64, FULL_THREADS).cas_failure_rate < \
        at(base, 64, FULL_THREADS).cas_failure_rate
    assert at(lease, 64, FULL_THREADS).cas_failure_rate == 0
