"""Section 5 "Cheap Snapshots": lease-based snapshot (voluntary-release
bit) vs the classic double-collect, under an open-loop write load.

Paper shape: "This procedure may be cheaper than the standard
double-collect snapshot."  Under write pressure the double-collect retries
grow without bound while the lease snapshot completes in bounded time.
"""

from conftest import regenerate

SNAP_THREADS = (4, 8)


def test_s1_snapshot(benchmark):
    res = regenerate(benchmark, "s1_snapshot", thread_counts=SNAP_THREADS)
    collect, lease = res["double_collect"], res["lease"]

    # Lease snapshots never retry (no involuntary release occurred).
    for r in lease:
        assert r.extra["snapshot_retries"] == 0

    # Under the heavier load (8 threads), double-collect retries pile up
    # and the lease snapshot is much faster.
    heavy_collect, heavy_lease = collect[-1], lease[-1]
    assert heavy_collect.extra["snapshot_retries"] > 10
    assert heavy_lease.throughput_ops_per_sec > \
        5 * heavy_collect.throughput_ops_per_sec
