"""Figure 3a: contended lock-based counter -- TTS lock +/- lease vs the
optimized software locks (ticket with proportional backoff, CLH queue lock).

Paper shape: the leased TTS lock wins under contention (up to ~20x over
the plain TTS base) and cuts energy per op by a large factor; the queue
locks beat plain TTS but lose to leases.
"""

from conftest import FULL_THREADS, at, regenerate


def test_fig3_counter(benchmark):
    res = regenerate(benchmark, "fig3_counter")
    tts, leased = res["tts"], res["tts+lease"]
    ticket, clh = res["ticket"], res["clh"]

    # At 2-4 threads the plain TTS lock profits from *unfair* same-thread
    # reacquisition (the counter line stays in the owner's cache), while
    # the lease enforces a fair FIFO handoff -- so the lease may trail by
    # a bounded margin there (see EXPERIMENTS.md).  From 16 threads up the
    # lease must win, by a large factor at 64.
    for b, l in zip(tts, leased):
        assert l.throughput_ops_per_sec >= 0.55 * b.throughput_ops_per_sec
    for threads in (16, 32, 64):
        assert at(leased, threads, FULL_THREADS).throughput_ops_per_sec > \
            at(tts, threads, FULL_THREADS).throughput_ops_per_sec
    speedup = (at(leased, 64, FULL_THREADS).throughput_ops_per_sec /
               at(tts, 64, FULL_THREADS).throughput_ops_per_sec)
    assert speedup >= 4.0

    # Leased TTS beats both optimized software locks at high contention.
    assert at(leased, 64, FULL_THREADS).throughput_ops_per_sec > \
        at(ticket, 64, FULL_THREADS).throughput_ops_per_sec
    assert at(leased, 64, FULL_THREADS).throughput_ops_per_sec > \
        at(clh, 64, FULL_THREADS).throughput_ops_per_sec

    # Energy: leases reduce nJ/op substantially at high threads.
    assert at(leased, 64, FULL_THREADS).energy_nj_per_op < \
        at(tts, 64, FULL_THREADS).energy_nj_per_op / 3

    # With leases, lock acquisitions stop failing (Section 6 invariant) --
    # visible as a zero CAS/TAS failure path in the extra counters.
    assert all(r.extra["invol_releases"] == 0 for r in leased)
