"""Figure 2: Treiber stack throughput with and without leases, 100%
updates, 2-64 threads.

Paper shape: the lease variant wins at every contended point; the base
implementation's throughput *decreases* beyond a few threads while the
lease variant stays roughly flat; the gap reaches ~5x+ at high threads.
"""

from conftest import FULL_THREADS, at, regenerate


def test_fig2_stack(benchmark):
    res = regenerate(benchmark, "fig2_stack")
    base, lease = res["base"], res["lease"]

    # Lease >= base at every contended thread count.
    for b, l in zip(base[1:], lease[1:]):
        assert l.throughput_ops_per_sec >= b.throughput_ops_per_sec

    # Baseline throughput collapses with threads...
    assert at(base, 64, FULL_THREADS).throughput_ops_per_sec < \
        at(base, 4, FULL_THREADS).throughput_ops_per_sec / 2
    # ...while the gap at 64 threads reaches at least 5x.
    speedup = (at(lease, 64, FULL_THREADS).throughput_ops_per_sec /
               at(base, 64, FULL_THREADS).throughput_ops_per_sec)
    assert speedup >= 5.0

    # Energy per op: leases cut it by a large factor at high threads.
    assert at(lease, 64, FULL_THREADS).energy_nj_per_op < \
        at(base, 64, FULL_THREADS).energy_nj_per_op / 3

    # Leases remove CAS retries entirely.
    assert all(r.cas_failure_rate == 0 for r in lease)
