"""Ablations for the Section 8 extensions implemented beyond the paper's
headline evaluation:

* MESI (Section 8 "Other Protocols"): the lease benefit must hold
  unchanged under MESI, and MESI must not regress the baseline.
* The Section 5 involuntary-release predictor: enabling it rescues the
  "improper use" workload by blacklisting the offending lease site.
"""

from repro.config import LeaseConfig, MachineConfig
from repro.workloads import bench_counter, bench_stack

THREADS = (2, 8, 32)


def test_mesi_preserves_lease_benefit(benchmark):
    box = {}

    def once():
        for proto in ("msi", "mesi"):
            cfg = MachineConfig(protocol=proto)
            box[proto] = {
                v: [bench_stack(n, variant=v, config=cfg) for n in THREADS]
                for v in ("base", "lease")
            }

    benchmark.pedantic(once, rounds=1, iterations=1)
    print()
    for proto in ("msi", "mesi"):
        base, lease = box[proto]["base"], box[proto]["lease"]
        for b, l in zip(base, lease):
            print(f"{proto} t={b.num_threads}: base={b.mops_per_sec:.2f} "
                  f"lease={l.mops_per_sec:.2f} Mops/s")
        # The lease speedup at high contention holds under both protocols.
        assert lease[-1].throughput_ops_per_sec > \
            3 * base[-1].throughput_ops_per_sec
    # MESI never regresses the corresponding MSI variant by much (the
    # shared hot lines bounce between owners either way).
    for v in ("base", "lease"):
        for msi_r, mesi_r in zip(box["msi"][v], box["mesi"][v]):
            assert mesi_r.throughput_ops_per_sec > \
                0.8 * msi_r.throughput_ops_per_sec
    benchmark.extra_info["msi_lease_mops"] = [
        round(r.mops_per_sec, 3) for r in box["msi"]["lease"]]
    benchmark.extra_info["mesi_lease_mops"] = [
        round(r.mops_per_sec, 3) for r in box["mesi"]["lease"]]


def test_predictor_rescues_misuse(benchmark):
    """With the predictor on, the deliberately-misused counter recovers
    most of the proper implementation's throughput."""
    box = {}

    def once():
        base_lease = LeaseConfig(prioritize_regular_requests=False,
                                 max_lease_time=2_000)
        pred = LeaseConfig(prioritize_regular_requests=False,
                           max_lease_time=2_000, predictor_enabled=True,
                           predictor_min_samples=4)
        box["proper"] = bench_counter(
            16, use_lease=True, config=MachineConfig(lease=base_lease))
        box["misuse"] = bench_counter(
            16, use_lease=True, misuse=True,
            config=MachineConfig(lease=base_lease))
        box["misuse+predictor"] = bench_counter(
            16, use_lease=True, misuse=True,
            config=MachineConfig(lease=pred))

    benchmark.pedantic(once, rounds=1, iterations=1)
    proper = box["proper"].throughput_ops_per_sec
    misuse = box["misuse"].throughput_ops_per_sec
    rescued = box["misuse+predictor"].throughput_ops_per_sec
    print(f"\nproper={proper / 1e6:.2f}  misuse={misuse / 1e6:.2f}  "
          f"misuse+predictor={rescued / 1e6:.2f} Mops/s")
    assert misuse < proper            # misuse hurts
    assert rescued > misuse * 1.3     # the predictor recovers a chunk
    for name, r in box.items():
        benchmark.extra_info[f"{name}_mops"] = round(
            r.throughput_ops_per_sec / 1e6, 3)
