"""Ablations for the design choices DESIGN.md calls out:

* A1 -- Section 5 prioritization (regular requests break leases) on the
  MS queue, where dequeuers' plain tail reads interact with enqueuers'
  leases;
* A2 -- MAX_LEASE_TIME sensitivity (1K vs 20K cycles);
* A3 -- Section 7 "improper use": keeping the lease on a lock owned by
  another thread, with and without the prioritization mitigation.
"""

from conftest import SHORT_THREADS, regenerate
from repro.config import LeaseConfig, MachineConfig
from repro.workloads import bench_counter, bench_queue


def test_a1_prioritization(benchmark):
    """Prioritization is an optimization: it must help (or at least not
    hurt) the leased MS queue under contention."""
    box = {}

    def once():
        on = MachineConfig(lease=LeaseConfig(
            prioritize_regular_requests=True))
        off = MachineConfig(lease=LeaseConfig(
            prioritize_regular_requests=False))
        box["on"] = [bench_queue(n, variant="lease", config=on)
                     for n in SHORT_THREADS]
        box["off"] = [bench_queue(n, variant="lease", config=off)
                      for n in SHORT_THREADS]

    benchmark.pedantic(once, rounds=1, iterations=1)
    on, off = box["on"], box["off"]
    print()
    for o, f in zip(on, off):
        print(f"t={o.num_threads}: prio_on={o.mops_per_sec:.2f} "
              f"prio_off={f.mops_per_sec:.2f} Mops/s")
    # At the most contended point the optimization helps.
    assert on[-1].throughput_ops_per_sec >= off[-1].throughput_ops_per_sec
    benchmark.extra_info["prio_on_mops"] = [round(r.mops_per_sec, 3)
                                            for r in on]
    benchmark.extra_info["prio_off_mops"] = [round(r.mops_per_sec, 3)
                                             for r in off]


def test_a2_lease_time_sensitivity(benchmark):
    """1K-cycle leases perform like 20K-cycle leases on the stack: lease
    windows there are far shorter than either cap."""
    res = regenerate(benchmark, "a2_lease_time",
                     thread_counts=SHORT_THREADS)
    for r20, r1 in zip(res["lease_20k"], res["lease_1k"]):
        ratio = r1.throughput_ops_per_sec / r20.throughput_ops_per_sec
        assert 0.85 <= ratio <= 1.15


def test_a3_misuse(benchmark):
    """Improper use slows the counter down; prioritization mitigates it."""
    box = {}

    def once():
        prio_off = MachineConfig(lease=LeaseConfig(
            prioritize_regular_requests=False, max_lease_time=2_000))
        prio_on = MachineConfig(lease=LeaseConfig(
            prioritize_regular_requests=True, max_lease_time=2_000))
        box["proper"] = bench_counter(16, use_lease=True, config=prio_off)
        box["misuse_off"] = bench_counter(16, use_lease=True, misuse=True,
                                          config=prio_off)
        box["misuse_on"] = bench_counter(16, use_lease=True, misuse=True,
                                         config=prio_on)

    benchmark.pedantic(once, rounds=1, iterations=1)
    proper = box["proper"].throughput_ops_per_sec
    mis_off = box["misuse_off"].throughput_ops_per_sec
    mis_on = box["misuse_on"].throughput_ops_per_sec
    print(f"\nproper={proper / 1e6:.2f} misuse(prio off)={mis_off / 1e6:.2f} "
          f"misuse(prio on)={mis_on / 1e6:.2f} Mops/s")
    assert mis_off < proper / 1.5        # misuse clearly hurts
    # Prioritization helps only marginally here: the owner's unlock store
    # queues *behind* the waiters' lease requests in the per-line FIFO at
    # the directory, so it cannot break their leases until it is serviced
    # -- the exact scenario the paper's Section 5 "Directory Structure and
    # Queuing" paragraph discusses.  (The Section 5 predictor is the
    # effective rescue; see test_ablation_extensions.py.)
    assert mis_on >= mis_off * 0.9
    benchmark.extra_info["proper_mops"] = round(proper / 1e6, 3)
    benchmark.extra_info["misuse_prio_off_mops"] = round(mis_off / 1e6, 3)
    benchmark.extra_info["misuse_prio_on_mops"] = round(mis_on / 1e6, 3)
