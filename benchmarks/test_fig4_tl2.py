"""Figure 4b: TL2-style two-object transactions over ten objects.

Paper shape: MultiLeases improve throughput by up to ~5x by driving the
abort rate to (near) zero; leasing only the first object helps moderately;
the baseline's abort rate explodes with contention.
"""

from conftest import FULL_THREADS, at, regenerate


def test_fig4_tl2(benchmark):
    res = regenerate(benchmark, "fig4_tl2")
    none, single, multi = res["none"], res["single"], res["multi"]

    # Ordering under contention: none < single < multi.
    for threads in (16, 32, 64):
        t_n = at(none, threads, FULL_THREADS).throughput_ops_per_sec
        t_s = at(single, threads, FULL_THREADS).throughput_ops_per_sec
        t_m = at(multi, threads, FULL_THREADS).throughput_ops_per_sec
        assert t_m > t_s > t_n

    # MultiLease reaches >= 4x over the base at high contention (paper:
    # "up to 5x").
    ratio = (at(multi, 64, FULL_THREADS).throughput_ops_per_sec /
             at(none, 64, FULL_THREADS).throughput_ops_per_sec)
    assert ratio >= 4.0

    # Abort rates: baseline explodes, multilease stays ~zero.
    assert at(none, 64, FULL_THREADS).extra["abort_rate"] > 0.5
    assert at(multi, 64, FULL_THREADS).extra["abort_rate"] < 0.05
