#!/usr/bin/env python3
"""MultiLease in transactional scenarios (Figures 4 and 5-left).

Part 1 -- TL2-style two-object transactions over ten objects: compares no
leases, a single lease on the first object, and a MultiLease on both, then
hardware vs software MultiLease emulation.

Part 2 -- MultiQueues (8 sequential heaps behind try-locks): insert uses a
single lease, deleteMin jointly leases two locks (Algorithm 4).

Run:  python examples/transactional_multilease.py
"""

from repro.workloads import bench_multiqueue, bench_tl2

THREADS = (2, 8, 32)


def main():
    print("TL2: two-object transactions, 10 objects "
          "(Mtxn/s [abort rate])")
    header = f"{'variant':<18}" + "".join(f"{f't={n}':>16}" for n in THREADS)
    print(header)
    print("-" * len(header))
    for variant in ("none", "single", "multi"):
        cells = []
        for n in THREADS:
            r = bench_tl2(n, variant=variant)
            cells.append(f"{r.mops_per_sec:9.2f} [{r.extra['abort_rate']:.2f}]")
        print(f"{variant:<18}" + "".join(f"{c:>16}" for c in cells))
    for mode in ("hardware", "software"):
        cells = []
        for n in THREADS:
            r = bench_tl2(n, variant="multi", multilease_mode=mode)
            cells.append(f"{r.mops_per_sec:9.2f} [{r.extra['abort_rate']:.2f}]")
        print(f"{'multi/' + mode:<18}" + "".join(f"{c:>16}" for c in cells))

    print("\nMultiQueues: 8 queues, alternating insert/deleteMin (Mops/s)")
    print(header)
    print("-" * len(header))
    for lease in (False, True):
        cells = []
        for n in THREADS:
            r = bench_multiqueue(n, use_lease=lease)
            cells.append(f"{r.mops_per_sec:9.2f}")
        name = "multilease" if lease else "base"
        print(f"{name:<18}" + "".join(f"{c:>16}" for c in cells))


if __name__ == "__main__":
    main()
