#!/usr/bin/env python3
"""Quickstart: the Treiber stack with and without Lease/Release.

Builds a 16-core simulated machine (Table 1 configuration), runs the
paper's Figure 1/2 workload (100% push/pop updates), and prints the
throughput, coherence traffic and CAS failure rate for the classic stack
and the leased stack.

Run:  python examples/quickstart.py
"""

from repro import Machine, MachineConfig
from repro.structures import TreiberStack

THREADS = 16
OPS_PER_THREAD = 100


def run(use_lease: bool):
    config = MachineConfig(num_cores=THREADS).with_leases(use_lease)
    machine = Machine(config)
    stack = TreiberStack(machine)
    stack.prefill(range(128))
    for _ in range(THREADS):
        machine.add_thread(stack.update_worker, OPS_PER_THREAD)
    machine.run()
    machine.check_coherence_invariants()
    return machine.result("lease" if use_lease else "base")


def main():
    base = run(use_lease=False)
    lease = run(use_lease=True)
    print(f"Treiber stack, {THREADS} threads, 100% updates "
          f"({THREADS * OPS_PER_THREAD} ops)\n")
    hdr = f"{'variant':<8} {'Mops/s':>8} {'nJ/op':>8} {'msgs/op':>8} " \
          f"{'CAS fail':>9}"
    print(hdr)
    print("-" * len(hdr))
    for r in (base, lease):
        print(f"{r.name:<8} {r.mops_per_sec:>8.2f} "
              f"{r.energy_nj_per_op:>8.1f} {r.messages_per_op:>8.1f} "
              f"{r.cas_failure_rate:>9.3f}")
    speedup = lease.throughput_ops_per_sec / base.throughput_ops_per_sec
    print(f"\nLease/Release speedup: {speedup:.1f}x  "
          f"(energy saving: "
          f"{base.energy_nj_per_op / lease.energy_nj_per_op:.1f}x)")


if __name__ == "__main__":
    main()
