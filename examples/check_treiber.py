#!/usr/bin/env python3
"""Correctness checking: linearizability of the Treiber stack.

Three layers of the `repro.check` subsystem, bottom up:

1. record an operation history from a stock contended run and check it
   against the sequential stack model (Wing & Gong search), including
   the structure's observed final state;
2. re-run under a seeded random schedule perturbation -- same-timestamp
   events reorder, everything else is untouched -- and check again;
3. hand the whole loop to the campaign driver, which is what
   `python -m repro check treiber` runs.

Run:  python examples/check_treiber.py
"""

from repro import Machine, MachineConfig
from repro.check import (HistoryRecorder, RandomStrategy, StackModel,
                         check_history, run_campaign)
from repro.structures import TreiberStack

THREADS = 4
OPS_PER_THREAD = 8
PREFILL = [100, 101, 102]


def checked_run(strategy=None):
    """One contended run; returns the linearizability verdict."""
    config = MachineConfig(num_cores=THREADS, seed=42)
    machine = Machine(config, schedule_strategy=strategy)
    history = machine.attach_tracer(HistoryRecorder())
    stack = TreiberStack(machine, lease_time=600)
    stack.prefill(PREFILL)
    for _ in range(THREADS):
        machine.add_thread(stack.update_worker, OPS_PER_THREAD,
                           local_work=4)
    machine.run()
    machine.check_coherence_invariants()
    history.validate()

    # drain_direct() walks top->bottom; the model keeps bottom->top.
    final = tuple(reversed(stack.drain_direct()))
    return check_history(history.records, lambda: StackModel(PREFILL),
                         final_state=final), len(history.records)


def main():
    # 1. The default (unperturbed) schedule.
    res, ops = checked_run()
    print(f"default schedule : {ops} ops, "
          f"{res.states_explored} states explored -> "
          f"{'linearizable' if res.ok else 'VIOLATION: ' + res.reason}")

    # 2. A perturbed schedule: seeded jitter among same-cycle events.
    res, ops = checked_run(RandomStrategy(seed=7))
    print(f"jittered schedule: {ops} ops, "
          f"{res.states_explored} states explored -> "
          f"{'linearizable' if res.ok else 'VIOLATION: ' + res.reason}")

    # 3. The campaign driver: many schedules (random + PCT-style),
    #    lease-property checks, shrinking + repro files on failure.
    report = run_campaign("treiber", budget=20, seed=7)
    print(f"\ncampaign         : {report.schedules_run} schedules, "
          f"{report.ops_checked} ops checked across "
          f"{dict(report.per_variant)}")
    if report.ok:
        print("campaign         : no failures found")
    else:
        print(f"campaign         : FAILURE [{report.failure.kind}] "
              f"{report.failure.detail}")


if __name__ == "__main__":
    main()
