#!/usr/bin/env python3
"""Seeded checkpoint-roundtrip fuzz: save / restore / compare.

Each round draws a random cell from the feature grid -- workload,
protocol, leases, fault spec, perturbation strategy, and a random cut
cycle -- then runs the same simulation three ways:

1. straight through (the reference `RunResult`);
2. checkpointed: run to the cut, `state_dict()` through a full
   ``repro-ckpt/1`` file on disk, then continue to the end;
3. restored: a fresh machine, `restore_checkpoint()` from that file,
   run to the end.

All three `RunResult`s must be field-for-field identical. On a mismatch
the offending checkpoint file and a description of the cell are kept
under ``--artifact-dir`` (CI uploads them) and the script exits 1.

``--cluster-rounds`` adds multi-node rounds with the same three-way
discipline, drawing over {nodes, structure, network weather, cut}: the
whole cluster is saved through ``Cluster.state_dict()`` -> JSON -> a
fresh cluster's ``load_state()``.

Run:  python examples/checkpoint_fuzz.py --rounds 20 --cluster-rounds 6
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import random
import shutil
import sys
from dataclasses import replace

from repro.check.perturb import PctStrategy, RandomStrategy
from repro.cluster import ClusterConfig, build_cluster
from repro.config import MachineConfig
from repro.core.machine import Machine
from repro.state import load_checkpoint, restore_checkpoint, save_checkpoint
from repro.structures import LockedCounter, MichaelScottQueue, TreiberStack

FAULT_SPECS = (
    "",
    "net_jitter:p=0.1,max=40",
    "dir_nack:p=0.05;timer_skew:4",
    "net_jitter:p=0.02,max=120;dir_nack:p=0.01",
)

CLUSTER_SPECS = (
    "",
    "loss:p=0.12",
    "dup:p=0.1;skew:60",
    "loss:p=0.08;dup:p=0.04;partition:p=0.06,len=1800,check=350;"
    "skew:80;delay:min=40,max=180",
)


def build_machine(cell: dict, strategy_seed: int | None) -> Machine:
    cfg = MachineConfig(num_cores=cell["threads"],
                        protocol=cell["protocol"],
                        fault_spec=cell["faults"],
                        seed=cell["machine_seed"])
    if cell["leases"]:
        cfg = replace(cfg, lease=replace(cfg.lease, enabled=True))
    strategy = None
    if cell["strategy"] == "random":
        strategy = RandomStrategy(strategy_seed)
    elif cell["strategy"] == "pct":
        strategy = PctStrategy(strategy_seed)
    m = Machine(cfg, schedule_strategy=strategy)
    if cell["workload"] == "treiber":
        s = TreiberStack(m)
        s.prefill(range(16))
        for _ in range(cell["threads"]):
            m.add_thread(s.update_worker, cell["ops"])
    elif cell["workload"] == "msqueue":
        q = MichaelScottQueue(m, variant="multi" if cell["leases"]
                              else "single")
        q.prefill(range(16))
        for _ in range(cell["threads"]):
            m.add_thread(q.update_worker, cell["ops"])
    else:
        c = LockedCounter(m, lock="tts")
        for _ in range(cell["threads"]):
            m.add_thread(c.update_worker, cell["ops"])
    return m


def draw_cell(rng: random.Random) -> dict:
    leases = rng.random() < 0.7
    return {
        "workload": rng.choice(("treiber", "msqueue", "counter")),
        "protocol": rng.choice(("msi", "mesi")),
        "leases": leases,
        "faults": rng.choice(FAULT_SPECS),
        "strategy": rng.choice(("none", "random", "pct")),
        "threads": rng.choice((2, 4)),
        "ops": rng.randrange(8, 20),
        "machine_seed": rng.randrange(1, 10_000),
        "cut": rng.randrange(50, 2500),
    }


def run_round(i: int, cell: dict, strategy_seed: int,
              artifact_dir: str) -> bool:
    path = os.path.join(artifact_dir, f"ckpt-fuzz-{i}.json")

    ref = build_machine(cell, strategy_seed)
    ref.run()
    r_ref = ref.result("fuzz")

    m1 = build_machine(cell, strategy_seed)
    m1.enable_checkpointing()
    m1.run(until=cell["cut"])
    save_checkpoint(m1, path, cell={"fuzz_round": i, **cell})
    m1.run()
    r_ckpt = m1.result("fuzz")

    m2 = build_machine(cell, strategy_seed)
    restore_checkpoint(m2, load_checkpoint(path),
                       cell={"fuzz_round": i, **cell})
    m2.run()
    r_rest = m2.result("fuzz")

    ok = (dataclasses.asdict(r_ckpt) == dataclasses.asdict(r_ref)
          and dataclasses.asdict(r_rest) == dataclasses.asdict(r_ref))
    if ok:
        os.remove(path)     # keep artifacts only for failures
    else:
        with open(os.path.join(artifact_dir, f"ckpt-fuzz-{i}.cell.json"),
                  "w") as f:
            json.dump({"cell": cell, "strategy_seed": strategy_seed,
                       "reference": dataclasses.asdict(r_ref),
                       "checkpointed": dataclasses.asdict(r_ckpt),
                       "restored": dataclasses.asdict(r_rest)},
                      f, indent=2, sort_keys=True, default=str)
        print(f"MISMATCH round {i}: {cell}", file=sys.stderr)
    return ok


def build_cluster_cell(cell: dict):
    cfg = MachineConfig(num_cores=cell["threads"],
                        seed=cell["machine_seed"])
    cfg = replace(cfg, lease=replace(cfg.lease, enabled=True))
    ccfg = ClusterConfig(nodes=cell["nodes"], objects=2, machine=cfg,
                         lease_cycles=4_000, renew_margin=1_000,
                         cluster_spec=cell["cluster_spec"])
    cluster, _ = build_cluster(ccfg, structure=cell["structure"],
                               ops_per_thread=cell["ops"])
    return cluster


def draw_cluster_cell(rng: random.Random) -> dict:
    return {
        "nodes": rng.choice((2, 3, 4)),
        "structure": rng.choice(("counter", "treiber")),
        "cluster_spec": rng.choice(CLUSTER_SPECS),
        "threads": 2,
        "ops": rng.randrange(4, 8),
        "machine_seed": rng.randrange(1, 10_000),
        "cut": rng.randrange(50, 4000),
    }


def run_cluster_round(i: int, cell: dict, artifact_dir: str) -> bool:
    path = os.path.join(artifact_dir, f"cluster-fuzz-{i}.json")

    ref = build_cluster_cell(cell)
    ref.run()
    r_ref = ref.result("fuzz")

    c1 = build_cluster_cell(cell)
    c1.enable_checkpointing()
    c1.run(until=cell["cut"])
    with open(path, "w") as f:
        json.dump({"cell": {"fuzz_round": i, **cell},
                   "state": c1.state_dict()}, f)
    c1.run()
    r_ckpt = c1.result("fuzz")

    c2 = build_cluster_cell(cell)
    with open(path) as f:
        c2.load_state(json.load(f)["state"])
    c2.run()
    r_rest = c2.result("fuzz")

    ok = (dataclasses.asdict(r_ckpt) == dataclasses.asdict(r_ref)
          and dataclasses.asdict(r_rest) == dataclasses.asdict(r_ref))
    if ok:
        os.remove(path)
    else:
        with open(os.path.join(artifact_dir,
                               f"cluster-fuzz-{i}.cell.json"), "w") as f:
            json.dump({"cell": cell,
                       "reference": dataclasses.asdict(r_ref),
                       "checkpointed": dataclasses.asdict(r_ckpt),
                       "restored": dataclasses.asdict(r_rest)},
                      f, indent=2, sort_keys=True, default=str)
        print(f"MISMATCH cluster round {i}: {cell}", file=sys.stderr)
    return ok


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--rounds", type=int, default=20)
    ap.add_argument("--cluster-rounds", type=int, default=0)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--artifact-dir", default="ckpt-fuzz-artifacts")
    args = ap.parse_args()

    rng = random.Random(args.seed)
    os.makedirs(args.artifact_dir, exist_ok=True)
    failures = 0
    for i in range(args.rounds):
        cell = draw_cell(rng)
        if not run_round(i, cell, strategy_seed=rng.randrange(1, 10_000),
                         artifact_dir=args.artifact_dir):
            failures += 1
        else:
            print(f"ok round {i}: {cell['workload']}/{cell['protocol']} "
                  f"leases={cell['leases']} strategy={cell['strategy']} "
                  f"faults={bool(cell['faults'])} cut={cell['cut']}")
    crng = random.Random(args.seed + 1)
    for i in range(args.cluster_rounds):
        cell = draw_cluster_cell(crng)
        if not run_cluster_round(i, cell, artifact_dir=args.artifact_dir):
            failures += 1
        else:
            print(f"ok cluster round {i}: {cell['structure']} "
                  f"nodes={cell['nodes']} "
                  f"weather={bool(cell['cluster_spec'])} cut={cell['cut']}")
    if not failures and not os.listdir(args.artifact_dir):
        shutil.rmtree(args.artifact_dir)
    total = args.rounds + args.cluster_rounds
    print(f"{total - failures}/{total} roundtrips identical")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
