#!/usr/bin/env python3
"""Tuning Lease/Release: lease duration, misuse, and the predictor.

Three mini-studies on the contended counter:

1. MAX_LEASE_TIME sensitivity — well-structured lease windows are short,
   so 1K-cycle and 20K-cycle caps perform identically (Section 7).
2. Improper use — keeping the lease on a lock another thread owns stalls
   the owner's unlock behind the waiters' leases (Section 7's pitfall).
3. The Section 5 predictor — blacklists the offending lease site after a
   few involuntary releases and recovers most of the lost throughput.

Run:  python examples/lease_tuning.py
"""

from repro import MachineConfig, LeaseConfig
from repro.workloads import bench_counter

THREADS = 16


def cfg(**lease_kw) -> MachineConfig:
    lease_kw.setdefault("prioritize_regular_requests", False)
    return MachineConfig(lease=LeaseConfig(**lease_kw))


def main() -> None:
    print(f"Contended lock-based counter, {THREADS} threads\n")

    print("1) MAX_LEASE_TIME sensitivity (proper use):")
    for mlt in (1_000, 5_000, 20_000):
        r = bench_counter(THREADS, use_lease=True,
                          config=cfg(max_lease_time=mlt))
        print(f"   MAX_LEASE_TIME={mlt:>6}: {r.mops_per_sec:6.2f} Mops/s "
              f"(involuntary releases: {r.extra['invol_releases']})")

    print("\n2) Improper use (lease kept on a lock owned by another "
          "thread):")
    proper = bench_counter(THREADS, use_lease=True,
                           config=cfg(max_lease_time=2_000))
    misuse = bench_counter(THREADS, use_lease=True, misuse=True,
                           config=cfg(max_lease_time=2_000))
    print(f"   proper use : {proper.mops_per_sec:6.2f} Mops/s")
    print(f"   misuse     : {misuse.mops_per_sec:6.2f} Mops/s "
          f"({proper.mops_per_sec / misuse.mops_per_sec:.0f}x slower; "
          f"{misuse.extra['invol_releases']} involuntary releases)")

    print("\n3) The Section 5 predictor rescues the misuse:")
    rescued = bench_counter(
        THREADS, use_lease=True, misuse=True,
        config=cfg(max_lease_time=2_000, predictor_enabled=True,
                   predictor_min_samples=4))
    print(f"   misuse + predictor: {rescued.mops_per_sec:6.2f} Mops/s "
          f"({rescued.mops_per_sec / misuse.mops_per_sec:.1f}x recovery)")


if __name__ == "__main__":
    main()
