#!/usr/bin/env python3
"""Figure 2/3 in miniature: scalability of contended data structures.

Sweeps the paper's contended workloads (Treiber stack, Michael-Scott
queue, lock-based counter, skiplist priority queue) over thread counts and
prints throughput series for the base and lease variants -- the textual
version of the paper's Figures 2 and 3.

Run:  python examples/contended_structures.py [--full]
  --full uses the paper's full 2..64 thread axis (slower).
"""

import sys

from repro.harness import run_experiment
from repro.harness.runner import series_table

EXPERIMENTS = ["fig2_stack", "fig3_counter", "fig3_queue", "fig3_pq"]


def main():
    threads = (2, 4, 8, 16, 32, 64) if "--full" in sys.argv else (2, 8, 32)
    for exp_id in EXPERIMENTS:
        res = run_experiment(exp_id, thread_counts=threads)
        print(f"\n=== {exp_id} -- throughput (Mops/s) ===")
        print(series_table(res, metric="mops_per_sec"))
        print(f"--- {exp_id} -- energy (nJ/op) ---")
        print(series_table(res, metric="nj_per_op"))


if __name__ == "__main__":
    main()
