#!/usr/bin/env python3
"""Seeded fast-vs-compat engine identity fuzz.

Each round draws a random cell from the feature grid -- workload,
protocol, leases, fault spec, core count, op count -- and runs it twice:
once on the fast engine (time wheel + batch-stepped cores) and once on
the compat engine (heap event queue, one event per instruction).  The
two runs must agree *bit for bit*: field-for-field identical
``RunResult``, same ``events_processed``, same final cycle.

On a divergence the two RunResults (plus the cell needed to reproduce
it) are dumped under ``--artifact-dir`` for CI to upload, and the script
exits 1.

Run:  python examples/engine_identity.py --rounds 30 --seed 1
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import random
import sys
from dataclasses import replace

from repro.config import MachineConfig
from repro.core.isa import Store, Work
from repro.core.machine import Machine
from repro.structures import LockedCounter, MichaelScottQueue, TreiberStack

FAULT_SPECS = (
    "",
    "net_jitter:p=0.1,max=40",
    "dir_nack:p=0.05;timer_skew:4",
    "net_jitter:p=0.02,max=120;dir_nack:p=0.01",
)


def build_machine(cell: dict, engine: str) -> Machine:
    cfg = MachineConfig(num_cores=cell["threads"],
                        protocol=cell["protocol"],
                        fault_spec=cell["faults"],
                        seed=cell["machine_seed"],
                        engine=engine)
    if cell["leases"]:
        cfg = replace(cfg, lease=replace(cfg.lease, enabled=True))
    m = Machine(cfg)
    if cell["workload"] == "treiber":
        s = TreiberStack(m)
        s.prefill(range(16))
        for _ in range(cell["threads"]):
            m.add_thread(s.update_worker, cell["ops"])
    elif cell["workload"] == "msqueue":
        q = MichaelScottQueue(m, variant="multi" if cell["leases"]
                              else "single")
        q.prefill(range(16))
        for _ in range(cell["threads"]):
            m.add_thread(q.update_worker, cell["ops"])
    elif cell["workload"] == "storm":
        addr = m.alloc_var(0, label="identity.storm")

        def body(ctx, rounds=cell["ops"]):
            for i in range(rounds):
                yield Store(addr, i)
                yield Work(3)
            ctx.note_op()

        for _ in range(cell["threads"]):
            m.add_thread(body)
    else:
        c = LockedCounter(m, lock="tts")
        for _ in range(cell["threads"]):
            m.add_thread(c.update_worker, cell["ops"])
    return m


def draw_cell(rng: random.Random) -> dict:
    return {
        "workload": rng.choice(("treiber", "msqueue", "counter", "storm")),
        "protocol": rng.choice(("msi", "mesi")),
        "leases": rng.random() < 0.5,
        "faults": rng.choice(FAULT_SPECS),
        "threads": rng.choice((1, 2, 4, 8)),
        "ops": rng.randrange(6, 24),
        "machine_seed": rng.randrange(1, 10_000),
    }


def run_round(i: int, cell: dict, artifact_dir: str) -> bool:
    mf = build_machine(cell, "fast")
    mc = build_machine(cell, "compat")
    mf.run()
    mc.run()
    rf = dataclasses.asdict(mf.result("identity"))
    rc = dataclasses.asdict(mc.result("identity"))
    ok = (rf == rc
          and mf.sim.events_processed == mc.sim.events_processed
          and mf.sim.now == mc.sim.now)
    if not ok:
        path = os.path.join(artifact_dir, f"engine-identity-{i}.json")
        with open(path, "w") as f:
            json.dump({"cell": cell,
                       "fast": {"result": rf,
                                "events": mf.sim.events_processed,
                                "now": mf.sim.now},
                       "compat": {"result": rc,
                                  "events": mc.sim.events_processed,
                                  "now": mc.sim.now}},
                      f, indent=2, sort_keys=True, default=str)
        print(f"DIVERGENCE round {i}: {cell} (dump: {path})",
              file=sys.stderr)
    return ok


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--rounds", type=int, default=30)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--artifact-dir", default="engine-identity-artifacts")
    args = ap.parse_args()

    rng = random.Random(args.seed)
    os.makedirs(args.artifact_dir, exist_ok=True)
    failures = 0
    for i in range(args.rounds):
        cell = draw_cell(rng)
        if not run_round(i, cell, args.artifact_dir):
            failures += 1
    print(f"{args.rounds - failures}/{args.rounds} cells identical")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
