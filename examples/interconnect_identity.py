#!/usr/bin/env python3
"""Seeded contended-interconnect identity fuzz.

Three properties, each over random cells of the feature grid (workload,
protocol, leases, faults, core count, op count, network spec):

1. **Infinite-spec identity** -- a machine configured with
   ``network.spec="infinite"`` must be bit-identical (field-for-field
   ``RunResult``, same ``events_processed``, same final cycle) to the
   spec-less build: the default path must not grow queues.
2. **Engine identity under contention** -- with a finite-bandwidth spec,
   the fast (TimeWheel) and compat (heap) engines must still agree bit
   for bit: the batch-fold gate has to treat a non-empty link queue like
   a pending probe.
3. **Checkpoint roundtrip through saturated links** -- snapshot mid-run
   (with messages parked in link/port queues), restore into a fresh
   machine, run both plus an uninterrupted control to completion:
   all three RunResults must match field for field.

On a divergence the mismatching sides (plus the cell needed to reproduce
them) are dumped under ``--artifact-dir`` for CI to upload, and the
script exits 1.

Run:  python examples/interconnect_identity.py --rounds 20 --ckpt-rounds 8
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import random
import sys
from dataclasses import replace

from repro.config import MachineConfig
from repro.core.machine import Machine
from repro.structures import LockedCounter, TreiberStack

FAULT_SPECS = (
    "",
    "net_jitter:p=0.1,max=40",
    "dir_nack:p=0.05;timer_skew:4",
    "link_degrade:p=0.3,factor=4",
    "net_jitter:p=0.02,max=120;link_degrade:p=0.2,factor=2,queue=2",
)


def draw_net_spec(rng: random.Random) -> str:
    clauses = [f"link:bw={rng.choice((1, 2, 3))}"]
    if rng.random() < 0.6:
        clauses[0] += f",queue={rng.choice((2, 4, 8))}"
    if rng.random() < 0.5:
        clauses[0] += f",flits={rng.choice((2, 4, 8))}"
    arb = rng.choice(("fifo", "wrr", "priority"))
    if arb == "wrr":
        clauses.append(f"arb:wrr,weights={rng.choice((1, 2, 3))}"
                       f":{rng.choice((1, 2))}")
    else:
        clauses.append(f"arb:{arb}")
    if rng.random() < 0.7:
        clauses.append(f"port:dir={rng.choice((1, 2))}"
                       f",mem={rng.choice((2, 4))}"
                       f",queue={rng.choice((2, 4))}")
    return ";".join(clauses)


def draw_cell(rng: random.Random) -> dict:
    return {
        "workload": rng.choice(("treiber", "counter")),
        "protocol": rng.choice(("msi", "mesi")),
        "leases": rng.random() < 0.5,
        "faults": rng.choice(FAULT_SPECS),
        "threads": rng.choice((2, 4, 8)),
        "ops": rng.randrange(6, 20),
        "machine_seed": rng.randrange(1, 10_000),
        "net": draw_net_spec(rng),
        "cut": rng.randrange(150, 900),
    }


def build_machine(cell: dict, engine: str, spec: str) -> Machine:
    cfg = MachineConfig(num_cores=cell["threads"],
                        protocol=cell["protocol"],
                        fault_spec=cell["faults"],
                        seed=cell["machine_seed"],
                        engine=engine)
    cfg = cfg.with_leases(cell["leases"])
    cfg = replace(cfg, network=replace(cfg.network, spec=spec))
    m = Machine(cfg)
    if cell["workload"] == "treiber":
        s = TreiberStack(m)
        s.prefill(range(16))
        for _ in range(cell["threads"]):
            m.add_thread(s.update_worker, cell["ops"])
    else:
        c = LockedCounter(m, lock="tts")
        for _ in range(cell["threads"]):
            m.add_thread(c.update_worker, cell["ops"])
    return m


def _run(m: Machine) -> dict:
    m.run()
    return {"result": dataclasses.asdict(m.result("identity")),
            "events": m.sim.events_processed, "now": m.sim.now}


def _dump(artifact_dir: str, name: str, payload: dict) -> str:
    path = os.path.join(artifact_dir, name)
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True, default=str)
    return path


def run_identity_round(i: int, cell: dict, artifact_dir: str) -> bool:
    ok = True
    # 1. infinite spec == no spec (link_degrade only bites on a
    #    contended build, so keep the fault spec out of this leg).
    plain_cell = dict(cell, faults="")
    plain = _run(build_machine(plain_cell, "fast", ""))
    inf = _run(build_machine(plain_cell, "fast", "infinite"))
    if plain != inf:
        path = _dump(artifact_dir, f"infinite-identity-{i}.json",
                     {"cell": plain_cell, "plain": plain, "infinite": inf})
        print(f"INFINITE-SPEC DIVERGENCE round {i}: {cell} "
              f"(dump: {path})", file=sys.stderr)
        ok = False
    # 2. fast == compat under the contended spec.
    fast = _run(build_machine(cell, "fast", cell["net"]))
    compat = _run(build_machine(cell, "compat", cell["net"]))
    if fast != compat:
        path = _dump(artifact_dir, f"engine-identity-{i}.json",
                     {"cell": cell, "fast": fast, "compat": compat})
        print(f"ENGINE DIVERGENCE round {i}: {cell} (dump: {path})",
              file=sys.stderr)
        ok = False
    return ok


def run_ckpt_round(i: int, cell: dict, artifact_dir: str) -> bool:
    m1 = build_machine(cell, "fast", cell["net"])
    m1.enable_checkpointing()
    m1.run(until=cell["cut"])
    state = json.loads(json.dumps(m1.state_dict()))

    m2 = build_machine(cell, "fast", cell["net"])
    m2.load_state(state)
    m1.run()
    m2.run()
    m3 = build_machine(cell, "fast", cell["net"])
    m3.run()

    r1 = dataclasses.asdict(m1.result("identity"))
    r2 = dataclasses.asdict(m2.result("identity"))
    r3 = dataclasses.asdict(m3.result("identity"))
    if r1 == r2 == r3:
        return True
    path = _dump(artifact_dir, f"ckpt-roundtrip-{i}.json",
                 {"cell": cell, "checkpointed": r1, "restored": r2,
                  "uninterrupted": r3})
    print(f"ROUNDTRIP DIVERGENCE round {i}: {cell} (dump: {path})",
          file=sys.stderr)
    return False


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--rounds", type=int, default=20)
    ap.add_argument("--ckpt-rounds", type=int, default=8)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--artifact-dir",
                    default="interconnect-identity-artifacts")
    args = ap.parse_args()

    rng = random.Random(args.seed)
    os.makedirs(args.artifact_dir, exist_ok=True)
    failures = 0
    for i in range(args.rounds):
        if not run_identity_round(i, draw_cell(rng), args.artifact_dir):
            failures += 1
    for i in range(args.ckpt_rounds):
        if not run_ckpt_round(i, draw_cell(rng), args.artifact_dir):
            failures += 1
    total = args.rounds + args.ckpt_rounds
    print(f"{total - failures}/{total} cells identical "
          f"({args.rounds} identity + {args.ckpt_rounds} roundtrip)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
