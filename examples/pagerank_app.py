#!/usr/bin/env python3
"""Lock-based Pagerank (Figure 5 right): a whole application on the
simulated machine.

A synthetic power-law web graph with ~25% dangling ("inaccessible") pages;
every thread accumulates dangling rank mass into one shared variable under
a single global lock.  Leasing that lock's line for the critical section
is what lets the application scale.

Run:  python examples/pagerank_app.py
"""

from repro import Machine, MachineConfig
from repro.apps import PagerankApp

THREADS = (2, 4, 8, 16, 32)
PAGES = 256
ITERATIONS = 2


def run(num_threads: int, use_lease: bool):
    cfg = MachineConfig(num_cores=num_threads).with_leases(use_lease)
    m = Machine(cfg)
    app = PagerankApp(m, num_pages=PAGES, num_threads=num_threads,
                      iterations=ITERATIONS)
    for tid in range(num_threads):
        m.add_thread(app.worker, tid)
    m.run()
    return m.result("pagerank"), app


def main():
    print(f"Pagerank: {PAGES} pages, {ITERATIONS} iterations, ~25% "
          "dangling pages behind one lock\n")
    print(f"{'threads':>8} {'base Mpages/s':>14} {'lease Mpages/s':>15} "
          f"{'speedup':>8}")
    for n in THREADS:
        base, _ = run(n, use_lease=False)
        lease, app = run(n, use_lease=True)
        print(f"{n:>8} {base.mops_per_sec:>14.2f} "
              f"{lease.mops_per_sec:>15.2f} "
              f"{lease.mops_per_sec / base.mops_per_sec:>7.1f}x")
    top = sorted(enumerate(app.ranks_direct()), key=lambda p: -p[1])[:5]
    print("\nTop-5 pages by rank (lease run, results identical to base):")
    for page, rank in top:
        print(f"  page {page:>4}: {rank:.5f}")


if __name__ == "__main__":
    main()
