#!/usr/bin/env python3
"""Where does the contention live?  Tracing the Treiber stack.

Attaches a ContentionHeatmap and a JSONL event recorder to the Figure 2
workload (100% push/pop updates on a Treiber stack).  The heatmap
aggregates directory queueing and probe traffic per cache line and
resolves the lines to allocation labels, so the paper's story — all the
pressure concentrates on the head pointer — is visible by name.  The
JSONL trace is reconciled against the run's counters before printing.

Run:  python examples/trace_contention.py
"""

import io
import json

from repro.trace import ContentionHeatmap, JsonlTracer, reconcile
from repro.workloads.driver import bench_stack

THREADS = 16
OPS_PER_THREAD = 50


def main():
    heat = ContentionHeatmap()
    buf = io.StringIO()
    jsonl = JsonlTracer(buf)

    res = bench_stack(THREADS, variant="base",
                      ops_per_thread=OPS_PER_THREAD, sinks=[heat, jsonl])

    print(f"Treiber stack (base), {THREADS} threads, "
          f"{res.ops} ops, {res.cycles} cycles\n")

    print("-- contention heatmap (by allocation label) --")
    print(heat.report(top=8))

    head = heat.rows(top=1)[0]
    pressure = lambda r: r["dir_queued"] + r["probes"]
    share = pressure(head) / max(1, sum(pressure(r) for r in heat.rows()))
    print(f"\n{head['allocation']} absorbs {share:.0%} of all queueing/"
          "probe pressure — the single contended line the lease covers.")

    # The event stream must agree with the counter aggregate, always.
    problems = reconcile(jsonl.counts, res.counters)
    assert not problems, problems
    print(f"\n{jsonl.total} events recorded; trace/counter reconciliation OK")

    print("\n-- first three events --")
    for line in buf.getvalue().splitlines()[:3]:
        print(json.dumps(json.loads(line), sort_keys=True))


if __name__ == "__main__":
    main()
