#!/usr/bin/env python3
"""Seeded open-loop traffic identity fuzz.

Each round draws a random cell -- workload, arrival process, key
distribution, tenants, queue depth, thread count, faults -- and checks
the determinism contract of :mod:`repro.traffic` three ways:

1. **Engine identity**: the cell runs once on the fast engine and once
   on the compat engine; the full ``RunResult`` including the latency
   histogram (``latency["hist"]``), admitted and shed counts must be
   bit-identical.
2. **Checkpoint/restore identity**: the fast run is cut mid-flight with
   a ``state_dict`` -> JSON -> ``load_state`` roundtrip into a fresh
   machine; the restored run must reproduce the same histogram.
3. **Serial vs ``--jobs`` identity** (once per invocation): a two-cell
   sweep through the real harness path runs serially and on two worker
   processes; each cell's latency payload must match.

On a divergence the cell and both sides are dumped under
``--artifact-dir`` for CI to upload, and the script exits 1.

Run:  python examples/traffic_identity.py --rounds 20 --seed 1
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import random
import sys
from dataclasses import replace

from repro.config import MachineConfig
from repro.core.machine import Machine
from repro.structures import LockedCounter, TreiberStack
from repro.traffic import (TrafficSource, traffic_counter_worker,
                           traffic_stack_worker)
from repro.workloads.driver import bench_counter, bench_skiplist, bench_stack

FAULT_SPECS = (
    "",
    "net_jitter:p=0.05,max=60",
    "dir_nack:p=0.02;timer_skew:4",
)

ARRIVALS = (
    "poisson:rate={rate}",
    "burst:rate={rate},on=300,off=500",
    "ramp:rate={rate},period=800",
)

KEYS = ("", "zipf:s=1.2", "hotset:frac=0.9,size=4,shift=64")


def draw_cell(rng: random.Random) -> dict:
    rate = rng.choice((1.0, 2.0, 4.0, 8.0))
    spec = ARRIVALS[rng.randrange(len(ARRIVALS))].format(rate=rate)
    keys = rng.choice(KEYS)
    if keys:
        spec += "," + keys
    if rng.random() < 0.5:
        spec += f",tenants={rng.choice((2, 3))}"
    spec += f",queue={rng.choice((4, 8, 16))}"
    return {
        "workload": rng.choice(("counter", "treiber", "skiplist")),
        "traffic": spec,
        "faults": rng.choice(FAULT_SPECS),
        "leases": rng.random() < 0.5,
        "threads": rng.choice((2, 4, 8)),
        "ops": rng.randrange(6, 20),
        "machine_seed": rng.randrange(1, 10_000),
    }


def run_cell(cell: dict, engine: str):
    cfg = MachineConfig(fault_spec=cell["faults"],
                        seed=cell["machine_seed"], engine=engine)
    spec = cell["traffic"] + f",ops={cell['ops']}"
    if cell["workload"] == "treiber":
        return bench_stack(cell["threads"],
                           variant="lease" if cell["leases"] else "base",
                           traffic=spec, config=cfg)
    if cell["workload"] == "skiplist":
        return bench_skiplist(cell["threads"], key_range=64,
                              use_lease=cell["leases"], traffic=spec,
                              config=cfg)
    return bench_counter(cell["threads"], use_lease=cell["leases"],
                         traffic=spec, config=cfg)


def build_direct(cell: dict) -> tuple[Machine, TrafficSource]:
    """Checkpointable build of the counter/treiber cells (the restore leg
    needs a mid-run cut, which the driver benches don't expose)."""
    cfg = MachineConfig(num_cores=cell["threads"],
                        fault_spec=cell["faults"],
                        seed=cell["machine_seed"], engine="fast")
    if cell["leases"]:
        cfg = replace(cfg, lease=replace(cfg.lease, enabled=True))
    m = Machine(cfg)
    m.enable_checkpointing()
    src = TrafficSource(cell["traffic"], num_lanes=cell["threads"],
                        seed=cfg.seed, key_range=64,
                        default_ops=cell["ops"])
    if cell["workload"] == "treiber":
        s = TreiberStack(m, lease_time=600)
        s.prefill(range(16))
        for t in range(cell["threads"]):
            m.add_thread(traffic_stack_worker, s, src.lane(t))
    else:
        c = LockedCounter(m, lock="tts")
        for t in range(cell["threads"]):
            m.add_thread(traffic_counter_worker, c, src.lane(t))
    return m, src


def dump(artifact_dir: str, name: str, payload: dict) -> str:
    path = os.path.join(artifact_dir, name)
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True, default=str)
    return path


def run_round(i: int, cell: dict, artifact_dir: str) -> bool:
    rf = dataclasses.asdict(run_cell(cell, "fast"))
    rc = dataclasses.asdict(run_cell(cell, "compat"))
    if rf != rc:
        path = dump(artifact_dir, f"traffic-identity-{i}-engine.json",
                    {"cell": cell, "fast": rf, "compat": rc})
        print(f"ENGINE DIVERGENCE round {i}: {cell} (dump: {path})",
              file=sys.stderr)
        return False
    if cell["workload"] == "skiplist":
        return True

    ref_m, ref_src = build_direct(cell)
    ref_m.run()
    cut_m, _ = build_direct(cell)
    cut_m.run(until=max(1, ref_m.sim.now // 2))
    blob = json.dumps(cut_m.state_dict())
    res_m, res_src = build_direct(cell)
    res_m.load_state(json.loads(blob))
    res_m.run()
    if (res_src.histogram() != ref_src.histogram()
            or res_src.admitted != ref_src.admitted
            or res_src.shed != ref_src.shed):
        path = dump(artifact_dir, f"traffic-identity-{i}-restore.json",
                    {"cell": cell,
                     "straight": ref_src.summary(),
                     "restored": res_src.summary()})
        print(f"RESTORE DIVERGENCE round {i}: {cell} (dump: {path})",
              file=sys.stderr)
        return False
    return True


def check_jobs_identity(artifact_dir: str) -> bool:
    """One fixed sweep, serial vs two worker processes: per-cell latency
    payloads (histogram included) must match."""
    from repro.harness import run_experiment

    spec = "poisson:rate=2.0,zipf:s=1.1,tenants=2,ops=10"
    kw = dict(thread_counts=(2, 4), seed=11, traffic=spec)
    serial = run_experiment("counter", jobs=1, **kw)
    fanned = run_experiment("counter", jobs=2, **kw)
    ser = {name: [r.latency for r in series]
           for name, series in serial.items()}
    fan = {name: [r.latency for r in series]
           for name, series in fanned.items()}
    if ser != fan:
        path = dump(artifact_dir, "traffic-identity-jobs.json",
                    {"spec": spec, "serial": ser, "jobs2": fan})
        print(f"JOBS DIVERGENCE: serial vs --jobs 2 (dump: {path})",
              file=sys.stderr)
        return False
    return True


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--rounds", type=int, default=20)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--artifact-dir", default="traffic-identity-artifacts")
    args = ap.parse_args()

    rng = random.Random(args.seed)
    os.makedirs(args.artifact_dir, exist_ok=True)
    failures = 0
    for i in range(args.rounds):
        cell = draw_cell(rng)
        if not run_round(i, cell, args.artifact_dir):
            failures += 1
    if not check_jobs_identity(args.artifact_dir):
        failures += 1
    print(f"{args.rounds - failures}/{args.rounds} cells identical "
          "(+ serial-vs-jobs sweep check)" if not failures else
          f"{failures} divergence(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
