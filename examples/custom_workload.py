#!/usr/bin/env python3
"""Writing your own workload against the simulated ISA.

Thread bodies are Python generators that yield instructions (Load, Store,
CAS, Work, Lease, Release, MultiLease, ...) and receive each instruction's
result.  This example builds a tiny bank: accounts live one-per-cache-line,
and transfers jointly lease both accounts' lines so the debit and credit
commit without interference (and, thanks to MultiLease's globally sorted
acquisition, without deadlock).

It also demonstrates the voluntary-release bit: an auditing thread takes a
lease-based snapshot of all balances and verifies the total is conserved
*while transfers are running* -- something a plain double-collect would
have to retry for.

Run:  python examples/custom_workload.py
"""

from repro import (Load, Machine, MachineConfig, MultiLease, ReleaseAll,
                   Store, Work, LeaseConfig)

ACCOUNTS = 6
INITIAL = 1000
TRANSFERS = 60
THREADS = 6


def transfer_worker(ctx, accounts):
    """Move random amounts between random account pairs, atomically."""
    for _ in range(TRANSFERS):
        src, dst = ctx.rng.sample(range(ACCOUNTS), 2)
        amount = ctx.rng.randrange(1, 50)
        yield MultiLease((accounts[src], accounts[dst]))
        a = yield Load(accounts[src])
        b = yield Load(accounts[dst])
        yield Work(10)                      # "business logic"
        yield Store(accounts[src], a - amount)
        yield Store(accounts[dst], b + amount)
        yield ReleaseAll()
        yield Work(30)


def auditor(ctx, accounts, failures):
    """Lease-based snapshot (Section 5 'Cheap Snapshots'): if every
    release is voluntary, the balances were read atomically."""
    from repro import Lease, Release
    for _ in range(10):
        while True:
            for a in accounts:
                yield Lease(a)
            total = 0
            for a in accounts:
                v = yield Load(a)
                total += v
            ok = True
            for a in accounts:
                vol = yield Release(a)
                ok = ok and vol
            if ok:
                break
        if total != ACCOUNTS * INITIAL:
            failures.append(total)
        yield Work(500)


def main():
    cfg = MachineConfig(
        num_cores=THREADS + 1,
        lease=LeaseConfig(enabled=True,
                          prioritize_regular_requests=False))
    m = Machine(cfg)
    accounts = [m.alloc_var(INITIAL) for _ in range(ACCOUNTS)]
    failures: list = []
    for _ in range(THREADS):
        m.add_thread(transfer_worker, accounts)
    m.add_thread(auditor, accounts, failures)
    cycles = m.run()
    m.check_coherence_invariants()

    total = sum(m.peek(a) for a in accounts)
    print(f"{THREADS} transfer threads x {TRANSFERS} transfers "
          f"in {cycles} simulated cycles")
    print(f"final balances: {[m.peek(a) for a in accounts]}")
    print(f"total = {total} (expected {ACCOUNTS * INITIAL})")
    print(f"mid-run audit snapshots with broken totals: {len(failures)}")
    assert total == ACCOUNTS * INITIAL
    assert not failures
    k = m.counters
    print(f"traffic: {k.messages} messages, {k.l1_misses} L1 misses, "
          f"{k.probes_queued_at_core} probes queued behind leases")


if __name__ == "__main__":
    main()
