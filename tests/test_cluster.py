"""The cluster layer (``repro.cluster``): config/spec validation, the
PaxosLease negotiation, workload correctness, determinism, engine
bit-identity, trace events, and the CLI surface."""

from __future__ import annotations

import dataclasses
from dataclasses import replace

import pytest

from repro.__main__ import main
from repro.cluster import (Cluster, ClusterConfig, bench_cluster,
                           build_cluster, node_seed, parse_cluster_spec,
                           verify_cluster_counters)
from repro.config import MachineConfig
from repro.errors import ConfigError, SimulationError
from repro.trace.bus import Tracer
from repro.trace.events import (ClusterLeaseAcquired, ClusterLeaseReleased,
                                NodeMsgSent, PaxosRoundStarted)

FAULTY_SPEC = ("loss:p=0.1;dup:p=0.05;partition:p=0.05,len=2000,check=400;"
               "skew:40;delay:min=60,max=160")


def _mc(threads: int = 2, engine: str = "fast",
        seed: int = 1) -> MachineConfig:
    cfg = MachineConfig(num_cores=threads, seed=seed, engine=engine)
    return replace(cfg, lease=replace(cfg.lease, enabled=True))


# -- spec + config validation -------------------------------------------------

def test_parse_cluster_spec_full():
    spec = parse_cluster_spec(FAULTY_SPEC)
    assert spec.loss_p == 0.1
    assert spec.dup_p == 0.05
    assert spec.partition_p == 0.05
    assert spec.partition_len == 2000
    assert spec.partition_check == 400
    assert spec.skew == 40
    assert (spec.delay_min, spec.delay_max) == (60, 160)


def test_parse_cluster_spec_empty_means_reliable():
    spec = parse_cluster_spec("")
    assert spec.loss_p == 0.0 and spec.dup_p == 0.0
    assert spec.partition_p == 0.0 and spec.skew == 0


@pytest.mark.parametrize("bad", [
    "bogus:x=1",
    "loss:p=1.5",
    "loss:p=0.1;loss:p=0.2",
    "partition:p=0.1",          # missing len
    "delay:min=100,max=50",     # inverted range
])
def test_parse_cluster_spec_rejects(bad):
    with pytest.raises(ConfigError):
        parse_cluster_spec(bad)


def test_cluster_config_rejects_bad_nodes():
    with pytest.raises(ConfigError, match="--nodes must be >= 1, got 0"):
        ClusterConfig(nodes=0)
    with pytest.raises(ConfigError, match="--nodes must be >= 1, got -2"):
        ClusterConfig(nodes=-2)


def test_cluster_config_rejects_bad_quorum():
    with pytest.raises(ConfigError):
        ClusterConfig(nodes=3, quorum=4)
    with pytest.raises(ConfigError):
        ClusterConfig(nodes=3, quorum=0)


def test_cluster_config_rejects_skew_swallowing_lease():
    with pytest.raises(ConfigError):
        ClusterConfig(nodes=2, lease_cycles=100, renew_margin=10,
                      cluster_spec="skew:60")


def test_cluster_config_majority_quorum():
    assert ClusterConfig(nodes=1).effective_quorum == 1
    assert ClusterConfig(nodes=2).effective_quorum == 2
    assert ClusterConfig(nodes=3).effective_quorum == 2
    assert ClusterConfig(nodes=5).effective_quorum == 3
    assert ClusterConfig(nodes=3, quorum=3).effective_quorum == 3


def test_node_seeds_distinct_and_nonzero():
    seeds = [node_seed(1, n) for n in range(8)]
    assert len(set(seeds)) == 8
    assert all(s > 0 for s in seeds)


def test_member_machine_rejects_own_strategy():
    cluster = Cluster(ClusterConfig(nodes=2, machine=_mc()))
    from repro.core.machine import Machine

    with pytest.raises(SimulationError, match="shared simulator"):
        Machine(_mc(), schedule_strategy=object(), sim=cluster.sim)


# -- workload correctness -----------------------------------------------------

def test_counter_workload_every_increment_lands_once():
    res = bench_cluster(2, structure="counter", nodes=3, objects=2,
                        ops_per_thread=5, config=_mc())
    # bench_cluster already asserts the shard sum internally; check the
    # headline numbers too.
    assert res.ops == 3 * 2 * 5
    assert res.extra["nodes"] == 3
    assert res.extra["cluster_leases_acquired"] >= 2


def test_counter_workload_under_faults():
    res = bench_cluster(2, structure="counter", nodes=3, objects=2,
                        ops_per_thread=5, cluster_spec=FAULTY_SPEC,
                        lease_cycles=4_000, renew_margin=1_000,
                        config=_mc())
    assert res.ops == 3 * 2 * 5
    assert res.extra["node_msgs_dropped"] > 0


def test_treiber_workload_completes():
    res = bench_cluster(2, structure="treiber", nodes=2, objects=2,
                        ops_per_thread=4, config=_mc())
    assert res.ops == 2 * 2 * 4
    assert res.extra["paxos_rounds"] >= 2


def test_guard_denial_when_lease_expires_mid_burst():
    # Tiny lease, long bursts, lossy network: some guards must observe an
    # expired cluster lease and force a re-acquire.
    res = bench_cluster(2, structure="counter", nodes=3, objects=1,
                        ops_per_thread=12, burst=12,
                        cluster_spec="loss:p=0.25;delay:min=100,max=400",
                        lease_cycles=1_200, renew_margin=300,
                        config=_mc())
    assert res.ops == 3 * 2 * 12
    assert (res.extra["cluster_guard_denied"]
            + res.extra["cluster_leases_expired"]) > 0


def test_unknown_structure_rejected():
    with pytest.raises(SimulationError, match="unknown cluster structure"):
        build_cluster(ClusterConfig(nodes=2, machine=_mc()),
                      structure="btree")


def test_verify_cluster_counters_catches_tampering():
    cluster, info = build_cluster(ClusterConfig(nodes=2, machine=_mc()),
                                  structure="counter", ops_per_thread=3)
    cluster.run()
    verify_cluster_counters(cluster, info)
    addr = info["shards_per_node"][0][0]
    cluster.nodes[0].memory.write(addr, cluster.nodes[0].peek(addr) + 1)
    with pytest.raises(SimulationError, match="counter mismatch"):
        verify_cluster_counters(cluster, info)


# -- determinism + engines ----------------------------------------------------

def _result_dict(res):
    return dataclasses.asdict(res)


def test_same_seed_same_result():
    a = bench_cluster(2, nodes=3, ops_per_thread=5,
                      cluster_spec=FAULTY_SPEC, lease_cycles=4_000,
                      renew_margin=1_000, config=_mc(seed=9))
    b = bench_cluster(2, nodes=3, ops_per_thread=5,
                      cluster_spec=FAULTY_SPEC, lease_cycles=4_000,
                      renew_margin=1_000, config=_mc(seed=9))
    assert _result_dict(a) == _result_dict(b)


def test_different_seed_different_schedule():
    a = bench_cluster(2, nodes=3, ops_per_thread=5,
                      cluster_spec=FAULTY_SPEC, lease_cycles=4_000,
                      renew_margin=1_000, config=_mc(seed=9))
    b = bench_cluster(2, nodes=3, ops_per_thread=5,
                      cluster_spec=FAULTY_SPEC, lease_cycles=4_000,
                      renew_margin=1_000, config=_mc(seed=10))
    assert _result_dict(a) != _result_dict(b)


@pytest.mark.parametrize("structure", ["counter", "treiber"])
def test_fast_and_compat_engines_bit_identical(structure):
    results = {}
    for engine in ("fast", "compat"):
        results[engine] = bench_cluster(
            2, structure=structure, nodes=3, objects=2, ops_per_thread=5,
            cluster_spec=FAULTY_SPEC, lease_cycles=4_000,
            renew_margin=1_000, config=_mc(engine=engine))
    assert _result_dict(results["fast"]) == _result_dict(results["compat"])


# -- trace events + counters --------------------------------------------------

class _Recorder(Tracer):
    def __init__(self):
        self.events = []

    def on_event(self, ev):
        self.events.append(ev)


def test_cluster_bus_emits_typed_events():
    rec = _Recorder()
    bench_cluster(2, nodes=2, ops_per_thread=4, config=_mc(),
                  sinks=[rec])
    kinds = {type(e) for e in rec.events}
    assert NodeMsgSent in kinds
    assert PaxosRoundStarted in kinds
    assert ClusterLeaseAcquired in kinds
    assert ClusterLeaseReleased in kinds


def test_cluster_counters_reconcile_with_events():
    rec = _Recorder()
    res = bench_cluster(2, nodes=3, ops_per_thread=4,
                        cluster_spec=FAULTY_SPEC, lease_cycles=4_000,
                        renew_margin=1_000, config=_mc(), sinks=[rec])
    sent = sum(1 for e in rec.events if type(e) is NodeMsgSent)
    rounds = sum(1 for e in rec.events if type(e) is PaxosRoundStarted)
    grants = sum(1 for e in rec.events if type(e) is ClusterLeaseAcquired)
    assert res.extra["node_msgs"] == sent
    assert res.extra["paxos_rounds"] == rounds
    assert res.extra["cluster_leases_acquired"] == grants


def test_merged_counters_rekey_per_core_ops():
    cluster, _ = build_cluster(
        ClusterConfig(nodes=2, machine=_mc(threads=2)),
        structure="counter", ops_per_thread=3)
    cluster.run()
    merged = cluster.merged_counters()
    assert set(merged.per_core_ops) == {0, 1, 2, 3}
    assert sum(merged.per_core_ops.values()) == merged.ops_completed


# -- CLI surface --------------------------------------------------------------

def test_cli_run_cluster_experiment(capsys):
    rc = main(["run", "cluster_shards", "--threads", "2", "--nodes", "3",
               "--metric", "mops_per_sec"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "counter" in out and "treiber" in out


def test_cli_run_rejects_nodes_zero(capsys):
    assert main(["run", "cluster_shards", "--threads", "2",
                 "--nodes", "0"]) == 2
    err = capsys.readouterr().err
    assert "--nodes must be >= 1, got 0" in err


def test_cli_run_rejects_nodes_noninteger(capsys):
    assert main(["run", "cluster_shards", "--threads", "2",
                 "--nodes", "two"]) == 2
    assert "--nodes:" in capsys.readouterr().err


def test_cli_run_rejects_nodes_on_noncluster_experiment(capsys):
    assert main(["run", "fig2_stack", "--threads", "2",
                 "--nodes", "2"]) == 2
    assert "not a cluster experiment" in capsys.readouterr().err


def test_cli_check_list_targets_includes_cluster(capsys):
    assert main(["check", "--list-targets"]) == 0
    out = capsys.readouterr().out
    assert "cluster_lease" in out
    assert "PaxosLease" in out


def test_cli_bench_list_includes_cluster_scale(capsys):
    assert main(["bench", "--list"]) == 0
    assert "cluster_scale" in capsys.readouterr().out


def test_cli_check_cluster_rejects_bad_flags(capsys):
    assert main(["check", "cluster_lease", "--nodes", "0"]) == 2
    assert "--nodes must be >= 1" in capsys.readouterr().err
    assert main(["check", "cluster_lease", "--cluster", "bogus:x=1"]) == 2
    assert "--cluster:" in capsys.readouterr().err
    assert main(["check", "cluster_lease", "--quorum", "q"]) == 2
    assert "--quorum:" in capsys.readouterr().err
    assert main(["check", "cluster_lease", "--structure", "btree"]) == 2
    assert "--structure:" in capsys.readouterr().err
    assert main(["check", "cluster_lease", "--faults", "timer_skew:4"]) == 2
    assert "--cluster SPEC" in capsys.readouterr().err
