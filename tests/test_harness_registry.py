"""Harness registry internals: Experiment dataclass, overrides, and the
CLI paths not already covered."""

import pytest

from repro.__main__ import main
from repro.harness import EXPERIMENTS, Experiment, run_experiment
from repro.workloads import bench_stack


def test_experiment_is_frozen():
    exp = EXPERIMENTS["fig2_stack"]
    with pytest.raises(Exception):
        exp.title = "changed"


def test_register_custom_experiment_roundtrip():
    from repro.harness.experiments import _register
    exp = Experiment(
        id="custom_test_exp",
        title="custom",
        bench=bench_stack,
        variants={"base": {"variant": "base"}},
        common={"ops_per_thread": 5},
        paper_claim="n/a",
    )
    _register(exp)
    try:
        res = run_experiment("custom_test_exp", thread_counts=(2,))
        assert res["base"][0].ops == 10
    finally:
        del EXPERIMENTS["custom_test_exp"]


def test_run_experiment_overrides_common():
    res = run_experiment("fig2_stack", thread_counts=(2,),
                         ops_per_thread=4)
    assert res["base"][0].ops == 8


def test_all_experiment_benches_are_callables():
    for exp in EXPERIMENTS.values():
        assert callable(exp.bench)
        for kw in exp.variants.values():
            assert isinstance(kw, dict)


def test_cli_list_covers_all_experiments(capsys):
    main(["list"])
    out = capsys.readouterr().out
    for exp_id in EXPERIMENTS:
        assert exp_id in out


def test_cli_run_ablation_experiment(capsys):
    rc = main(["run", "a2_lease_time", "--threads", "2",
               "--metric", "mops_per_sec"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "lease_20k" in out and "lease_1k" in out
