"""The instrumentation bus: taxonomy, sinks, reconciliation, invariants."""

import io
import json

import pytest

from repro import Machine, MachineConfig
from repro.errors import ProtocolError
from repro.trace import (ContentionHeatmap, CountersTracer, InvariantTracer,
                         JsonlTracer, NullTracer, RingBufferTracer, TraceBus,
                         reconcile)
from repro.trace import events as ev
from repro.workloads.driver import bench_counter, bench_queue, bench_stack

from conftest import make_machine


# -- events -----------------------------------------------------------------

def test_event_to_dict_includes_kind_time_and_payload():
    e = ev.ReqIssued(3, 17, "GetX", True)
    e.t = 42
    d = e.to_dict()
    assert d == {"kind": "req_issued", "t": 42, "core": 3, "line": 17,
                 "req": "GetX", "is_lease": True}


def test_every_event_kind_is_unique():
    kinds = [cls.kind for cls in vars(ev).values()
             if isinstance(cls, type) and issubclass(cls, ev.TraceEvent)
             and cls is not ev.TraceEvent]
    assert len(kinds) == len(set(kinds))


def test_lease_release_modes_cover_counter_fields():
    assert set(ev.LeaseReleased.MODES) == {
        "voluntary", "expired", "broken", "fifo"}


# -- bus --------------------------------------------------------------------

def test_bus_without_sinks_is_a_noop():
    bus = TraceBus()
    bus.emit(ev.L1Hit(0, 0))        # must not raise


def test_bus_stamps_time_and_fans_out():
    now = [0]
    ring_a, ring_b = RingBufferTracer(), RingBufferTracer()
    bus = TraceBus(clock=lambda: now[0], sinks=(ring_a,))
    bus.attach(ring_b)
    now[0] = 7
    bus.emit(ev.L1Hit(0, 5))
    assert ring_a.events()[0].t == 7
    assert ring_b.events()[0].t == 7
    bus.detach(ring_b)
    bus.emit(ev.L1Hit(0, 6))
    assert ring_a.total == 2 and ring_b.total == 1


def test_null_tracer_drops_everything():
    bus = TraceBus(sinks=(NullTracer(),))
    bus.emit(ev.L1Hit(0, 0))        # must not raise


# -- counters sink ----------------------------------------------------------

def test_counters_sink_rebuilds_classic_counters():
    sink = CountersTracer()
    bus = TraceBus(sinks=(sink,))
    bus.emit(ev.L1Hit(0, 1))
    bus.emit(ev.L1Miss(0, 2))
    bus.emit(ev.MessageSent(0, 3, "GetS", 2, False))
    bus.emit(ev.ReqIssued(0, 2, "GetS", False))
    bus.emit(ev.ReqIssued(1, 2, "GetX", False))
    bus.emit(ev.ReqQueued(1, 2, 3))
    bus.emit(ev.ProbeSent(0, 2, "Inv"))
    bus.emit(ev.ProbeServiced(0, 2, "Inv", stale=True, data=False))
    bus.emit(ev.LeaseReleased(0, 2, "fifo"))
    bus.emit(ev.CasOutcome(0, 64, False))
    bus.emit(ev.OpCompleted(1))
    k = sink.counters
    assert k.l1_hits == 1 and k.l1_misses == 1
    assert k.messages == 1 and k.hops == 2
    assert k.gets_requests == 1 and k.getx_requests == 1
    assert k.dir_queued_requests == 1 and k.dir_max_queue_depth == 3
    assert k.invalidations_sent == 1 and k.stale_probes == 1
    assert k.releases_fifo_eviction == 1
    assert k.cas_attempts == 1 and k.cas_failures == 1
    assert k.ops_completed == 1 and k.per_core_ops == {1: 1}


# -- the fast path ----------------------------------------------------------

def test_counters_only_bus_skips_event_objects():
    # With only fast-handler sinks attached, no type needs the object...
    bus = TraceBus(sinks=(CountersTracer(),))
    assert bus.fast_path_enabled
    assert not bus.wants(ev.L1Hit)
    assert not bus.wants(ev.MessageSent)
    # ...yet the slots still feed the counters.
    bus.l1_hit(0, 1)
    bus.message(0, 3, "GetS", 2, False)
    k = bus.sinks[0].counters
    assert k.l1_hits == 1 and k.messages == 1 and k.hops == 2


def test_fast_and_slow_slots_build_identical_counters():
    def storm(bus):
        for i in range(50):
            bus.l1_hit(0, i)
            bus.l1_miss(1, i)
            bus.message(0, 1, "GetX", 3, True)
            bus.req_queued(1, i, i % 7)
            bus.cas(0, 64, i % 3 == 0)
            bus.lease_released(0, i, "voluntary")
            bus.op_completed(i % 4)

    fast, slow = TraceBus(sinks=(CountersTracer(),)), \
        TraceBus(sinks=(CountersTracer(),))
    slow.set_fast_path(False)
    assert slow.wants(ev.L1Hit)     # slow path constructs every object
    storm(fast)
    storm(slow)
    assert fast.sinks[0].counters == slow.sinks[0].counters


def test_object_sink_forces_slow_slot_for_its_types_only():
    heat = ContentionHeatmap()
    bus = TraceBus(sinks=(CountersTracer(), heat))
    # The heatmap wants objects for its four kinds; everything else stays
    # on the allocation-free path.
    assert bus.wants(ev.ReqQueued) and bus.wants(ev.ProbeDeferred)
    assert not bus.wants(ev.L1Hit) and not bus.wants(ev.MessageSent)
    # Through the slow slot both sinks still see the event exactly once.
    bus.req_queued(1, 2, 5)
    assert bus.sinks[0].counters.dir_queued_requests == 1
    (row,) = heat.rows()
    assert row["dir_queued"] == 1 and row["max_queue_depth"] == 5
    bus.detach(heat)
    assert not bus.wants(ev.ReqQueued)


def test_ring_buffer_keeps_every_type_on_slow_path():
    ring = RingBufferTracer()
    bus = TraceBus(clock=lambda: 42, sinks=(ring,))
    # interests() is None -> all types delivered as objects, clock-stamped.
    assert bus.wants(ev.L1Hit) and bus.wants(ev.CasOutcome)
    bus.l1_hit(0, 9)
    (e,) = ring.events()
    assert isinstance(e, ev.L1Hit) and e.t == 42 and e.line == 9


def test_run_result_identical_across_fast_path_toggle():
    def run(fast):
        from repro.structures import LockedCounter
        m = Machine(MachineConfig(num_cores=4))
        m.trace.set_fast_path(fast)
        counter = LockedCounter(m, lock="tts")
        for _ in range(4):
            m.add_thread(counter.update_worker, 20)
        m.run()
        return m.result("c")

    assert run(True) == run(False)


def test_every_event_kind_has_a_bus_slot():
    from repro.trace.bus import EVENT_TYPES
    bus = TraceBus()
    for cls in EVENT_TYPES:
        assert callable(getattr(bus, cls.kind)), cls


# -- observation does not perturb the run -----------------------------------

def _run_stack(sinks):
    return bench_stack(4, variant="lease", ops_per_thread=30, sinks=sinks)


def test_run_result_identical_with_and_without_sinks():
    bare = _run_stack(None)
    ring = RingBufferTracer(capacity=256)
    heat = ContentionHeatmap()
    jsonl = JsonlTracer(io.StringIO())
    traced = _run_stack([ring, heat, jsonl])
    # Dataclass equality covers every field, including the full counter
    # snapshot -- observation must never change the simulation.
    assert bare == traced
    assert ring.total > 0


def test_jsonl_trace_reconciles_with_counters():
    buf = io.StringIO()
    jsonl = JsonlTracer(buf)
    res = bench_queue(4, variant="lease", ops_per_thread=20, sinks=[jsonl])
    assert reconcile(jsonl.counts, res.counters) == []
    lines = [json.loads(line) for line in buf.getvalue().splitlines()]
    assert len(lines) == jsonl.written == jsonl.total
    by_kind = {}
    for d in lines:
        by_kind[d["kind"]] = by_kind.get(d["kind"], 0) + 1
    assert by_kind == jsonl.counts


def test_reconcile_reports_mismatches():
    res = bench_stack(2, variant="base", ops_per_thread=10)
    problems = reconcile({"message": 0}, res.counters)
    assert any(p.startswith("messages:") for p in problems)


def test_jsonl_max_events_truncates_file_not_counts():
    buf = io.StringIO()
    jsonl = JsonlTracer(buf, max_events=10)
    res = bench_stack(2, variant="base", ops_per_thread=10, sinks=[jsonl])
    assert jsonl.written == 10
    assert jsonl.total > 10
    assert len(buf.getvalue().splitlines()) == 10
    assert reconcile(jsonl.counts, res.counters) == []


def test_jsonl_annotate_adds_context_fields():
    buf = io.StringIO()
    jsonl = JsonlTracer(buf)
    jsonl.annotate(variant="lease", threads=2)
    bench_stack(2, variant="lease", ops_per_thread=5, sinks=[jsonl])
    first = json.loads(buf.getvalue().splitlines()[0])
    assert first["variant"] == "lease" and first["threads"] == 2


def test_ring_buffer_is_bounded():
    ring = RingBufferTracer(capacity=32)
    bench_stack(2, variant="base", ops_per_thread=20, sinks=[ring])
    assert len(ring.events()) == 32
    assert ring.total > 32
    out = io.StringIO()
    assert ring.dump(out) == 32


# -- heatmap ----------------------------------------------------------------

def test_heatmap_names_hot_allocations():
    heat = ContentionHeatmap()
    bench_stack(4, variant="base", ops_per_thread=30, sinks=[heat])
    rows = heat.rows(top=1)
    assert rows[0]["allocation"] == "stack.head"
    assert rows[0]["dir_queued"] > 0
    assert "stack.head" in heat.report()


def test_heatmap_falls_back_to_line_number():
    heat = ContentionHeatmap()
    bus = TraceBus(sinks=(heat,))
    bus.emit(ev.ReqQueued(0, 123, 1))
    assert heat.rows()[0]["allocation"] == "line#123"


# -- invariant checker ------------------------------------------------------

def test_invariant_tracer_passes_on_lease_runs():
    inv = InvariantTracer()
    bench_stack(4, variant="lease", ops_per_thread=20, sinks=[inv])
    assert inv.checks_run > 100


def test_invariant_tracer_passes_on_lock_runs():
    inv = InvariantTracer(every=16)
    bench_counter(4, use_lease=True, ops_per_thread=20, sinks=[inv])
    assert inv.checks_run > 0


def test_invariant_tracer_passes_under_mesi(machine):
    inv = InvariantTracer()
    cfg = MachineConfig(num_cores=4, protocol="mesi")
    m = Machine(cfg)
    m.attach_tracer(inv)
    from repro.structures import TreiberStack
    s = TreiberStack(m)
    s.prefill(range(8))
    for _ in range(4):
        m.add_thread(s.update_worker, 10)
    m.run()
    assert inv.checks_run > 0


def test_invariant_tracer_detects_corrupted_l1():
    """Corrupt a core's L1 behind the directory's back: the continuous
    checker must flag the disagreement on the next event."""
    from repro.coherence.states import LineState

    from repro import Load

    m = make_machine(2)
    inv = m.attach_tracer(InvariantTracer())
    addr = m.alloc_var(1)

    def body(ctx):
        yield Load(addr)            # directory now tracks the line (SHARED)

    m.add_thread(body)
    m.run()
    line = m.amap.line_of(addr)
    # Core 1 conjures the line in M without any coherence transaction.
    m.cores[1].memunit.l1.fill(line, LineState.M)
    with pytest.raises(ProtocolError, match="invariant violated"):
        m.trace.emit(ev.OpCompleted(0))
    assert inv.checks_run > 0


def test_invariant_tracer_requires_bind():
    inv = InvariantTracer()
    with pytest.raises(ProtocolError):
        inv.check()


def test_invariant_every_must_be_positive():
    with pytest.raises(ValueError):
        InvariantTracer(every=0)


# -- machine integration -----------------------------------------------------

def test_machine_counters_are_the_default_sink(machine):
    assert machine.counters is machine.trace.sinks[0].counters


def test_attach_tracer_binds_and_detaches(machine):
    heat = ContentionHeatmap()
    assert machine.attach_tracer(heat) is heat
    assert heat in machine.trace.sinks
    machine.detach_tracer(heat)
    assert heat not in machine.trace.sinks


def test_allocator_labels_resolve():
    m = make_machine(2)
    addr = m.alloc_var(0, label="spot")
    assert m.alloc.label_of(m.amap.line_of(addr)) == "spot"
    assert m.alloc.label_of(10**9) is None
